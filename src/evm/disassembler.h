// Linear-sweep disassembler (§4.1 of the paper) and a basic-block builder
// used by the selector extractor and the storage-slice analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "evm/opcodes.h"
#include "evm/types.h"

namespace proxion::evm {

struct Instruction {
  std::uint32_t pc = 0;      // byte offset in the code
  std::uint8_t byte = 0;     // raw opcode byte
  Bytes immediate;           // PUSH payload (possibly truncated at code end)

  Opcode opcode() const noexcept { return static_cast<Opcode>(byte); }
  const OpcodeInfo& info() const noexcept { return opcode_info(byte); }
  /// PUSH immediate as a word (zero for non-push instructions).
  U256 push_value() const noexcept { return U256::from_be_slice(immediate); }
  /// "0042 PUSH1 0x80" style rendering.
  std::string to_string() const;
};

/// One straight-line run of instructions. Blocks end at terminators, JUMPI,
/// call-family instructions are *not* block boundaries (they fall through).
struct BasicBlock {
  std::uint32_t start_pc = 0;
  std::uint32_t first_instruction = 0;  // index into Disassembly::instructions
  std::uint32_t instruction_count = 0;
  bool starts_at_jumpdest = false;
};

class Disassembly {
 public:
  explicit Disassembly(BytesView code);

  const std::vector<Instruction>& instructions() const noexcept {
    return instructions_;
  }
  const std::vector<BasicBlock>& blocks() const noexcept { return blocks_; }
  BytesView code() const noexcept { return code_; }

  /// True iff the given opcode appears anywhere in the linear sweep. This is
  /// the paper's first-phase prefilter: contracts without DELEGATECALL
  /// anywhere in the bytecode cannot be proxies.
  bool contains(Opcode op) const noexcept;

  /// Every 4-byte immediate that follows a PUSH4 — the superset of candidate
  /// function selectors (§4.2): includes garbage constants, so callers must
  /// treat these as "signatures to avoid", not as the real function list.
  std::vector<std::uint32_t> push4_values() const;

  /// True iff `pc` is a JUMPDEST reachable as instruction (not push data).
  bool is_jumpdest(std::uint32_t pc) const noexcept {
    return jumpdests_.contains(pc);
  }
  const std::unordered_set<std::uint32_t>& jumpdests() const noexcept {
    return jumpdests_;
  }

  /// Index into instructions() for the instruction starting at `pc`.
  std::optional<std::uint32_t> instruction_at(std::uint32_t pc) const noexcept;

  /// Full assembly listing (one instruction per line).
  std::string to_string() const;

 private:
  Bytes owned_code_;
  BytesView code_;
  std::vector<Instruction> instructions_;
  std::vector<BasicBlock> blocks_;
  std::unordered_set<std::uint32_t> jumpdests_;
  std::vector<std::int32_t> pc_to_index_;  // -1 where no instruction starts
};

}  // namespace proxion::evm
