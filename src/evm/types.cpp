#include "evm/types.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace proxion::evm {

using u128 = unsigned __int128;

U256 U256::from_be_bytes(std::span<const std::uint8_t, 32> be) noexcept {
  U256 out;
  for (std::size_t limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      v = (v << 8) | be[(3 - limb) * 8 + b];
    }
    out.limbs_[limb] = v;
  }
  return out;
}

U256 U256::from_be_slice(BytesView be) noexcept {
  std::array<std::uint8_t, 32> padded{};
  const std::size_t n = std::min<std::size_t>(be.size(), 32);
  // Keep the *last* 32 bytes if the slice is oversized (EVM truncation rule).
  std::memcpy(padded.data() + (32 - n), be.data() + (be.size() - n), n);
  return from_be_bytes(padded);
}

U256 U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty() || hex.size() > 64) {
    throw std::invalid_argument("U256::from_hex: bad length");
  }
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  const auto raw = crypto::from_hex(padded);
  return from_be_slice(raw);
}

std::array<std::uint8_t, 32> U256::to_be_bytes() const noexcept {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t limb = 0; limb < 4; ++limb) {
    std::uint64_t v = limbs_[limb];
    for (std::size_t b = 0; b < 8; ++b) {
      out[(3 - limb) * 8 + (7 - b)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  return out;
}

std::string U256::to_hex() const {
  const auto be = to_be_bytes();
  std::string full = crypto::to_hex(be);
  const std::size_t first = full.find_first_not_of('0');
  if (first == std::string::npos) return "0x0";
  return "0x" + full.substr(first);
}

int U256::bit_length() const noexcept {
  for (int limb = 3; limb >= 0; --limb) {
    const std::uint64_t v = limbs_[static_cast<std::size_t>(limb)];
    if (v != 0) return limb * 64 + (63 - std::countl_zero(v)) + 1;
  }
  return 0;
}

std::strong_ordering U256::operator<=>(const U256& rhs) const noexcept {
  for (int i = 3; i >= 0; --i) {
    const auto a = limbs_[static_cast<std::size_t>(i)];
    const auto b = rhs.limbs_[static_cast<std::size_t>(i)];
    if (a != b) return a < b ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U256 U256::operator+(const U256& rhs) const noexcept {
  U256 out;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sum = u128{limbs_[i]} + rhs.limbs_[i] + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  return out;
}

U256 U256::operator-(const U256& rhs) const noexcept {
  U256 out;
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 lhs = u128{limbs_[i]};
    const u128 sub = u128{rhs.limbs_[i]} + borrow;
    out.limbs_[i] = static_cast<std::uint64_t>(lhs - sub);
    borrow = lhs < sub ? 1 : 0;
  }
  return out;
}

U256 U256::operator*(const U256& rhs) const noexcept {
  // Schoolbook multiply, keeping only the low 4 limbs (mod 2^256).
  std::uint64_t acc[4] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; i + j < 4; ++j) {
      const u128 t = u128{limbs_[i]} * rhs.limbs_[j] + acc[i + j] + carry;
      acc[i + j] = static_cast<std::uint64_t>(t);
      carry = static_cast<std::uint64_t>(t >> 64);
    }
  }
  return U256{acc[3], acc[2], acc[1], acc[0]};
}

namespace {

/// Shift-subtract long division; returns {quotient, remainder}.
std::pair<U256, U256> divmod(const U256& num, const U256& den) noexcept {
  if (den.is_zero()) return {U256{}, U256{}};
  if (num < den) return {U256{}, num};

  U256 quotient;
  U256 remainder;
  for (int bit = num.bit_length() - 1; bit >= 0; --bit) {
    remainder = remainder << U256{1};
    const std::uint64_t in_bit =
        (num.limb(static_cast<std::size_t>(bit / 64)) >>
         (static_cast<unsigned>(bit) % 64)) &
        1;
    if (in_bit != 0) remainder = remainder | U256{1};
    if (remainder >= den) {
      remainder = remainder - den;
      // set quotient bit
      U256 one_shifted = U256{1} << U256{static_cast<std::uint64_t>(bit)};
      quotient = quotient | one_shifted;
    }
  }
  return {quotient, remainder};
}

U256 negate(const U256& v) noexcept { return (~v) + U256{1}; }

}  // namespace

U256 U256::operator/(const U256& rhs) const noexcept {
  return divmod(*this, rhs).first;
}

U256 U256::operator%(const U256& rhs) const noexcept {
  return divmod(*this, rhs).second;
}

U256 U256::operator&(const U256& rhs) const noexcept {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] & rhs.limbs_[i];
  return out;
}

U256 U256::operator|(const U256& rhs) const noexcept {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] | rhs.limbs_[i];
  return out;
}

U256 U256::operator^(const U256& rhs) const noexcept {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] ^ rhs.limbs_[i];
  return out;
}

U256 U256::operator~() const noexcept {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = ~limbs_[i];
  return out;
}

U256 U256::operator<<(const U256& shift) const noexcept {
  if (!shift.fits_u64() || shift.low64() >= 256) return U256{};
  const unsigned s = static_cast<unsigned>(shift.low64());
  const unsigned limb_shift = s / 64;
  const unsigned bit_shift = s % 64;
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i < limb_shift) continue;
    std::uint64_t v = limbs_[i - limb_shift] << bit_shift;
    if (bit_shift != 0 && i > limb_shift) {
      v |= limbs_[i - limb_shift - 1] >> (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::operator>>(const U256& shift) const noexcept {
  if (!shift.fits_u64() || shift.low64() >= 256) return U256{};
  const unsigned s = static_cast<unsigned>(shift.low64());
  const unsigned limb_shift = s / 64;
  const unsigned bit_shift = s % 64;
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i + limb_shift >= 4) continue;
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < 4) {
      v |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::sdiv(const U256& rhs) const noexcept {
  if (rhs.is_zero()) return U256{};
  const bool neg_lhs = is_negative();
  const bool neg_rhs = rhs.is_negative();
  const U256 a = neg_lhs ? negate(*this) : *this;
  const U256 b = neg_rhs ? negate(rhs) : rhs;
  const U256 q = a / b;
  return (neg_lhs != neg_rhs) ? negate(q) : q;
}

U256 U256::smod(const U256& rhs) const noexcept {
  if (rhs.is_zero()) return U256{};
  const bool neg_lhs = is_negative();
  const U256 a = neg_lhs ? negate(*this) : *this;
  const U256 b = rhs.is_negative() ? negate(rhs) : rhs;
  const U256 r = a % b;
  return neg_lhs ? negate(r) : r;  // result takes the dividend's sign
}

U256 U256::sar(const U256& shift) const noexcept {
  const bool neg = is_negative();
  if (!shift.fits_u64() || shift.low64() >= 256) {
    return neg ? ~U256{} : U256{};
  }
  const U256 logical = *this >> shift;
  if (!neg) return logical;
  // Fill the vacated high bits with ones.
  const U256 mask = ~(~U256{} >> shift);
  return logical | mask;
}

bool U256::slt(const U256& rhs) const noexcept {
  const bool neg_lhs = is_negative();
  const bool neg_rhs = rhs.is_negative();
  if (neg_lhs != neg_rhs) return neg_lhs;
  return *this < rhs;
}

U256 U256::exp(const U256& exponent) const noexcept {
  U256 result{1};
  U256 base = *this;
  for (int bit = 0; bit < 256; ++bit) {
    const std::uint64_t limb = exponent.limb(static_cast<std::size_t>(bit / 64));
    if ((limb >> (static_cast<unsigned>(bit) % 64)) & 1) {
      result = result * base;
    }
    // Early exit once no higher bits remain.
    if (exponent >> U256{static_cast<std::uint64_t>(bit + 1)} == U256{}) break;
    base = base * base;
  }
  return result;
}

U256 U256::addmod(const U256& a, const U256& b, const U256& m) noexcept {
  if (m.is_zero()) return U256{};
  const U256 ra = a % m;
  const U256 rb = b % m;
  U256 sum = ra + rb;
  // Detect 257-bit overflow: sum < ra means wraparound.
  if (sum < ra || sum >= m) sum = sum - m;
  if (sum >= m) sum = sum - m;  // wraparound case may still exceed m once
  return sum;
}

U256 U256::mulmod(const U256& a, const U256& b, const U256& m) noexcept {
  if (m.is_zero()) return U256{};
  // Russian-peasant multiplication with addmod keeps every intermediate
  // below 2*m, avoiding a 512-bit representation.
  U256 result{};
  U256 acc = a % m;
  for (int bit = 0; bit < 256; ++bit) {
    const std::uint64_t limb = b.limb(static_cast<std::size_t>(bit / 64));
    if ((limb >> (static_cast<unsigned>(bit) % 64)) & 1) {
      result = addmod(result, acc, m);
    }
    if (b >> U256{static_cast<std::uint64_t>(bit + 1)} == U256{}) break;
    acc = addmod(acc, acc, m);
  }
  return result;
}

U256 U256::signextend(const U256& byte_index) const noexcept {
  if (!byte_index.fits_u64() || byte_index.low64() >= 31) return *this;
  const unsigned idx = static_cast<unsigned>(byte_index.low64());
  const unsigned sign_bit = idx * 8 + 7;
  const std::uint64_t limb = limbs_[sign_bit / 64];
  const bool negative = (limb >> (sign_bit % 64)) & 1;
  const U256 mask = (~U256{}) << U256{sign_bit + 1};
  return negative ? (*this | mask) : (*this & ~mask);
}

std::uint8_t U256::byte(const U256& index) const noexcept {
  if (!index.fits_u64() || index.low64() >= 32) return 0;
  const auto be = to_be_bytes();
  return be[static_cast<std::size_t>(index.low64())];
}

Address Address::from_word(const U256& w) noexcept {
  const auto be = w.to_be_bytes();
  Address out;
  std::memcpy(out.bytes.data(), be.data() + 12, 20);
  return out;
}

Address Address::from_hex(std::string_view hex) {
  const auto raw = crypto::from_hex(hex);
  if (raw.size() != 20) {
    throw std::invalid_argument("Address::from_hex: expected 20 bytes");
  }
  Address out;
  std::memcpy(out.bytes.data(), raw.data(), 20);
  return out;
}

Address Address::from_label(std::string_view label) {
  const crypto::Hash256 h = crypto::keccak256(label);
  Address out;
  std::memcpy(out.bytes.data(), h.data() + 12, 20);
  return out;
}

U256 Address::to_word() const noexcept {
  std::array<std::uint8_t, 32> be{};
  std::memcpy(be.data() + 12, bytes.data(), 20);
  return U256::from_be_bytes(be);
}

std::string Address::to_hex() const { return "0x" + crypto::to_hex(bytes); }

bool Address::is_zero() const noexcept {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](std::uint8_t b) { return b == 0; });
}

crypto::Hash256 code_hash(BytesView code) { return crypto::keccak256(code); }

U256 to_u256(const crypto::Hash256& h) noexcept {
  return U256::from_be_bytes(std::span<const std::uint8_t, 32>(h));
}

}  // namespace proxion::evm
