// The EVM interpreter: a 1024-deep stack machine with byte-addressed memory,
// persistent storage through a Host, the full call family (CALL / CALLCODE /
// DELEGATECALL / STATICCALL), CREATE / CREATE2, and coarse gas accounting.
//
// Guest misbehaviour (stack underflow, bad jumps, out-of-gas, invalid
// opcodes) never throws — it becomes a HaltReason in the result, exactly the
// property Proxion's emulation phase (§4.2) relies on when sweeping millions
// of potentially malformed contracts.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "evm/host.h"
#include "evm/types.h"
#include "util/arena.h"

namespace proxion::evm {

enum class CallKind : std::uint8_t {
  kCall,
  kCallCode,
  kDelegateCall,
  kStaticCall,
  kCreate,
  kCreate2,
};

std::string_view to_string(CallKind kind) noexcept;

enum class HaltReason : std::uint8_t {
  kStop,            // STOP or implicit end of code
  kReturn,          // RETURN
  kRevert,          // REVERT
  kSelfDestruct,    // SELFDESTRUCT
  kOutOfGas,
  kStackUnderflow,
  kStackOverflow,
  kBadJumpDestination,
  kInvalidOpcode,
  kStaticViolation,      // state-changing op inside STATICCALL
  kCallDepthExceeded,
  kReturnDataOutOfBounds,
  kStepLimit,            // emulator fuse: too many instructions executed
};

std::string_view to_string(HaltReason reason) noexcept;

/// Did the frame complete successfully (STOP/RETURN/SELFDESTRUCT)?
constexpr bool is_success(HaltReason r) noexcept {
  return r == HaltReason::kStop || r == HaltReason::kReturn ||
         r == HaltReason::kSelfDestruct;
}

struct CallParams {
  Address code_address;     // whose code runs
  Address storage_address;  // whose storage/balance context applies
  Address caller;
  Address origin;
  U256 value;
  Bytes calldata;
  std::uint64_t gas = 10'000'000;
  bool is_static = false;
  int depth = 0;
};

struct LogRecord {
  Address emitter;
  std::vector<U256> topics;
  Bytes data;
};

struct ExecResult {
  HaltReason halt = HaltReason::kStop;
  Bytes return_data;
  std::uint64_t gas_used = 0;
  std::vector<LogRecord> logs;

  bool success() const noexcept { return is_success(halt); }
};

/// Observation hooks. Proxion's proxy detector installs one to watch for
/// DELEGATECALL instructions and to check that the crafted call data is
/// forwarded verbatim into the callee frame.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;

  /// Before each instruction. `stack` is the full operand stack, bottom
  /// first (stack.back() is the top).
  virtual void on_instruction(int /*depth*/, const Address& /*code_addr*/,
                              std::uint32_t /*pc*/, std::uint8_t /*opcode*/,
                              std::span<const U256> /*stack*/) {}

  /// When a call-family instruction (or a top-level message call) enters a
  /// callee frame. `calldata` is the input the callee observes.
  virtual void on_call(CallKind /*kind*/, int /*depth*/,
                       const Address& /*from*/, const Address& /*to*/,
                       BytesView /*calldata*/) {}

  /// When a frame halts.
  virtual void on_halt(int /*depth*/, HaltReason /*reason*/) {}

  /// Every KECCAK256: the hashed input and the resulting word. The storage
  /// layout cross-check listens here to map concrete mapping/array slots
  /// back to the keccak derivation that produced them.
  virtual void on_keccak(int /*depth*/, BytesView /*input*/,
                         const U256& /*hash*/) {}

  /// Every SLOAD: which storage slot was read in which context and what
  /// value came back. The proxy detector uses this to locate the storage
  /// slot holding the logic contract's address (§4.3).
  virtual void on_sload(int /*depth*/, const Address& /*storage_addr*/,
                        const U256& /*slot*/, const U256& /*value*/) {}

  /// Every SSTORE (pre-write).
  virtual void on_sstore(int /*depth*/, const Address& /*storage_addr*/,
                         const U256& /*slot*/, const U256& /*value*/) {}
};

struct InterpreterConfig {
  /// Hard cap on executed instructions across all frames, a fuse against
  /// infinite loops during emulation of unknown bytecode.
  std::uint64_t step_limit = 1'000'000;
  int max_call_depth = 1024;
  bool charge_gas = true;
  /// EIP-2929 warm/cold account & slot access pricing (cold SLOAD 2100,
  /// cold account touch 2600; warm accesses 100).
  bool eip2929_access_costs = true;
};

/// Per-transaction access sets (EIP-2929): shared by every frame spawned
/// from one top-level call, reset between transactions.
struct TxAccessState {
  std::unordered_map<Address, bool, AddressHasher> warm_accounts;
  std::unordered_map<Address,
                     std::unordered_map<U256, bool, U256Hasher>,
                     AddressHasher>
      warm_slots;
  /// EIP-1153 transient storage: per-transaction, per-contract, cleared
  /// when the transaction ends (this struct is reset per transaction).
  std::unordered_map<Address,
                     std::unordered_map<U256, U256, U256Hasher>,
                     AddressHasher>
      transient;

  /// Marks the account warm; returns true if it was cold before.
  bool touch_account(const Address& a) {
    return !std::exchange(warm_accounts[a], true);
  }
  bool touch_slot(const Address& a, const U256& slot) {
    return !std::exchange(warm_slots[a][slot], true);
  }
};

class Interpreter {
 public:
  explicit Interpreter(Host& host, InterpreterConfig config = {})
      : host_(host), config_(config) {}

  void set_observer(TraceObserver* observer) noexcept { observer_ = observer; }

  /// Runs a message call (code already deployed at params.code_address).
  ExecResult execute(const CallParams& params);

  /// Runs init code and deploys the returned runtime code at `target`.
  /// Returns the runtime code via ExecResult::return_data on success.
  ExecResult execute_create(const Address& creator, const Address& target,
                            BytesView init_code, const U256& value, int depth,
                            std::uint64_t gas);

  std::uint64_t steps_executed() const noexcept { return steps_; }

 private:
  struct Frame;
  ExecResult run_frame(Frame& frame);
  /// Charges the EIP-2929 cold surcharge for touching `a` (0 when warm or
  /// when access costs are disabled). Precompiles are always warm.
  std::int64_t account_access_surcharge(const Address& a);
  std::int64_t slot_access_surcharge(const Address& a, const U256& slot);

  Host& host_;
  InterpreterConfig config_;
  TraceObserver* observer_ = nullptr;
  std::uint64_t steps_ = 0;
  TxAccessState owned_access_state_;
  TxAccessState* access_ = &owned_access_state_;
  /// Bump-allocated scratch for frame containers (operand stack, memory,
  /// return-data buffer). Shared by every frame of one transaction — nested
  /// sub-interpreters point at the top-level interpreter's arena, the same
  /// sharing pattern as access_ — and reset at top-level transaction entry,
  /// when no frames are alive. Steady-state emulation therefore performs no
  /// heap allocation for frame scratch.
  util::Arena owned_arena_;
  util::Arena* arena_ = &owned_arena_;
};

}  // namespace proxion::evm
