// Precompiled contracts. The interpreter short-circuits CALL-family targets
// at the reserved low addresses instead of running (empty) code there. We
// implement the two precompiles real proxy/logic bytecode actually leans on
// — SHA-256 (0x02) and identity (0x04) — and let the remaining reserved
// addresses behave like empty accounts (success, empty output), which is
// also what a default-configured emulator observes for never-invoked ones.
#pragma once

#include <optional>

#include "evm/types.h"

namespace proxion::evm {

struct PrecompileResult {
  Bytes output;
  std::uint64_t gas_cost = 0;
};

/// Address 0x01..0x09 dispatch. Returns nullopt when `target` is not a
/// handled precompile (callers then treat it as a normal account).
std::optional<PrecompileResult> run_precompile(const Address& target,
                                               BytesView input);

/// True for any address in the reserved precompile range 0x01..0x09.
bool is_precompile_address(const Address& target) noexcept;

}  // namespace proxion::evm
