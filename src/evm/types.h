// Core value types for the EVM: 256-bit words (U256), 20-byte addresses, and
// raw byte buffers. U256 implements the full arithmetic the EVM instruction
// set needs (wrapping add/sub/mul, div/mod, signed variants, exp, shifts,
// byte extraction) on four 64-bit limbs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/keccak.h"

namespace proxion::evm {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// 256-bit unsigned integer, little-endian limb order (limbs_[0] = least
/// significant 64 bits). All arithmetic wraps modulo 2^256, matching EVM
/// semantics.
class U256 {
 public:
  constexpr U256() noexcept : limbs_{} {}
  constexpr U256(std::uint64_t v) noexcept : limbs_{v, 0, 0, 0} {}  // NOLINT: implicit by design — EVM code is full of small literals
  constexpr U256(std::uint64_t l3, std::uint64_t l2, std::uint64_t l1,
                 std::uint64_t l0) noexcept
      : limbs_{l0, l1, l2, l3} {}

  /// Big-endian 32-byte word -> U256.
  static U256 from_be_bytes(std::span<const std::uint8_t, 32> be) noexcept;
  /// Big-endian bytes of any length <= 32, left-padded with zeros.
  static U256 from_be_slice(BytesView be) noexcept;
  /// Parses "0x..." or bare hex (up to 64 nibbles). Throws on bad input.
  static U256 from_hex(std::string_view hex);

  /// Writes the value as a big-endian 32-byte word.
  std::array<std::uint8_t, 32> to_be_bytes() const noexcept;
  /// Lowercase minimal hex with 0x prefix (e.g. "0x0", "0x1f").
  std::string to_hex() const;

  constexpr std::uint64_t limb(std::size_t i) const noexcept {
    return limbs_[i];
  }
  /// Low 64 bits (truncating).
  constexpr std::uint64_t low64() const noexcept { return limbs_[0]; }
  /// True iff the value fits in 64 bits.
  constexpr bool fits_u64() const noexcept {
    return limbs_[1] == 0 && limbs_[2] == 0 && limbs_[3] == 0;
  }
  constexpr bool is_zero() const noexcept {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  /// Sign bit (bit 255), for the EVM's signed instructions.
  constexpr bool is_negative() const noexcept {
    return (limbs_[3] >> 63) != 0;
  }
  /// Index of the highest set bit, or -1 for zero.
  int bit_length() const noexcept;

  friend constexpr bool operator==(const U256&, const U256&) noexcept =
      default;
  std::strong_ordering operator<=>(const U256& rhs) const noexcept;

  U256 operator+(const U256& rhs) const noexcept;
  U256 operator-(const U256& rhs) const noexcept;
  U256 operator*(const U256& rhs) const noexcept;
  /// EVM DIV: division by zero yields zero.
  U256 operator/(const U256& rhs) const noexcept;
  /// EVM MOD: modulo zero yields zero.
  U256 operator%(const U256& rhs) const noexcept;

  U256 operator&(const U256& rhs) const noexcept;
  U256 operator|(const U256& rhs) const noexcept;
  U256 operator^(const U256& rhs) const noexcept;
  U256 operator~() const noexcept;
  /// Logical shifts; shift counts >= 256 yield zero (EVM SHL/SHR semantics).
  U256 operator<<(const U256& shift) const noexcept;
  U256 operator>>(const U256& shift) const noexcept;

  U256& operator+=(const U256& rhs) noexcept { return *this = *this + rhs; }
  U256& operator-=(const U256& rhs) noexcept { return *this = *this - rhs; }

  /// EVM SDIV / SMOD (two's-complement signed, div-by-zero -> 0).
  U256 sdiv(const U256& rhs) const noexcept;
  U256 smod(const U256& rhs) const noexcept;
  /// EVM SAR: arithmetic right shift.
  U256 sar(const U256& shift) const noexcept;
  /// EVM SLT / SGT.
  bool slt(const U256& rhs) const noexcept;
  bool sgt(const U256& rhs) const noexcept { return rhs.slt(*this); }
  /// EVM EXP (square-and-multiply mod 2^256).
  U256 exp(const U256& exponent) const noexcept;
  /// EVM ADDMOD / MULMOD (intermediate results not truncated to 256 bits).
  static U256 addmod(const U256& a, const U256& b, const U256& m) noexcept;
  static U256 mulmod(const U256& a, const U256& b, const U256& m) noexcept;
  /// EVM SIGNEXTEND: extends the sign of the (i+1)-th lowest byte.
  U256 signextend(const U256& byte_index) const noexcept;
  /// EVM BYTE: the i-th byte counted from the most significant end.
  std::uint8_t byte(const U256& index) const noexcept;

 private:
  std::array<std::uint64_t, 4> limbs_;  // little-endian limb order
};

/// A 20-byte Ethereum account address.
struct Address {
  std::array<std::uint8_t, 20> bytes{};

  constexpr Address() = default;
  explicit constexpr Address(std::array<std::uint8_t, 20> b) : bytes(b) {}

  /// Low 20 bytes of a 256-bit word (how CALL-family operands are read).
  static Address from_word(const U256& w) noexcept;
  static Address from_hex(std::string_view hex);
  /// Deterministic pseudo-address for tests/datagen: keccak of a label.
  static Address from_label(std::string_view label);

  U256 to_word() const noexcept;
  std::string to_hex() const;  // "0x" + 40 hex digits
  bool is_zero() const noexcept;

  friend bool operator==(const Address&, const Address&) = default;
  auto operator<=>(const Address&) const = default;
};

struct AddressHasher {
  std::size_t operator()(const Address& a) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the 20 bytes
    for (const std::uint8_t b : a.bytes) {
      h = (h ^ b) * 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

struct U256Hasher {
  std::size_t operator()(const U256& v) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < 4; ++i) {
      h = (h ^ v.limb(i)) * 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// keccak256 of a code blob, used as the dedup key across the population.
crypto::Hash256 code_hash(BytesView code);

/// U256 view of a 32-byte hash (big-endian), e.g. storage slot constants.
U256 to_u256(const crypto::Hash256& h) noexcept;

}  // namespace proxion::evm
