// Host interface: everything the interpreter needs from the outside world
// (account code, storage, balances, block context). The blockchain module
// implements it for real execution; `OverlayHost` wraps any host with a
// write-buffer so Proxion's *emulated* runs never mutate chain state.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "evm/types.h"

namespace proxion::evm {

struct BlockContext {
  U256 number;
  U256 timestamp;
  U256 difficulty;   // PREVRANDAO post-merge
  U256 gas_limit{30'000'000};
  U256 base_fee{7};
  U256 gas_price{10};
  U256 chain_id{1};  // Ethereum mainnet
  Address coinbase;
};

class Host {
 public:
  virtual ~Host() = default;

  virtual Bytes get_code(const Address& account) = 0;
  virtual U256 get_storage(const Address& account, const U256& slot) = 0;
  virtual void set_storage(const Address& account, const U256& slot,
                           const U256& value) = 0;
  virtual U256 get_balance(const Address& account) = 0;
  virtual void set_balance(const Address& account, const U256& value) = 0;
  virtual std::uint64_t get_nonce(const Address& account) = 0;
  virtual void set_nonce(const Address& account, std::uint64_t nonce) = 0;
  virtual void set_code(const Address& account, Bytes code) = 0;
  virtual bool account_exists(const Address& account) = 0;
  virtual U256 block_hash(std::uint64_t block_number) = 0;
  virtual const BlockContext& block_context() = 0;
};

/// Copy-on-write view over a base host. Reads fall through to the base until
/// a local write shadows them; writes never reach the base. Used for EVM
/// *emulation* (§4.2) and for the storage-collision exploit verification,
/// both of which must leave the chain untouched.
class OverlayHost final : public Host {
 public:
  explicit OverlayHost(Host& base) : base_(base) {}

  Bytes get_code(const Address& a) override {
    if (const auto it = code_.find(a); it != code_.end()) return it->second;
    return base_.get_code(a);
  }
  U256 get_storage(const Address& a, const U256& slot) override {
    if (const auto it = storage_.find(a); it != storage_.end()) {
      if (const auto jt = it->second.find(slot); jt != it->second.end()) {
        return jt->second;
      }
    }
    return base_.get_storage(a, slot);
  }
  void set_storage(const Address& a, const U256& slot,
                   const U256& value) override {
    storage_[a][slot] = value;
  }
  U256 get_balance(const Address& a) override {
    if (const auto it = balance_.find(a); it != balance_.end()) {
      return it->second;
    }
    return base_.get_balance(a);
  }
  void set_balance(const Address& a, const U256& value) override {
    balance_[a] = value;
  }
  std::uint64_t get_nonce(const Address& a) override {
    if (const auto it = nonce_.find(a); it != nonce_.end()) return it->second;
    return base_.get_nonce(a);
  }
  void set_nonce(const Address& a, std::uint64_t nonce) override {
    nonce_[a] = nonce;
  }
  void set_code(const Address& a, Bytes code) override {
    code_[a] = std::move(code);
  }
  bool account_exists(const Address& a) override {
    return code_.contains(a) || balance_.contains(a) || nonce_.contains(a) ||
           base_.account_exists(a);
  }
  U256 block_hash(std::uint64_t n) override { return base_.block_hash(n); }
  const BlockContext& block_context() override {
    return base_.block_context();
  }

  /// Slots written during the overlay's lifetime (per account) — the
  /// storage-collision verifier inspects these to confirm an exploit wrote
  /// the sensitive slot.
  const std::unordered_map<U256, U256, U256Hasher>* written_slots(
      const Address& a) const {
    const auto it = storage_.find(a);
    return it == storage_.end() ? nullptr : &it->second;
  }

 private:
  Host& base_;
  std::unordered_map<Address, Bytes, AddressHasher> code_;
  std::unordered_map<Address,
                     std::unordered_map<U256, U256, U256Hasher>,
                     AddressHasher>
      storage_;
  std::unordered_map<Address, U256, AddressHasher> balance_;
  std::unordered_map<Address, std::uint64_t, AddressHasher> nonce_;
};

/// Minimal in-memory host for unit tests and standalone emulation (no chain
/// behind it; missing accounts read as empty).
class MemoryHost final : public Host {
 public:
  Bytes get_code(const Address& a) override {
    const auto it = code_.find(a);
    return it == code_.end() ? Bytes{} : it->second;
  }
  U256 get_storage(const Address& a, const U256& slot) override {
    const auto it = storage_.find(a);
    if (it == storage_.end()) return U256{};
    const auto jt = it->second.find(slot);
    return jt == it->second.end() ? U256{} : jt->second;
  }
  void set_storage(const Address& a, const U256& slot,
                   const U256& value) override {
    storage_[a][slot] = value;
  }
  U256 get_balance(const Address& a) override {
    const auto it = balance_.find(a);
    return it == balance_.end() ? U256{} : it->second;
  }
  void set_balance(const Address& a, const U256& value) override {
    balance_[a] = value;
  }
  std::uint64_t get_nonce(const Address& a) override {
    const auto it = nonce_.find(a);
    return it == nonce_.end() ? 0 : it->second;
  }
  void set_nonce(const Address& a, std::uint64_t nonce) override {
    nonce_[a] = nonce;
  }
  void set_code(const Address& a, Bytes code) override {
    code_[a] = std::move(code);
  }
  bool account_exists(const Address& a) override {
    return code_.contains(a) || balance_.contains(a) || nonce_.contains(a);
  }
  U256 block_hash(std::uint64_t n) override {
    return U256{n} * U256{2654435761u};  // deterministic stand-in
  }
  const BlockContext& block_context() override { return block_; }
  BlockContext& mutable_block_context() { return block_; }

 private:
  std::unordered_map<Address, Bytes, AddressHasher> code_;
  std::unordered_map<Address,
                     std::unordered_map<U256, U256, U256Hasher>,
                     AddressHasher>
      storage_;
  std::unordered_map<Address, U256, AddressHasher> balance_;
  std::unordered_map<Address, std::uint64_t, AddressHasher> nonce_;
  BlockContext block_;
};

}  // namespace proxion::evm
