#include "evm/precompiles.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace proxion::evm {

bool is_precompile_address(const Address& target) noexcept {
  for (std::size_t i = 0; i < 19; ++i) {
    if (target.bytes[i] != 0) return false;
  }
  const std::uint8_t last = target.bytes[19];
  return last >= 0x01 && last <= 0x09;
}

std::optional<PrecompileResult> run_precompile(const Address& target,
                                               BytesView input) {
  if (!is_precompile_address(target)) return std::nullopt;
  const std::uint64_t words = (input.size() + 31) / 32;

  switch (target.bytes[19]) {
    case 0x02: {  // SHA-256
      const auto digest = crypto::sha256(input);
      PrecompileResult result;
      result.output.assign(digest.begin(), digest.end());
      result.gas_cost = 60 + 12 * words;
      return result;
    }
    case 0x04: {  // identity (datacopy)
      PrecompileResult result;
      result.output.assign(input.begin(), input.end());
      result.gas_cost = 15 + 3 * words;
      return result;
    }
    default: {
      // Unimplemented reserved address: succeed with empty output, exactly
      // like calling an empty account (documented substitution).
      PrecompileResult result;
      result.gas_cost = 0;
      return result;
    }
  }
}

}  // namespace proxion::evm
