#include "evm/disassembler.h"

#include <sstream>

#include "crypto/keccak.h"

namespace proxion::evm {

std::string Instruction::to_string() const {
  std::ostringstream out;
  char pc_buf[8];
  std::snprintf(pc_buf, sizeof(pc_buf), "%04x", pc);
  out << pc_buf << ' ' << info().mnemonic;
  if (!immediate.empty()) {
    out << " 0x" << crypto::to_hex(immediate);
  }
  return out.str();
}

Disassembly::Disassembly(BytesView code)
    : owned_code_(code.begin(), code.end()), code_(owned_code_) {
  pc_to_index_.assign(code_.size(), -1);

  // Linear sweep: PUSH immediates are skipped as data; a PUSH whose payload
  // runs off the end of the code is kept with a truncated immediate (the EVM
  // zero-pads it at execution time).
  for (std::size_t pc = 0; pc < code_.size();) {
    Instruction ins;
    ins.pc = static_cast<std::uint32_t>(pc);
    ins.byte = code_[pc];
    const int imm = push_size(ins.byte);
    const std::size_t imm_end = std::min(pc + 1 + static_cast<std::size_t>(imm),
                                         code_.size());
    ins.immediate.assign(code_.begin() + static_cast<std::ptrdiff_t>(pc) + 1,
                         code_.begin() + static_cast<std::ptrdiff_t>(imm_end));
    if (ins.opcode() == Opcode::JUMPDEST) {
      jumpdests_.insert(ins.pc);
    }
    pc_to_index_[pc] = static_cast<std::int32_t>(instructions_.size());
    instructions_.push_back(std::move(ins));
    pc = imm_end == pc + 1 + static_cast<std::size_t>(imm) ? imm_end
                                                           : code_.size();
  }

  // Basic blocks: boundaries before every JUMPDEST and after every
  // terminator or JUMPI.
  std::uint32_t block_start = 0;
  auto flush = [&](std::uint32_t end_exclusive) {
    if (end_exclusive <= block_start) return;
    BasicBlock b;
    b.first_instruction = block_start;
    b.instruction_count = end_exclusive - block_start;
    b.start_pc = instructions_[block_start].pc;
    b.starts_at_jumpdest =
        instructions_[block_start].opcode() == Opcode::JUMPDEST;
    blocks_.push_back(b);
    block_start = end_exclusive;
  };
  for (std::uint32_t i = 0; i < instructions_.size(); ++i) {
    const Instruction& ins = instructions_[i];
    if (ins.opcode() == Opcode::JUMPDEST && i != block_start) {
      flush(i);
    }
    if (is_terminator(ins.byte) || ins.opcode() == Opcode::JUMPI) {
      flush(i + 1);
    }
  }
  flush(static_cast<std::uint32_t>(instructions_.size()));
}

bool Disassembly::contains(Opcode op) const noexcept {
  for (const Instruction& ins : instructions_) {
    if (ins.opcode() == op) return true;
  }
  return false;
}

std::vector<std::uint32_t> Disassembly::push4_values() const {
  std::vector<std::uint32_t> out;
  for (const Instruction& ins : instructions_) {
    if (ins.byte == 0x63 && ins.immediate.size() == 4) {  // PUSH4
      out.push_back((std::uint32_t{ins.immediate[0]} << 24) |
                    (std::uint32_t{ins.immediate[1]} << 16) |
                    (std::uint32_t{ins.immediate[2]} << 8) |
                    std::uint32_t{ins.immediate[3]});
    }
  }
  return out;
}

std::optional<std::uint32_t> Disassembly::instruction_at(
    std::uint32_t pc) const noexcept {
  if (pc >= pc_to_index_.size() || pc_to_index_[pc] < 0) return std::nullopt;
  return static_cast<std::uint32_t>(pc_to_index_[pc]);
}

std::string Disassembly::to_string() const {
  std::string out;
  for (const Instruction& ins : instructions_) {
    out += ins.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace proxion::evm
