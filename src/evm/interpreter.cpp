#include "evm/interpreter.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "crypto/eth.h"
#include "evm/opcodes.h"
#include "evm/precompiles.h"

namespace proxion::evm {

std::string_view to_string(CallKind kind) noexcept {
  switch (kind) {
    case CallKind::kCall: return "CALL";
    case CallKind::kCallCode: return "CALLCODE";
    case CallKind::kDelegateCall: return "DELEGATECALL";
    case CallKind::kStaticCall: return "STATICCALL";
    case CallKind::kCreate: return "CREATE";
    case CallKind::kCreate2: return "CREATE2";
  }
  return "?";
}

std::string_view to_string(HaltReason reason) noexcept {
  switch (reason) {
    case HaltReason::kStop: return "STOP";
    case HaltReason::kReturn: return "RETURN";
    case HaltReason::kRevert: return "REVERT";
    case HaltReason::kSelfDestruct: return "SELFDESTRUCT";
    case HaltReason::kOutOfGas: return "OUT_OF_GAS";
    case HaltReason::kStackUnderflow: return "STACK_UNDERFLOW";
    case HaltReason::kStackOverflow: return "STACK_OVERFLOW";
    case HaltReason::kBadJumpDestination: return "BAD_JUMP";
    case HaltReason::kInvalidOpcode: return "INVALID_OPCODE";
    case HaltReason::kStaticViolation: return "STATIC_VIOLATION";
    case HaltReason::kCallDepthExceeded: return "CALL_DEPTH_EXCEEDED";
    case HaltReason::kReturnDataOutOfBounds: return "RETURNDATA_OOB";
    case HaltReason::kStepLimit: return "STEP_LIMIT";
  }
  return "?";
}

namespace {

constexpr std::size_t kStackLimit = 1024;
constexpr std::size_t kMaxMemory = 16u << 20;  // 16 MiB fuse per frame

/// JUMPDEST positions found by a linear sweep that skips PUSH payloads —
/// exactly the set of valid jump targets.
std::unordered_set<std::uint32_t> valid_jumpdests(BytesView code) {
  std::unordered_set<std::uint32_t> out;
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t byte = code[pc];
    if (static_cast<Opcode>(byte) == Opcode::JUMPDEST) {
      out.insert(static_cast<std::uint32_t>(pc));
    }
    pc += 1 + static_cast<std::size_t>(push_size(byte));
  }
  return out;
}

}  // namespace

// The hot frame containers (operand stack, byte-addressed memory, return-
// data buffer) draw from the transaction's bump arena: allocation is a
// pointer bump, deallocation a no-op, and the whole transaction's scratch is
// reclaimed in one arena reset at the next top-level execute(). `code`,
// `jumpdests`, and `logs` stay heap-allocated — code is usually a cheap copy
// of host-owned bytes, and logs outlive the frame inside ExecResult.
struct Interpreter::Frame {
  explicit Frame(util::Arena& arena)
      : stack(util::ArenaAllocator<U256>(&arena)),
        memory(util::ArenaAllocator<std::uint8_t>(&arena)),
        last_return_data(util::ArenaAllocator<std::uint8_t>(&arena)) {}

  CallParams params;
  Bytes code;
  std::unordered_set<std::uint32_t> jumpdests;
  std::vector<U256, util::ArenaAllocator<U256>> stack;
  std::vector<std::uint8_t, util::ArenaAllocator<std::uint8_t>> memory;
  std::vector<std::uint8_t, util::ArenaAllocator<std::uint8_t>>
      last_return_data;
  std::vector<LogRecord> logs;
  std::uint64_t pc = 0;
  std::int64_t gas = 0;
};

std::int64_t Interpreter::account_access_surcharge(const Address& a) {
  if (!config_.charge_gas || !config_.eip2929_access_costs) return 0;
  if (is_precompile_address(a)) return 0;  // precompiles are always warm
  return access_->touch_account(a) ? 2500 : 0;
}

std::int64_t Interpreter::slot_access_surcharge(const Address& a,
                                                const U256& slot) {
  if (!config_.charge_gas || !config_.eip2929_access_costs) return 0;
  return access_->touch_slot(a, slot) ? 2000 : 0;
}

ExecResult Interpreter::execute(const CallParams& params) {
  if (params.depth == 0 && access_ == &owned_access_state_) {
    // True top-level entry (not a sub-interpreter sharing our state): no
    // frame is alive, so the previous transaction's arena scratch can be
    // reclaimed wholesale before this frame starts allocating.
    arena_->reset();
  }

  Frame frame(*arena_);
  frame.params = params;
  frame.code = host_.get_code(params.code_address);
  frame.jumpdests = valid_jumpdests(frame.code);
  frame.gas = static_cast<std::int64_t>(params.gas);
  frame.stack.reserve(64);

  if (params.depth == 0 && access_ == &owned_access_state_) {
    // New transaction: reset the access sets and pre-warm to/from
    // (EIP-2929).
    owned_access_state_ = TxAccessState{};
    access_->touch_account(params.code_address);
    access_->touch_account(params.storage_address);
    access_->touch_account(params.caller);
    access_->touch_account(params.origin);
  }

  if (observer_ != nullptr && params.depth == 0) {
    observer_->on_call(CallKind::kCall, 0, params.caller, params.code_address,
                       params.calldata);
  }

  ExecResult result = run_frame(frame);
  result.gas_used =
      params.gas - static_cast<std::uint64_t>(std::max<std::int64_t>(
                       frame.gas, 0));
  if (observer_ != nullptr) observer_->on_halt(params.depth, result.halt);
  return result;
}

ExecResult Interpreter::execute_create(const Address& creator,
                                       const Address& target,
                                       BytesView init_code, const U256& value,
                                       int depth, std::uint64_t gas) {
  CallParams params;
  params.code_address = target;
  params.storage_address = target;
  params.caller = creator;
  params.origin = creator;
  params.value = value;
  params.gas = gas;
  params.depth = depth;

  if (depth == 0 && access_ == &owned_access_state_) {
    arena_->reset();  // same top-level contract as execute()
  }

  Frame frame(*arena_);
  frame.params = params;
  frame.code.assign(init_code.begin(), init_code.end());
  frame.jumpdests = valid_jumpdests(frame.code);
  frame.gas = static_cast<std::int64_t>(gas);

  ExecResult result = run_frame(frame);
  result.gas_used = gas - static_cast<std::uint64_t>(
                              std::max<std::int64_t>(frame.gas, 0));
  if (result.halt == HaltReason::kReturn) {
    host_.set_code(target, result.return_data);
  }
  return result;
}

ExecResult Interpreter::run_frame(Frame& f) {
  ExecResult result;
  auto halt = [&](HaltReason r) {
    result.halt = r;
    result.logs = std::move(f.logs);
    return result;
  };

  // --- small helpers over the frame state ------------------------------
  auto pop = [&](U256& out) -> bool {
    if (f.stack.empty()) return false;
    out = f.stack.back();
    f.stack.pop_back();
    return true;
  };
  auto push = [&](const U256& v) -> bool {
    if (f.stack.size() >= kStackLimit) return false;
    f.stack.push_back(v);
    return true;
  };
  auto charge = [&](std::int64_t amount) -> bool {
    if (!config_.charge_gas) return true;
    f.gas -= amount;
    return f.gas >= 0;
  };
  // Expands memory to cover [offset, offset+size) and charges quadratic
  // expansion gas. Returns false on overflow/fuse/OOG.
  auto touch_memory = [&](const U256& offset, const U256& size) -> bool {
    if (size.is_zero()) return true;
    if (!offset.fits_u64() || !size.fits_u64()) return false;
    const std::uint64_t end = offset.low64() + size.low64();
    if (end < offset.low64() || end > kMaxMemory) return false;
    const std::uint64_t new_words = (end + 31) / 32;
    const std::uint64_t old_words = (f.memory.size() + 31) / 32;
    if (new_words > old_words) {
      const std::int64_t cost =
          static_cast<std::int64_t>(3 * (new_words - old_words) +
                                    (new_words * new_words -
                                     old_words * old_words) /
                                        512);
      if (!charge(cost)) return false;
      f.memory.resize(new_words * 32, 0);
    }
    return true;
  };
  auto mem_read = [&](const U256& offset, const U256& size) -> Bytes {
    if (size.is_zero()) return {};
    return Bytes(f.memory.begin() + static_cast<std::ptrdiff_t>(offset.low64()),
                 f.memory.begin() +
                     static_cast<std::ptrdiff_t>(offset.low64() + size.low64()));
  };
  // Copies `src` into memory at dst_off, reading src from src_off for `size`
  // bytes and zero-padding past the end of src.
  auto mem_write_padded = [&](const U256& dst_off, const U256& src_off,
                              const U256& size, BytesView src) {
    if (size.is_zero()) return;
    const std::uint64_t dst = dst_off.low64();
    const std::uint64_t n = size.low64();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint8_t byte = 0;
      if (src_off.fits_u64()) {
        const std::uint64_t s = src_off.low64() + i;
        if (s >= src_off.low64() && s < src.size()) byte = src[s];
      }
      f.memory[dst + i] = byte;
    }
  };

  const BlockContext& block = host_.block_context();

  while (true) {
    if (++steps_ > config_.step_limit) return halt(HaltReason::kStepLimit);
    if (f.pc >= f.code.size()) return halt(HaltReason::kStop);

    const std::uint8_t byte = f.code[f.pc];
    const OpcodeInfo& info = opcode_info(byte);
    const Opcode op = static_cast<Opcode>(byte);

    if (observer_ != nullptr) {
      observer_->on_instruction(f.params.depth, f.params.code_address,
                                static_cast<std::uint32_t>(f.pc), byte,
                                f.stack);
    }

    if (!info.defined) return halt(HaltReason::kInvalidOpcode);
    if (f.stack.size() < info.stack_in) {
      return halt(HaltReason::kStackUnderflow);
    }
    if (!charge(info.base_gas)) return halt(HaltReason::kOutOfGas);

    // PUSH / DUP / SWAP families first (range-dispatched).
    if (is_push(byte)) {
      const int n = push_size(byte);
      const std::size_t end =
          std::min(f.pc + 1 + static_cast<std::size_t>(n), f.code.size());
      const U256 value = U256::from_be_slice(
          BytesView(f.code.data() + f.pc + 1, end - f.pc - 1));
      // Truncated PUSH at end of code: the EVM right-pads with zeros, i.e.
      // the value is shifted left by the missing bytes.
      const std::size_t missing = f.pc + 1 + static_cast<std::size_t>(n) - end;
      const U256 padded =
          missing == 0 ? value
                       : value << U256{static_cast<std::uint64_t>(missing * 8)};
      if (!push(padded)) return halt(HaltReason::kStackOverflow);
      f.pc += 1 + static_cast<std::size_t>(n);
      continue;
    }
    if (is_dup(byte)) {
      const std::size_t n = static_cast<std::size_t>(byte - 0x80) + 1;
      if (!push(f.stack[f.stack.size() - n])) {
        return halt(HaltReason::kStackOverflow);
      }
      ++f.pc;
      continue;
    }
    if (is_swap(byte)) {
      const std::size_t n = static_cast<std::size_t>(byte - 0x90) + 1;
      std::swap(f.stack.back(), f.stack[f.stack.size() - 1 - n]);
      ++f.pc;
      continue;
    }
    if (is_log(byte)) {
      if (f.params.is_static) return halt(HaltReason::kStaticViolation);
      const std::size_t topics = static_cast<std::size_t>(byte - 0xa0);
      U256 offset, size;
      pop(offset);
      pop(size);
      if (!touch_memory(offset, size)) return halt(HaltReason::kOutOfGas);
      LogRecord log;
      log.emitter = f.params.storage_address;
      for (std::size_t i = 0; i < topics; ++i) {
        U256 t;
        pop(t);
        log.topics.push_back(t);
      }
      log.data = mem_read(offset, size);
      f.logs.push_back(std::move(log));
      ++f.pc;
      continue;
    }

    switch (op) {
      case Opcode::STOP:
        return halt(HaltReason::kStop);

      // ---- arithmetic ------------------------------------------------
      case Opcode::ADD: case Opcode::MUL: case Opcode::SUB:
      case Opcode::DIV: case Opcode::SDIV: case Opcode::MOD:
      case Opcode::SMOD: case Opcode::EXP: case Opcode::SIGNEXTEND:
      case Opcode::LT: case Opcode::GT: case Opcode::SLT:
      case Opcode::SGT: case Opcode::EQ: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::BYTE:
      case Opcode::SHL: case Opcode::SHR: case Opcode::SAR: {
        U256 a, b;
        pop(a);
        pop(b);
        U256 r;
        switch (op) {
          case Opcode::ADD: r = a + b; break;
          case Opcode::MUL: r = a * b; break;
          case Opcode::SUB: r = a - b; break;
          case Opcode::DIV: r = a / b; break;
          case Opcode::SDIV: r = a.sdiv(b); break;
          case Opcode::MOD: r = a % b; break;
          case Opcode::SMOD: r = a.smod(b); break;
          case Opcode::EXP: r = a.exp(b); break;
          case Opcode::SIGNEXTEND: r = b.signextend(a); break;
          case Opcode::LT: r = U256{a < b ? 1u : 0u}; break;
          case Opcode::GT: r = U256{a > b ? 1u : 0u}; break;
          case Opcode::SLT: r = U256{a.slt(b) ? 1u : 0u}; break;
          case Opcode::SGT: r = U256{a.sgt(b) ? 1u : 0u}; break;
          case Opcode::EQ: r = U256{a == b ? 1u : 0u}; break;
          case Opcode::AND: r = a & b; break;
          case Opcode::OR: r = a | b; break;
          case Opcode::XOR: r = a ^ b; break;
          case Opcode::BYTE: r = U256{b.byte(a)}; break;
          case Opcode::SHL: r = b << a; break;
          case Opcode::SHR: r = b >> a; break;
          case Opcode::SAR: r = b.sar(a); break;
          default: break;
        }
        push(r);
        ++f.pc;
        break;
      }
      case Opcode::ADDMOD: case Opcode::MULMOD: {
        U256 a, b, m;
        pop(a);
        pop(b);
        pop(m);
        push(op == Opcode::ADDMOD ? U256::addmod(a, b, m)
                                  : U256::mulmod(a, b, m));
        ++f.pc;
        break;
      }
      case Opcode::ISZERO: {
        U256 a;
        pop(a);
        push(U256{a.is_zero() ? 1u : 0u});
        ++f.pc;
        break;
      }
      case Opcode::NOT: {
        U256 a;
        pop(a);
        push(~a);
        ++f.pc;
        break;
      }

      case Opcode::KECCAK256: {
        U256 offset, size;
        pop(offset);
        pop(size);
        if (!touch_memory(offset, size)) return halt(HaltReason::kOutOfGas);
        const Bytes data = mem_read(offset, size);
        const U256 hash = to_u256(crypto::keccak256(data));
        if (observer_ != nullptr) {
          observer_->on_keccak(f.params.depth, data, hash);
        }
        push(hash);
        ++f.pc;
        break;
      }

      // ---- environment -----------------------------------------------
      case Opcode::ADDRESS:
        push(f.params.storage_address.to_word());
        ++f.pc;
        break;
      case Opcode::BALANCE: {
        U256 a;
        pop(a);
        const Address target = Address::from_word(a);
        if (!charge(account_access_surcharge(target))) {
          return halt(HaltReason::kOutOfGas);
        }
        push(host_.get_balance(target));
        ++f.pc;
        break;
      }
      case Opcode::ORIGIN:
        push(f.params.origin.to_word());
        ++f.pc;
        break;
      case Opcode::CALLER:
        push(f.params.caller.to_word());
        ++f.pc;
        break;
      case Opcode::CALLVALUE:
        push(f.params.value);
        ++f.pc;
        break;
      case Opcode::CALLDATALOAD: {
        U256 offset;
        pop(offset);
        std::array<std::uint8_t, 32> word{};
        if (offset.fits_u64()) {
          for (std::size_t i = 0; i < 32; ++i) {
            const std::uint64_t idx = offset.low64() + i;
            if (idx < f.params.calldata.size()) {
              word[i] = f.params.calldata[idx];
            }
          }
        }
        push(U256::from_be_bytes(word));
        ++f.pc;
        break;
      }
      case Opcode::CALLDATASIZE:
        push(U256{f.params.calldata.size()});
        ++f.pc;
        break;
      case Opcode::CALLDATACOPY: {
        U256 dst, src, size;
        pop(dst);
        pop(src);
        pop(size);
        if (!touch_memory(dst, size)) return halt(HaltReason::kOutOfGas);
        mem_write_padded(dst, src, size, f.params.calldata);
        ++f.pc;
        break;
      }
      case Opcode::CODESIZE:
        push(U256{f.code.size()});
        ++f.pc;
        break;
      case Opcode::CODECOPY: {
        U256 dst, src, size;
        pop(dst);
        pop(src);
        pop(size);
        if (!touch_memory(dst, size)) return halt(HaltReason::kOutOfGas);
        mem_write_padded(dst, src, size, f.code);
        ++f.pc;
        break;
      }
      case Opcode::GASPRICE:
        push(block.gas_price);
        ++f.pc;
        break;
      case Opcode::EXTCODESIZE: {
        U256 a;
        pop(a);
        const Address target = Address::from_word(a);
        if (!charge(account_access_surcharge(target))) {
          return halt(HaltReason::kOutOfGas);
        }
        push(U256{host_.get_code(target).size()});
        ++f.pc;
        break;
      }
      case Opcode::EXTCODECOPY: {
        U256 a, dst, src, size;
        pop(a);
        pop(dst);
        pop(src);
        pop(size);
        if (!touch_memory(dst, size)) return halt(HaltReason::kOutOfGas);
        const Address ext_target = Address::from_word(a);
        if (!charge(account_access_surcharge(ext_target))) {
          return halt(HaltReason::kOutOfGas);
        }
        const Bytes ext = host_.get_code(ext_target);
        mem_write_padded(dst, src, size, ext);
        ++f.pc;
        break;
      }
      case Opcode::RETURNDATASIZE:
        push(U256{f.last_return_data.size()});
        ++f.pc;
        break;
      case Opcode::RETURNDATACOPY: {
        U256 dst, src, size;
        pop(dst);
        pop(src);
        pop(size);
        // Unlike CALLDATACOPY, reading past the end of return data faults.
        if (!src.fits_u64() || !size.fits_u64() ||
            src.low64() + size.low64() < src.low64() ||
            src.low64() + size.low64() > f.last_return_data.size()) {
          return halt(HaltReason::kReturnDataOutOfBounds);
        }
        if (!touch_memory(dst, size)) return halt(HaltReason::kOutOfGas);
        mem_write_padded(dst, src, size, f.last_return_data);
        ++f.pc;
        break;
      }
      case Opcode::EXTCODEHASH: {
        U256 a;
        pop(a);
        const Address hash_target = Address::from_word(a);
        if (!charge(account_access_surcharge(hash_target))) {
          return halt(HaltReason::kOutOfGas);
        }
        const Bytes ext = host_.get_code(hash_target);
        push(ext.empty() ? U256{} : to_u256(crypto::keccak256(ext)));
        ++f.pc;
        break;
      }

      // ---- block context ----------------------------------------------
      case Opcode::BLOCKHASH: {
        U256 n;
        pop(n);
        push(n.fits_u64() ? host_.block_hash(n.low64()) : U256{});
        ++f.pc;
        break;
      }
      case Opcode::COINBASE:
        push(block.coinbase.to_word());
        ++f.pc;
        break;
      case Opcode::TIMESTAMP:
        push(block.timestamp);
        ++f.pc;
        break;
      case Opcode::NUMBER:
        push(block.number);
        ++f.pc;
        break;
      case Opcode::DIFFICULTY:
        push(block.difficulty);
        ++f.pc;
        break;
      case Opcode::GASLIMIT:
        push(block.gas_limit);
        ++f.pc;
        break;
      case Opcode::CHAINID:
        push(block.chain_id);
        ++f.pc;
        break;
      case Opcode::SELFBALANCE:
        push(host_.get_balance(f.params.storage_address));
        ++f.pc;
        break;
      case Opcode::BASEFEE:
        push(block.base_fee);
        ++f.pc;
        break;

      // ---- stack / memory / storage ------------------------------------
      case Opcode::POP: {
        U256 a;
        pop(a);
        ++f.pc;
        break;
      }
      case Opcode::MLOAD: {
        U256 offset;
        pop(offset);
        if (!touch_memory(offset, U256{32})) {
          return halt(HaltReason::kOutOfGas);
        }
        std::array<std::uint8_t, 32> word{};
        std::memcpy(word.data(), f.memory.data() + offset.low64(), 32);
        push(U256::from_be_bytes(word));
        ++f.pc;
        break;
      }
      case Opcode::MSTORE: {
        U256 offset, value;
        pop(offset);
        pop(value);
        if (!touch_memory(offset, U256{32})) {
          return halt(HaltReason::kOutOfGas);
        }
        const auto be = value.to_be_bytes();
        std::memcpy(f.memory.data() + offset.low64(), be.data(), 32);
        ++f.pc;
        break;
      }
      case Opcode::MSTORE8: {
        U256 offset, value;
        pop(offset);
        pop(value);
        if (!touch_memory(offset, U256{1})) {
          return halt(HaltReason::kOutOfGas);
        }
        f.memory[offset.low64()] =
            static_cast<std::uint8_t>(value.low64() & 0xff);
        ++f.pc;
        break;
      }
      case Opcode::SLOAD: {
        U256 slot;
        pop(slot);
        if (!charge(slot_access_surcharge(f.params.storage_address, slot))) {
          return halt(HaltReason::kOutOfGas);
        }
        const U256 value = host_.get_storage(f.params.storage_address, slot);
        if (observer_ != nullptr) {
          observer_->on_sload(f.params.depth, f.params.storage_address, slot,
                              value);
        }
        push(value);
        ++f.pc;
        break;
      }
      case Opcode::SSTORE: {
        if (f.params.is_static) return halt(HaltReason::kStaticViolation);
        U256 slot, value;
        pop(slot);
        pop(value);
        if (!charge(slot_access_surcharge(f.params.storage_address, slot))) {
          return halt(HaltReason::kOutOfGas);
        }
        if (observer_ != nullptr) {
          observer_->on_sstore(f.params.depth, f.params.storage_address, slot,
                               value);
        }
        host_.set_storage(f.params.storage_address, slot, value);
        ++f.pc;
        break;
      }
      case Opcode::JUMP: {
        U256 target;
        pop(target);
        if (!target.fits_u64() ||
            !f.jumpdests.contains(static_cast<std::uint32_t>(target.low64()))) {
          return halt(HaltReason::kBadJumpDestination);
        }
        f.pc = target.low64();
        break;
      }
      case Opcode::JUMPI: {
        U256 target, condition;
        pop(target);
        pop(condition);
        if (condition.is_zero()) {
          ++f.pc;
          break;
        }
        if (!target.fits_u64() ||
            !f.jumpdests.contains(static_cast<std::uint32_t>(target.low64()))) {
          return halt(HaltReason::kBadJumpDestination);
        }
        f.pc = target.low64();
        break;
      }
      case Opcode::PC:
        push(U256{f.pc});
        ++f.pc;
        break;
      case Opcode::MSIZE:
        push(U256{f.memory.size()});
        ++f.pc;
        break;
      case Opcode::GAS:
        push(U256{static_cast<std::uint64_t>(std::max<std::int64_t>(f.gas, 0))});
        ++f.pc;
        break;
      case Opcode::JUMPDEST:
        ++f.pc;
        break;
      case Opcode::TLOAD: {
        U256 slot;
        pop(slot);
        U256 value;
        const auto acct = access_->transient.find(f.params.storage_address);
        if (acct != access_->transient.end()) {
          const auto it = acct->second.find(slot);
          if (it != acct->second.end()) value = it->second;
        }
        push(value);
        ++f.pc;
        break;
      }
      case Opcode::TSTORE: {
        if (f.params.is_static) return halt(HaltReason::kStaticViolation);
        U256 slot, value;
        pop(slot);
        pop(value);
        access_->transient[f.params.storage_address][slot] = value;
        ++f.pc;
        break;
      }
      case Opcode::MCOPY: {
        U256 dst, src, size;
        pop(dst);
        pop(src);
        pop(size);
        if (!touch_memory(dst, size) || !touch_memory(src, size)) {
          return halt(HaltReason::kOutOfGas);
        }
        if (!size.is_zero()) {
          std::memmove(f.memory.data() + dst.low64(),
                       f.memory.data() + src.low64(), size.low64());
        }
        ++f.pc;
        break;
      }

      // ---- calls --------------------------------------------------------
      case Opcode::CALL:
      case Opcode::CALLCODE:
      case Opcode::DELEGATECALL:
      case Opcode::STATICCALL: {
        U256 gas_req, to_word, value, in_off, in_size, out_off, out_size;
        pop(gas_req);
        pop(to_word);
        const bool has_value =
            op == Opcode::CALL || op == Opcode::CALLCODE;
        if (has_value) pop(value);
        pop(in_off);
        pop(in_size);
        pop(out_off);
        pop(out_size);

        if (op == Opcode::CALL && f.params.is_static && !value.is_zero()) {
          return halt(HaltReason::kStaticViolation);
        }
        if (!touch_memory(in_off, in_size) ||
            !touch_memory(out_off, out_size)) {
          return halt(HaltReason::kOutOfGas);
        }

        const Address callee = Address::from_word(to_word);
        if (!charge(account_access_surcharge(callee))) {
          return halt(HaltReason::kOutOfGas);
        }
        CallParams sub;
        sub.code_address = callee;
        sub.caller = f.params.storage_address;
        sub.origin = f.params.origin;
        sub.calldata = mem_read(in_off, in_size);
        sub.depth = f.params.depth + 1;
        sub.is_static = f.params.is_static || op == Opcode::STATICCALL;
        switch (op) {
          case Opcode::CALL:
            sub.storage_address = callee;
            sub.value = value;
            break;
          case Opcode::CALLCODE:
            sub.storage_address = f.params.storage_address;
            sub.value = value;
            break;
          case Opcode::DELEGATECALL:
            // Runs callee code with *our* storage, caller and value.
            sub.storage_address = f.params.storage_address;
            sub.caller = f.params.caller;
            sub.value = f.params.value;
            break;
          case Opcode::STATICCALL:
            sub.storage_address = callee;
            break;
          default:
            break;
        }

        if (sub.depth > config_.max_call_depth) {
          f.last_return_data.clear();
          push(U256{0});
          ++f.pc;
          break;
        }

        // 63/64 rule: the callee gets at most all-but-one-64th of our gas.
        const std::uint64_t available =
            static_cast<std::uint64_t>(std::max<std::int64_t>(f.gas, 0));
        const std::uint64_t forwarded =
            std::min(gas_req.fits_u64() ? gas_req.low64() : available,
                     available - available / 64);
        sub.gas = forwarded;

        // Value transfer for CALL: fail the call if the balance is short.
        bool balance_ok = true;
        if (op == Opcode::CALL && !value.is_zero()) {
          const U256 from_balance =
              host_.get_balance(f.params.storage_address);
          if (from_balance < value) {
            balance_ok = false;
          } else {
            host_.set_balance(f.params.storage_address, from_balance - value);
            host_.set_balance(callee, host_.get_balance(callee) + value);
          }
        }

        if (!balance_ok) {
          f.last_return_data.clear();
          push(U256{0});
          ++f.pc;
          break;
        }

        if (observer_ != nullptr) {
          const CallKind kind = op == Opcode::CALL ? CallKind::kCall
                                : op == Opcode::CALLCODE ? CallKind::kCallCode
                                : op == Opcode::DELEGATECALL
                                    ? CallKind::kDelegateCall
                                    : CallKind::kStaticCall;
          observer_->on_call(kind, sub.depth, f.params.storage_address, callee,
                             sub.calldata);
        }

        // Precompiled contracts short-circuit the callee frame entirely.
        if (const auto pre = run_precompile(callee, sub.calldata)) {
          if (!charge(static_cast<std::int64_t>(pre->gas_cost))) {
            return halt(HaltReason::kOutOfGas);
          }
          f.last_return_data.assign(pre->output.begin(), pre->output.end());
          const std::uint64_t copy_len = std::min<std::uint64_t>(
              out_size.fits_u64() ? out_size.low64() : 0,
              f.last_return_data.size());
          for (std::uint64_t i = 0; i < copy_len; ++i) {
            f.memory[out_off.low64() + i] = f.last_return_data[i];
          }
          push(U256{1});
          ++f.pc;
          break;
        }

        Interpreter sub_interp(host_, config_);
        sub_interp.steps_ = steps_;
        sub_interp.observer_ = observer_;
        sub_interp.access_ = access_;  // same transaction, same warm sets
        sub_interp.arena_ = arena_;    // same transaction, same scratch arena
        const ExecResult sub_result = sub_interp.execute(sub);
        steps_ = sub_interp.steps_;

        if (config_.charge_gas) {
          f.gas -= static_cast<std::int64_t>(sub_result.gas_used);
          if (f.gas < 0) return halt(HaltReason::kOutOfGas);
        }
        if (sub_result.halt == HaltReason::kStepLimit) {
          return halt(HaltReason::kStepLimit);
        }

        f.last_return_data.assign(sub_result.return_data.begin(),
                                  sub_result.return_data.end());
        for (const auto& log : sub_result.logs) f.logs.push_back(log);

        // Copy return data into the caller-specified output window.
        const std::uint64_t copy_len = std::min<std::uint64_t>(
            out_size.fits_u64() ? out_size.low64() : 0,
            f.last_return_data.size());
        for (std::uint64_t i = 0; i < copy_len; ++i) {
          f.memory[out_off.low64() + i] = f.last_return_data[i];
        }

        push(U256{sub_result.success() ? 1u : 0u});
        ++f.pc;
        break;
      }

      case Opcode::CREATE:
      case Opcode::CREATE2: {
        if (f.params.is_static) return halt(HaltReason::kStaticViolation);
        U256 value, offset, size, salt;
        pop(value);
        pop(offset);
        pop(size);
        if (op == Opcode::CREATE2) pop(salt);
        if (!touch_memory(offset, size)) return halt(HaltReason::kOutOfGas);
        const Bytes init_code = mem_read(offset, size);

        const Address creator = f.params.storage_address;
        crypto::AddressBytes raw{};
        std::memcpy(raw.data(), creator.bytes.data(), 20);
        crypto::AddressBytes target_raw;
        if (op == Opcode::CREATE) {
          const std::uint64_t nonce = host_.get_nonce(creator);
          host_.set_nonce(creator, nonce + 1);
          target_raw = crypto::create_address(raw, nonce);
        } else {
          target_raw = crypto::create2_address(
              raw, salt.to_be_bytes(), init_code);
        }
        const Address target{target_raw};

        if (observer_ != nullptr) {
          observer_->on_call(op == Opcode::CREATE ? CallKind::kCreate
                                                  : CallKind::kCreate2,
                             f.params.depth + 1, creator, target, init_code);
        }

        Interpreter sub_interp(host_, config_);
        sub_interp.steps_ = steps_;
        sub_interp.observer_ = observer_;
        sub_interp.access_ = access_;
        sub_interp.arena_ = arena_;
        const std::uint64_t available =
            static_cast<std::uint64_t>(std::max<std::int64_t>(f.gas, 0));
        const ExecResult sub_result = sub_interp.execute_create(
            creator, target, init_code, value, f.params.depth + 1,
            available - available / 64);
        steps_ = sub_interp.steps_;

        if (config_.charge_gas) {
          f.gas -= static_cast<std::int64_t>(sub_result.gas_used);
          if (f.gas < 0) return halt(HaltReason::kOutOfGas);
        }
        if (sub_result.halt == HaltReason::kStepLimit) {
          return halt(HaltReason::kStepLimit);
        }

        f.last_return_data.clear();  // per EIP-211, CREATE clears it on success
        if (sub_result.halt == HaltReason::kRevert) {
          f.last_return_data.assign(sub_result.return_data.begin(),
                                    sub_result.return_data.end());
        }
        push(sub_result.halt == HaltReason::kReturn ? target.to_word()
                                                    : U256{});
        ++f.pc;
        break;
      }

      case Opcode::RETURN:
      case Opcode::REVERT: {
        U256 offset, size;
        pop(offset);
        pop(size);
        if (!touch_memory(offset, size)) return halt(HaltReason::kOutOfGas);
        result.return_data = mem_read(offset, size);
        return halt(op == Opcode::RETURN ? HaltReason::kReturn
                                         : HaltReason::kRevert);
      }

      case Opcode::INVALID:
        return halt(HaltReason::kInvalidOpcode);

      case Opcode::SELFDESTRUCT: {
        if (f.params.is_static) return halt(HaltReason::kStaticViolation);
        U256 beneficiary_word;
        pop(beneficiary_word);
        const Address beneficiary = Address::from_word(beneficiary_word);
        const U256 balance = host_.get_balance(f.params.storage_address);
        host_.set_balance(f.params.storage_address, U256{});
        host_.set_balance(beneficiary,
                          host_.get_balance(beneficiary) + balance);
        return halt(HaltReason::kSelfDestruct);
      }

      default:
        return halt(HaltReason::kInvalidOpcode);
    }
  }
}

}  // namespace proxion::evm
