#include "evm/opcodes.h"

#include <array>

namespace proxion::evm {
namespace {

struct Entry {
  std::uint8_t byte;
  OpcodeInfo info;
};

// mnemonic, immediates, in, out, gas, defined
constexpr Entry kEntries[] = {
    {0x00, {"STOP", 0, 0, 0, 0, true}},
    {0x01, {"ADD", 0, 2, 1, 3, true}},
    {0x02, {"MUL", 0, 2, 1, 5, true}},
    {0x03, {"SUB", 0, 2, 1, 3, true}},
    {0x04, {"DIV", 0, 2, 1, 5, true}},
    {0x05, {"SDIV", 0, 2, 1, 5, true}},
    {0x06, {"MOD", 0, 2, 1, 5, true}},
    {0x07, {"SMOD", 0, 2, 1, 5, true}},
    {0x08, {"ADDMOD", 0, 3, 1, 8, true}},
    {0x09, {"MULMOD", 0, 3, 1, 8, true}},
    {0x0a, {"EXP", 0, 2, 1, 10, true}},
    {0x0b, {"SIGNEXTEND", 0, 2, 1, 5, true}},
    {0x10, {"LT", 0, 2, 1, 3, true}},
    {0x11, {"GT", 0, 2, 1, 3, true}},
    {0x12, {"SLT", 0, 2, 1, 3, true}},
    {0x13, {"SGT", 0, 2, 1, 3, true}},
    {0x14, {"EQ", 0, 2, 1, 3, true}},
    {0x15, {"ISZERO", 0, 1, 1, 3, true}},
    {0x16, {"AND", 0, 2, 1, 3, true}},
    {0x17, {"OR", 0, 2, 1, 3, true}},
    {0x18, {"XOR", 0, 2, 1, 3, true}},
    {0x19, {"NOT", 0, 1, 1, 3, true}},
    {0x1a, {"BYTE", 0, 2, 1, 3, true}},
    {0x1b, {"SHL", 0, 2, 1, 3, true}},
    {0x1c, {"SHR", 0, 2, 1, 3, true}},
    {0x1d, {"SAR", 0, 2, 1, 3, true}},
    {0x20, {"KECCAK256", 0, 2, 1, 30, true}},
    {0x30, {"ADDRESS", 0, 0, 1, 2, true}},
    {0x31, {"BALANCE", 0, 1, 1, 100, true}},
    {0x32, {"ORIGIN", 0, 0, 1, 2, true}},
    {0x33, {"CALLER", 0, 0, 1, 2, true}},
    {0x34, {"CALLVALUE", 0, 0, 1, 2, true}},
    {0x35, {"CALLDATALOAD", 0, 1, 1, 3, true}},
    {0x36, {"CALLDATASIZE", 0, 0, 1, 2, true}},
    {0x37, {"CALLDATACOPY", 0, 3, 0, 3, true}},
    {0x38, {"CODESIZE", 0, 0, 1, 2, true}},
    {0x39, {"CODECOPY", 0, 3, 0, 3, true}},
    {0x3a, {"GASPRICE", 0, 0, 1, 2, true}},
    {0x3b, {"EXTCODESIZE", 0, 1, 1, 100, true}},
    {0x3c, {"EXTCODECOPY", 0, 4, 0, 100, true}},
    {0x3d, {"RETURNDATASIZE", 0, 0, 1, 2, true}},
    {0x3e, {"RETURNDATACOPY", 0, 3, 0, 3, true}},
    {0x3f, {"EXTCODEHASH", 0, 1, 1, 100, true}},
    {0x40, {"BLOCKHASH", 0, 1, 1, 20, true}},
    {0x41, {"COINBASE", 0, 0, 1, 2, true}},
    {0x42, {"TIMESTAMP", 0, 0, 1, 2, true}},
    {0x43, {"NUMBER", 0, 0, 1, 2, true}},
    {0x44, {"DIFFICULTY", 0, 0, 1, 2, true}},
    {0x45, {"GASLIMIT", 0, 0, 1, 2, true}},
    {0x46, {"CHAINID", 0, 0, 1, 2, true}},
    {0x47, {"SELFBALANCE", 0, 0, 1, 5, true}},
    {0x48, {"BASEFEE", 0, 0, 1, 2, true}},
    {0x50, {"POP", 0, 1, 0, 2, true}},
    {0x51, {"MLOAD", 0, 1, 1, 3, true}},
    {0x52, {"MSTORE", 0, 2, 0, 3, true}},
    {0x53, {"MSTORE8", 0, 2, 0, 3, true}},
    {0x54, {"SLOAD", 0, 1, 1, 100, true}},
    {0x55, {"SSTORE", 0, 2, 0, 100, true}},
    {0x56, {"JUMP", 0, 1, 0, 8, true}},
    {0x57, {"JUMPI", 0, 2, 0, 10, true}},
    {0x58, {"PC", 0, 0, 1, 2, true}},
    {0x59, {"MSIZE", 0, 0, 1, 2, true}},
    {0x5a, {"GAS", 0, 0, 1, 2, true}},
    {0x5b, {"JUMPDEST", 0, 0, 0, 1, true}},
    {0x5c, {"TLOAD", 0, 1, 1, 100, true}},
    {0x5d, {"TSTORE", 0, 2, 0, 100, true}},
    {0x5e, {"MCOPY", 0, 3, 0, 3, true}},
    {0xf0, {"CREATE", 0, 3, 1, 32000, true}},
    {0xf1, {"CALL", 0, 7, 1, 100, true}},
    {0xf2, {"CALLCODE", 0, 7, 1, 100, true}},
    {0xf3, {"RETURN", 0, 2, 0, 0, true}},
    {0xf4, {"DELEGATECALL", 0, 6, 1, 100, true}},
    {0xf5, {"CREATE2", 0, 4, 1, 32000, true}},
    {0xfa, {"STATICCALL", 0, 6, 1, 100, true}},
    {0xfd, {"REVERT", 0, 2, 0, 0, true}},
    {0xfe, {"INVALID", 0, 0, 0, 0, true}},
    {0xff, {"SELFDESTRUCT", 0, 1, 0, 5000, true}},
};

constexpr std::string_view kPushNames[] = {
    "PUSH0",  "PUSH1",  "PUSH2",  "PUSH3",  "PUSH4",  "PUSH5",  "PUSH6",
    "PUSH7",  "PUSH8",  "PUSH9",  "PUSH10", "PUSH11", "PUSH12", "PUSH13",
    "PUSH14", "PUSH15", "PUSH16", "PUSH17", "PUSH18", "PUSH19", "PUSH20",
    "PUSH21", "PUSH22", "PUSH23", "PUSH24", "PUSH25", "PUSH26", "PUSH27",
    "PUSH28", "PUSH29", "PUSH30", "PUSH31", "PUSH32"};
constexpr std::string_view kDupNames[] = {
    "DUP1",  "DUP2",  "DUP3",  "DUP4",  "DUP5",  "DUP6",  "DUP7",  "DUP8",
    "DUP9",  "DUP10", "DUP11", "DUP12", "DUP13", "DUP14", "DUP15", "DUP16"};
constexpr std::string_view kSwapNames[] = {
    "SWAP1",  "SWAP2",  "SWAP3",  "SWAP4",  "SWAP5",  "SWAP6",
    "SWAP7",  "SWAP8",  "SWAP9",  "SWAP10", "SWAP11", "SWAP12",
    "SWAP13", "SWAP14", "SWAP15", "SWAP16"};
constexpr std::string_view kLogNames[] = {"LOG0", "LOG1", "LOG2", "LOG3",
                                          "LOG4"};

std::array<OpcodeInfo, 256> build_table() {
  std::array<OpcodeInfo, 256> table;
  table.fill(OpcodeInfo{"UNDEFINED", 0, 0, 0, 0, false});
  for (const Entry& e : kEntries) table[e.byte] = e.info;
  for (int n = 0; n <= 32; ++n) {
    table[0x5f + n] = OpcodeInfo{kPushNames[n], static_cast<std::uint8_t>(n),
                                 0, 1, 3, true};
  }
  for (int n = 0; n < 16; ++n) {
    table[0x80 + n] =
        OpcodeInfo{kDupNames[n], 0, static_cast<std::uint8_t>(n + 1),
                   static_cast<std::uint8_t>(n + 2), 3, true};
    table[0x90 + n] =
        OpcodeInfo{kSwapNames[n], 0, static_cast<std::uint8_t>(n + 2),
                   static_cast<std::uint8_t>(n + 2), 3, true};
  }
  for (int n = 0; n < 5; ++n) {
    table[0xa0 + n] = OpcodeInfo{
        kLogNames[n], 0, static_cast<std::uint8_t>(n + 2), 0, 375, true};
  }
  return table;
}

const std::array<OpcodeInfo, 256>& table() {
  static const std::array<OpcodeInfo, 256> t = build_table();
  return t;
}

}  // namespace

const OpcodeInfo& opcode_info(std::uint8_t byte) noexcept {
  return table()[byte];
}

}  // namespace proxion::evm
