// The full EVM instruction set through the Shanghai fork (PUSH0 included),
// with static metadata: mnemonic, immediate size, stack arity, and a coarse
// gas cost used by the emulator's fuel accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace proxion::evm {

enum class Opcode : std::uint8_t {
  STOP = 0x00,
  ADD = 0x01,
  MUL = 0x02,
  SUB = 0x03,
  DIV = 0x04,
  SDIV = 0x05,
  MOD = 0x06,
  SMOD = 0x07,
  ADDMOD = 0x08,
  MULMOD = 0x09,
  EXP = 0x0a,
  SIGNEXTEND = 0x0b,

  LT = 0x10,
  GT = 0x11,
  SLT = 0x12,
  SGT = 0x13,
  EQ = 0x14,
  ISZERO = 0x15,
  AND = 0x16,
  OR = 0x17,
  XOR = 0x18,
  NOT = 0x19,
  BYTE = 0x1a,
  SHL = 0x1b,
  SHR = 0x1c,
  SAR = 0x1d,

  KECCAK256 = 0x20,

  ADDRESS = 0x30,
  BALANCE = 0x31,
  ORIGIN = 0x32,
  CALLER = 0x33,
  CALLVALUE = 0x34,
  CALLDATALOAD = 0x35,
  CALLDATASIZE = 0x36,
  CALLDATACOPY = 0x37,
  CODESIZE = 0x38,
  CODECOPY = 0x39,
  GASPRICE = 0x3a,
  EXTCODESIZE = 0x3b,
  EXTCODECOPY = 0x3c,
  RETURNDATASIZE = 0x3d,
  RETURNDATACOPY = 0x3e,
  EXTCODEHASH = 0x3f,

  BLOCKHASH = 0x40,
  COINBASE = 0x41,
  TIMESTAMP = 0x42,
  NUMBER = 0x43,
  DIFFICULTY = 0x44,  // PREVRANDAO post-merge; same byte
  GASLIMIT = 0x45,
  CHAINID = 0x46,
  SELFBALANCE = 0x47,
  BASEFEE = 0x48,

  POP = 0x50,
  MLOAD = 0x51,
  MSTORE = 0x52,
  MSTORE8 = 0x53,
  SLOAD = 0x54,
  SSTORE = 0x55,
  JUMP = 0x56,
  JUMPI = 0x57,
  PC = 0x58,
  MSIZE = 0x59,
  GAS = 0x5a,
  JUMPDEST = 0x5b,
  TLOAD = 0x5c,   // EIP-1153 transient storage (Cancun)
  TSTORE = 0x5d,
  MCOPY = 0x5e,   // EIP-5656 memory copy (Cancun)

  PUSH0 = 0x5f,
  PUSH1 = 0x60,
  PUSH2 = 0x61,
  PUSH4 = 0x63,   // the opcode preceding every function selector (§3.1)
  PUSH20 = 0x73,  // the opcode preceding hard-coded addresses (EIP-1167)
  PUSH32 = 0x7f,
  // all other PUSHn fill 0x60..0x7f contiguously

  DUP1 = 0x80,
  // DUP2..DUP16 are 0x81..0x8f
  DUP16 = 0x8f,

  SWAP1 = 0x90,
  // SWAP2..SWAP16 are 0x91..0x9f
  SWAP16 = 0x9f,

  LOG0 = 0xa0,
  LOG1 = 0xa1,
  LOG2 = 0xa2,
  LOG3 = 0xa3,
  LOG4 = 0xa4,

  CREATE = 0xf0,
  CALL = 0xf1,
  CALLCODE = 0xf2,
  RETURN = 0xf3,
  DELEGATECALL = 0xf4,
  CREATE2 = 0xf5,
  STATICCALL = 0xfa,
  REVERT = 0xfd,
  INVALID = 0xfe,
  SELFDESTRUCT = 0xff,
};

struct OpcodeInfo {
  std::string_view mnemonic;
  std::uint8_t immediate_bytes;  // bytes of inline operand (PUSHn only)
  std::uint8_t stack_in;         // items popped
  std::uint8_t stack_out;        // items pushed
  std::uint32_t base_gas;        // coarse static cost for fuel accounting
  bool defined;                  // false for unassigned byte values
};

/// Metadata for a raw opcode byte; `defined == false` for unassigned bytes
/// (those execute as INVALID).
const OpcodeInfo& opcode_info(std::uint8_t byte) noexcept;

inline const OpcodeInfo& opcode_info(Opcode op) noexcept {
  return opcode_info(static_cast<std::uint8_t>(op));
}

constexpr bool is_push(std::uint8_t byte) noexcept {
  return byte >= 0x5f && byte <= 0x7f;  // PUSH0..PUSH32
}
constexpr int push_size(std::uint8_t byte) noexcept {
  return is_push(byte) ? byte - 0x5f : 0;
}
constexpr bool is_dup(std::uint8_t byte) noexcept {
  return byte >= 0x80 && byte <= 0x8f;
}
constexpr bool is_swap(std::uint8_t byte) noexcept {
  return byte >= 0x90 && byte <= 0x9f;
}
constexpr bool is_log(std::uint8_t byte) noexcept {
  return byte >= 0xa0 && byte <= 0xa4;
}
/// Instructions that unconditionally end a basic block.
constexpr bool is_terminator(std::uint8_t byte) noexcept {
  switch (static_cast<Opcode>(byte)) {
    case Opcode::STOP:
    case Opcode::JUMP:
    case Opcode::RETURN:
    case Opcode::REVERT:
    case Opcode::INVALID:
    case Opcode::SELFDESTRUCT:
      return true;
    default:
      return false;
  }
}
/// Calls that transfer control to another contract's code.
constexpr bool is_call_family(std::uint8_t byte) noexcept {
  switch (static_cast<Opcode>(byte)) {
    case Opcode::CALL:
    case Opcode::CALLCODE:
    case Opcode::DELEGATECALL:
    case Opcode::STATICCALL:
      return true;
    default:
      return false;
  }
}

}  // namespace proxion::evm
