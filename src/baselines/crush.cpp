#include "baselines/crush.h"

#include <unordered_set>

namespace proxion::baselines {

std::vector<CrushPair> CrushAnalyzer::find_proxy_pairs() const {
  std::vector<CrushPair> pairs;
  std::unordered_set<std::uint64_t> seen;
  for (const chain::InternalTx& tx : chain_.internal_txs()) {
    if (tx.kind != evm::CallKind::kDelegateCall) continue;
    const std::uint64_t key =
        evm::AddressHasher{}(tx.from) * 1000003u ^ evm::AddressHasher{}(tx.to);
    if (!seen.insert(key).second) continue;
    pairs.push_back({tx.from, tx.to, tx.in_fallback_position});
  }
  return pairs;
}

CrushPairResult CrushAnalyzer::analyze_pair(const Address& proxy,
                                            const Address& logic) const {
  const evm::Bytes proxy_code = chain_.get_code(proxy);
  const evm::Bytes logic_code = chain_.get_code(logic);
  core::StorageCollisionDetector detector(chain_);
  const core::StorageCollisionResult result =
      detector.detect(proxy, proxy_code, logic, logic_code);
  return {result.has_collision(), result.has_verified_exploit()};
}

}  // namespace proxion::baselines
