#include "baselines/uschunt.h"

#include <algorithm>

namespace proxion::baselines {

UschuntResult UschuntAnalyzer::detect_proxy(const Address& contract) const {
  UschuntResult result;
  const auto* record = sources_.lookup(contract);
  if (record == nullptr) return result;  // kNoSource
  if (!compiles(*record)) {
    result.status = UschuntStatus::kCompileError;
    return result;
  }
  result.status = UschuntStatus::kAnalyzed;
  // Slither's source heuristic: the source must visibly delegate inside the
  // fallback. Hand-rolled proxies that obscure this are missed (paper §6.3).
  result.is_proxy = record->fallback_delegates;
  return result;
}

UschuntResult UschuntAnalyzer::analyze_pair(const Address& proxy,
                                            const Address& logic) const {
  UschuntResult result = detect_proxy(proxy);
  if (result.status != UschuntStatus::kAnalyzed || !result.is_proxy) {
    return result;  // cannot reach the collision stage
  }
  const auto* proxy_src = sources_.lookup(proxy);
  const auto* logic_src = sources_.lookup(logic);
  if (logic_src == nullptr) {
    result.status = UschuntStatus::kNoSource;
    return result;
  }
  if (!compiles(*logic_src)) {
    result.status = UschuntStatus::kCompileError;
    return result;
  }

  // Function collisions: selector-set intersection over declared functions
  // (this part of USCHunt is sound given source).
  const auto proxy_sel = proxy_src->selectors();
  const auto logic_sel = logic_src->selectors();
  result.function_collision =
      std::find_first_of(proxy_sel.begin(), proxy_sel.end(),
                         logic_sel.begin(), logic_sel.end()) !=
      proxy_sel.end();

  // Storage collisions: USCHunt compares declaration lists positionally and
  // flags same-slot variables whose *names* differ — which catches true
  // layout drift but also flags renamed-compatible variables and deliberate
  // padding (the paper's false-positive source, §6.3).
  for (const auto& pv : proxy_src->storage) {
    for (const auto& lv : logic_src->storage) {
      if (pv.slot != lv.slot) continue;
      if (pv.name != lv.name) {
        result.storage_collision = true;
      }
    }
  }
  return result;
}

}  // namespace proxion::baselines
