// The Etherscan proxy-verification heuristic (§9.1): a contract whose
// bytecode contains the DELEGATECALL opcode is flagged as a proxy. Etherscan
// itself documents that this yields numerous false positives (library
// callers, one-off delegations); Proxion uses it only as a phase-1 filter.
#pragma once

#include "evm/disassembler.h"
#include "evm/types.h"

namespace proxion::baselines {

struct EtherscanVerdict {
  bool is_proxy = false;
};

inline EtherscanVerdict etherscan_detect(evm::BytesView code) {
  const evm::Disassembly dis(code);
  return {dis.contains(evm::Opcode::DELEGATECALL)};
}

}  // namespace proxion::baselines
