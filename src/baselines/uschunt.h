// A faithful model of USCHunt's decision procedure (USENIX Security '23),
// reproduced for the §6.2/§6.3 comparisons. USCHunt is Slither-based and
// source-only, with the documented blind spots the paper measures:
//   - it cannot analyze contracts without verified source;
//   - ~30% of source contracts fail to compile under default flags (§6.2);
//   - its proxy detection follows Slither's source heuristics and misses
//     non-standard fallback implementations (the paper's §6.3 FN source);
//   - its storage-collision check compares declared variables by *name*,
//     flagging renamed-but-compatible variables and deliberate padding —
//     the paper's §6.3 FP source.
#pragma once

#include <cstdint>
#include <vector>

#include "evm/types.h"
#include "sourcemeta/source.h"

namespace proxion::baselines {

using evm::Address;

enum class UschuntStatus : std::uint8_t {
  kNoSource,       // contract not verified: out of scope for USCHunt
  kCompileError,   // Slither halted on an unknown compiler version
  kAnalyzed,
};

struct UschuntResult {
  UschuntStatus status = UschuntStatus::kNoSource;
  bool is_proxy = false;
  bool function_collision = false;
  bool storage_collision = false;
};

class UschuntAnalyzer {
 public:
  explicit UschuntAnalyzer(const sourcemeta::SourceRepository& sources)
      : sources_(sources) {}

  /// Proxy detection on a single contract (source-only).
  UschuntResult detect_proxy(const Address& contract) const;

  /// Full pair analysis (both sides need compilable source).
  UschuntResult analyze_pair(const Address& proxy, const Address& logic) const;

 private:
  static bool compiles(const sourcemeta::SourceRecord& record) {
    return record.compiler_version != "unknown";
  }

  const sourcemeta::SourceRepository& sources_;
};

}  // namespace proxion::baselines
