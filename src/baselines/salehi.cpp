#include "baselines/salehi.h"

#include <algorithm>

namespace proxion::baselines {

namespace {

class ReplayObserver final : public evm::TraceObserver {
 public:
  ReplayObserver(const evm::Address& contract, const evm::Bytes& calldata)
      : contract_(contract), calldata_(calldata) {}

  void on_call(evm::CallKind kind, int /*depth*/, const evm::Address& from,
               const evm::Address& /*to*/, evm::BytesView data) override {
    if (kind != evm::CallKind::kDelegateCall || !(from == contract_)) return;
    forwarded_ |= data.size() == calldata_.size() &&
                  std::equal(data.begin(), data.end(), calldata_.begin());
  }

  bool forwarded() const noexcept { return forwarded_; }

 private:
  evm::Address contract_;
  evm::Bytes calldata_;
  bool forwarded_ = false;
};

}  // namespace

SalehiResult SalehiAnalyzer::analyze(const evm::Address& contract) const {
  SalehiResult result;
  const auto selectors = chain_.external_selectors(contract);
  result.has_history = !selectors.empty();
  if (!result.has_history) return result;  // nothing to replay: blind spot

  for (const std::uint32_t selector : selectors) {
    ++result.replayed;
    // Replay the historical call shape (selector + padded args) against the
    // current state in an overlay.
    evm::Bytes calldata(36, 0);
    calldata[0] = static_cast<std::uint8_t>(selector >> 24);
    calldata[1] = static_cast<std::uint8_t>(selector >> 16);
    calldata[2] = static_cast<std::uint8_t>(selector >> 8);
    calldata[3] = static_cast<std::uint8_t>(selector);

    evm::OverlayHost overlay(chain_);
    ReplayObserver observer(contract, calldata);
    evm::InterpreterConfig config;
    config.step_limit = 200'000;
    evm::Interpreter interp(overlay, config);
    interp.set_observer(&observer);

    evm::CallParams params;
    params.code_address = contract;
    params.storage_address = contract;
    params.caller = evm::Address::from_label("salehi.replayer");
    params.origin = params.caller;
    params.calldata = calldata;
    interp.execute(params);

    if (observer.forwarded()) {
      result.is_proxy = true;
      return result;
    }
  }
  return result;
}

}  // namespace proxion::baselines
