// A model of Salehi et al. (WTSC '22): dynamic analysis that *replays past
// transactions* against a contract and watches for delegate calls. Covers
// bytecode-only contracts (unlike USCHunt) but — as the paper stresses —
// only those with transaction history, and its fidelity grows with how many
// transactions exist to replay.
#pragma once

#include <cstdint>

#include "chain/blockchain.h"
#include "evm/interpreter.h"

namespace proxion::baselines {

struct SalehiResult {
  bool has_history = false;  // any past transactions to replay?
  bool is_proxy = false;     // a replay triggered a forwarding DELEGATECALL
  std::uint32_t replayed = 0;
};

class SalehiAnalyzer {
 public:
  explicit SalehiAnalyzer(chain::Blockchain& chain) : chain_(chain) {}

  SalehiResult analyze(const evm::Address& contract) const;

 private:
  chain::Blockchain& chain_;
};

}  // namespace proxion::baselines
