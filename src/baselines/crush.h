// A faithful model of CRUSH's decision procedure (NDSS '24), reproduced for
// the §6.2/§6.3 comparisons. CRUSH mines *historical transactions* for
// DELEGATECALL edges to discover proxy/logic pairs, with the documented
// blind spots the paper measures:
//   - contracts with no past transactions are invisible (the "hidden" set);
//   - every delegating caller counts as a proxy, including library callers
//     (Proxion excludes delegations outside the fallback, §2.2);
//   - it detects storage collisions only, never function collisions.
// The storage-collision engine itself is the same slicing+symbolic approach
// Proxion adopts (§5.2), so we share core::StorageCollisionDetector.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/blockchain.h"
#include "core/storage_collision.h"
#include "evm/types.h"

namespace proxion::baselines {

using evm::Address;

struct CrushPair {
  Address proxy;
  Address logic;
  bool via_fallback = false;  // calldata was forwarded verbatim
};

struct CrushPairResult {
  bool storage_collision = false;
  bool exploitable = false;
};

class CrushAnalyzer {
 public:
  explicit CrushAnalyzer(chain::Blockchain& chain) : chain_(chain) {}

  /// Phase 1: mine the internal-transaction log for DELEGATECALL edges.
  /// Returns deduplicated (proxy, logic) pairs — including library callers,
  /// which is CRUSH's over-approximation.
  std::vector<CrushPair> find_proxy_pairs() const;

  /// Phase 2: storage-collision detection on one pair (shared engine).
  CrushPairResult analyze_pair(const Address& proxy,
                               const Address& logic) const;

 private:
  chain::Blockchain& chain_;
};

}  // namespace proxion::baselines
