#include "static/provenance.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"

namespace proxion::static_analysis {

namespace {

// EIP-1167 minimal-proxy runtime: prefix + 20-byte logic address + tail,
// exactly 45 bytes. Matched byte-exactly — near-misses go through emulation.
constexpr std::array<std::uint8_t, 10> kEip1167Prefix = {
    0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73};
constexpr std::array<std::uint8_t, 15> kEip1167Tail = {
    0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d,
    0x91, 0x60, 0x2b, 0x57, 0xfd, 0x5b, 0xf3};
constexpr std::size_t kEip1167Size =
    kEip1167Prefix.size() + 20 + kEip1167Tail.size();

std::optional<evm::Address> match_eip1167(evm::BytesView code) {
  if (code.size() != kEip1167Size) return std::nullopt;
  if (!std::equal(kEip1167Prefix.begin(), kEip1167Prefix.end(),
                  code.begin())) {
    return std::nullopt;
  }
  if (!std::equal(kEip1167Tail.begin(), kEip1167Tail.end(),
                  code.begin() + kEip1167Prefix.size() + 20)) {
    return std::nullopt;
  }
  evm::Address logic;
  std::copy_n(code.begin() + kEip1167Prefix.size(), logic.bytes.size(),
              logic.bytes.begin());
  return logic;
}

DelegatecallSite classify(const DelegatecallFact& fact) {
  DelegatecallSite site;
  site.pc = fact.pc;
  site.reachable = fact.reachable;
  if (!fact.reachable) return site;  // never executed: class stays kUnknown
  switch (fact.target.kind) {
    case AbstractValue::Kind::kConst:
      site.target_class = TargetClass::kHardcoded;
      site.address = evm::Address::from_word(fact.target.payload);
      break;
    case AbstractValue::Kind::kStorage:
      site.target_class = TargetClass::kStorageSlot;
      site.slot = fact.target.payload;
      break;
    case AbstractValue::Kind::kCalldata:
      site.target_class = TargetClass::kCalldata;
      break;
    case AbstractValue::Kind::kHashed:
      // A keccak-derived slot (mapping facet tables, diamond-style): the
      // concrete slot is not statically known, so no slot claim is made.
    case AbstractValue::Kind::kUnknown:
      site.target_class = TargetClass::kUnknown;
      break;
  }
  return site;
}

}  // namespace

std::string_view to_string(TargetClass c) noexcept {
  switch (c) {
    case TargetClass::kHardcoded: return "hardcoded";
    case TargetClass::kStorageSlot: return "storage-slot";
    case TargetClass::kCalldata: return "calldata";
    case TargetClass::kUnknown: return "unknown";
  }
  return "unknown";
}

std::vector<DelegatecallSite> StaticReport::reachable_sites() const {
  std::vector<DelegatecallSite> out;
  for (const DelegatecallSite& s : sites) {
    if (s.reachable) out.push_back(s);
  }
  return out;
}

StaticReport analyze(const evm::Disassembly& dis, const CfgOptions& options) {
  StaticReport report;
  report.cfg = recover_cfg(dis, options);
  const Cfg& cfg = report.cfg;

  report.sites.reserve(cfg.delegatecalls.size());
  for (const DelegatecallFact& fact : cfg.delegatecalls) {
    report.sites.push_back(classify(fact));
    report.any_reachable_delegatecall |= fact.reachable;
  }
  report.has_delegatecall = !report.sites.empty();
  report.provably_no_delegatecall =
      cfg.complete && !report.any_reachable_delegatecall;

  bool any_reachable_fault = false;
  for (const CfgBlock& b : cfg.blocks) {
    any_reachable_fault |= b.reachable && b.may_fault;
  }
  report.provably_clean_termination =
      cfg.complete && !cfg.has_reachable_cycle && !any_reachable_fault &&
      !cfg.external_call_reachable && !cfg.unsafe_terminator_reachable &&
      cfg.memory_bounded;

  report.minimal_proxy_target = match_eip1167(dis.code());

  obs::Registry& reg = obs::Registry::global();
  static obs::Counter& blocks_recovered =
      reg.counter("static.cfg.blocks_recovered");
  static obs::Counter& unresolved_jumps =
      reg.counter("static.cfg.unresolved_jumps");
  blocks_recovered.add(cfg.blocks.size());
  unresolved_jumps.add(cfg.unresolved_jump_count());

  return report;
}

}  // namespace proxion::static_analysis
