// CFG recovery over the linear-sweep disassembly by abstract interpretation
// of the EVM operand stack (the EtherSolve-style "symbolic stack" approach):
// a constant-propagating stack machine walks every block reachable from pc 0,
// resolving PUSH/DUP/SWAP-fed JUMP/JUMPI targets into concrete edges,
// marking jumps whose target stays abstract as unresolved, and recording the
// dataflow facts the provenance pass (provenance.h) and the detector's
// dead-DELEGATECALL skip proof need.
//
// Soundness posture: the recovered edge set over-approximates the edges the
// interpreter can take *only while `complete` is true* — an unresolved jump,
// an entry-depth conflict, or an exhausted step budget each clear it, and
// every downstream consumer treats an incomplete CFG as "defer to
// emulation". Constant propagation mirrors src/evm/interpreter.cpp operand
// order and truncated-PUSH zero-padding exactly; the agreement is tested
// against the interpreter's actually-taken jumps over the full archetype
// corpus.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "evm/disassembler.h"
#include "evm/types.h"

namespace proxion::static_analysis {

using evm::U256;

/// One lattice value of the abstract operand stack.
///   kConst    — the word is this exact constant on every path seen so far.
///   kStorage  — the word was SLOADed from the (constant) slot in `payload`,
///               possibly narrowed by an AND mask — the shape every
///               slot-proxy fallback uses for its logic address.
///   kCalldata — derived from CALLDATALOAD / CALLDATASIZE (caller-chosen).
///   kHashed   — a keccak-derived storage slot: `payload` is the root base
///               slot, `hash_depth`/`hash_path` encode the nesting shape
///               (Solidity mapping elements hash `key ++ base` over 0x40
///               bytes; dynamic-array data hashes `base` over 0x20 bytes),
///               and `addend` is a constant offset added past the hash.
///   kUnknown  — anything else (top of the lattice).
struct AbstractValue {
  enum class Kind : std::uint8_t {
    kUnknown, kConst, kStorage, kCalldata, kHashed
  };

  /// Provenance of the key/index that selected a kHashed slot family
  /// element — calldata keys mean the reachable element is caller-chosen.
  enum class KeyOrigin : std::uint8_t { kUnknown, kConst, kCalldata };

  Kind kind = Kind::kUnknown;
  U256 payload{};  // kConst: the value; kStorage/kHashed: the (base) slot
  // ---- kHashed only; zero-valued for every other kind --------------------
  U256 addend{};               // constant offset past the hash (array index)
  std::uint8_t hash_depth = 0; // keccak applications (1 = single level)
  std::uint8_t hash_path = 0;  // bit (level-1): 1 = mapping, 0 = array
  KeyOrigin key_origin = KeyOrigin::kUnknown;

  static AbstractValue constant(const U256& v) {
    return {Kind::kConst, v};
  }
  static AbstractValue storage(const U256& slot) {
    return {Kind::kStorage, slot};
  }
  static AbstractValue calldata() { return {Kind::kCalldata, U256{}}; }
  static AbstractValue unknown() { return {Kind::kUnknown, U256{}}; }
  static AbstractValue hashed(const U256& base, std::uint8_t depth,
                              std::uint8_t path, KeyOrigin key) {
    AbstractValue v;
    v.kind = Kind::kHashed;
    v.payload = base;
    v.hash_depth = depth;
    v.hash_path = path;
    v.key_origin = key;
    return v;
  }

  bool is_const() const noexcept { return kind == Kind::kConst; }
  bool is_storage() const noexcept { return kind == Kind::kStorage; }
  bool is_calldata() const noexcept { return kind == Kind::kCalldata; }
  bool is_hashed() const noexcept { return kind == Kind::kHashed; }

  /// Same symbolic slot family: identical root slot and nesting shape
  /// (addend and key provenance may differ between elements).
  bool same_family(const AbstractValue& o) const noexcept {
    return is_hashed() && o.is_hashed() && payload == o.payload &&
           hash_depth == o.hash_depth && hash_path == o.hash_path;
  }

  friend bool operator==(const AbstractValue&,
                         const AbstractValue&) = default;
};

/// Lattice join: equal values stay, everything else degrades (calldata taint
/// survives a join with calldata; any other mix is kUnknown).
AbstractValue join(const AbstractValue& a, const AbstractValue& b) noexcept;

/// Per-block recovery result, parallel to Disassembly::blocks().
struct CfgBlock {
  std::uint32_t start_pc = 0;
  std::uint32_t first_instruction = 0;
  std::uint32_t instruction_count = 0;
  /// Abstractly executed from pc 0 along resolved edges.
  bool reachable = false;
  /// Some path through this block can fault (stack underflow/overflow,
  /// constant jump to a non-JUMPDEST, INVALID/undefined byte, non-constant
  /// RETURNDATACOPY) — the emulation verdict on that path would be
  /// kEmulationError territory, so the dead-skip proof refuses the blob.
  bool may_fault = false;
  /// Entry states were merged past the per-block cap; constants may have
  /// been lost (but depths stayed exact unless `Cfg::depth_conflict`).
  bool widened = false;
  /// Ends in a JUMP/JUMPI whose target operand stayed abstract.
  bool unresolved_jump = false;
  /// Successor block indices (resolved jump targets + fall-throughs),
  /// sorted and deduplicated — deterministic across runs and thread counts.
  std::vector<std::uint32_t> successors;
};

/// Every DELEGATECALL instruction in the code with the abstract value of its
/// target operand (second from the top of the stack), joined across all
/// abstract paths that executed it. Unexecuted sites keep kUnknown targets.
struct DelegatecallFact {
  std::uint32_t pc = 0;
  bool reachable = false;  // abstractly executed at least once
  AbstractValue target;

  friend bool operator==(const DelegatecallFact&,
                         const DelegatecallFact&) = default;
};

/// Every SLOAD/SSTORE instruction with the joined abstract value of its slot
/// operand (and, for writes, its value operand) across all abstract paths
/// that executed it. Unexecuted sites keep kUnknown/dead entries. Consumed
/// by the layout-inference pass (layout.h).
struct StorageFact {
  std::uint32_t pc = 0;
  bool is_write = false;
  bool reachable = false;  // abstractly executed at least once
  AbstractValue slot;
  AbstractValue value;  // writes only; kUnknown for reads

  friend bool operator==(const StorageFact&, const StorageFact&) = default;
};

struct CfgOptions {
  /// Distinct abstract entry states tracked per block before widening.
  std::uint32_t max_entry_states_per_block = 8;
  /// Abstract instruction budget; 0 = auto (64x the instruction count,
  /// min 4096). Exhaustion marks the CFG incomplete, never wrong.
  std::uint64_t abstract_step_budget = 0;
};

struct Cfg {
  std::vector<CfgBlock> blocks;  // parallel to Disassembly::blocks()
  std::vector<std::uint32_t> unresolved_jump_pcs;  // sorted
  std::vector<DelegatecallFact> delegatecalls;     // sorted by pc
  std::vector<StorageFact> storage_facts;          // sorted by pc

  /// The recovered edges provably cover every edge emulation can take from
  /// pc 0 (no unresolved reachable jump, no depth conflict, budget intact).
  bool complete = false;
  /// A cycle among reachable blocks (conservatively true when !complete).
  bool has_reachable_cycle = false;
  bool budget_exhausted = false;
  /// Two paths reached a block with different stack depths and the entry
  /// cap forced a merge; depth-exact fault tracking is lost.
  bool depth_conflict = false;

  // ---- facts for the dead-skip proof (trustworthy iff `complete`) --------
  /// CALL/CALLCODE/STATICCALL/CREATE/CREATE2 in a reachable block — the
  /// probe could enter foreign code, so no static termination bound holds.
  bool external_call_reachable = false;
  /// Reachable INVALID / undefined byte / SELFDESTRUCT (halts the probe in
  /// a way the clean-termination proof refuses to reason about).
  bool unsafe_terminator_reachable = false;
  /// Every reachable memory-touching operand was a constant (size-zero ops
  /// excepted) — required for the static gas bound below.
  bool memory_bounded = true;
  std::uint64_t max_memory_end = 0;  // bytes, when memory_bounded
  /// Static worst-case gas for one probe: per-opcode base costs plus cold
  /// EIP-2929 surcharges over every reachable instruction, plus quadratic
  /// expansion to max_memory_end — mirrors the interpreter's fuel model.
  std::uint64_t worst_case_gas = 0;
  /// Upper bound on interpreter steps when the reachable subgraph is
  /// acyclic: each reachable instruction executes at most once.
  std::uint64_t reachable_instructions = 0;

  std::uint64_t abstract_steps = 0;  // work the analysis itself spent

  std::uint32_t reachable_block_count() const noexcept;
  std::uint32_t unresolved_jump_count() const noexcept {
    return static_cast<std::uint32_t>(unresolved_jump_pcs.size());
  }

  /// Index of the block whose pc range contains `pc` (blocks partition the
  /// code), or nullopt when there are no blocks / pc is past the end.
  std::optional<std::uint32_t> block_containing(std::uint32_t pc) const;

  /// True iff the recovered CFG has the edge `from` -> `to` (block indices).
  bool has_edge(std::uint32_t from, std::uint32_t to) const;

  /// Deterministic one-block-per-line rendering (tests compare these to
  /// assert block ordering and edge determinism).
  std::string to_string() const;
};

/// Recovers the CFG of `dis` from pc 0. Pure function of the bytecode —
/// results are memoized per code hash by core::AnalysisCache.
Cfg recover_cfg(const evm::Disassembly& dis, const CfgOptions& options = {});

}  // namespace proxion::static_analysis
