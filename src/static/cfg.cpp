#include "static/cfg.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

namespace proxion::static_analysis {

namespace {

using evm::Opcode;
using evm::OpcodeInfo;

// Mirrors of the interpreter's limits and EIP-2929 cold surcharges — the
// static gas bound must never undercount what run_frame would charge.
constexpr std::size_t kStackLimit = 1024;
constexpr std::uint64_t kMaxMemory = 16u << 20;
constexpr std::uint64_t kColdSlotSurcharge = 2100;
constexpr std::uint64_t kColdAccountSurcharge = 2600;

using State = std::vector<AbstractValue>;

/// Constant evaluation with the interpreter's exact operand order
/// (`a` popped first = stack top, `b` second).
U256 const_binary(Opcode op, const U256& a, const U256& b) noexcept {
  switch (op) {
    case Opcode::ADD: return a + b;
    case Opcode::MUL: return a * b;
    case Opcode::SUB: return a - b;
    case Opcode::DIV: return a / b;
    case Opcode::SDIV: return a.sdiv(b);
    case Opcode::MOD: return a % b;
    case Opcode::SMOD: return a.smod(b);
    case Opcode::EXP: return a.exp(b);
    case Opcode::SIGNEXTEND: return b.signextend(a);
    case Opcode::LT: return U256{a < b ? 1u : 0u};
    case Opcode::GT: return U256{a > b ? 1u : 0u};
    case Opcode::SLT: return U256{a.slt(b) ? 1u : 0u};
    case Opcode::SGT: return U256{a.sgt(b) ? 1u : 0u};
    case Opcode::EQ: return U256{a == b ? 1u : 0u};
    case Opcode::AND: return a & b;
    case Opcode::OR: return a | b;
    case Opcode::XOR: return a ^ b;
    case Opcode::BYTE: return U256{b.byte(a)};
    case Opcode::SHL: return b << a;
    case Opcode::SHR: return b >> a;
    case Opcode::SAR: return b.sar(a);
    default: return U256{};
  }
}

AbstractValue binary(Opcode op, const AbstractValue& a,
                     const AbstractValue& b) noexcept {
  if (a.is_const() && b.is_const()) {
    return AbstractValue::constant(const_binary(op, a.payload, b.payload));
  }
  // keccak(base) + i stays in the slot family: a constant index folds into
  // the addend, anything else (a caller-chosen array index) keeps the family
  // with the element offset widened away.
  if (op == Opcode::ADD && (a.is_hashed() != b.is_hashed())) {
    const AbstractValue& h = a.is_hashed() ? a : b;
    const AbstractValue& i = a.is_hashed() ? b : a;
    AbstractValue r = h;
    if (i.is_const()) {
      r.addend = h.addend + i.payload;
    } else {
      r.addend = U256{};
      if (i.is_calldata()) {
        r.key_origin = AbstractValue::KeyOrigin::kCalldata;
      }
    }
    return r;
  }
  if (a.is_calldata() || b.is_calldata()) return AbstractValue::calldata();
  // Address-narrowing masks (`sload(slot) & 2^160-1`) must not lose the
  // slot attribution — that is the exact shape of every slot-proxy fallback.
  if (op == Opcode::AND) {
    if (a.is_const() && b.is_storage()) return b;
    if (b.is_const() && a.is_storage()) return a;
    if (a.is_const() && b.is_hashed()) return b;
    if (b.is_const() && a.is_hashed()) return a;
  }
  return AbstractValue::unknown();
}

/// Merges key provenance across nesting levels / joined paths: a calldata
/// key anywhere makes the reachable element caller-chosen.
AbstractValue::KeyOrigin merge_key_origin(AbstractValue::KeyOrigin a,
                                          AbstractValue::KeyOrigin b) noexcept {
  using KeyOrigin = AbstractValue::KeyOrigin;
  if (a == KeyOrigin::kCalldata || b == KeyOrigin::kCalldata) {
    return KeyOrigin::kCalldata;
  }
  if (a == KeyOrigin::kUnknown) return b;
  if (b == KeyOrigin::kUnknown) return a;
  return a == b ? a : KeyOrigin::kUnknown;
}

/// Lifts one KECCAK256 over a tracked memory word into a slot-family value:
/// `mapping` hashes `key ++ base` (0x40 bytes), arrays hash `base` alone
/// (0x20 bytes). Nested compositions extend the path while the inner value
/// still points at the family start (addend zero).
AbstractValue derive_hashed(const AbstractValue& base, bool mapping,
                            const AbstractValue& key) noexcept {
  using KeyOrigin = AbstractValue::KeyOrigin;
  KeyOrigin origin = KeyOrigin::kUnknown;
  if (key.is_const()) origin = KeyOrigin::kConst;
  if (key.is_calldata()) origin = KeyOrigin::kCalldata;
  if (base.is_const()) {
    return AbstractValue::hashed(base.payload, 1,
                                 mapping ? std::uint8_t{1} : std::uint8_t{0},
                                 origin);
  }
  if (base.is_hashed() && base.addend.is_zero() && base.hash_depth < 8) {
    AbstractValue v = base;
    if (mapping) {
      v.hash_path |= static_cast<std::uint8_t>(1u << v.hash_depth);
    }
    ++v.hash_depth;
    v.key_origin = merge_key_origin(v.key_origin, origin);
    return v;
  }
  return AbstractValue::unknown();
}

/// Truncated-PUSH semantics exactly as the interpreter implements them: the
/// EVM right-pads missing immediate bytes with zeros, i.e. shifts left.
U256 push_constant(const evm::Instruction& ins) noexcept {
  const U256 value = ins.push_value();
  const int declared = evm::push_size(ins.byte);
  const std::size_t missing =
      static_cast<std::size_t>(declared) - ins.immediate.size();
  if (missing == 0) return value;
  return value << U256{static_cast<std::uint64_t>(missing * 8)};
}

std::uint64_t memory_expansion_gas(std::uint64_t end_bytes) noexcept {
  const std::uint64_t words = (end_bytes + 31) / 32;
  return 3 * words + words * words / 512;
}

bool is_account_touching(Opcode op) noexcept {
  switch (op) {
    case Opcode::BALANCE:
    case Opcode::EXTCODESIZE:
    case Opcode::EXTCODECOPY:
    case Opcode::EXTCODEHASH:
    case Opcode::CALL:
    case Opcode::CALLCODE:
    case Opcode::DELEGATECALL:
    case Opcode::STATICCALL:
      return true;
    default:
      return false;
  }
}

}  // namespace

AbstractValue join(const AbstractValue& a, const AbstractValue& b) noexcept {
  if (a == b) return a;
  if (a.is_calldata() && b.is_calldata()) return AbstractValue::calldata();
  if (a.same_family(b)) {
    // Same symbolic slot family reached with different element offsets or
    // key provenance: keep the family identity, widen what differs.
    AbstractValue v = a;
    if (!(a.addend == b.addend)) v.addend = U256{};
    v.key_origin = merge_key_origin(a.key_origin, b.key_origin);
    return v;
  }
  return AbstractValue::unknown();
}

std::uint32_t Cfg::reachable_block_count() const noexcept {
  std::uint32_t n = 0;
  for (const CfgBlock& b : blocks) n += b.reachable ? 1 : 0;
  return n;
}

std::optional<std::uint32_t> Cfg::block_containing(std::uint32_t pc) const {
  if (blocks.empty()) return std::nullopt;
  // Last block whose start_pc <= pc (blocks are sorted by start_pc and
  // partition the instruction stream).
  auto it = std::upper_bound(
      blocks.begin(), blocks.end(), pc,
      [](std::uint32_t v, const CfgBlock& b) { return v < b.start_pc; });
  if (it == blocks.begin()) return std::nullopt;
  return static_cast<std::uint32_t>(std::distance(blocks.begin(), it) - 1);
}

bool Cfg::has_edge(std::uint32_t from, std::uint32_t to) const {
  if (from >= blocks.size()) return false;
  const auto& s = blocks[from].successors;
  return std::binary_search(s.begin(), s.end(), to);
}

std::string Cfg::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const CfgBlock& b = blocks[i];
    out << "block " << i << " @" << b.start_pc << " n=" << b.instruction_count
        << (b.reachable ? " live" : " dead");
    if (b.widened) out << " widened";
    if (b.may_fault) out << " may-fault";
    if (b.unresolved_jump) out << " unresolved";
    out << " ->";
    for (std::uint32_t s : b.successors) out << ' ' << s;
    out << '\n';
  }
  out << "complete=" << (complete ? 1 : 0)
      << " cycle=" << (has_reachable_cycle ? 1 : 0)
      << " unresolved=" << unresolved_jump_pcs.size() << '\n';
  return out.str();
}

Cfg recover_cfg(const evm::Disassembly& dis, const CfgOptions& options) {
  Cfg cfg;
  const auto& instructions = dis.instructions();
  const auto& dis_blocks = dis.blocks();

  cfg.blocks.reserve(dis_blocks.size());
  for (const evm::BasicBlock& b : dis_blocks) {
    CfgBlock cb;
    cb.start_pc = b.start_pc;
    cb.first_instruction = b.first_instruction;
    cb.instruction_count = b.instruction_count;
    cfg.blocks.push_back(std::move(cb));
  }
  if (cfg.blocks.empty()) {
    cfg.complete = true;
    return cfg;
  }

  std::unordered_map<std::uint32_t, std::uint32_t> block_at_pc;
  block_at_pc.reserve(cfg.blocks.size());
  for (std::uint32_t i = 0; i < cfg.blocks.size(); ++i) {
    block_at_pc.emplace(cfg.blocks[i].start_pc, i);
  }

  const std::uint64_t budget =
      options.abstract_step_budget != 0
          ? options.abstract_step_budget
          : std::max<std::uint64_t>(4096, 64 * instructions.size());
  const std::uint32_t max_states =
      std::max<std::uint32_t>(1, options.max_entry_states_per_block);

  struct BlockStates {
    std::vector<State> seen;
  };
  std::vector<BlockStates> states(cfg.blocks.size());
  std::deque<std::pair<std::uint32_t, State>> worklist;
  std::map<std::uint32_t, std::pair<bool, AbstractValue>> dc_facts;
  struct PendingStorageFact {
    AbstractValue slot;
    AbstractValue value;
  };
  std::map<std::uint32_t, PendingStorageFact> st_facts;
  std::vector<std::uint32_t> unresolved_pcs;

  auto record_storage = [&](std::uint32_t pc, const AbstractValue& slot,
                            const AbstractValue& value) {
    auto [it, inserted] =
        st_facts.try_emplace(pc, PendingStorageFact{slot, value});
    if (!inserted) {
      it->second.slot = join(it->second.slot, slot);
      it->second.value = join(it->second.value, value);
    }
  };

  auto propagate = [&](std::uint32_t b, State&& st) {
    BlockStates& bs = states[b];
    cfg.blocks[b].reachable = true;
    for (const State& s : bs.seen) {
      if (s == st) return;
    }
    if (bs.seen.size() < max_states) {
      bs.seen.push_back(st);
      worklist.emplace_back(b, std::move(st));
      return;
    }
    // Widen: fold every seen entry state (and the new one) into a single
    // pointwise join. Monotone — each stack slot can only degrade toward
    // kUnknown — so re-analysis of the block terminates.
    cfg.blocks[b].widened = true;
    bool same_depth = true;
    std::size_t max_depth = st.size();
    for (const State& s : bs.seen) {
      same_depth = same_depth && s.size() == st.size();
      max_depth = std::max(max_depth, s.size());
    }
    State merged;
    if (same_depth) {
      merged = std::move(st);
      for (const State& s : bs.seen) {
        for (std::size_t i = 0; i < merged.size(); ++i) {
          merged[i] = join(merged[i], s[i]);
        }
      }
    } else {
      // Paths disagree on the entry depth; depth-exact underflow tracking
      // is gone, so the CFG stops claiming completeness.
      cfg.depth_conflict = true;
      cfg.blocks[b].may_fault = true;
      merged.assign(max_depth, AbstractValue::unknown());
    }
    for (const State& s : bs.seen) {
      if (s == merged) return;
    }
    bs.seen.clear();
    bs.seen.push_back(merged);
    worklist.emplace_back(b, std::move(merged));
  };

  std::vector<std::vector<std::uint32_t>> edges(cfg.blocks.size());
  auto add_edge = [&](std::uint32_t from, std::uint32_t to, State st) {
    edges[from].push_back(to);
    propagate(to, std::move(st));
  };

  /// Resolves a constant jump target to a block index; nullopt = the jump
  /// faults (non-JUMPDEST target), which the caller records as may_fault.
  auto resolve_target = [&](const U256& target)
      -> std::optional<std::uint32_t> {
    if (!target.fits_u64() || target.low64() > 0xffffffffu) {
      return std::nullopt;
    }
    const auto pc = static_cast<std::uint32_t>(target.low64());
    if (!dis.is_jumpdest(pc)) return std::nullopt;
    const auto it = block_at_pc.find(pc);
    // The disassembler starts a block at every JUMPDEST instruction.
    return it == block_at_pc.end() ? std::nullopt
                                   : std::optional<std::uint32_t>(it->second);
  };

  auto record_mem = [&](const AbstractValue& off, const AbstractValue& size) {
    if (size.is_const() && size.payload.is_zero()) return;
    if (!off.is_const() || !size.is_const() || !off.payload.fits_u64() ||
        !size.payload.fits_u64()) {
      cfg.memory_bounded = false;
      return;
    }
    const std::uint64_t end = off.payload.low64() + size.payload.low64();
    if (end < off.payload.low64() || end > kMaxMemory) {
      cfg.memory_bounded = false;
      return;
    }
    cfg.max_memory_end = std::max(cfg.max_memory_end, end);
  };

  // Abstractly executes `block` under entry state `st`, recording edges,
  // DELEGATECALL facts, and proof hazards as it goes.
  auto exec_block = [&](std::uint32_t block, State st) {
    CfgBlock& cb = cfg.blocks[block];
    State& s = st;
    auto at = [&](std::size_t from_top) -> const AbstractValue& {
      return s[s.size() - 1 - from_top];
    };
    auto pop_n = [&](std::size_t n) { s.resize(s.size() - n); };
    const std::uint32_t end_index = cb.first_instruction + cb.instruction_count;

    // Block-local abstract memory: constant-offset MSTOREs feed KECCAK256 so
    // mapping/array slot derivations (`keccak256(key ++ base)`) survive as
    // kHashed values instead of degrading to kUnknown. Anything less precise
    // than a full-word store at a constant offset clobbers the whole map —
    // the derivation then simply fails closed to kUnknown.
    std::map<std::uint64_t, AbstractValue> mem_words;
    auto mem_store = [&](const AbstractValue& off, const AbstractValue& val) {
      if (!off.is_const() || !off.payload.fits_u64() ||
          off.payload.low64() >= kMaxMemory) {
        mem_words.clear();
        return;
      }
      const std::uint64_t o = off.payload.low64();
      for (auto it = mem_words.begin(); it != mem_words.end();) {
        const bool overlaps = it->first + 32 > o && it->first < o + 32;
        if (overlaps && it->first != o) {
          it = mem_words.erase(it);
        } else {
          ++it;
        }
      }
      mem_words[o] = val;
    };
    auto mem_load_word = [&](std::uint64_t o) -> AbstractValue {
      const auto it = mem_words.find(o);
      return it == mem_words.end() ? AbstractValue::unknown() : it->second;
    };

    for (std::uint32_t idx = cb.first_instruction; idx < end_index; ++idx) {
      if (++cfg.abstract_steps > budget) {
        cfg.budget_exhausted = true;
        return;
      }
      const evm::Instruction& ins = instructions[idx];
      const std::uint8_t byte = ins.byte;
      const OpcodeInfo& info = ins.info();
      const Opcode op = ins.opcode();

      if (!info.defined || op == Opcode::INVALID) {
        cfg.unsafe_terminator_reachable = true;
        return;  // halts as kInvalidOpcode
      }
      if (s.size() < info.stack_in) {
        cb.may_fault = true;  // kStackUnderflow on this path
        return;
      }

      if (evm::is_push(byte)) {
        s.push_back(AbstractValue::constant(push_constant(ins)));
      } else if (evm::is_dup(byte)) {
        const std::size_t n = static_cast<std::size_t>(byte - 0x80) + 1;
        if (s.size() < n) {
          cb.may_fault = true;
          return;
        }
        s.push_back(s[s.size() - n]);
      } else if (evm::is_swap(byte)) {
        const std::size_t n = static_cast<std::size_t>(byte - 0x90) + 1;
        if (s.size() < n + 1) {
          cb.may_fault = true;
          return;
        }
        std::swap(s.back(), s[s.size() - 1 - n]);
      } else if (evm::is_log(byte)) {
        record_mem(at(0), at(1));
        pop_n(info.stack_in);
      } else {
        switch (op) {
          case Opcode::STOP:
            return;  // clean halt
          case Opcode::ADD: case Opcode::MUL: case Opcode::SUB:
          case Opcode::DIV: case Opcode::SDIV: case Opcode::MOD:
          case Opcode::SMOD: case Opcode::EXP: case Opcode::SIGNEXTEND:
          case Opcode::LT: case Opcode::GT: case Opcode::SLT:
          case Opcode::SGT: case Opcode::EQ: case Opcode::AND:
          case Opcode::OR: case Opcode::XOR: case Opcode::BYTE:
          case Opcode::SHL: case Opcode::SHR: case Opcode::SAR: {
            const AbstractValue r = binary(op, at(0), at(1));
            pop_n(2);
            s.push_back(r);
            break;
          }
          case Opcode::ADDMOD: case Opcode::MULMOD: {
            AbstractValue r = AbstractValue::unknown();
            if (at(0).is_const() && at(1).is_const() && at(2).is_const()) {
              r = AbstractValue::constant(
                  op == Opcode::ADDMOD
                      ? U256::addmod(at(0).payload, at(1).payload,
                                     at(2).payload)
                      : U256::mulmod(at(0).payload, at(1).payload,
                                     at(2).payload));
            } else if (at(0).is_calldata() || at(1).is_calldata() ||
                       at(2).is_calldata()) {
              r = AbstractValue::calldata();
            }
            pop_n(3);
            s.push_back(r);
            break;
          }
          case Opcode::ISZERO: {
            AbstractValue r = AbstractValue::unknown();
            if (at(0).is_const()) {
              r = AbstractValue::constant(
                  U256{at(0).payload.is_zero() ? 1u : 0u});
            } else if (at(0).is_calldata()) {
              r = AbstractValue::calldata();
            }
            pop_n(1);
            s.push_back(r);
            break;
          }
          case Opcode::NOT: {
            AbstractValue r = at(0).is_const()
                                  ? AbstractValue::constant(~at(0).payload)
                                  : (at(0).is_calldata()
                                         ? AbstractValue::calldata()
                                         : AbstractValue::unknown());
            pop_n(1);
            s.push_back(r);
            break;
          }
          case Opcode::KECCAK256: {
            const AbstractValue off = at(0);
            const AbstractValue size = at(1);
            record_mem(off, size);
            pop_n(2);
            AbstractValue r = AbstractValue::unknown();
            if (off.is_const() && off.payload.fits_u64() && size.is_const()) {
              const std::uint64_t o = off.payload.low64();
              if (size.payload == U256{0x40}) {
                // Solidity mapping element: keccak256(key ++ base_slot).
                r = derive_hashed(mem_load_word(o + 32), /*mapping=*/true,
                                  mem_load_word(o));
              } else if (size.payload == U256{0x20}) {
                // Dynamic-array data start: keccak256(base_slot).
                r = derive_hashed(mem_load_word(o), /*mapping=*/false,
                                  AbstractValue::unknown());
              }
            }
            s.push_back(r);
            break;
          }
          case Opcode::SLOAD: {
            const AbstractValue slot = at(0);
            record_storage(ins.pc, slot, AbstractValue::unknown());
            pop_n(1);
            s.push_back(slot.is_const()
                            ? AbstractValue::storage(slot.payload)
                            : AbstractValue::unknown());
            break;
          }
          case Opcode::SSTORE:
            record_storage(ins.pc, at(0), at(1));
            pop_n(2);
            break;
          case Opcode::CALLDATALOAD:
            pop_n(1);
            s.push_back(AbstractValue::calldata());
            break;
          case Opcode::CALLDATASIZE:
            s.push_back(AbstractValue::calldata());
            break;
          case Opcode::CALLDATACOPY:
          case Opcode::CODECOPY:
            record_mem(at(0), at(2));
            mem_words.clear();
            pop_n(3);
            break;
          case Opcode::RETURNDATACOPY:
            // With no reachable calls the probe's return-data buffer stays
            // empty, so any nonzero copy would halt kReturnDataOutOfBounds.
            if (!(at(2).is_const() && at(2).payload.is_zero())) {
              cb.may_fault = true;
            }
            record_mem(at(0), at(2));
            mem_words.clear();
            pop_n(3);
            break;
          case Opcode::EXTCODECOPY:
            record_mem(at(1), at(3));
            mem_words.clear();
            pop_n(4);
            break;
          case Opcode::MLOAD:
            record_mem(at(0), AbstractValue::constant(U256{32}));
            pop_n(1);
            s.push_back(AbstractValue::unknown());
            break;
          case Opcode::MSTORE:
            record_mem(at(0), AbstractValue::constant(U256{32}));
            mem_store(at(0), at(1));
            pop_n(2);
            break;
          case Opcode::MSTORE8:
            record_mem(at(0), AbstractValue::constant(U256{1}));
            mem_words.clear();  // byte write: conservatively forget words
            pop_n(2);
            break;
          case Opcode::MCOPY:
            record_mem(at(0), at(2));
            record_mem(at(1), at(2));
            mem_words.clear();
            pop_n(3);
            break;
          case Opcode::PC:
            s.push_back(AbstractValue::constant(U256{ins.pc}));
            break;
          case Opcode::JUMPDEST:
            break;
          case Opcode::JUMP: {
            const AbstractValue target = at(0);
            pop_n(1);
            if (!target.is_const()) {
              cb.unresolved_jump = true;
              unresolved_pcs.push_back(ins.pc);
              return;
            }
            if (const auto to = resolve_target(target.payload)) {
              add_edge(block, *to, std::move(s));
            } else {
              cb.may_fault = true;  // kBadJumpDestination
            }
            return;
          }
          case Opcode::JUMPI: {
            const AbstractValue target = at(0);
            const AbstractValue cond = at(1);
            pop_n(2);
            const bool maybe_taken = !(cond.is_const() &&
                                       cond.payload.is_zero());
            const bool maybe_fallthrough =
                !cond.is_const() || cond.payload.is_zero();
            if (maybe_taken) {
              if (!target.is_const()) {
                cb.unresolved_jump = true;
                unresolved_pcs.push_back(ins.pc);
              } else if (const auto to = resolve_target(target.payload)) {
                add_edge(block, *to, State(s));
              } else {
                cb.may_fault = true;
              }
            }
            if (maybe_fallthrough && block + 1 < cfg.blocks.size()) {
              add_edge(block, block + 1, std::move(s));
            }
            return;  // JUMPI always ends the disassembler's block
          }
          case Opcode::RETURN:
          case Opcode::REVERT:
            record_mem(at(0), at(1));
            return;  // clean halt
          case Opcode::SELFDESTRUCT:
            cfg.unsafe_terminator_reachable = true;
            return;
          case Opcode::DELEGATECALL: {
            auto [it, inserted] = dc_facts.try_emplace(
                ins.pc, std::make_pair(true, at(1)));
            if (!inserted) {
              it->second.first = true;
              it->second.second = join(it->second.second, at(1));
            }
            mem_words.clear();  // callee return data may land in memory
            pop_n(info.stack_in);
            s.push_back(AbstractValue::unknown());
            break;
          }
          case Opcode::CALL:
          case Opcode::CALLCODE:
          case Opcode::STATICCALL:
          case Opcode::CREATE:
          case Opcode::CREATE2:
            cfg.external_call_reachable = true;
            mem_words.clear();
            pop_n(info.stack_in);
            s.push_back(AbstractValue::unknown());
            break;
          default: {
            // Environment / block-context / transient-storage opcodes carry
            // no dataflow the analysis models: generic arity transfer.
            pop_n(info.stack_in);
            for (std::uint8_t k = 0; k < info.stack_out; ++k) {
              s.push_back(AbstractValue::unknown());
            }
            break;
          }
        }
      }
      if (s.size() > kStackLimit) {
        cb.may_fault = true;  // kStackOverflow
        return;
      }
    }
    // Ran off the block's end without a control transfer: fall through to
    // the next block, or halt cleanly at the implicit STOP past code end.
    if (block + 1 < cfg.blocks.size()) {
      add_edge(block, block + 1, std::move(s));
    }
  };

  propagate(0, State{});
  while (!worklist.empty() && !cfg.budget_exhausted) {
    auto [block, st] = std::move(worklist.front());
    worklist.pop_front();
    exec_block(block, std::move(st));
  }

  for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    auto& succ = edges[b];
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    cfg.blocks[b].successors = std::move(succ);
  }

  std::sort(unresolved_pcs.begin(), unresolved_pcs.end());
  unresolved_pcs.erase(
      std::unique(unresolved_pcs.begin(), unresolved_pcs.end()),
      unresolved_pcs.end());
  cfg.unresolved_jump_pcs = std::move(unresolved_pcs);

  // Every DELEGATECALL instruction gets a fact; unexecuted sites stay
  // kUnknown/dead. The linear sweep already excludes push-data bytes, so a
  // 0xf4 hidden inside a PUSH immediate produces no site at all.
  for (const evm::Instruction& ins : instructions) {
    if (ins.opcode() != Opcode::DELEGATECALL) continue;
    DelegatecallFact fact;
    fact.pc = ins.pc;
    const auto it = dc_facts.find(ins.pc);
    if (it != dc_facts.end()) {
      fact.reachable = it->second.first;
      fact.target = it->second.second;
    }
    cfg.delegatecalls.push_back(std::move(fact));
  }

  // Same treatment for SLOAD/SSTORE: every site gets a fact, unexecuted
  // sites stay kUnknown/dead, executed sites carry the joined abstract slot
  // (and value operand, for writes) across all paths that reached them.
  for (const evm::Instruction& ins : instructions) {
    const Opcode op = ins.opcode();
    if (op != Opcode::SLOAD && op != Opcode::SSTORE) continue;
    StorageFact fact;
    fact.pc = ins.pc;
    fact.is_write = op == Opcode::SSTORE;
    const auto it = st_facts.find(ins.pc);
    if (it != st_facts.end()) {
      fact.reachable = true;
      fact.slot = it->second.slot;
      fact.value = it->second.value;
    }
    cfg.storage_facts.push_back(std::move(fact));
  }

  bool any_unresolved_reachable = false;
  for (const CfgBlock& b : cfg.blocks) {
    if (b.reachable && b.unresolved_jump) any_unresolved_reachable = true;
  }
  cfg.complete = !cfg.budget_exhausted && !cfg.depth_conflict &&
                 !any_unresolved_reachable;

  // Cycle detection (iterative DFS) over the reachable subgraph; an
  // incomplete CFG may hide edges, so it conservatively reports a cycle.
  if (!cfg.complete) {
    cfg.has_reachable_cycle = true;
  } else {
    std::vector<std::uint8_t> color(cfg.blocks.size(), 0);  // 0/1/2 = w/g/b
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    for (std::uint32_t root = 0;
         root < cfg.blocks.size() && !cfg.has_reachable_cycle; ++root) {
      if (!cfg.blocks[root].reachable || color[root] != 0) continue;
      color[root] = 1;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [node, child] = stack.back();
        if (child < cfg.blocks[node].successors.size()) {
          const std::uint32_t next = cfg.blocks[node].successors[child++];
          if (color[next] == 1) {
            cfg.has_reachable_cycle = true;
            break;
          }
          if (color[next] == 0) {
            color[next] = 1;
            stack.emplace_back(next, 0);
          }
        } else {
          color[node] = 2;
          stack.pop_back();
        }
      }
      stack.clear();
    }
  }

  // Static cost bound over the reachable subgraph: worst-case (cold) gas per
  // instruction plus quadratic expansion to the constant memory high-water
  // mark. Only the dead-skip proof consumes these, and only when `complete`
  // and acyclic — each reachable instruction then executes at most once.
  for (const CfgBlock& b : cfg.blocks) {
    if (!b.reachable) continue;
    const std::uint32_t end_index = b.first_instruction + b.instruction_count;
    for (std::uint32_t idx = b.first_instruction; idx < end_index; ++idx) {
      const evm::Instruction& ins = instructions[idx];
      const Opcode op = ins.opcode();
      std::uint64_t cost = ins.info().base_gas;
      if (op == Opcode::SLOAD || op == Opcode::SSTORE) {
        cost += kColdSlotSurcharge;
      } else if (is_account_touching(op)) {
        cost += kColdAccountSurcharge;
      }
      cfg.worst_case_gas += cost;
      ++cfg.reachable_instructions;
    }
  }
  if (cfg.memory_bounded) {
    cfg.worst_case_gas += memory_expansion_gas(cfg.max_memory_end);
  }

  return cfg;
}

}  // namespace proxion::static_analysis
