#include "static/layout.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "obs/metrics.h"

namespace proxion::static_analysis {

using evm::Instruction;
using evm::Opcode;

namespace {

using KeyOrigin = AbstractValue::KeyOrigin;

/// Family identity discovered during the scan, interned so stack values and
/// raw accesses can reference it by index.
struct FamilyKey {
  U256 base;
  std::uint8_t depth = 1;
  std::uint8_t path = 0;
  KeyOrigin key = KeyOrigin::kUnknown;
};

/// One raw (unaggregated) typed access the scanner recorded. family_id < 0
/// means a static-slot access at `slot`.
struct RawAccess {
  int family_id = -1;
  U256 slot;
  std::uint8_t offset = 0;
  std::uint8_t width = 32;
  bool is_write = false;
  bool caller_compared = false;
  bool guarded = false;
  WriteOrigin origin = WriteOrigin::kUnknown;
  std::uint32_t pc = 0;
};

/// Is `mask` a contiguous run of 0xff bytes somewhere in the word? Returns
/// (byte offset from the LSB end, byte width). Same convention as
/// core::StorageAccess.
std::optional<std::pair<std::uint8_t, std::uint8_t>> contiguous_byte_mask(
    const U256& mask) {
  const auto be = mask.to_be_bytes();
  int first = -1, last = -1;
  for (int i = 0; i < 32; ++i) {
    if (be[static_cast<std::size_t>(i)] == 0xff) {
      if (first < 0) first = i;
      last = i;
    } else if (be[static_cast<std::size_t>(i)] != 0x00) {
      return std::nullopt;  // partial byte: not a byte-granular mask
    }
  }
  if (first < 0) return std::nullopt;
  for (int i = first; i <= last; ++i) {
    if (be[static_cast<std::size_t>(i)] != 0xff) return std::nullopt;
  }
  const std::uint8_t offset = static_cast<std::uint8_t>(31 - last);
  const std::uint8_t width = static_cast<std::uint8_t>(last - first + 1);
  return std::make_pair(offset, width);
}

/// Is `mask` a contiguous low-byte mask (0xff, 0xffff, ..., 2^160-1, ...)?
std::optional<std::uint8_t> low_mask_width(const U256& mask) {
  const int bits = mask.bit_length();
  if (bits == 0 || bits % 8 != 0 || bits > 256) return std::nullopt;
  const U256 plus1 = mask + U256{1};
  if ((plus1 & mask) != U256{}) return std::nullopt;
  return static_cast<std::uint8_t>(bits / 8);
}

/// Block-local mask/shift scanner: core::storage_profile's slicing idioms
/// (narrowing AND, packed-write hole/OR, CALLER comparisons, guard edges)
/// extended with an abstract memory so KECCAK256 over recorded words
/// resolves mapping/array slot families instead of poisoning to unknown.
class LayoutScanner {
 public:
  LayoutScanner(std::vector<RawAccess>& accesses,
                std::vector<FamilyKey>& families,
                std::unordered_set<std::uint32_t>& guarded_pcs)
      : accesses_(accesses), families_(families), guarded_pcs_(guarded_pcs) {}

  void run(const std::vector<Instruction>& ins, std::uint32_t first,
           std::uint32_t count) {
    stack_.clear();
    mem_.clear();
    for (std::uint32_t i = first; i < first + count; ++i) {
      step(ins[i]);
    }
  }

  std::uint32_t current_block_start_ = 0;

 private:
  struct Val {
    enum class Kind : std::uint8_t {
      kUnknown,
      kConst,
      kCaller,
      kCalldata,
      kSload,        // value loaded from a resolved slot / family element
      kHashed,       // keccak result; family_id >= 0 when resolved
      kCallerCheck,  // boolean result of comparing something with CALLER
      kPacked,       // read-modify-write value ready for a packed SSTORE
    };
    Kind kind = Kind::kUnknown;
    U256 constant;
    int access_index = -1;  // kSload: index into accesses_
    int family_id = -1;     // kHashed: resolved family; kSload: source family
    std::uint8_t width = 32;
    std::uint8_t byte_offset = 0;  // kSload: bytes shifted off (packing)
    bool negated = false;          // kCallerCheck polarity
    bool displaced = false;  // kHashed: an index was added — no longer the
                             // family start, so it cannot seed a nested hash
    bool is_hole = false;    // kSload with a contiguous byte range masked OUT
    std::uint8_t hole_offset = 0;
    std::uint8_t hole_width = 0;
    WriteOrigin shifted_origin = WriteOrigin::kUnknown;

    static Val unknown() { return {}; }
  };

  Val pop() {
    if (stack_.empty()) return Val::unknown();
    Val v = stack_.back();
    stack_.pop_back();
    return v;
  }
  void push(Val v) { stack_.push_back(std::move(v)); }
  void push_unknown(int n) {
    for (int i = 0; i < n; ++i) push(Val::unknown());
  }

  int intern_family(const U256& base, std::uint8_t depth, std::uint8_t path,
                    KeyOrigin key) {
    for (std::size_t i = 0; i < families_.size(); ++i) {
      FamilyKey& f = families_[i];
      if (f.base == base && f.depth == depth && f.path == path) {
        if (f.key == KeyOrigin::kUnknown) f.key = key;
        if (key == KeyOrigin::kCalldata) f.key = key;
        return static_cast<int>(i);
      }
    }
    families_.push_back({base, depth, path, key});
    return static_cast<int>(families_.size()) - 1;
  }

  /// Lifts one keccak over tracked memory into a resolved family value.
  Val derive_hash(const Val& base, bool mapping, const Val& key) {
    Val out;
    out.kind = Val::Kind::kHashed;
    KeyOrigin origin = KeyOrigin::kUnknown;
    if (key.kind == Val::Kind::kConst) origin = KeyOrigin::kConst;
    if (key.kind == Val::Kind::kCalldata) origin = KeyOrigin::kCalldata;
    if (base.kind == Val::Kind::kConst) {
      out.family_id = intern_family(
          base.constant, 1, mapping ? std::uint8_t{1} : std::uint8_t{0},
          origin);
      return out;
    }
    if (base.kind == Val::Kind::kHashed && base.family_id >= 0 &&
        !base.displaced) {
      const FamilyKey inner = families_[static_cast<std::size_t>(base.family_id)];
      if (inner.depth < 8) {
        std::uint8_t path = inner.path;
        if (mapping) path |= static_cast<std::uint8_t>(1u << inner.depth);
        out.family_id = intern_family(
            inner.base, static_cast<std::uint8_t>(inner.depth + 1), path,
            origin != KeyOrigin::kUnknown ? origin : inner.key);
        return out;
      }
    }
    return out;  // unresolved hash (family_id -1)
  }

  /// Narrows a loaded value's *read* record to (byte_offset, width). First
  /// interpretation refines in place; a second, different interpretation of
  /// the same load gets its own record (one physical read, two typed views).
  void refine_read(Val& v, std::uint8_t width) {
    if (v.kind != Val::Kind::kSload || v.access_index < 0) return;
    width = std::min<std::uint8_t>(
        width, static_cast<std::uint8_t>(32 - v.byte_offset));
    auto& access = accesses_[static_cast<std::size_t>(v.access_index)];
    if (!refined_.contains(v.access_index)) {
      access.width = width;
      access.offset = v.byte_offset;
      refined_.insert(v.access_index);
    } else if (access.offset != v.byte_offset || access.width != width) {
      RawAccess extra = access;
      extra.width = width;
      extra.offset = v.byte_offset;
      extra.caller_compared = false;
      accesses_.push_back(extra);
      v.access_index = static_cast<int>(accesses_.size()) - 1;
      refined_.insert(v.access_index);
    }
    v.width = width;
  }

  void mem_store(const Val& off, const Val& val) {
    if (off.kind != Val::Kind::kConst || !off.constant.fits_u64() ||
        off.constant.low64() > (16u << 20)) {
      mem_.clear();
      return;
    }
    const std::uint64_t o = off.constant.low64();
    for (auto it = mem_.begin(); it != mem_.end();) {
      const bool overlaps = it->first + 32 > o && it->first < o + 32;
      if (overlaps && it->first != o) {
        it = mem_.erase(it);
      } else {
        ++it;
      }
    }
    mem_[o] = val;
  }

  Val mem_load(std::uint64_t o) const {
    const auto it = mem_.find(o);
    return it == mem_.end() ? Val::unknown() : it->second;
  }

  void record_access(const Val& slot, bool is_write, std::uint8_t offset,
                     std::uint8_t width, WriteOrigin origin, bool guarded,
                     std::uint32_t pc) {
    RawAccess access;
    if (slot.kind == Val::Kind::kConst) {
      access.slot = slot.constant;
    } else {
      access.family_id = slot.family_id;
    }
    access.is_write = is_write;
    access.offset = offset;
    access.width = width;
    access.origin = origin;
    access.guarded = guarded;
    access.pc = pc;
    accesses_.push_back(access);
  }

  static bool clobbers_memory(Opcode op) {
    switch (op) {
      case Opcode::MSTORE8:
      case Opcode::CALLDATACOPY:
      case Opcode::CODECOPY:
      case Opcode::RETURNDATACOPY:
      case Opcode::EXTCODECOPY:
      case Opcode::MCOPY:
      case Opcode::CALL:
      case Opcode::CALLCODE:
      case Opcode::DELEGATECALL:
      case Opcode::STATICCALL:
      case Opcode::CREATE:
      case Opcode::CREATE2:
        return true;
      default:
        return false;
    }
  }

  void step(const Instruction& ins) {
    const std::uint8_t byte = ins.byte;
    const Opcode op = ins.opcode();

    if (clobbers_memory(op)) mem_.clear();

    if (evm::is_push(byte)) {
      Val v;
      v.kind = Val::Kind::kConst;
      v.constant = ins.push_value();
      v.width = static_cast<std::uint8_t>(
          std::max<std::size_t>(ins.immediate.size(), 1));
      push(std::move(v));
      return;
    }
    if (evm::is_dup(byte)) {
      const std::size_t n = static_cast<std::size_t>(byte - 0x80) + 1;
      push(n <= stack_.size() ? stack_[stack_.size() - n] : Val::unknown());
      return;
    }
    if (evm::is_swap(byte)) {
      const std::size_t n = static_cast<std::size_t>(byte - 0x90) + 1;
      if (n < stack_.size()) {
        std::swap(stack_.back(), stack_[stack_.size() - 1 - n]);
      } else {
        stack_.clear();  // lost track; poison the block-local stack
      }
      return;
    }

    switch (op) {
      case Opcode::CALLER: {
        Val v;
        v.kind = Val::Kind::kCaller;
        v.width = 20;
        push(std::move(v));
        return;
      }
      case Opcode::CALLDATALOAD: {
        pop();
        Val v;
        v.kind = Val::Kind::kCalldata;
        push(std::move(v));
        return;
      }
      case Opcode::MSTORE: {
        const Val off = pop();
        const Val value = pop();
        mem_store(off, value);
        return;
      }
      case Opcode::KECCAK256: {
        const Val off = pop();
        const Val size = pop();
        if (off.kind == Val::Kind::kConst && off.constant.fits_u64() &&
            size.kind == Val::Kind::kConst) {
          const std::uint64_t o = off.constant.low64();
          if (size.constant == U256{0x40}) {
            // Solidity mapping element: keccak256(key ++ base_slot).
            push(derive_hash(mem_load(o + 32), /*mapping=*/true, mem_load(o)));
            return;
          }
          if (size.constant == U256{0x20}) {
            // Dynamic-array data start: keccak256(base_slot).
            push(derive_hash(mem_load(o), /*mapping=*/false, Val::unknown()));
            return;
          }
        }
        Val v;
        v.kind = Val::Kind::kHashed;  // unresolved (family_id -1)
        push(std::move(v));
        return;
      }
      case Opcode::ADD: {
        Val a = pop();
        Val b = pop();
        if (b.kind == Val::Kind::kHashed && a.kind != Val::Kind::kHashed) {
          std::swap(a, b);
        }
        // keccak(base) + index stays in the family, but is no longer the
        // family start (cannot seed a nested derivation).
        if (a.kind == Val::Kind::kHashed && a.family_id >= 0 &&
            b.kind != Val::Kind::kHashed) {
          a.displaced = true;
          if (b.kind == Val::Kind::kCalldata) {
            FamilyKey& f = families_[static_cast<std::size_t>(a.family_id)];
            f.key = KeyOrigin::kCalldata;
          }
          push(std::move(a));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::SLOAD: {
        const Val slot = pop();
        const bool resolved =
            slot.kind == Val::Kind::kConst ||
            (slot.kind == Val::Kind::kHashed && slot.family_id >= 0);
        if (!resolved) {
          push(Val::unknown());
          return;
        }
        record_access(slot, /*is_write=*/false, 0, 32, WriteOrigin::kUnknown,
                      false, ins.pc);
        Val v;
        v.kind = Val::Kind::kSload;
        v.family_id = slot.kind == Val::Kind::kHashed ? slot.family_id : -1;
        v.access_index = static_cast<int>(accesses_.size()) - 1;
        push(std::move(v));
        return;
      }
      case Opcode::SSTORE: {
        const Val slot = pop();
        const Val value = pop();
        const bool resolved =
            slot.kind == Val::Kind::kConst ||
            (slot.kind == Val::Kind::kHashed && slot.family_id >= 0);
        if (!resolved) return;
        const bool guarded = guarded_pcs_.contains(current_block_start_);
        if (value.kind == Val::Kind::kPacked) {
          // The read-modify-write idiom writes only the hole's bytes.
          record_access(slot, /*is_write=*/true, value.byte_offset,
                        value.width, value.shifted_origin, guarded, ins.pc);
          return;
        }
        std::uint8_t width = value.width;
        WriteOrigin origin = WriteOrigin::kUnknown;
        switch (value.kind) {
          case Val::Kind::kConst: origin = WriteOrigin::kConstant; break;
          case Val::Kind::kCaller:
            origin = WriteOrigin::kCaller;
            width = 20;
            break;
          case Val::Kind::kCalldata: origin = WriteOrigin::kCalldata; break;
          case Val::Kind::kSload: origin = WriteOrigin::kStorage; break;
          default: break;
        }
        record_access(slot, /*is_write=*/true, 0, width, origin, guarded,
                      ins.pc);
        return;
      }
      case Opcode::AND: {
        Val a = pop();
        Val b = pop();
        if (a.kind == Val::Kind::kConst && b.kind != Val::Kind::kConst) {
          std::swap(a, b);
        }
        // a = value, b = mask (if constant)
        if (b.kind == Val::Kind::kConst) {
          if (a.kind == Val::Kind::kHashed) {
            push(std::move(a));  // mask narrows the value, keeps the family
            return;
          }
          if (const auto w = low_mask_width(b.constant)) {
            if (a.kind == Val::Kind::kSload) {
              refine_read(a, *w);
            } else {
              a.width = std::min(a.width, *w);
            }
            push(std::move(a));
            return;
          }
          // Hole mask: sload & ~(mask << 8k) — first half of a packed write.
          if (a.kind == Val::Kind::kSload) {
            if (const auto hole = contiguous_byte_mask(~b.constant)) {
              a.is_hole = true;
              a.hole_offset = hole->first;
              a.hole_width = hole->second;
              const std::uint8_t saved_offset = a.byte_offset;
              a.byte_offset = hole->first;
              refine_read(a, hole->second);
              a.byte_offset = saved_offset;
              push(std::move(a));
              return;
            }
          }
        }
        push(Val::unknown());
        return;
      }
      case Opcode::EQ: {
        Val a = pop();
        Val b = pop();
        Val* caller = nullptr;
        Val* other = nullptr;
        if (a.kind == Val::Kind::kCaller) {
          caller = &a;
          other = &b;
        } else if (b.kind == Val::Kind::kCaller) {
          caller = &b;
          other = &a;
        }
        if (caller != nullptr && other->kind == Val::Kind::kSload &&
            other->access_index >= 0) {
          // CALLER comparison types the read as an address at the read's
          // packing offset (refine_read, not a direct width clobber — same
          // fix as core::storage_profile).
          refine_read(*other, 20);
          auto& access =
              accesses_[static_cast<std::size_t>(other->access_index)];
          access.caller_compared = true;
          Val check;
          check.kind = Val::Kind::kCallerCheck;
          check.width = 1;
          push(std::move(check));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::ISZERO: {
        Val a = pop();
        if (a.kind == Val::Kind::kCallerCheck) {
          a.negated = !a.negated;
          push(std::move(a));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::SHL: {
        const Val shift = pop();
        Val value = pop();
        const bool typed = value.kind == Val::Kind::kCaller ||
                           value.kind == Val::Kind::kCalldata ||
                           value.kind == Val::Kind::kConst;
        if (typed && shift.kind == Val::Kind::kConst &&
            shift.constant.fits_u64() && shift.constant.low64() < 256 &&
            shift.constant.low64() % 8 == 0) {
          value.byte_offset =
              static_cast<std::uint8_t>(shift.constant.low64() / 8);
          switch (value.kind) {
            case Val::Kind::kCaller:
              value.shifted_origin = WriteOrigin::kCaller;
              break;
            case Val::Kind::kCalldata:
              value.shifted_origin = WriteOrigin::kCalldata;
              break;
            default:
              value.shifted_origin = WriteOrigin::kConstant;
              break;
          }
          push(std::move(value));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::OR: {
        Val a = pop();
        Val b = pop();
        if (b.is_hole && !a.is_hole) std::swap(a, b);
        if (a.is_hole) {
          WriteOrigin origin = WriteOrigin::kUnknown;
          if (b.shifted_origin != WriteOrigin::kUnknown &&
              b.byte_offset == a.hole_offset) {
            origin = b.shifted_origin;
          } else if (a.hole_offset == 0) {
            switch (b.kind) {
              case Val::Kind::kCaller: origin = WriteOrigin::kCaller; break;
              case Val::Kind::kCalldata:
                origin = WriteOrigin::kCalldata;
                break;
              case Val::Kind::kConst: origin = WriteOrigin::kConstant; break;
              default: break;
            }
          }
          if (origin != WriteOrigin::kUnknown) {
            Val packed;
            packed.kind = Val::Kind::kPacked;
            packed.family_id = a.family_id;
            packed.byte_offset = a.hole_offset;
            packed.width = a.hole_width;
            packed.shifted_origin = origin;
            push(std::move(packed));
            return;
          }
        }
        push_unknown(1);
        return;
      }
      case Opcode::SHR: {
        const Val shift = pop();
        Val value = pop();
        if (value.kind == Val::Kind::kSload &&
            shift.kind == Val::Kind::kConst && shift.constant.fits_u64() &&
            shift.constant.low64() < 256 && shift.constant.low64() % 8 == 0) {
          value.byte_offset = static_cast<std::uint8_t>(
              value.byte_offset + shift.constant.low64() / 8);
          push(std::move(value));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::JUMPI: {
        const Val target = pop();
        const Val cond = pop();
        if (cond.kind == Val::Kind::kCallerCheck && !cond.negated &&
            target.kind == Val::Kind::kConst && target.constant.fits_u64()) {
          guarded_pcs_.insert(
              static_cast<std::uint32_t>(target.constant.low64()));
        }
        if (cond.kind == Val::Kind::kCallerCheck && cond.negated) {
          guarded_pcs_.insert(ins.pc + 1);
        }
        return;
      }
      default: {
        const auto& info = ins.info();
        for (int i = 0; i < info.stack_in; ++i) pop();
        push_unknown(info.stack_out);
        return;
      }
    }
  }

  std::vector<RawAccess>& accesses_;
  std::vector<FamilyKey>& families_;
  std::unordered_set<std::uint32_t>& guarded_pcs_;
  std::vector<Val> stack_;
  std::map<std::uint64_t, Val> mem_;
  std::unordered_set<int> refined_;  // access indices already typed once
};

WriteOrigin origin_of(const AbstractValue& v) {
  switch (v.kind) {
    case AbstractValue::Kind::kConst: return WriteOrigin::kConstant;
    case AbstractValue::Kind::kCalldata: return WriteOrigin::kCalldata;
    case AbstractValue::Kind::kStorage: return WriteOrigin::kStorage;
    default: return WriteOrigin::kUnknown;
  }
}

/// Merge rule for write provenance: exactly one distinct non-unknown origin
/// survives; disagreement degrades to unknown.
WriteOrigin merge_origin(WriteOrigin a, WriteOrigin b) {
  if (a == WriteOrigin::kUnknown) return b;
  if (b == WriteOrigin::kUnknown) return a;
  return a == b ? a : WriteOrigin::kUnknown;
}

KeyOrigin merge_key(KeyOrigin a, KeyOrigin b) {
  if (a == KeyOrigin::kCalldata || b == KeyOrigin::kCalldata) {
    return KeyOrigin::kCalldata;
  }
  if (a == KeyOrigin::kUnknown) return b;
  if (b == KeyOrigin::kUnknown) return a;
  return a == b ? a : KeyOrigin::kUnknown;
}

}  // namespace

bool StorageLayout::admits_slot(const U256& slot) const noexcept {
  for (const LayoutMember& m : members) {
    if (m.slot == slot) return true;
  }
  return false;
}

bool StorageLayout::covers_range(const U256& slot, std::uint8_t offset,
                                 std::uint8_t width) const noexcept {
  const unsigned end = std::min(32u, static_cast<unsigned>(offset) + width);
  for (unsigned b = offset; b < end; ++b) {
    bool covered = false;
    for (const LayoutMember& m : members) {
      if (m.slot == slot && b >= m.offset &&
          b < static_cast<unsigned>(m.offset) + m.width) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

const SlotFamily* StorageLayout::family(const U256& base_slot,
                                        std::uint8_t depth,
                                        std::uint8_t path) const noexcept {
  for (const SlotFamily& f : families) {
    if (f.base_slot == base_slot && f.depth == depth && f.path == path) {
      return &f;
    }
  }
  return nullptr;
}

std::string StorageLayout::to_string() const {
  std::ostringstream out;
  for (const LayoutMember& m : members) {
    out << "slot " << m.slot.to_hex() << " [" << int{m.offset} << "+"
        << int{m.width} << ")";
    if (m.read) out << " r";
    if (m.written) out << " w";
    if (m.caller_compared) out << " sensitive";
    if (m.unguarded_write) out << " unguarded";
    out << '\n';
  }
  for (const SlotFamily& f : families) {
    out << "family " << f.base_slot.to_hex() << " depth=" << int{f.depth}
        << " path=" << int{f.path} << " [" << int{f.value_offset} << "+"
        << int{f.value_width} << ")";
    if (f.read) out << " r";
    if (f.written) out << " w";
    if (f.key_origin == KeyOrigin::kCalldata) out << " calldata-key";
    out << '\n';
  }
  out << "unresolved=" << unresolved_accesses
      << " complete=" << (cfg_complete ? 1 : 0) << '\n';
  return out.str();
}

StorageLayout infer_layout(const evm::Disassembly& dis, const Cfg& cfg) {
  StorageLayout layout;
  layout.cfg_complete = cfg.complete;

  // ---- pass 1+2: block-local scan (guard discovery, then attribution) ----
  std::vector<RawAccess> raw;
  std::vector<FamilyKey> family_keys;
  std::unordered_set<std::uint32_t> guarded_pcs;
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) {
      raw.clear();
      family_keys.clear();
    }
    LayoutScanner scanner(raw, family_keys, guarded_pcs);
    for (const evm::BasicBlock& block : dis.blocks()) {
      scanner.current_block_start_ = block.start_pc;
      scanner.run(dis.instructions(), block.first_instruction,
                  block.instruction_count);
    }
  }

  // ---- union with the CFG's path-sensitive storage facts -----------------
  // The scanner resolves widths/offsets/guards; the facts resolve slots the
  // scanner's block-local view missed (cross-block computations) and decide
  // reliability: a reachable access neither stream resolves is a claim the
  // layout cannot make.
  std::unordered_set<std::uint32_t> scanned_pcs;
  for (const RawAccess& a : raw) scanned_pcs.insert(a.pc);

  for (const StorageFact& fact : cfg.storage_facts) {
    if (!fact.reachable) continue;
    if (fact.slot.is_const()) {
      if (!scanned_pcs.contains(fact.pc)) {
        RawAccess access;
        access.slot = fact.slot.payload;
        access.is_write = fact.is_write;
        access.origin = origin_of(fact.value);
        access.pc = fact.pc;
        raw.push_back(access);
      }
      continue;
    }
    if (fact.slot.is_hashed()) {
      if (!scanned_pcs.contains(fact.pc)) {
        RawAccess access;
        access.family_id = -2;  // resolved below via fact_families
        access.is_write = fact.is_write;
        access.origin = origin_of(fact.value);
        access.pc = fact.pc;
        raw.push_back(access);
        // Intern the fact's family identity alongside the scanner's.
        int id = -1;
        for (std::size_t i = 0; i < family_keys.size(); ++i) {
          FamilyKey& f = family_keys[i];
          if (f.base == fact.slot.payload &&
              f.depth == fact.slot.hash_depth &&
              f.path == fact.slot.hash_path) {
            f.key = merge_key(f.key, fact.slot.key_origin);
            id = static_cast<int>(i);
            break;
          }
        }
        if (id < 0) {
          family_keys.push_back({fact.slot.payload, fact.slot.hash_depth,
                                 fact.slot.hash_path, fact.slot.key_origin});
          id = static_cast<int>(family_keys.size()) - 1;
        }
        raw.back().family_id = id;
      }
      continue;
    }
    ++layout.unresolved_accesses;
  }

  // ---- aggregate raw accesses into members and families ------------------
  for (const RawAccess& a : raw) {
    if (a.family_id < 0) {
      LayoutMember* member = nullptr;
      for (LayoutMember& m : layout.members) {
        if (m.slot == a.slot && m.offset == a.offset && m.width == a.width) {
          member = &m;
          break;
        }
      }
      if (member == nullptr) {
        LayoutMember m;
        m.slot = a.slot;
        m.offset = a.offset;
        m.width = a.width;
        layout.members.push_back(m);
        member = &layout.members.back();
      }
      member->read |= !a.is_write;
      member->written |= a.is_write;
      member->caller_compared |= a.caller_compared;
      if (a.is_write) {
        member->unguarded_write |= !a.guarded;
        member->write_origin = merge_origin(member->write_origin, a.origin);
      }
    } else {
      const FamilyKey& key = family_keys[static_cast<std::size_t>(a.family_id)];
      SlotFamily* family = nullptr;
      for (SlotFamily& f : layout.families) {
        if (f.base_slot == key.base && f.depth == key.depth &&
            f.path == key.path) {
          family = &f;
          break;
        }
      }
      if (family == nullptr) {
        SlotFamily f;
        f.base_slot = key.base;
        f.depth = key.depth;
        f.path = key.path;
        f.value_offset = a.offset;
        f.value_width = a.width;
        layout.families.push_back(f);
        family = &layout.families.back();
      } else if (family->value_offset != a.offset ||
                 family->value_width != a.width) {
        // Conflicting typed views of the element value: widen to the whole
        // word (families keep a single range, unlike packed static slots).
        family->value_offset = 0;
        family->value_width = 32;
      }
      family->key_origin = merge_key(family->key_origin, key.key);
      family->read |= !a.is_write;
      family->written |= a.is_write;
      family->caller_compared |= a.caller_compared;
      if (a.is_write) {
        family->unguarded_write |= !a.guarded;
        family->write_origin = merge_origin(family->write_origin, a.origin);
      }
    }
  }

  std::sort(layout.members.begin(), layout.members.end(),
            [](const LayoutMember& a, const LayoutMember& b) {
              if (!(a.slot == b.slot)) return a.slot < b.slot;
              if (a.offset != b.offset) return a.offset < b.offset;
              return a.width < b.width;
            });
  std::sort(layout.families.begin(), layout.families.end(),
            [](const SlotFamily& a, const SlotFamily& b) {
              if (!(a.base_slot == b.base_slot)) {
                return a.base_slot < b.base_slot;
              }
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.path < b.path;
            });

  obs::Registry& reg = obs::Registry::global();
  static obs::Counter& inferred = reg.counter("layout.inferred");
  static obs::Counter& unresolved = reg.counter("layout.unresolved_accesses");
  inferred.add(1);
  unresolved.add(layout.unresolved_accesses);

  return layout;
}

StorageLayout infer_layout(const evm::Disassembly& dis) {
  return infer_layout(dis, recover_cfg(dis));
}

}  // namespace proxion::static_analysis
