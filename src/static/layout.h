// Bytecode-only storage-layout inference (ROADMAP item 3, after Dedaub's
// "Precise Static Identification of Ethereum Storage Variables"): recovers a
// per-contract StorageLayout — static slots with packed sub-word member
// ranges, and keccak-derived mapping/dynamic-array slot families — from the
// disassembly plus the abstract interpreter's storage facts (cfg.h).
//
// Two evidence streams are unioned:
//   * a block-local mask/shift scanner (the width/offset conventions of
//     core::StorageAccess: a bool read masks 0xff, an address masks 2^160-1
//     or compares against CALLER, packed writes carve a hole) extended with
//     an abstract memory so `keccak256(key ++ base_slot)` derivations
//     resolve to slot families instead of being dropped;
//   * the CFG's per-site StorageFacts, which are path-sensitive and catch
//     cross-block slot computations the scanner misses.
//
// Soundness posture mirrors the PR-4 oracle pattern: the layout makes
// contradictable claims only while `reliable()` holds — the CFG must be
// complete and every reachable SLOAD/SSTORE must have resolved to a static
// slot or a slot family. Anything weaker and downstream consumers (the
// kMismatchLayout* cross-check, the source-free collision mode) must treat
// the contract as uncovered, never as wrongly covered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "static/cfg.h"

namespace proxion::static_analysis {

/// Provenance of the value written into a storage range (mirrors
/// core::ValueOrigin; duplicated here because src/static cannot depend on
/// src/core).
enum class WriteOrigin : std::uint8_t {
  kUnknown,
  kConstant,
  kCaller,    // derived from CALLER (msg.sender)
  kCalldata,  // derived from CALLDATALOAD
  kStorage,   // derived from another SLOAD
};

/// One typed view of a static slot: the byte range [offset, offset+width)
/// counted from the slot's least-significant end (Solidity packing).
struct LayoutMember {
  U256 slot{};
  std::uint8_t offset = 0;
  std::uint8_t width = 32;
  bool read = false;
  bool written = false;
  /// The range feeds a CALLER-equality comparison somewhere (the CRUSH
  /// "sensitive slot" notion).
  bool caller_compared = false;
  /// Some write to this range executes outside a caller-equality guard.
  bool unguarded_write = false;
  WriteOrigin write_origin = WriteOrigin::kUnknown;

  friend bool operator==(const LayoutMember&, const LayoutMember&) = default;
};

/// A keccak-derived slot family: every element of a mapping / dynamic array
/// rooted at `base_slot`. `depth` keccak applications; bit (level-1) of
/// `path` says whether that level hashed `key ++ slot` (mapping, bit set)
/// or `slot` alone (array, bit clear).
struct SlotFamily {
  U256 base_slot{};
  std::uint8_t depth = 1;
  std::uint8_t path = 0;
  AbstractValue::KeyOrigin key_origin = AbstractValue::KeyOrigin::kUnknown;
  /// Typed view of the element value (packed sub-word refinement applies to
  /// family elements exactly as to static slots).
  std::uint8_t value_offset = 0;
  std::uint8_t value_width = 32;
  bool read = false;
  bool written = false;
  bool caller_compared = false;
  bool unguarded_write = false;
  WriteOrigin write_origin = WriteOrigin::kUnknown;

  /// Family identity (what two contracts must share to collide).
  bool same_identity(const SlotFamily& o) const noexcept {
    return base_slot == o.base_slot && depth == o.depth && path == o.path;
  }

  friend bool operator==(const SlotFamily&, const SlotFamily&) = default;
};

/// Inferred storage layout of one contract. Pure function of the bytecode —
/// memoized per code hash by core::AnalysisCache.
struct StorageLayout {
  std::vector<LayoutMember> members;  // sorted by (slot, offset, width)
  std::vector<SlotFamily> families;   // sorted by (base_slot, depth, path)
  /// Reachable SLOAD/SSTORE sites whose abstract slot resolved to neither a
  /// constant nor a slot family — each one is a claim the layout cannot
  /// make, so any nonzero count disables `reliable()`.
  std::uint32_t unresolved_accesses = 0;
  bool cfg_complete = false;

  /// The layout covers every storage access emulation can perform: only
  /// then may the cross-check oracle contradict an observed access.
  bool reliable() const noexcept {
    return cfg_complete && unresolved_accesses == 0;
  }

  /// Any member at this static slot (any byte range)?
  bool admits_slot(const U256& slot) const noexcept;
  /// Is every byte of [offset, offset+width) on `slot` covered by the union
  /// of member ranges recorded for it?
  bool covers_range(const U256& slot, std::uint8_t offset,
                    std::uint8_t width) const noexcept;
  /// The family with this identity, or nullptr.
  const SlotFamily* family(const U256& base_slot, std::uint8_t depth,
                           std::uint8_t path) const noexcept;

  /// Deterministic rendering for tests and debugging.
  std::string to_string() const;

  friend bool operator==(const StorageLayout&, const StorageLayout&) = default;
};

/// Infers the layout from the disassembly and its recovered CFG. Bumps the
/// global obs counter `layout.inferred` once per (cold) invocation.
StorageLayout infer_layout(const evm::Disassembly& dis, const Cfg& cfg);

/// Convenience overload: recovers the CFG itself (recover_cfg is pure, so
/// this is equivalent to the two-argument form).
StorageLayout infer_layout(const evm::Disassembly& dis);

}  // namespace proxion::static_analysis
