// DELEGATECALL provenance over a recovered CFG (cfg.h): classifies each
// site's target operand (hardcoded PUSH20, storage-slot load with the
// concrete slot, calldata-derived, unknown), recognizes the exact EIP-1167
// minimal-proxy runtime, and derives the two proof facts the detector's
// triage tier consumes — "no DELEGATECALL is reachable" and "the probe
// provably terminates cleanly". Everything here is a pure function of the
// bytecode; core::AnalysisCache memoizes the report under the code-hash key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "static/cfg.h"

namespace proxion::static_analysis {

/// Provenance of a DELEGATECALL's target operand.
enum class TargetClass : std::uint8_t {
  kUnknown,      // not traceable (or the site was never abstractly executed)
  kHardcoded,    // constant — address embedded in the bytecode
  kStorageSlot,  // SLOAD from a concrete slot (possibly AND-masked to 160b)
  kCalldata,     // derived from calldata — the caller chooses the target
};

std::string_view to_string(TargetClass c) noexcept;

struct DelegatecallSite {
  std::uint32_t pc = 0;
  bool reachable = false;  // abstractly executed on some path from pc 0
  TargetClass target_class = TargetClass::kUnknown;
  U256 slot{};           // meaningful iff kStorageSlot
  evm::Address address;  // meaningful iff kHardcoded (low 160 bits of target)

  friend bool operator==(const DelegatecallSite&,
                         const DelegatecallSite&) = default;
};

/// Knobs the detector/pipeline expose for the triage tier.
struct StaticTierConfig {
  /// Run the static pass: dead-DELEGATECALL / minimal-proxy blobs skip
  /// phase-2 emulation, recovered slots seed the logic finder.
  bool enabled = false;
  /// After emulation, compare the static verdict against the emulated one
  /// and surface typed mismatch diagnostics (soundness oracle; the verdict
  /// itself always comes from emulation).
  bool cross_check = false;
  /// Infer a per-contract storage layout (layout.h) from the recovered CFG:
  /// static slots, keccak-derived mapping/array slot families, and packed
  /// sub-word members. Feeds the source-free storage-collision mode and the
  /// kMismatchLayout* cross-check bits.
  bool infer_layout = false;
};

struct StaticReport {
  Cfg cfg;
  /// One entry per DELEGATECALL instruction, sorted by pc.
  std::vector<DelegatecallSite> sites;

  bool has_delegatecall = false;  // any site at all (phase-1 equivalent)
  bool any_reachable_delegatecall = false;
  /// CFG complete and no DELEGATECALL abstractly executed on any path: the
  /// interpreter cannot execute one either (the abstract edges cover every
  /// concrete path while `cfg.complete`).
  bool provably_no_delegatecall = false;
  /// CFG complete, reachable subgraph acyclic, no reachable fault / unsafe
  /// terminator / external call, and all memory operands constant: a probe
  /// executes at most cfg.reachable_instructions steps and at most
  /// cfg.worst_case_gas gas before halting cleanly.
  bool provably_clean_termination = false;
  /// Set iff the code is byte-exactly the 45-byte EIP-1167 runtime; the
  /// detector fast-paths these without emulation.
  std::optional<evm::Address> minimal_proxy_target;

  /// True when the detector may skip phase-2 emulation entirely: no
  /// DELEGATECALL can execute AND the probe provably halts cleanly within
  /// the detector's gas and step budgets — the emulated report is forced to
  /// (kNotProxy, kStop/kReturn/kRevert) and carries no other signal.
  bool skip_dead(std::uint64_t emulation_gas,
                 std::uint64_t step_limit) const noexcept {
    return provably_no_delegatecall && provably_clean_termination &&
           cfg.worst_case_gas < emulation_gas &&
           cfg.reachable_instructions < step_limit;
  }

  /// Sites that were abstractly executed, in pc order.
  std::vector<DelegatecallSite> reachable_sites() const;
};

/// Full static pass: recover_cfg + site classification + EIP-1167 match.
/// Bumps the global obs counters static.cfg.blocks_recovered and
/// static.cfg.unresolved_jumps once per (cold) invocation.
StaticReport analyze(const evm::Disassembly& dis, const CfgOptions& options = {});

}  // namespace proxion::static_analysis
