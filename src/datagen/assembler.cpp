#include "datagen/assembler.h"

namespace proxion::datagen {

Assembler& Assembler::op(Opcode opcode) {
  code_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

Assembler& Assembler::dup(int n) {
  if (n < 1 || n > 16) throw std::invalid_argument("dup: n out of range");
  code_.push_back(static_cast<std::uint8_t>(0x80 + n - 1));
  return *this;
}

Assembler& Assembler::swap(int n) {
  if (n < 1 || n > 16) throw std::invalid_argument("swap: n out of range");
  code_.push_back(static_cast<std::uint8_t>(0x90 + n - 1));
  return *this;
}

Assembler& Assembler::push(const U256& value) {
  int width = (value.bit_length() + 7) / 8;
  if (width == 0) width = 1;
  return push(value, width);
}

Assembler& Assembler::push(const U256& value, int width) {
  if (width < 1 || width > 32) {
    throw std::invalid_argument("push width out of range");
  }
  if (value.bit_length() > width * 8) {
    throw std::invalid_argument("push value does not fit width");
  }
  code_.push_back(static_cast<std::uint8_t>(0x5f + width));
  const auto be = value.to_be_bytes();
  code_.insert(code_.end(), be.end() - width, be.end());
  return *this;
}

Assembler& Assembler::push_bytes(BytesView data) {
  if (data.empty() || data.size() > 32) {
    throw std::invalid_argument("push_bytes: bad size");
  }
  code_.push_back(static_cast<std::uint8_t>(0x5f + data.size()));
  code_.insert(code_.end(), data.begin(), data.end());
  return *this;
}

Assembler& Assembler::push_selector(std::uint32_t selector) {
  const std::uint8_t be[4] = {
      static_cast<std::uint8_t>(selector >> 24),
      static_cast<std::uint8_t>(selector >> 16),
      static_cast<std::uint8_t>(selector >> 8),
      static_cast<std::uint8_t>(selector),
  };
  return push_bytes(BytesView(be, 4));
}

Assembler& Assembler::push_address(const evm::Address& address) {
  return push_bytes(BytesView(address.bytes));
}

Assembler& Assembler::label(const std::string& name) {
  if (!labels_.emplace(name, static_cast<std::uint16_t>(code_.size())).second) {
    throw std::runtime_error("duplicate label: " + name);
  }
  return *this;
}

Assembler& Assembler::jumpdest(const std::string& name) {
  label(name);
  return op(Opcode::JUMPDEST);
}

Assembler& Assembler::push_label(const std::string& name) {
  code_.push_back(0x61);  // PUSH2
  fixups_.emplace_back(code_.size(), name);
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Assembler& Assembler::raw(BytesView data) {
  code_.insert(code_.end(), data.begin(), data.end());
  return *this;
}

Bytes Assembler::assemble() const {
  if (code_.size() > 0xffff) {
    throw std::runtime_error("assembled code exceeds 64 KiB");
  }
  Bytes out = code_;
  for (const auto& [offset, name] : fixups_) {
    const auto it = labels_.find(name);
    if (it == labels_.end()) {
      throw std::runtime_error("undefined label: " + name);
    }
    out[offset] = static_cast<std::uint8_t>(it->second >> 8);
    out[offset + 1] = static_cast<std::uint8_t>(it->second & 0xff);
  }
  return out;
}

Bytes Assembler::wrap_initcode(
    BytesView runtime,
    const std::vector<std::pair<U256, U256>>& constructor_stores) {
  Assembler a;
  for (const auto& [slot, value] : constructor_stores) {
    a.push(value).push(slot).op(Opcode::SSTORE);
  }
  // CODECOPY(destOffset=0, offset=<runtime_start>, length=len); RETURN(0, len)
  a.push(U256{runtime.size()}, 2)
      .push_label("runtime_start")
      .push(U256{0})
      .op(Opcode::CODECOPY)
      .push(U256{runtime.size()}, 2)
      .push(U256{0})
      .op(Opcode::RETURN)
      .label("runtime_start")
      .raw(runtime);
  return a.assemble();
}

}  // namespace proxion::datagen
