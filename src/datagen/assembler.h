// A small two-pass EVM assembler with labels, used by the contract factory
// to emit realistic runtime bytecode (solc-style dispatchers, proxy
// fallbacks, constructors). Label references assemble to fixed-width PUSH2
// so the second pass only patches offsets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "evm/opcodes.h"
#include "evm/types.h"

namespace proxion::datagen {

using evm::Bytes;
using evm::BytesView;
using evm::Opcode;
using evm::U256;

class Assembler {
 public:
  /// Appends a bare opcode.
  Assembler& op(Opcode opcode);
  /// DUPn / SWAPn (n in 1..16).
  Assembler& dup(int n);
  Assembler& swap(int n);

  /// PUSHn with the minimal width holding `value` (PUSH1 for zero).
  Assembler& push(const U256& value);
  /// PUSHn with an explicit width (1..32); throws if the value doesn't fit.
  Assembler& push(const U256& value, int width);
  /// PUSHn of raw bytes (width = data.size()).
  Assembler& push_bytes(BytesView data);
  /// PUSH4 of a function selector.
  Assembler& push_selector(std::uint32_t selector);
  /// PUSH20 of an address.
  Assembler& push_address(const evm::Address& address);

  /// Defines `name` at the current offset (does not emit JUMPDEST itself).
  Assembler& label(const std::string& name);
  /// Emits JUMPDEST and defines `name` at its offset.
  Assembler& jumpdest(const std::string& name);
  /// PUSH2 <name> — patched to the label's offset at assemble() time.
  Assembler& push_label(const std::string& name);

  /// Embeds raw bytes verbatim (data sections, canned sequences).
  Assembler& raw(BytesView data);

  std::size_t size() const noexcept { return code_.size(); }

  /// Resolves labels and returns the bytecode. Throws std::runtime_error on
  /// undefined labels or offsets that do not fit in two bytes.
  Bytes assemble() const;

  /// Wraps runtime code in a standard deployment wrapper:
  ///   <prologue> CODECOPY(0, offset, len) RETURN(0, len) <runtime>
  /// `constructor_stores` are (slot, value) pairs SSTOREd before returning —
  /// how factory proxies initialize their logic-address slot.
  static Bytes wrap_initcode(
      BytesView runtime,
      const std::vector<std::pair<U256, U256>>& constructor_stores = {});

 private:
  Bytes code_;
  std::unordered_map<std::string, std::uint16_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;  // offset of hi byte
};

}  // namespace proxion::datagen
