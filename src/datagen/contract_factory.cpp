#include "datagen/contract_factory.h"

#include "crypto/keccak.h"

namespace proxion::datagen {

using evm::U256;

namespace {

const U256& mask160() {
  static const U256 m = (U256{1} << U256{160}) - U256{1};
  return m;
}

U256 hash_slot(std::string_view preimage, bool minus_one) {
  crypto::Hash256 h = crypto::keccak256(preimage);
  U256 v = evm::to_u256(h);
  if (minus_one) v = v - U256{1};
  return v;
}

void push_zero(Assembler& a) { a.push(U256{0}, 1); }

/// Pushes a slot with its natural width (PUSH1 for small, PUSH32 for hashed).
void push_slot(Assembler& a, const U256& slot) {
  if (slot.fits_u64() && slot.low64() <= 0xff) {
    a.push(slot, 1);
  } else {
    a.push(slot, 32);
  }
}

}  // namespace

const U256& ContractFactory::eip1967_slot() {
  static const U256 s = hash_slot("eip1967.proxy.implementation", true);
  return s;
}

const U256& ContractFactory::eip1822_slot() {
  static const U256 s = hash_slot("PROXIABLE", false);
  return s;
}

const U256& ContractFactory::diamond_base_slot() {
  static const U256 s = hash_slot("diamond.standard.diamond.storage", false);
  return s;
}

Bytes ContractFactory::minimal_proxy(const Address& logic) {
  // Canonical EIP-1167 runtime:
  //   363d3d373d3d3d363d73 <logic> 5af43d82803e903d91602b57fd5bf3
  Bytes code = crypto::from_hex("363d3d373d3d3d363d73");
  code.insert(code.end(), logic.bytes.begin(), logic.bytes.end());
  const Bytes tail = crypto::from_hex("5af43d82803e903d91602b57fd5bf3");
  code.insert(code.end(), tail.begin(), tail.end());
  return code;
}

void ContractFactory::emit_dispatcher(Assembler& a,
                                      const std::vector<FunctionSpec>& funcs) {
  // solc free-memory-pointer preamble; also a realistic non-selector MSTORE.
  a.push(U256{0x80}, 1).push(U256{0x40}, 1).op(Opcode::MSTORE);
  // if (calldatasize < 4) goto fallback
  a.push(U256{4}, 1)
      .op(Opcode::CALLDATASIZE)
      .op(Opcode::LT)
      .push_label("fallback")
      .op(Opcode::JUMPI);
  // selector = calldataload(0) >> 224
  a.push(U256{0}, 1)
      .op(Opcode::CALLDATALOAD)
      .push(U256{0xe0}, 1)
      .op(Opcode::SHR);
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    a.op(Opcode::DUP1)
        .push_selector(funcs[i].selector())
        .op(Opcode::EQ)
        .push_label("fn" + std::to_string(i))
        .op(Opcode::JUMPI);
  }
  // No selector matched: fall through into the fallback.
}

void ContractFactory::emit_body(Assembler& a, const FunctionSpec& func,
                                const std::string& label) {
  a.jumpdest(label);
  switch (func.body) {
    case BodyKind::kStop:
      a.op(Opcode::STOP);
      break;
    case BodyKind::kReturnConstant:
      a.push(func.aux.is_zero() ? U256{0} : func.aux);
      push_zero(a);
      a.op(Opcode::MSTORE);
      a.push(U256{32}, 1);
      push_zero(a);
      a.op(Opcode::RETURN);
      break;
    case BodyKind::kReturnStorageWord:
    case BodyKind::kReturnStorageAddress:
    case BodyKind::kReturnStorageBool:
    case BodyKind::kReturnStorageBoolAtOffset:
      push_slot(a, func.slot);
      a.op(Opcode::SLOAD);
      if (func.body == BodyKind::kReturnStorageAddress) {
        a.push(mask160(), 20).op(Opcode::AND);
      } else if (func.body == BodyKind::kReturnStorageBool) {
        a.push(U256{0xff}, 1).op(Opcode::AND);
      } else if (func.body == BodyKind::kReturnStorageBoolAtOffset) {
        // Solidity packed-variable access: (slot >> 8k) & 0xff.
        a.push(func.aux * U256{8}).op(Opcode::SHR);
        a.push(U256{0xff}, 1).op(Opcode::AND);
      }
      push_zero(a);
      a.op(Opcode::MSTORE);
      a.push(U256{32}, 1);
      push_zero(a);
      a.op(Opcode::RETURN);
      break;
    case BodyKind::kStoreBoolPackedAt: {
      // sstore(slot, (sload(slot) & ~(0xff << 8k)) | (1 << 8k))
      const unsigned k = static_cast<unsigned>(func.aux.low64());
      const U256 hole = ~(U256{0xff} << U256{8 * k});
      push_slot(a, func.slot);
      a.op(Opcode::SLOAD);
      a.push(hole, 32).op(Opcode::AND);
      a.push(U256{1}, 1);
      a.push(U256{8 * k}, 1).op(Opcode::SHL);
      a.op(Opcode::OR);
      push_slot(a, func.slot);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    }
    case BodyKind::kStoreArgWord:
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
      push_slot(a, func.slot);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kStoreArgAddress:
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
      a.push(mask160(), 20).op(Opcode::AND);
      push_slot(a, func.slot);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kStoreCaller:
      a.op(Opcode::CALLER);
      push_slot(a, func.slot);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kGuardedStoreArgAddress:
      // require(msg.sender == address(owner_slot))
      a.op(Opcode::CALLER);
      push_slot(a, func.aux);
      a.op(Opcode::SLOAD).push(mask160(), 20).op(Opcode::AND);
      a.op(Opcode::EQ).push_label(label + "_ok").op(Opcode::JUMPI);
      push_zero(a);
      push_zero(a);
      a.op(Opcode::REVERT);
      a.jumpdest(label + "_ok");
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
      a.push(mask160(), 20).op(Opcode::AND);
      push_slot(a, func.slot);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kRevert:
      push_zero(a);
      push_zero(a);
      a.op(Opcode::REVERT);
      break;
    case BodyKind::kTransferToCaller:
      // call(gas, caller, aux, 0, 0, 0, 0); pop; stop
      push_zero(a);  // retSize
      push_zero(a);  // retOffset
      push_zero(a);  // argsSize
      push_zero(a);  // argsOffset
      a.push(func.aux.is_zero() ? U256{1} : func.aux);  // value
      a.op(Opcode::CALLER).op(Opcode::GAS).op(Opcode::CALL).op(Opcode::POP);
      a.op(Opcode::STOP);
      break;
    case BodyKind::kDelegateToLibrary: {
      // The library-call idiom §2.2 excludes from proxies: a *named*
      // function delegatecalls the library with RE-ENCODED calldata — the
      // library function's own selector plus our argument bytes — rather
      // than forwarding the original calldata verbatim.
      const std::uint32_t inner = func.aux2.is_zero()
                                      ? crypto::selector_u32(
                                            "add(uint256,uint256)")
                                      : static_cast<std::uint32_t>(
                                            func.aux2.low64());
      a.push_selector(inner);
      a.push(U256{0xe0}, 1).op(Opcode::SHL);
      push_zero(a);
      a.op(Opcode::MSTORE);  // mem[0..4) = inner selector
      // calldatacopy(dest=4, offset=4, size=calldatasize-4)
      a.push(U256{4}, 1).op(Opcode::CALLDATASIZE).op(Opcode::SUB);
      a.push(U256{4}, 1);
      a.push(U256{4}, 1);
      a.op(Opcode::CALLDATACOPY);
      push_zero(a);  // retSize
      push_zero(a);  // retOffset
      a.op(Opcode::CALLDATASIZE);  // argsSize (selector swapped, same length)
      push_zero(a);  // argsOffset
      a.push(func.aux, 20);
      a.op(Opcode::GAS).op(Opcode::DELEGATECALL).op(Opcode::POP);
      a.op(Opcode::STOP);
      break;
    }
    case BodyKind::kAudiusInitialize:
      // require(!initialized) — a 1-byte (bool) read of slot 0 ...
      push_zero(a);
      a.op(Opcode::SLOAD).push(U256{0xff}, 1).op(Opcode::AND);
      a.op(Opcode::ISZERO).push_label(label + "_init").op(Opcode::JUMPI);
      push_zero(a);
      push_zero(a);
      a.op(Opcode::REVERT);
      a.jumpdest(label + "_init");
      // ... then an *unguarded* 20-byte CALLER write to the same slot: the
      // Listing-2 bug (owner and the init flags share slot 0).
      a.op(Opcode::CALLER);
      push_zero(a);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kMapReadArg:
      // Solidity mapping element read: slot = keccak256(key ++ base).
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
      push_zero(a);
      a.op(Opcode::MSTORE);  // mem[0..32) = key
      push_slot(a, func.slot);
      a.push(U256{0x20}, 1).op(Opcode::MSTORE);  // mem[32..64) = base slot
      a.push(U256{0x40}, 1);
      push_zero(a);
      a.op(Opcode::KECCAK256);
      a.op(Opcode::SLOAD);
      push_zero(a);
      a.op(Opcode::MSTORE);
      a.push(U256{32}, 1);
      push_zero(a);
      a.op(Opcode::RETURN);
      break;
    case BodyKind::kMapWriteArg:
      // mapping[calldataload(4)] = calldataload(0x24) — unguarded.
      a.push(U256{0x24}, 1).op(Opcode::CALLDATALOAD);  // value
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
      push_zero(a);
      a.op(Opcode::MSTORE);
      push_slot(a, func.slot);
      a.push(U256{0x20}, 1).op(Opcode::MSTORE);
      a.push(U256{0x40}, 1);
      push_zero(a);
      a.op(Opcode::KECCAK256);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kMapWriteCallerKey:
      // mapping[msg.sender] = calldataload(4).
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);  // value
      a.op(Opcode::CALLER);
      push_zero(a);
      a.op(Opcode::MSTORE);
      push_slot(a, func.slot);
      a.push(U256{0x20}, 1).op(Opcode::MSTORE);
      a.push(U256{0x40}, 1);
      push_zero(a);
      a.op(Opcode::KECCAK256);
      a.op(Opcode::SSTORE).op(Opcode::STOP);
      break;
    case BodyKind::kArrayReadArg:
      // Dynamic array element read: slot = keccak256(base) + index.
      push_slot(a, func.slot);
      push_zero(a);
      a.op(Opcode::MSTORE);  // mem[0..32) = base slot
      a.push(U256{0x20}, 1);
      push_zero(a);
      a.op(Opcode::KECCAK256);
      a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
      a.op(Opcode::ADD);
      a.op(Opcode::SLOAD);
      push_zero(a);
      a.op(Opcode::MSTORE);
      a.push(U256{32}, 1);
      push_zero(a);
      a.op(Opcode::RETURN);
      break;
    case BodyKind::kPush4Garbage:
      // Arbitrary 4-byte data after PUSH4 — not function selectors.
      a.push_selector(0xdeadbeef);
      push_zero(a);
      a.op(Opcode::MSTORE);
      a.push_selector(0xcafebabe);
      a.push(U256{0x20}, 1);
      a.op(Opcode::MSTORE);
      a.push(U256{0x40}, 1);
      push_zero(a);
      a.op(Opcode::RETURN);
      break;
  }
}

void ContractFactory::emit_delegate_fallback_from_slot(Assembler& a,
                                                       const U256& slot) {
  a.jumpdest("fallback");
  // calldatacopy(0, 0, calldatasize)
  a.op(Opcode::CALLDATASIZE);
  push_zero(a);
  push_zero(a);
  a.op(Opcode::CALLDATACOPY);
  // delegatecall(gas, address(sload(slot)), 0, calldatasize, 0, 0)
  push_zero(a);  // retSize
  push_zero(a);  // retOffset
  a.op(Opcode::CALLDATASIZE);
  push_zero(a);  // argsOffset
  push_slot(a, slot);
  a.op(Opcode::SLOAD).push(mask160(), 20).op(Opcode::AND);
  a.op(Opcode::GAS).op(Opcode::DELEGATECALL);
  // returndatacopy(0, 0, returndatasize)
  a.op(Opcode::RETURNDATASIZE);
  push_zero(a);
  push_zero(a);
  a.op(Opcode::RETURNDATACOPY);
  a.push_label("dc_ok").op(Opcode::JUMPI);
  a.op(Opcode::RETURNDATASIZE);
  push_zero(a);
  a.op(Opcode::REVERT);
  a.jumpdest("dc_ok");
  a.op(Opcode::RETURNDATASIZE);
  push_zero(a);
  a.op(Opcode::RETURN);
}

namespace {

Bytes build_with_fallback(const std::vector<FunctionSpec>& funcs,
                          const U256& delegate_slot) {
  Assembler a;
  ContractFactory::emit_dispatcher(a, funcs);
  ContractFactory::emit_delegate_fallback_from_slot(a, delegate_slot);
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    ContractFactory::emit_body(a, funcs[i], "fn" + std::to_string(i));
  }
  return a.assemble();
}

Bytes build_plain(const std::vector<FunctionSpec>& funcs) {
  Assembler a;
  ContractFactory::emit_dispatcher(a, funcs);
  a.jumpdest("fallback");
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    ContractFactory::emit_body(a, funcs[i], "fn" + std::to_string(i));
  }
  return a.assemble();
}

}  // namespace

Bytes ContractFactory::slot_proxy(const U256& slot,
                                  const std::vector<FunctionSpec>& funcs) {
  return build_with_fallback(funcs, slot);
}

Bytes ContractFactory::eip1967_proxy(const std::vector<FunctionSpec>& funcs) {
  return build_with_fallback(funcs, eip1967_slot());
}

Bytes ContractFactory::eip1822_proxy(const std::vector<FunctionSpec>& funcs) {
  return build_with_fallback(funcs, eip1822_slot());
}

Bytes ContractFactory::transparent_proxy() {
  const U256 admin_slot = hash_slot("eip1967.proxy.admin", true);
  Assembler a;
  // if (caller == admin) goto admin dispatcher, else plain delegate fallback.
  a.op(Opcode::CALLER);
  a.push(admin_slot, 32).op(Opcode::SLOAD).push(mask160(), 20).op(Opcode::AND);
  a.op(Opcode::EQ).push_label("admin").op(Opcode::JUMPI);
  emit_delegate_fallback_from_slot(a, eip1967_slot());
  a.jumpdest("admin");
  a.push(U256{0}, 1)
      .op(Opcode::CALLDATALOAD)
      .push(U256{0xe0}, 1)
      .op(Opcode::SHR);
  a.op(Opcode::DUP1)
      .push_selector(crypto::selector_u32("upgradeTo(address)"))
      .op(Opcode::EQ)
      .push_label("do_upgrade")
      .op(Opcode::JUMPI);
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  a.jumpdest("do_upgrade");
  a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
  a.push(mask160(), 20).op(Opcode::AND);
  a.push(eip1967_slot(), 32);
  a.op(Opcode::SSTORE).op(Opcode::STOP);
  return a.assemble();
}

Bytes ContractFactory::diamond_proxy() {
  Assembler a;
  // facet = facets[selector]; mapping slot = keccak(selector_word ++ base)
  a.push(U256{0}, 1)
      .op(Opcode::CALLDATALOAD)
      .push(U256{0xe0}, 1)
      .op(Opcode::SHR);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(diamond_base_slot(), 32);
  a.push(U256{0x20}, 1).op(Opcode::MSTORE);
  a.push(U256{0x40}, 1).push(U256{0}, 1).op(Opcode::KECCAK256);
  a.op(Opcode::SLOAD);
  a.op(Opcode::DUP1).op(Opcode::ISZERO).push_label("nofacet").op(Opcode::JUMPI);
  // forward calldata to the facet (address still on the stack)
  a.op(Opcode::CALLDATASIZE);
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::CALLDATACOPY);
  a.push(U256{0}, 1);        // retSize
  a.push(U256{0}, 1);        // retOffset
  a.op(Opcode::CALLDATASIZE);  // argsSize
  a.push(U256{0}, 1);        // argsOffset
  a.dup(5);                  // facet address
  a.op(Opcode::GAS).op(Opcode::DELEGATECALL);
  a.op(Opcode::RETURNDATASIZE);
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::RETURNDATACOPY);
  a.push_label("dia_ok").op(Opcode::JUMPI);
  a.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).op(Opcode::REVERT);
  a.jumpdest("dia_ok");
  a.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).op(Opcode::RETURN);
  a.jumpdest("nofacet");
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  return a.assemble();
}

Bytes ContractFactory::plain_contract(const std::vector<FunctionSpec>& funcs) {
  return build_plain(funcs);
}

Bytes ContractFactory::beacon_proxy() {
  const U256 beacon_slot = hash_slot("eip1967.proxy.beacon", true);
  Assembler a;
  // impl = IBeacon(sload(beacon_slot)).implementation()  [STATICCALL]
  a.push_selector(crypto::selector_u32("implementation()"));
  a.push(U256{0xe0}, 1).op(Opcode::SHL);
  a.push(U256{0}, 1).op(Opcode::MSTORE);  // mem[0..4) = selector
  a.push(U256{0x20}, 1);                  // retSize
  a.push(U256{0}, 1);                     // retOffset
  a.push(U256{4}, 1);                     // argsSize
  a.push(U256{0}, 1);                     // argsOffset
  a.push(beacon_slot, 32).op(Opcode::SLOAD);
  a.push(mask160(), 20).op(Opcode::AND);
  a.op(Opcode::GAS).op(Opcode::STATICCALL).op(Opcode::POP);
  a.push(U256{0}, 1).op(Opcode::MLOAD);
  a.push(mask160(), 20).op(Opcode::AND);  // impl address on the stack
  // forward the original calldata to impl
  a.op(Opcode::CALLDATASIZE);
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::CALLDATACOPY);
  a.push(U256{0}, 1);          // retSize
  a.push(U256{0}, 1);          // retOffset
  a.op(Opcode::CALLDATASIZE);  // argsSize
  a.push(U256{0}, 1);          // argsOffset
  a.dup(5);                    // impl
  a.op(Opcode::GAS).op(Opcode::DELEGATECALL);
  a.op(Opcode::RETURNDATASIZE);
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::RETURNDATACOPY);
  a.push_label("bx_ok").op(Opcode::JUMPI);
  a.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).op(Opcode::REVERT);
  a.jumpdest("bx_ok");
  a.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).op(Opcode::RETURN);
  return a.assemble();
}

Bytes ContractFactory::beacon() {
  return build_plain({
      {.prototype = "implementation()",
       .body = BodyKind::kReturnStorageAddress, .slot = U256{0}},
      {.prototype = "upgradeTo(address)",
       .body = BodyKind::kGuardedStoreArgAddress, .slot = U256{0},
       .aux = U256{1}},
  });
}

Bytes ContractFactory::garbage_push4_contract() {
  return build_plain({
      {.prototype = "store(uint256)", .body = BodyKind::kStoreArgWord,
       .slot = U256{3}},
      {.prototype = "magic()", .body = BodyKind::kPush4Garbage},
      {.prototype = "value()", .body = BodyKind::kReturnStorageWord,
       .slot = U256{3}},
  });
}

Bytes ContractFactory::library_user(const Address& library) {
  return build_plain({
      {.prototype = "compute(uint256)", .body = BodyKind::kDelegateToLibrary,
       .aux = library.to_word()},
      {.prototype = "result()", .body = BodyKind::kReturnStorageWord,
       .slot = U256{7}},
  });
}

Bytes ContractFactory::math_library() {
  return build_plain({
      {.prototype = "add(uint256,uint256)", .body = BodyKind::kReturnConstant,
       .aux = U256{42}},
      {.prototype = "mul(uint256,uint256)", .body = BodyKind::kReturnConstant,
       .aux = U256{1764}},
  });
}

Bytes ContractFactory::infinite_loop_contract() {
  // Entry point IS the loop: every call path spins forever. The DELEGATECALL
  // after the unconditional JUMP can never execute, but the linear opcode
  // scan still sees it — so the detector's §4.1 prefilter cannot shortcut
  // this contract to kNotProxy, and emulation must run into the step fuse.
  Assembler a;
  a.jumpdest("spin");
  a.push(U256{0}, 1).op(Opcode::POP);
  a.push_label("spin").op(Opcode::JUMP);
  a.op(Opcode::DELEGATECALL);  // unreachable prefilter bait
  return a.assemble();
}

Bytes ContractFactory::deep_recursion_contract() {
  // Self-CALL in a loop: descends until the call depth (or the emulator's
  // budget) is exhausted, then re-dials — each frame spins up a fresh copy
  // of this same code, so the step count grows without bound. Same
  // unreachable-DELEGATECALL bait as infinite_loop_contract().
  Assembler a;
  a.jumpdest("again");
  a.push(U256{0}, 1);     // retLen
  a.push(U256{0}, 1);     // retOffset
  a.push(U256{0}, 1);     // argLen
  a.push(U256{0}, 1);     // argOffset
  a.push(U256{0}, 1);     // value
  a.op(Opcode::ADDRESS);  // to = self
  a.op(Opcode::GAS);
  a.op(Opcode::CALL);
  a.op(Opcode::POP);
  a.push_label("again").op(Opcode::JUMP);
  a.op(Opcode::DELEGATECALL);  // unreachable prefilter bait
  return a.assemble();
}

Bytes ContractFactory::push_data_delegatecall_contract() {
  // Every 0xf4 byte sits inside a PUSH32 immediate, so the linear sweep
  // (which skips push data) sees no DELEGATECALL instruction anywhere.
  U256 f4_word{};
  for (int limb = 0; limb < 4; ++limb) {
    // 0xf4f4...f4 across the full word.
    f4_word = (f4_word << U256{64}) | U256{0xf4f4f4f4f4f4f4f4ull};
  }
  Assembler a;
  a.push(f4_word, 32);
  push_zero(a);
  a.op(Opcode::MSTORE);
  a.push(U256{32}, 1);
  push_zero(a);
  a.op(Opcode::RETURN);
  return a.assemble();
}

Bytes ContractFactory::dead_delegatecall_contract() {
  // Entry unconditionally jumps over an island holding a complete (and
  // perfectly well-formed) DELEGATECALL sequence. The island has no
  // JUMPDEST, so no input can ever reach it — but the linear sweep still
  // disassembles it, defeating the §4.1 opcode prefilter. Everything
  // actually reachable is constant, acyclic, and clean-halting: the static
  // tier's dead-skip proof applies in full.
  Assembler a;
  a.push_label("live").op(Opcode::JUMP);
  // -- dead island (no jumpdest) --
  push_zero(a);  // retSize
  push_zero(a);  // retOffset
  push_zero(a);  // argsSize
  push_zero(a);  // argsOffset
  a.push_address(Address::from_label("dead.logic"));
  a.op(Opcode::GAS).op(Opcode::DELEGATECALL).op(Opcode::POP);
  a.op(Opcode::STOP);
  // -- live path --
  a.jumpdest("live");
  a.push(U256{0x1234}, 2);
  push_zero(a);
  a.op(Opcode::MSTORE);
  a.push(U256{32}, 1);
  push_zero(a);
  a.op(Opcode::RETURN);
  return a.assemble();
}

Bytes ContractFactory::computed_jump_contract(const U256& slot) {
  // target = fallback + (calldataload(0) & 1): lands exactly on the
  // fallback JUMPDEST for any calldata whose 32nd byte is even — including
  // the detector's probe — but the operand is calldata-tainted, so the
  // abstract stack must leave the jump unresolved and the tier must defer
  // to emulation, which then witnesses a genuine forwarding DELEGATECALL.
  Assembler a;
  push_zero(a);
  a.op(Opcode::CALLDATALOAD);
  a.push(U256{1}, 1).op(Opcode::AND);
  a.push_label("fallback").op(Opcode::ADD).op(Opcode::JUMP);
  emit_delegate_fallback_from_slot(a, slot);
  return a.assemble();
}

Bytes ContractFactory::honeypot_proxy(const U256& logic_slot,
                                      std::uint32_t colliding_selector) {
  // Listing 1: the proxy function shadows the logic's lure (same selector)
  // and "steals" from the caller (modelled as a caller-marking write).
  std::vector<FunctionSpec> funcs = {
      {.prototype = "", .body = BodyKind::kStoreCaller, .slot = U256{99}},
      {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
  };
  funcs[0].raw_selector = colliding_selector;
  return build_with_fallback(funcs, logic_slot);
}

Bytes ContractFactory::honeypot_logic(std::uint32_t lure_selector) {
  std::vector<FunctionSpec> funcs = {
      {.prototype = "", .body = BodyKind::kTransferToCaller,
       .aux = U256{10'000'000'000ull}},
  };
  funcs[0].raw_selector = lure_selector;
  return build_plain(funcs);
}

Bytes ContractFactory::audius_style_proxy() {
  // Slot 0 = owner (address, 20 bytes); slot 1 = logic address.
  return build_with_fallback(
      {
          {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
           .slot = U256{0}},
          {.prototype = "upgradeTo(address)",
           .body = BodyKind::kGuardedStoreArgAddress, .slot = U256{1},
           .aux = U256{0}},
      },
      U256{1});
}

Bytes ContractFactory::audius_style_logic() {
  // Slot 0 = initialized/initializing flags (bool bytes) in the logic's own
  // layout — colliding with the proxy's owner.
  return build_plain({
      {.prototype = "initialize()", .body = BodyKind::kAudiusInitialize,
       .slot = U256{0}},
      {.prototype = "initialized()", .body = BodyKind::kReturnStorageBool,
       .slot = U256{0}},
      {.prototype = "work(uint256)", .body = BodyKind::kStoreArgWord,
       .slot = U256{5}},
  });
}

Bytes ContractFactory::token_contract(std::uint64_t salt) {
  return build_plain({
      {.prototype = "totalSupply()", .body = BodyKind::kReturnConstant,
       .aux = U256{1'000'000 + salt}},
      {.prototype = "balanceOf(address)",
       .body = BodyKind::kReturnStorageWord, .slot = U256{2}},
      {.prototype = "transfer(address,uint256)",
       .body = BodyKind::kStoreArgWord, .slot = U256{2}},
      {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
  });
}

Bytes ContractFactory::mapping_token_contract(std::uint64_t salt) {
  return build_plain({
      {.prototype = "totalSupply()", .body = BodyKind::kReturnConstant,
       .aux = U256{2'000'000 + salt}},
      {.prototype = "balanceOf(address)", .body = BodyKind::kMapReadArg,
       .slot = U256{2}},
      {.prototype = "transfer(address,uint256)",
       .body = BodyKind::kMapWriteArg, .slot = U256{2}},
      {.prototype = "approve(uint256)", .body = BodyKind::kMapWriteCallerKey,
       .slot = U256{3}},
      {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
  });
}

Bytes ContractFactory::packed_config_contract() {
  return build_plain({
      {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
      {.prototype = "paused()", .body = BodyKind::kReturnStorageBoolAtOffset,
       .slot = U256{0}, .aux = U256{20}},
      {.prototype = "pause()", .body = BodyKind::kStoreBoolPackedAt,
       .slot = U256{0}, .aux = U256{20}},
      {.prototype = "setOwner(address)",
       .body = BodyKind::kGuardedStoreArgAddress, .slot = U256{0},
       .aux = U256{0}},
      {.prototype = "values(uint256)", .body = BodyKind::kArrayReadArg,
       .slot = U256{1}},
  });
}

}  // namespace proxion::datagen
