// Deterministic synthetic Ethereum population mirroring the paper's §7
// landscape at a reduced scale: the year-by-year deployment growth (Fig 2),
// the proxy-standard mix (Table 4: EIP-1167 ~89%, EIP-1967 ~1%, EIP-1822
// ~0.12%, others ~10%), source/transaction availability ratios (hidden
// contracts ≈ 47%), bytecode-duplicate skew driven by three mega clone
// families (Fig 5), rare upgrade events (Fig 6), and injected collision
// pairs (Table 3: a dominant duplicated function-collision family plus rare
// Audius-style storage collisions).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "chain/blockchain.h"
#include "core/pipeline.h"
#include "sourcemeta/source.h"

namespace proxion::datagen {

enum class Archetype : std::uint8_t {
  kMinimalProxy,      // EIP-1167 clone
  kEip1967Proxy,
  kTransparentProxy,  // EIP-1967 with admin routing
  kEip1822Proxy,
  kCustomSlotProxy,   // non-standard slot ("others" in Table 4)
  kBeaconProxy,       // EIP-1967 beacon indirection (also "others")
  kWyvernCloneProxy,  // duplicated proxy whose 3 functions collide w/ logic
  kHoneypotProxy,     // Listing 1
  kAudiusProxy,       // Listing 2
  kDiamondProxy,      // EIP-2535, known Proxion miss
  kLibraryUser,       // delegatecall outside fallback: NOT a proxy
  kLibrary,
  kToken,             // plain non-proxy contract
  kGarbagePush4,      // non-proxy with PUSH4 constants in bodies
  kLogicImpl,         // standalone logic implementation
  kBroken,            // malformed bytecode that faults under emulation (§7.1)
};

std::string_view to_string(Archetype a) noexcept;

struct DeployedContract {
  evm::Address address;
  Archetype archetype = Archetype::kToken;
  int year = 2015;
  bool has_source = false;
  bool has_tx = false;

  // Ground-truth labels (never visible to the analyses):
  bool is_proxy_truth = false;
  evm::Address logic_truth;       // current logic contract, if proxy
  std::uint32_t upgrades_truth = 0;
  bool function_collision_truth = false;
  bool storage_collision_truth = false;
};

struct PopulationSpec {
  std::uint64_t seed = 20240920;
  /// Approximate number of contracts to generate across all years.
  std::uint32_t total_contracts = 12'000;
  /// EVM chain id (§8.2 multi-chain: 1 mainnet, 137 Polygon, 56 BSC, ...).
  std::uint64_t chain_id = 1;
  /// Fraction of proxy source records that hide the delegation from
  /// source-level heuristics (models Slither/USCHunt proxy misses, §6.3).
  double obscure_source_fraction = 0.15;
  /// Fraction of source records with an unknown compiler version (models
  /// USCHunt's ~30% compile failures, §6.2).
  double unknown_compiler_fraction = 0.30;
};

struct Population {
  std::unique_ptr<chain::Blockchain> chain;
  sourcemeta::SourceRepository sources;
  std::vector<DeployedContract> contracts;

  /// Adapts the records to the pipeline's input format.
  std::vector<core::SweepInput> sweep_inputs() const;
};

class PopulationGenerator {
 public:
  Population generate(const PopulationSpec& spec) const;

  static constexpr int kFirstYear = 2015;
  static constexpr int kLastYear = 2023;
  static constexpr std::uint64_t kBlocksPerYear = 400;
};

}  // namespace proxion::datagen
