#include "datagen/population.h"

#include <algorithm>
#include <random>

#include "crypto/eth.h"
#include "datagen/contract_factory.h"

namespace proxion::datagen {

using chain::Blockchain;
using evm::Address;
using evm::U256;
using sourcemeta::FunctionDecl;
using sourcemeta::SourceRecord;
using sourcemeta::VariableDecl;

std::string_view to_string(Archetype a) noexcept {
  switch (a) {
    case Archetype::kMinimalProxy: return "minimal-proxy";
    case Archetype::kEip1967Proxy: return "eip1967-proxy";
    case Archetype::kTransparentProxy: return "transparent-proxy";
    case Archetype::kEip1822Proxy: return "eip1822-proxy";
    case Archetype::kCustomSlotProxy: return "custom-slot-proxy";
    case Archetype::kBeaconProxy: return "beacon-proxy";
    case Archetype::kWyvernCloneProxy: return "wyvern-clone-proxy";
    case Archetype::kHoneypotProxy: return "honeypot-proxy";
    case Archetype::kAudiusProxy: return "audius-proxy";
    case Archetype::kDiamondProxy: return "diamond-proxy";
    case Archetype::kLibraryUser: return "library-user";
    case Archetype::kLibrary: return "library";
    case Archetype::kToken: return "token";
    case Archetype::kGarbagePush4: return "garbage-push4";
    case Archetype::kLogicImpl: return "logic-impl";
    case Archetype::kBroken: return "broken";
  }
  return "?";
}

std::vector<core::SweepInput> Population::sweep_inputs() const {
  std::vector<core::SweepInput> out;
  out.reserve(contracts.size());
  for (const DeployedContract& c : contracts) {
    out.push_back({c.address, c.year, c.has_source, c.has_tx});
  }
  return out;
}

namespace {

/// Relative share of all deployments landing in each year (Fig 2's growth:
/// pre-2021 holds nearly half the cumulative mass, mostly non-proxies).
constexpr double kYearWeight[9] = {0.5, 2.0, 5.0, 7.5, 8.0,
                                   9.0, 13.0, 14.0, 13.0};
/// Fraction of that year's deployments that are proxies (§7.2: ~12% of the
/// pre-2020 mass, >93% by 2022; overall 54.2%).
constexpr double kProxyFraction[9] = {0.02, 0.05, 0.12, 0.15, 0.15,
                                      0.25, 0.80, 0.93, 0.93};
/// Fraction of that year's deployments with verified source (aggregate <20%).
constexpr double kSourceFraction[9] = {0.60, 0.55, 0.50, 0.45, 0.42,
                                       0.38, 0.25, 0.16, 0.15};
/// Fraction with at least one past transaction (aggregate ~53%).
constexpr double kTxFraction[9] = {0.90, 0.85, 0.80, 0.75, 0.70,
                                   0.60, 0.50, 0.40, 0.35};

/// Proxy sub-archetype weights per year index. Columns:
/// {cointool-clone, xen-clone, generic-minimal, wyvern-clone, eip1967,
///  transparent, eip1822, custom-slot, diamond, honeypot, audius}
struct ProxyMix {
  double cointool, xen, minimal, wyvern, eip1967, transparent, eip1822,
      custom, diamond, honeypot, audius;
};
ProxyMix proxy_mix(int year_index) {
  if (year_index <= 2) {  // 2015-2017: pre-EIP, hand-rolled slots
    return {0, 0, 0.30, 0, 0, 0, 0, 0.66, 0, 0.02, 0.02};
  }
  if (year_index <= 4) {  // 2018-2019: standardization phase
    return {0, 0, 0.55, 0.20, 0.06, 0.02, 0.01, 0.12, 0.005, 0.02, 0.015};
  }
  if (year_index == 5) {  // 2020
    return {0.02, 0, 0.60, 0.16, 0.05, 0.02, 0.005, 0.12, 0.005, 0.01, 0.01};
  }
  if (year_index == 6) {  // 2021: clone explosion begins
    return {0.19, 0.07, 0.58, 0.10, 0.012, 0.004, 0.001, 0.032, 0.003, 0.004,
            0.004};
  }
  // 2022-2023: minimal clones dominate
  return {0.25, 0.17, 0.52, 0.04, 0.007, 0.003, 0.001, 0.016, 0.002, 0.002,
          0.002};
}

class Generator {
 public:
  Generator(const PopulationSpec& spec)
      : spec_(spec),
        rng_(spec.seed),
        deployer_(Address::from_label("proxion.deployer")) {}

  Population run() {
    pop_.chain = std::make_unique<Blockchain>();
    chain_ = pop_.chain.get();
    chain_->set_chain_id(spec_.chain_id);
    chain_->fund(deployer_, U256{1} << U256{96});

    deploy_shared_infrastructure();

    double total_weight = 0;
    for (const double w : kYearWeight) total_weight += w;

    for (int yi = 0; yi < 9; ++yi) {
      const std::uint64_t year_start =
          static_cast<std::uint64_t>(yi) * PopulationGenerator::kBlocksPerYear;
      chain_->mine_until(year_start + 1);
      const auto count = static_cast<std::uint32_t>(
          spec_.total_contracts * kYearWeight[yi] / total_weight);
      refresh_logic_pool(yi);
      for (std::uint32_t i = 0; i < count; ++i) {
        generate_contract(yi);
        // Spread deployments across the year's block range.
        if (i % 7 == 0) chain_->mine_block();
      }
      chain_->mine_until(year_start + PopulationGenerator::kBlocksPerYear - 1);
    }
    return std::move(pop_);
  }

 private:
  double roll() { return std::uniform_real_distribution<double>(0, 1)(rng_); }
  std::uint64_t roll_u64() { return rng_(); }

  // ---- shared "famous" contracts ---------------------------------------
  void deploy_shared_infrastructure() {
    chain_->mine_until(1);
    // The three mega clone families' logic contracts and the wyvern logic.
    cointool_logic_ = chain_->deploy_runtime(
        deployer_, ContractFactory::token_contract(0xC017001));
    xen_logic_ = chain_->deploy_runtime(
        deployer_, ContractFactory::token_contract(0x0E40001));
    wyvern_logic_ = chain_->deploy_runtime(deployer_, wyvern_logic_code());
    honeypot_logic_ = chain_->deploy_runtime(
        deployer_,
        ContractFactory::honeypot_logic(
            crypto::selector_u32("free_ether_withdrawal()")));
    audius_logic_ = chain_->deploy_runtime(
        deployer_, ContractFactory::audius_style_logic());
    library_ = chain_->deploy_runtime(deployer_,
                                      ContractFactory::math_library());
    record_infra(cointool_logic_, Archetype::kLogicImpl, true);
    record_infra(xen_logic_, Archetype::kLogicImpl, true);
    record_infra(wyvern_logic_, Archetype::kLogicImpl, true);
    record_infra(honeypot_logic_, Archetype::kLogicImpl, true);
    record_infra(audius_logic_, Archetype::kLogicImpl, true);
    record_infra(library_, Archetype::kLibrary, true);
    publish_wyvern_logic_source(wyvern_logic_);
    publish_audius_logic_source(audius_logic_);
    publish_token_source(cointool_logic_);
    publish_token_source(xen_logic_);
    publish_honeypot_logic_source(honeypot_logic_);
    publish_library_source(library_);
  }

  void publish_honeypot_logic_source(const Address& address) {
    SourceRecord rec;
    rec.contract_name = "Logic";
    rec.functions = {{.prototype = "free_ether_withdrawal()"}};
    finalize_record(rec, false);
    pop_.sources.publish(address, std::move(rec));
  }

  void publish_library_source(const Address& address) {
    SourceRecord rec;
    rec.contract_name = "MathLib";
    rec.functions = {{.prototype = "add(uint256,uint256)"},
                     {.prototype = "mul(uint256,uint256)"}};
    finalize_record(rec, false);
    pop_.sources.publish(address, std::move(rec));
  }

  static Bytes wyvern_logic_code() {
    // Shares proxyType()/implementation()/upgradeabilityOwner() with the
    // clone proxies — §7.2's dominant (inheritance-caused) collision family.
    return ContractFactory::plain_contract({
        {.prototype = "proxyType()", .body = BodyKind::kReturnConstant,
         .aux = U256{2}},
        {.prototype = "implementation()",
         .body = BodyKind::kReturnStorageAddress, .slot = U256{2}},
        {.prototype = "upgradeabilityOwner()",
         .body = BodyKind::kReturnStorageAddress, .slot = U256{0}},
        {.prototype = "user()", .body = BodyKind::kReturnStorageAddress,
         .slot = U256{3}},
        {.prototype = "setUser(address)", .body = BodyKind::kStoreArgAddress,
         .slot = U256{3}},
    });
  }

  static Bytes wyvern_proxy_code() {
    return ContractFactory::slot_proxy(
        U256{2}, {
                     {.prototype = "proxyType()",
                      .body = BodyKind::kReturnConstant, .aux = U256{2}},
                     {.prototype = "implementation()",
                      .body = BodyKind::kReturnStorageAddress,
                      .slot = U256{2}},
                     {.prototype = "upgradeabilityOwner()",
                      .body = BodyKind::kReturnStorageAddress,
                      .slot = U256{0}},
                 });
  }

  void record_infra(const Address& a, Archetype kind, bool has_source) {
    DeployedContract c;
    c.address = a;
    c.archetype = kind;
    c.year = 2015;
    c.has_source = has_source;
    c.has_tx = true;
    pop_.contracts.push_back(c);
  }

  // ---- per-year logic pool ----------------------------------------------
  void refresh_logic_pool(int year_index) {
    const int pool_size = 4 + year_index * 3;
    while (static_cast<int>(logic_pool_.size()) < pool_size) {
      // Roughly half the pool reuses a handful of popular codebases: logic
      // contracts get cloned too (Fig 5b's two >10k-duplicate logics).
      const std::uint64_t salt = roll() < 0.5
                                     ? 0x0F00 + (roll_u64() % 3)
                                     : 0x100000 + logic_pool_.size();
      const Address impl = chain_->deploy_runtime(
          deployer_, ContractFactory::token_contract(salt));
      DeployedContract c;
      c.address = impl;
      c.archetype = Archetype::kLogicImpl;
      c.year = PopulationGenerator::kFirstYear + year_index;
      c.has_source = roll() < 0.5;
      c.has_tx = true;
      if (c.has_source) publish_token_source(impl);
      pop_.contracts.push_back(c);
      logic_pool_.push_back(impl);
    }
  }

  Address pick_pool_logic() {
    // Zipf-ish: low indices far more popular (drives Fig 5's mid-tail).
    const double r = roll();
    const auto idx = static_cast<std::size_t>(
        r * r * static_cast<double>(logic_pool_.size()));
    return logic_pool_[std::min(idx, logic_pool_.size() - 1)];
  }

  // ---- one contract ------------------------------------------------------
  void generate_contract(int year_index) {
    DeployedContract c;
    c.year = PopulationGenerator::kFirstYear + year_index;
    if (roll() < 0.035) {  // §7.1: ~4.9% of contracts fail EVM emulation
      generate_broken(year_index, c);
      return;
    }
    const bool is_proxy_roll = roll() < kProxyFraction[year_index];
    if (is_proxy_roll) {
      generate_proxy(year_index, c);
    } else {
      generate_non_proxy(year_index, c);
    }
  }

  void generate_broken(int year_index, DeployedContract& c) {
    c.archetype = Archetype::kBroken;
    // Two fault flavours, both containing DELEGATECALL so they pass the
    // phase-1 prefilter and then fault during emulation: a bare stack
    // underflow, and an infinite loop.
    Bytes code;
    if (roll() < 0.5) {
      code = {0x5b, 0xf4};  // JUMPDEST; DELEGATECALL on empty stack
    } else {
      Assembler a;
      a.jumpdest("loop");
      a.push_label("loop").op(evm::Opcode::JUMP);
      a.op(evm::Opcode::DELEGATECALL);  // unreachable
      code = a.assemble();
    }
    c.address = chain_->deploy_runtime(deployer_, std::move(code));
    // A few broken blobs are nevertheless "verified" (hand-written
    // assembly with published source) — these are the contracts where
    // Proxion's emulation fails although USCHunt could read the source.
    c.has_source = roll() < kSourceFraction[year_index] * 0.4;
    if (c.has_source) {
      SourceRecord rec;
      rec.contract_name = "HandAssembled";
      finalize_record(rec, /*is_proxy=*/false);
      pop_.sources.publish(c.address, std::move(rec));
    }
    c.has_tx = roll() < kTxFraction[year_index];
    pop_.contracts.push_back(c);
  }

  void generate_proxy(int year_index, DeployedContract& c) {
    const ProxyMix mix = proxy_mix(year_index);
    double r = roll();
    auto take = [&](double w) {
      if (r < w) return true;
      r -= w;
      return false;
    };

    if (take(mix.cointool)) {
      make_minimal(c, cointool_logic_, Archetype::kMinimalProxy);
    } else if (take(mix.xen)) {
      make_minimal(c, xen_logic_, Archetype::kMinimalProxy);
    } else if (take(mix.wyvern)) {
      make_wyvern(c);
    } else if (take(mix.eip1967)) {
      make_slot_proxy(c, Archetype::kEip1967Proxy,
                      ContractFactory::eip1967_slot(),
                      ContractFactory::eip1967_proxy());
    } else if (take(mix.transparent)) {
      make_transparent(c);
    } else if (take(mix.eip1822)) {
      make_slot_proxy(c, Archetype::kEip1822Proxy,
                      ContractFactory::eip1822_slot(),
                      ContractFactory::eip1822_proxy());
    } else if (take(mix.custom)) {
      // One in six "non-standard" proxies uses beacon indirection.
      if (roll() < 0.16) {
        make_beacon(c);
      } else {
        make_slot_proxy(c, Archetype::kCustomSlotProxy, U256{0},
                        ContractFactory::slot_proxy(U256{0}));
      }
    } else if (take(mix.diamond)) {
      make_diamond(c);
    } else if (take(mix.honeypot)) {
      make_honeypot(c);
    } else if (take(mix.audius)) {
      make_audius(c);
    } else {
      make_minimal(c, pick_pool_logic(), Archetype::kMinimalProxy);
    }

    finish_contract(year_index, c);
  }

  void generate_non_proxy(int year_index, DeployedContract& c) {
    const double r = roll();
    if (r < 0.05) {
      c.archetype = Archetype::kLibraryUser;
      c.address = chain_->deploy_runtime(
          deployer_, ContractFactory::library_user(library_));
    } else if (r < 0.10) {
      c.archetype = Archetype::kGarbagePush4;
      c.address = chain_->deploy_runtime(
          deployer_, ContractFactory::garbage_push4_contract());
    } else {
      c.archetype = Archetype::kToken;
      // 60% duplicates of a handful of popular token codebases, 40% unique.
      const std::uint64_t salt =
          roll() < 0.6 ? (roll_u64() % 8) : (0x5A17 + unique_counter_++);
      c.address = chain_->deploy_runtime(
          deployer_, ContractFactory::token_contract(salt));
    }
    finish_contract(year_index, c);
  }

  void make_minimal(DeployedContract& c, const Address& logic,
                    Archetype kind) {
    c.archetype = kind;
    c.is_proxy_truth = true;
    c.logic_truth = logic;
    c.address = chain_->deploy_runtime(
        deployer_, ContractFactory::minimal_proxy(logic));
  }

  void make_slot_proxy(DeployedContract& c, Archetype kind, const U256& slot,
                       Bytes code) {
    c.archetype = kind;
    c.is_proxy_truth = true;
    c.logic_truth = pick_pool_logic();
    c.address = chain_->deploy_runtime(deployer_, std::move(code));
    chain_->set_storage(c.address, slot, c.logic_truth.to_word());
    maybe_upgrade(c, slot);
  }

  void make_transparent(DeployedContract& c) {
    c.archetype = Archetype::kTransparentProxy;
    c.is_proxy_truth = true;
    c.logic_truth = pick_pool_logic();
    c.address = chain_->deploy_runtime(deployer_,
                                       ContractFactory::transparent_proxy());
    chain_->set_storage(c.address, ContractFactory::eip1967_slot(),
                        c.logic_truth.to_word());
    const U256 admin_slot =
        evm::to_u256(crypto::eip1967_admin_slot());
    chain_->set_storage(c.address, admin_slot,
                        Address::from_label("proxy.admin").to_word());
    maybe_upgrade(c, ContractFactory::eip1967_slot());
  }

  void make_wyvern(DeployedContract& c) {
    c.archetype = Archetype::kWyvernCloneProxy;
    c.is_proxy_truth = true;
    c.logic_truth = wyvern_logic_;
    c.function_collision_truth = true;  // the 3 inherited selectors collide
    c.address = chain_->deploy_runtime(deployer_, wyvern_proxy_code());
    chain_->set_storage(c.address, U256{2}, wyvern_logic_.to_word());
    chain_->set_storage(c.address, U256{0},
                        Address::from_label("wyvern.owner").to_word());
  }

  void make_honeypot(DeployedContract& c) {
    c.archetype = Archetype::kHoneypotProxy;
    c.is_proxy_truth = true;
    c.logic_truth = honeypot_logic_;
    c.function_collision_truth = true;
    c.address = chain_->deploy_runtime(
        deployer_, ContractFactory::honeypot_proxy(
                       U256{1},
                       crypto::selector_u32("free_ether_withdrawal()")));
    chain_->set_storage(c.address, U256{1}, honeypot_logic_.to_word());
    chain_->set_storage(c.address, U256{0},
                        Address::from_label("honeypot.owner").to_word());
  }

  void make_audius(DeployedContract& c) {
    c.archetype = Archetype::kAudiusProxy;
    c.is_proxy_truth = true;
    c.logic_truth = audius_logic_;
    c.storage_collision_truth = true;
    c.address = chain_->deploy_runtime(deployer_,
                                       ContractFactory::audius_style_proxy());
    chain_->set_storage(c.address, U256{1}, audius_logic_.to_word());
    chain_->set_storage(c.address, U256{0},
                        Address::from_label("audius.owner").to_word());
  }

  void make_beacon(DeployedContract& c) {
    c.archetype = Archetype::kBeaconProxy;
    c.is_proxy_truth = true;
    c.logic_truth = pick_pool_logic();
    const Address beacon =
        chain_->deploy_runtime(deployer_, ContractFactory::beacon());
    chain_->set_storage(beacon, U256{0}, c.logic_truth.to_word());
    chain_->set_storage(beacon, U256{1},
                        Address::from_label("beacon.owner").to_word());
    c.address =
        chain_->deploy_runtime(deployer_, ContractFactory::beacon_proxy());
    chain_->set_storage(c.address,
                        evm::to_u256(crypto::eip1967_beacon_slot()),
                        beacon.to_word());
    // Record the beacon itself as infrastructure.
    DeployedContract b;
    b.address = beacon;
    b.archetype = Archetype::kLogicImpl;
    b.year = c.year;
    b.has_tx = false;
    pop_.contracts.push_back(b);
  }

  void make_diamond(DeployedContract& c) {
    c.archetype = Archetype::kDiamondProxy;
    c.is_proxy_truth = true;  // ground truth: it IS a proxy; Proxion misses it
    c.logic_truth = pick_pool_logic();
    c.address = chain_->deploy_runtime(deployer_,
                                       ContractFactory::diamond_proxy());
    // Register the facet for selector totalSupply() in the diamond mapping.
    const std::uint32_t selector = crypto::selector_u32("totalSupply()");
    std::array<std::uint8_t, 64> preimage{};
    const auto sel_word = U256{selector}.to_be_bytes();
    std::copy(sel_word.begin(), sel_word.end(), preimage.begin());
    const auto base = ContractFactory::diamond_base_slot().to_be_bytes();
    std::copy(base.begin(), base.end(), preimage.begin() + 32);
    const U256 slot = evm::to_u256(crypto::keccak256(preimage));
    chain_->set_storage(c.address, slot, c.logic_truth.to_word());
  }

  void maybe_upgrade(DeployedContract& c, const U256& slot) {
    if (roll() >= 0.05) return;  // Fig 6: the vast majority never upgrade
    // Paper: upgraded proxies average only 1.32 logic contracts, with a
    // tiny long tail reaching ~80 upgrades.
    std::uint32_t upgrades = 1;
    const double tail = roll();
    if (tail < 0.005) {
      upgrades = 20 + static_cast<std::uint32_t>(roll() * 60);  // rare whales
    } else if (tail < 0.20) {
      upgrades = 2 + static_cast<std::uint32_t>(roll() * 2);
    }
    for (std::uint32_t u = 0; u < upgrades; ++u) {
      // Most upgrades keep the layout; ~a quarter rewrite the contract and
      // drift the storage types (§2.3's upgrade-induced collisions).
      const Bytes impl_code =
          roll() < 0.25
              ? ContractFactory::audius_style_logic()
              : ContractFactory::token_contract(0xAB0000 + unique_counter_++);
      const Address impl = chain_->deploy_runtime(deployer_, impl_code);
      chain_->mine_block();
      chain_->set_storage(c.address, slot, impl.to_word());
      c.logic_truth = impl;
    }
    c.upgrades_truth = upgrades;
  }

  // ---- availability + bookkeeping ---------------------------------------
  void finish_contract(int year_index, DeployedContract& c) {
    c.has_source = roll() < source_probability(year_index, c.archetype);
    c.has_tx = roll() < kTxFraction[year_index];
    if (c.has_source) publish_source(c);
    if (c.has_tx) issue_transaction(c);
    pop_.contracts.push_back(c);
  }

  static double source_probability(int year_index, Archetype kind) {
    // Clone families are deployed as raw bytecode: effectively never
    // verified. Wyvern clones inherit the verified source (§7.2).
    switch (kind) {
      case Archetype::kMinimalProxy: return 0.01;
      case Archetype::kWyvernCloneProxy: return 0.60;
      default: return kSourceFraction[year_index];
    }
  }

  void issue_transaction(const DeployedContract& c) {
    const Address user = Address::from_label("population.user");
    Bytes calldata;
    auto with_selector = [&](std::uint32_t sel) {
      calldata.assign(36, 0);
      calldata[0] = static_cast<std::uint8_t>(sel >> 24);
      calldata[1] = static_cast<std::uint8_t>(sel >> 16);
      calldata[2] = static_cast<std::uint8_t>(sel >> 8);
      calldata[3] = static_cast<std::uint8_t>(sel);
    };
    switch (c.archetype) {
      case Archetype::kLibraryUser:
        with_selector(crypto::selector_u32("compute(uint256)"));
        break;
      case Archetype::kDiamondProxy:
      case Archetype::kToken:
      case Archetype::kLogicImpl:
        with_selector(crypto::selector_u32("totalSupply()"));
        break;
      default:
        // Any unmatched selector exercises proxy fallbacks.
        with_selector(0x12345678);
        break;
    }
    chain_->call(user, c.address, calldata);
  }

  // ---- source records ----------------------------------------------------
  void publish_source(const DeployedContract& c) {
    switch (c.archetype) {
      case Archetype::kMinimalProxy:
        publish_proxy_source(c.address, "MinimalProxy", {}, {});
        break;
      case Archetype::kEip1967Proxy:
      case Archetype::kTransparentProxy:
        publish_proxy_source(c.address, "ERC1967Proxy", {}, {});
        break;
      case Archetype::kEip1822Proxy:
        publish_proxy_source(c.address, "UUPSProxy", {}, {});
        break;
      case Archetype::kCustomSlotProxy:
        publish_proxy_source(
            c.address, "LegacyProxy",
            {},
            {{.name = "logic", .type = "address"}});
        break;
      case Archetype::kWyvernCloneProxy:
        publish_proxy_source(
            c.address, "OwnableDelegateProxy",
            {{.prototype = "proxyType()"},
             {.prototype = "implementation()"},
             {.prototype = "upgradeabilityOwner()"}},
            {{.name = "owner", .type = "address"},
             {.name = "reserved", .type = "uint256"},
             {.name = "impl", .type = "address"}});
        break;
      case Archetype::kHoneypotProxy:
        publish_proxy_source(
            c.address, "Proxy",
            {{.prototype = "impl_LUsXCWD2AKCc()"}, {.prototype = "owner()"}},
            {{.name = "owner", .type = "address"},
             {.name = "logic", .type = "address"}});
        break;
      case Archetype::kAudiusProxy:
        publish_proxy_source(
            c.address, "AudiusAdminUpgradeabilityProxy",
            {{.prototype = "owner()"}, {.prototype = "upgradeTo(address)"}},
            {{.name = "owner", .type = "address"},
             {.name = "logic", .type = "address"}});
        break;
      case Archetype::kDiamondProxy:
        publish_proxy_source(c.address, "Diamond", {}, {});
        break;
      case Archetype::kLibraryUser: {
        SourceRecord rec;
        rec.contract_name = "LibraryUser";
        rec.functions = {{.prototype = "compute(uint256)"},
                         {.prototype = "result()"}};
        rec.storage = {{.name = "result", .type = "uint256"}};
        finalize_record(rec, /*is_proxy=*/false);
        pop_.sources.publish(c.address, std::move(rec));
        break;
      }
      case Archetype::kGarbagePush4: {
        SourceRecord rec;
        rec.contract_name = "MagicStore";
        rec.functions = {{.prototype = "store(uint256)"},
                         {.prototype = "magic()"},
                         {.prototype = "value()"}};
        rec.storage = {{.name = "value", .type = "uint256"}};
        finalize_record(rec, false);
        pop_.sources.publish(c.address, std::move(rec));
        break;
      }
      default:
        publish_token_source(c.address);
        break;
    }
  }

  void publish_proxy_source(const Address& address, std::string name,
                            std::vector<FunctionDecl> funcs,
                            std::vector<VariableDecl> vars) {
    SourceRecord rec;
    rec.contract_name = std::move(name);
    rec.functions = std::move(funcs);
    rec.storage = std::move(vars);
    finalize_record(rec, /*is_proxy=*/true);
    pop_.sources.publish(address, std::move(rec));
  }

  void publish_token_source(const Address& address) {
    SourceRecord rec;
    rec.contract_name = "Token";
    rec.functions = {{.prototype = "totalSupply()"},
                     {.prototype = "balanceOf(address)"},
                     {.prototype = "transfer(address,uint256)"},
                     {.prototype = "owner()"}};
    rec.storage = {{.name = "owner", .type = "address"},
                   {.name = "reserved", .type = "uint256"},
                   {.name = "balances", .type = "mapping"}};
    finalize_record(rec, false);
    pop_.sources.publish(address, std::move(rec));
  }

  void publish_wyvern_logic_source(const Address& address) {
    SourceRecord rec;
    rec.contract_name = "AuthenticatedProxy";
    rec.functions = {{.prototype = "proxyType()"},
                     {.prototype = "implementation()"},
                     {.prototype = "upgradeabilityOwner()"},
                     {.prototype = "user()"},
                     {.prototype = "setUser(address)"}};
    rec.storage = {{.name = "owner", .type = "address"},
                   {.name = "reserved", .type = "uint256"},
                   {.name = "impl", .type = "address"},
                   {.name = "user", .type = "address"}};
    finalize_record(rec, false);
    pop_.sources.publish(address, std::move(rec));
  }

  void publish_audius_logic_source(const Address& address) {
    SourceRecord rec;
    rec.contract_name = "DelegateManager";
    rec.functions = {{.prototype = "initialize()"},
                     {.prototype = "initialized()"},
                     {.prototype = "work(uint256)"}};
    rec.storage = {{.name = "initialized", .type = "bool"},
                   {.name = "initializing", .type = "bool"}};
    finalize_record(rec, false);
    pop_.sources.publish(address, std::move(rec));
  }

  void finalize_record(SourceRecord& rec, bool is_proxy) {
    sourcemeta::layout_storage(rec.storage);
    rec.fallback_delegates =
        is_proxy && roll() >= spec_.obscure_source_fraction;
    if (roll() < spec_.unknown_compiler_fraction) {
      rec.compiler_version = "unknown";
    }
  }

  const PopulationSpec& spec_;
  std::mt19937_64 rng_;
  Address deployer_;
  Population pop_;
  Blockchain* chain_ = nullptr;

  Address cointool_logic_, xen_logic_, wyvern_logic_, honeypot_logic_,
      audius_logic_, library_;
  std::vector<Address> logic_pool_;
  std::uint64_t unique_counter_ = 0;
};

}  // namespace

Population PopulationGenerator::generate(const PopulationSpec& spec) const {
  Generator generator(spec);
  return generator.run();
}

}  // namespace proxion::datagen
