// Builds realistic EVM runtime bytecode for every contract archetype the
// paper's analyses encounter: solc-style dispatchers (PUSH4/EQ/JUMPI
// chains), EIP-1167 minimal proxies (canonical 45-byte runtime), EIP-1967 /
// EIP-1822 / custom-slot proxies, transparent proxies, diamond proxies,
// library-call contracts, honeypots (paper Listing 1), and the Audius-style
// storage-collision pair (paper Listing 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "evm/types.h"

namespace proxion::datagen {

using evm::Address;

/// What a dispatched function body does. Bodies are small but *behavioural*:
/// they read/write storage with width-revealing idioms (masks, CALLER
/// comparisons) so the storage-collision analysis has real material to chew.
enum class BodyKind {
  kStop,              // empty body
  kReturnConstant,    // return aux as a 32-byte word
  kReturnStorageWord, // return sload(slot) unmasked (uint256 read)
  kReturnStorageAddress,  // return sload(slot) & 2^160-1 (address read)
  kReturnStorageBool, // return sload(slot) & 0xff (bool read)
  kReturnStorageBoolAtOffset,  // return (sload(slot) >> 8*aux) & 0xff (packed)
  kStoreBoolPackedAt,  // sstore(slot, (sload & ~(0xff<<8k)) | (1<<8k)), k=aux
                       // — Solidity's packed read-modify-write idiom
  kStoreArgWord,      // sstore(slot, calldataload(4)) — unguarded uint write
  kStoreArgAddress,   // sstore(slot, calldataload(4) & 2^160-1)
  kStoreCaller,       // sstore(slot, caller) — unguarded address write
  kGuardedStoreArgAddress,  // require(caller == address(sload(aux))); store
  kRevert,
  kTransferToCaller,  // send aux wei to msg.sender (honeypot lure)
  kDelegateToLibrary, // delegatecall to hard-coded address aux (library call)
  kAudiusInitialize,  // bool read of slot 0 + unguarded caller write (Listing 2)
  kPush4Garbage,      // PUSH4 constants that are NOT selectors (FP trap)
  // Keccak-derived slot families (Solidity mapping / dynamic-array codegen)
  // — material for the storage-layout inference tier.
  kMapReadArg,        // return sload(keccak256(calldataload(4) ++ slot))
  kMapWriteArg,       // sstore(keccak256(calldataload(4) ++ slot),
                      //        calldataload(0x24)) — unguarded mapping write
  kMapWriteCallerKey, // sstore(keccak256(caller ++ slot), calldataload(4))
  kArrayReadArg,      // return sload(keccak256(slot) + calldataload(4))
};

struct FunctionSpec {
  std::string prototype;          // canonical signature for the selector
  BodyKind body = BodyKind::kStop;
  evm::U256 slot;                 // storage slot the body touches
  evm::U256 aux;                  // constant / owner slot / library address
  evm::U256 aux2;                 // secondary operand (library fn selector)
  /// Overrides the prototype-derived selector; how honeypots force the
  /// collision with the logic contract's lure (Listing 1).
  std::optional<std::uint32_t> raw_selector;

  std::uint32_t selector() const {
    return raw_selector ? *raw_selector : crypto::selector_u32(prototype);
  }
};

/// Where a proxy keeps its logic contract's address.
enum class ProxySlotKind {
  kHardcoded,   // in the bytecode (EIP-1167 / clone pattern)
  kSlotZero,    // storage slot 0 (early hand-rolled proxies)
  kCustomSlot,  // some other small slot ("non-standard" in Table 4)
  kEip1967,     // keccak("eip1967.proxy.implementation") - 1
  kEip1822,     // keccak("PROXIABLE")
};

class ContractFactory {
 public:
  /// The canonical EIP-1167 45-byte runtime delegating to `logic`.
  static Bytes minimal_proxy(const Address& logic);

  /// Dispatcher over `funcs` plus a fallback that forwards all call data via
  /// DELEGATECALL to the address stored in `slot` (solc/OpenZeppelin shape).
  static Bytes slot_proxy(const evm::U256& slot,
                          const std::vector<FunctionSpec>& funcs = {});

  static Bytes eip1967_proxy(const std::vector<FunctionSpec>& funcs = {});
  static Bytes eip1822_proxy(const std::vector<FunctionSpec>& funcs = {});

  /// EIP-1967 proxy whose fallback first routes the stored admin to an
  /// upgradeTo(address) dispatcher — the Transparent pattern that dodges
  /// function collisions by construction (§3.1 footnote).
  static Bytes transparent_proxy();

  /// EIP-2535 diamond: the fallback looks the facet up in a selector-keyed
  /// mapping; unregistered selectors revert, which is exactly why Proxion's
  /// random-selector probe misses diamonds (§8.1).
  static Bytes diamond_proxy();

  /// EIP-1967 *beacon* variant: the fallback STATICCALLs the beacon's
  /// implementation() getter and delegates to the returned address. The
  /// logic address is thus neither in the proxy's code nor its storage.
  static Bytes beacon_proxy();
  /// The beacon contract itself: implementation() returns slot 0.
  static Bytes beacon();

  /// Plain (non-proxy) contract: dispatcher + revert fallback.
  static Bytes plain_contract(const std::vector<FunctionSpec>& funcs);

  /// Non-proxy contract whose *bodies* contain PUSH4 garbage — defeats naive
  /// "any PUSH4 is a selector" extraction (§3.1 challenge 3).
  static Bytes garbage_push4_contract();

  /// Contract that delegatecalls a hard-coded library inside a *named
  /// function* (not the fallback): per §2.2 this is NOT a proxy, and the
  /// paper faults CRUSH for classifying it as one.
  static Bytes library_user(const Address& library);

  /// Pure library: exported helper functions, no storage of its own.
  static Bytes math_library();

  /// Adversarial robustness fixtures. Both bury an unreachable DELEGATECALL
  /// after an unconditional JUMP so the §4.1 opcode prefilter cannot
  /// shortcut them to kNotProxy — detection must emulate, and emulation runs
  /// into the interpreter's step fuse (HaltReason::kStepLimit) instead of
  /// hanging the sweep.
  /// Tight unconditional loop at the entry point; never terminates.
  static Bytes infinite_loop_contract();
  /// Self-CALL loop: unbounded recursion into its own code.
  static Bytes deep_recursion_contract();

  /// Adversarial fixtures for the static triage tier ----------------------

  /// Non-proxy whose only 0xf4 bytes live inside PUSH immediates: the linear
  /// sweep must NOT see a DELEGATECALL instruction (phase-1 absent), so both
  /// the opcode prefilter and the static tier skip it identically.
  static Bytes push_data_delegatecall_contract();
  /// A real DELEGATECALL instruction stranded in a block no path from pc 0
  /// reaches (island behind an unconditional JUMP, no JUMPDEST). The opcode
  /// prefilter forces emulation, but the static tier proves the site dead
  /// and the probe clean-terminating — the strongest legitimate skip.
  static Bytes dead_delegatecall_contract();
  /// A genuine forwarding proxy reachable only through a calldata-derived
  /// computed jump the abstract stack cannot resolve: the static tier MUST
  /// report an incomplete CFG and fall back to emulation (a wrong skip here
  /// would flip the verdict from proxy to non-proxy, so the fallback test is
  /// maximally sensitive). Reads the logic address from `slot`.
  static Bytes computed_jump_contract(const evm::U256& slot);

  /// Paper Listing 1 — the honeypot pair. The proxy's dispatcher carries a
  /// function whose selector equals `colliding_selector` (the logic's lure).
  static Bytes honeypot_proxy(const evm::U256& logic_slot,
                              std::uint32_t colliding_selector);
  static Bytes honeypot_logic(std::uint32_t lure_selector);

  /// Paper Listing 2 — the Audius-style pair. Proxy reads slot 0 as a
  /// 20-byte owner address; logic reads it as 1-byte flags and writes it
  /// unguarded with CALLER in initialize().
  static Bytes audius_style_proxy();
  static Bytes audius_style_logic();

  /// ERC20-ish token used as logic contracts / plain population filler.
  /// `salt` perturbs a constant so duplicates vs uniques are controllable.
  static Bytes token_contract(std::uint64_t salt);

  /// ERC20-ish token whose balances/allowances use the real Solidity
  /// mapping codegen (keccak256(key ++ base) slots) — exercises the
  /// layout-inference tier's slot-family recovery. `salt` as above.
  static Bytes mapping_token_contract(std::uint64_t salt);

  /// Config contract packing an address (bytes 0..20) and a bool (byte 20)
  /// into slot 0, plus a dynamic array at slot 1 — exercises packed-member
  /// recovery and the keccak256(base)+i array family.
  static Bytes packed_config_contract();

  /// Shared helpers -------------------------------------------------------

  /// Emits the solc-style selector dispatcher over `funcs`; control falls
  /// through to "fallback" when no selector matches (callers must define the
  /// label and bodies). Returns the assembler for continued use.
  static void emit_dispatcher(Assembler& a,
                              const std::vector<FunctionSpec>& funcs);
  /// Emits one function body under its (already defined) label.
  static void emit_body(Assembler& a, const FunctionSpec& func,
                        const std::string& label);
  /// Emits the calldata-forwarding DELEGATECALL fallback reading the target
  /// address from `slot`.
  static void emit_delegate_fallback_from_slot(Assembler& a,
                                               const evm::U256& slot);

  static const evm::U256& eip1967_slot();
  static const evm::U256& eip1822_slot();
  static const evm::U256& diamond_base_slot();
};

}  // namespace proxion::datagen
