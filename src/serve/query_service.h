// The lock-free query plane over sweep verdicts: an immutable Snapshot of
// VerdictRows (with address, code-hash, and vulnerability-class indexes)
// published through std::atomic<std::shared_ptr<const Snapshot>>. Exactly
// one writer — the chain follower's record sink, or a batch sweep feeding
// apply_records() by hand — builds the next snapshot privately and swaps
// the pointer; readers load it wait-free and keep their shared_ptr alive
// for as long as they render, so a publish never invalidates an in-flight
// read and a read never blocks a publish.
//
// Wired onto obs::HttpServer as the /v1/* JSON endpoints. The normative
// response schemas (field types, error shapes, staleness semantics) live in
// docs/QUERY_API.md; every response field name flows through append_key()
// so tools/docs_check.sh can diff the implemented set against that spec.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/report.h"
#include "obs/http.h"
#include "store/records.h"

namespace proxion::serve {

struct CodeHashHasher {
  std::size_t operator()(const crypto::Hash256& h) const noexcept {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(out); ++i) out = (out << 8) | h[i];
    return out;
  }
};

/// The vulnerability classes /v1/vulns?class=... accepts, by their
/// canonical names (the same flags VerdictRow carries).
enum class VulnClass : std::uint8_t {
  kFunctionCollision,
  kStorageCollision,
  kStorageCollisionExploitable,
  kFamilyCollision,
};
inline constexpr std::size_t kVulnClassCount = 4;

std::string_view to_string(VulnClass c) noexcept;
std::optional<VulnClass> vuln_class_from_name(std::string_view name) noexcept;

/// One immutable published verdict set. `head_block` is the chain height
/// the rows are complete through — mid-lap publishes carry the previous
/// complete head (rows ahead of it are bonus freshness, never staleness
/// hidden as completeness). `version` bumps on every publish.
struct Snapshot {
  std::uint64_t head_block = 0;
  std::uint64_t version = 0;
  std::vector<core::VerdictRow> rows;  // first-seen address order
  std::unordered_map<evm::Address, std::uint32_t, evm::AddressHasher>
      by_address;
  std::unordered_map<crypto::Hash256, std::vector<std::uint32_t>,
                     CodeHashHasher>
      by_code_hash;
  std::array<std::vector<std::uint32_t>, kVulnClassCount> by_vuln;
  std::uint64_t proxies = 0;
  std::uint64_t quarantined = 0;
};

struct QueryServiceConfig {
  /// Addresses listed per /v1/codehash and /v1/vulns response; beyond it
  /// the list truncates and the response says so (`truncated`: true, the
  /// full `count` still reported).
  std::size_t max_results = 512;
};

class QueryService {
 public:
  explicit QueryService(QueryServiceConfig config = {});

  // ---- writer side (single-threaded by contract) --------------------------
  /// Upserts rows extracted from `records` into the private live set.
  /// Not visible to readers until publish().
  void apply_records(std::span<const store::ContractRecord> records);
  /// Builds an immutable snapshot of the live set, stamps it with
  /// `head_block` and the next version, swaps it in, and returns it.
  std::shared_ptr<const Snapshot> publish(std::uint64_t head_block);

  // ---- reader side (any thread, wait-free) --------------------------------
  std::shared_ptr<const Snapshot> snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  // ---- /v1 endpoint renderers (reader side) -------------------------------
  obs::HttpResponse contract_endpoint(const std::string& rest) const;
  obs::HttpResponse codehash_endpoint(const std::string& rest) const;
  obs::HttpResponse vulns_endpoint(const std::string& query) const;

  /// Registers /v1/contract/<addr>, /v1/codehash/<hash>, and /v1/vulns on
  /// `server` (the follower registers /v1/status itself). Call before
  /// server.start().
  void register_endpoints(obs::HttpServer& server);

 private:
  QueryServiceConfig config_;
  /// Writer-owned live rows + first-seen order (the snapshot's row order,
  /// deterministic across republishes).
  std::unordered_map<evm::Address, core::VerdictRow, evm::AddressHasher> live_;
  std::vector<evm::Address> order_;
  std::uint64_t versions_published_ = 0;
  std::atomic<std::shared_ptr<const Snapshot>> published_;
};

/// Appends `"key":` to a JSON document under construction. Every /v1
/// response field name flows through this helper — tools/docs_check.sh
/// greps the call sites and diffs them against docs/QUERY_API.md.
void append_key(std::string& out, std::string_view key);

}  // namespace proxion::serve
