#include "serve/follower.h"

#include <chrono>
#include <utility>

namespace proxion::serve {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping for the status document (error text can
/// carry paths; everything else rendered here is hex or enum names).
void append_escaped(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

ChainFollower::ChainFollower(core::AnalysisPipeline& pipeline,
                             chain::Blockchain& chain,
                             const sourcemeta::SourceRepository* sources,
                             store::DurableSweepConfig sweep_config,
                             QueryService& query,
                             std::vector<core::SweepInput> initial_inputs,
                             ChainFollowerConfig config)
    : pipeline_(pipeline),
      chain_(chain),
      sources_(sources),
      query_(query),
      config_(std::move(config)),
      metrics_(config_.registry != nullptr ? *config_.registry
                                           : obs::Registry::global()),
      inputs_(std::move(initial_inputs)) {
  known_.reserve(inputs_.size());
  for (const core::SweepInput& input : inputs_) known_.insert(input.address);
  // Commit→publish wiring: each record batch the sweep finalizes (replayed
  // set, then every shard) lands in the query plane immediately, published
  // at the PREVIOUS complete head — mid-lap rows are bonus freshness, the
  // head_block stamp only advances when the lap covers it.
  sweep_config.record_sink =
      [this](std::span<const store::ContractRecord> records) {
        query_.apply_records(records);
        const std::shared_ptr<const Snapshot> snap =
            query_.publish(published_head_);
        stats_.snapshot_entries.store(snap->rows.size(),
                                      std::memory_order_relaxed);
        stats_.snapshot_version.store(snap->version,
                                      std::memory_order_relaxed);
      };
  sweep_ = std::make_unique<store::DurableSweep>(pipeline_, chain_, sources_,
                                                 std::move(sweep_config));
}

ChainFollower::~ChainFollower() { stop(); }

std::uint64_t ChainFollower::poll() {
  std::uint64_t absorbed = 0;
  std::uint64_t head = 0;
  {
    std::lock_guard<std::mutex> lap_lock(lap_mu_);
    absorbed = poll_locked();
    head = last_head_;
  }
  {
    std::lock_guard<std::mutex> wake_lock(wake_mu_);
    synced_head_ = head;
  }
  wake_cv_.notify_all();
  return absorbed;
}

std::uint64_t ChainFollower::poll_locked() {
  const std::uint64_t head = chain_.height();
  if (primed_ && head == last_head_) return 0;
  const std::uint64_t scan_from = primed_ ? last_head_ : 0;
  bool dirty = !primed_;
  std::uint64_t discovered = 0;
  // Inclusive rescan of the previously-absorbed head block: writes land in
  // the OPEN block, so block H can gain writes after a poll that ran at
  // height H. Re-detecting them only costs a no-change incremental lap —
  // never a missed upgrade.
  for (std::uint64_t b = scan_from; b <= head; ++b) {
    for (const evm::Address& addr : chain_.deployments_in(b)) {
      if (!known_.insert(addr).second) continue;
      core::SweepInput input;
      input.address = addr;
      input.year = config_.year_of_block ? config_.year_of_block(b) : 0;
      input.has_source = sources_ != nullptr && sources_->has_source(addr);
      if (const std::optional<chain::ContractMeta> meta =
              chain_.contract_meta(addr)) {
        input.has_tx = meta->has_incoming_tx;
      }
      inputs_.push_back(input);
      ++discovered;
      dirty = true;
    }
    if (!dirty && !chain_.storage_writers_in(b).empty()) dirty = true;
  }
  if (discovered > 0) {
    stats_.contracts_discovered.fetch_add(discovered,
                                          std::memory_order_relaxed);
    if (config_.event_log != nullptr) {
      config_.event_log->emit(obs::Severity::kDebug, "follower",
                              "discovered " + std::to_string(discovered) +
                                  " new contract(s) up to block " +
                                  std::to_string(head));
    }
  }

  const std::uint64_t absorbed = head - scan_from + (primed_ ? 0 : 1);
  if (dirty) {
    const std::uint64_t t0 = now_us();
    const store::DurableSweepResult result = sweep_->incremental(inputs_);
    stats_.last_lap_us.store(now_us() - t0, std::memory_order_relaxed);
    if (!result.error.empty()) {
      // Journal failure with degradation disabled: the lap produced no
      // trustworthy verdicts, so the snapshot stays at its old head and
      // staleness grows — which is exactly what an operator should see.
      {
        std::lock_guard<std::mutex> err_lock(err_mu_);
        last_error_ = result.error;
      }
      if (config_.event_log != nullptr) {
        config_.event_log->emit(obs::Severity::kError, "follower",
                                "incremental lap failed: " + result.error);
      }
    } else {
      {
        std::lock_guard<std::mutex> err_lock(err_mu_);
        last_error_.clear();
      }
      published_head_ = head;
      const std::shared_ptr<const Snapshot> snap = query_.publish(head);
      stats_.snapshot_entries.store(snap->rows.size(),
                                    std::memory_order_relaxed);
      stats_.snapshot_version.store(snap->version, std::memory_order_relaxed);
      stats_.snapshot_head.store(head, std::memory_order_relaxed);
      stats_.laps.fetch_add(1, std::memory_order_relaxed);
      if (config_.event_log != nullptr) {
        config_.event_log->emit(
            obs::Severity::kInfo, "follower",
            "lap complete at block " + std::to_string(head) + ": " +
                std::to_string(result.recomputed) + " recomputed, " +
                std::to_string(result.replayed) + " replayed");
      }
    }
  } else {
    // Nothing analysis-relevant in the new blocks: the verdict set is
    // already complete through `head` — publish the advanced stamp without
    // paying for a lap.
    published_head_ = head;
    const std::shared_ptr<const Snapshot> snap = query_.publish(head);
    stats_.snapshot_entries.store(snap->rows.size(),
                                  std::memory_order_relaxed);
    stats_.snapshot_version.store(snap->version, std::memory_order_relaxed);
    stats_.snapshot_head.store(head, std::memory_order_relaxed);
    stats_.fast_forwards.fetch_add(1, std::memory_order_relaxed);
  }
  primed_ = true;
  last_head_ = head;
  stats_.blocks_processed.fetch_add(absorbed, std::memory_order_relaxed);
  // chain_head may already be ahead (the head callback advances it on the
  // mining thread); never move it backwards from here.
  std::uint64_t seen = stats_.chain_head.load(std::memory_order_relaxed);
  while (seen < head && !stats_.chain_head.compare_exchange_weak(
                            seen, head, std::memory_order_relaxed)) {
  }

  const std::uint64_t chain_head =
      stats_.chain_head.load(std::memory_order_relaxed);
  const std::uint64_t snapshot_head =
      stats_.snapshot_head.load(std::memory_order_relaxed);
  metrics_.gauge("sweep.follower.head")
      .set(static_cast<std::int64_t>(chain_head));
  metrics_.gauge("sweep.follower.staleness_blocks")
      .set(static_cast<std::int64_t>(
          chain_head > snapshot_head ? chain_head - snapshot_head : 0));
  metrics_.gauge("sweep.follower.laps")
      .set(static_cast<std::int64_t>(
          stats_.laps.load(std::memory_order_relaxed)));
  metrics_.gauge("sweep.follower.fast_forwards")
      .set(static_cast<std::int64_t>(
          stats_.fast_forwards.load(std::memory_order_relaxed)));
  metrics_.gauge("sweep.follower.blocks_processed")
      .set(static_cast<std::int64_t>(
          stats_.blocks_processed.load(std::memory_order_relaxed)));
  metrics_.gauge("sweep.follower.snapshot_entries")
      .set(static_cast<std::int64_t>(
          stats_.snapshot_entries.load(std::memory_order_relaxed)));
  metrics_.gauge("sweep.follower.snapshot_version")
      .set(static_cast<std::int64_t>(
          stats_.snapshot_version.load(std::memory_order_relaxed)));
  // Between laps the process is healthy and waiting, not mid-sweep: park
  // the /healthz phase at `following` (the pipeline will flip it to its
  // own phases the moment the next lap enters).
  if (config_.status != nullptr) {
    config_.status->set_phase(obs::SweepPhase::kFollowing);
  }
  return absorbed;
}

void ChainFollower::start() {
  if (started_) return;
  {
    std::lock_guard<std::mutex> wake_lock(wake_mu_);
    stop_requested_ = false;
    pending_ = true;  // catch anything mined before the subscription landed
  }
  stats_.following.store(true, std::memory_order_relaxed);
  if (config_.status != nullptr) {
    config_.status->set_phase(obs::SweepPhase::kFollowing);
  }
  thread_ = std::thread([this] { run_loop(); });
  head_token_ = chain_.subscribe_head([this](std::uint64_t new_height) {
    stats_.chain_head.store(new_height, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> wake_lock(wake_mu_);
      pending_ = true;
    }
    wake_cv_.notify_all();
  });
  started_ = true;
}

void ChainFollower::stop() {
  if (!started_) return;
  chain_.unsubscribe_head(head_token_);
  {
    std::lock_guard<std::mutex> wake_lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // A head flagged after the final poll would otherwise leave pending_
  // stuck true with no thread to drain it, wedging later wait_synced()
  // fences in manual-poll mode.
  pending_ = false;
  idle_ = true;
  started_ = false;
  stats_.following.store(false, std::memory_order_relaxed);
  if (config_.status != nullptr) {
    config_.status->set_phase(obs::SweepPhase::kIdle);
  }
}

void ChainFollower::run_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> wake_lock(wake_mu_);
      // Park: tell wait_synced() fencers the thread is quiescent before
      // sleeping, so "synced AND idle" can become true between laps.
      idle_ = true;
      wake_cv_.notify_all();
      wake_cv_.wait(wake_lock,
                    [this] { return pending_ || stop_requested_; });
      if (stop_requested_) return;
      pending_ = false;
      idle_ = false;
    }
    poll();
  }
}

bool ChainFollower::wait_synced(std::uint64_t height,
                                std::int64_t timeout_ms) {
  // Quiescence, not just coverage: `synced_head_ >= height` alone is not a
  // fence — the catch-up poll start() schedules runs with synced_head_
  // already at the head, and a caller that mutated the chain the moment the
  // stamp caught up would race that poll's chain reads. Requiring the poll
  // thread parked with nothing pending closes the window.
  std::unique_lock<std::mutex> wake_lock(wake_mu_);
  return wake_cv_.wait_for(wake_lock, std::chrono::milliseconds(timeout_ms),
                           [this, height] {
                             return synced_head_ >= height && !pending_ &&
                                    idle_;
                           });
}

std::vector<core::SweepInput> ChainFollower::inputs() const {
  std::lock_guard<std::mutex> lap_lock(lap_mu_);
  return inputs_;
}

std::string ChainFollower::last_error() const {
  std::lock_guard<std::mutex> err_lock(err_mu_);
  return last_error_;
}

obs::HttpResponse ChainFollower::status_endpoint() const {
  const std::uint64_t chain_head =
      stats_.chain_head.load(std::memory_order_relaxed);
  const std::uint64_t snapshot_head =
      stats_.snapshot_head.load(std::memory_order_relaxed);
  std::string out = "{";
  append_key(out, "following");
  out += stats_.following.load(std::memory_order_relaxed) ? "true" : "false";
  out += ',';
  append_key(out, "chain_head");
  out += std::to_string(chain_head);
  out += ',';
  append_key(out, "snapshot_head");
  out += std::to_string(snapshot_head);
  out += ',';
  append_key(out, "staleness_blocks");
  out += std::to_string(chain_head > snapshot_head
                            ? chain_head - snapshot_head
                            : 0);
  out += ',';
  append_key(out, "snapshot_version");
  out += std::to_string(stats_.snapshot_version.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "snapshot_entries");
  out += std::to_string(stats_.snapshot_entries.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "laps");
  out += std::to_string(stats_.laps.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "fast_forwards");
  out += std::to_string(stats_.fast_forwards.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "blocks_processed");
  out += std::to_string(stats_.blocks_processed.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "contracts_discovered");
  out += std::to_string(
      stats_.contracts_discovered.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "last_lap_us");
  out += std::to_string(stats_.last_lap_us.load(std::memory_order_relaxed));
  out += ',';
  append_key(out, "degraded");
  const bool degraded =
      config_.status != nullptr &&
      config_.status->degraded.load(std::memory_order_relaxed);
  out += degraded ? "true" : "false";
  out += ',';
  append_key(out, "last_error");
  append_escaped(out, last_error());
  out += "}\n";
  obs::HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(out);
  return resp;
}

void ChainFollower::register_status_endpoint(obs::HttpServer& server) {
  server.handle("/v1/status", [this](const std::string&) {
    return status_endpoint();
  });
}

}  // namespace proxion::serve
