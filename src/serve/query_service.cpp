#include "serve/query_service.h"

#include <utility>

#include "crypto/keccak.h"

namespace proxion::serve {

namespace {

constexpr std::string_view kJsonContentType = "application/json";

bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

std::string_view strip_0x(std::string_view s) {
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return s.substr(2);
  }
  return s;
}

/// Strict: optional 0x, then exactly 40 hex digits.
std::optional<evm::Address> parse_address(std::string_view text) {
  const std::string_view hex = strip_0x(text);
  if (hex.size() != 40) return std::nullopt;
  for (const char c : hex) {
    if (!is_hex_digit(c)) return std::nullopt;
  }
  return evm::Address::from_hex(hex);
}

/// Strict: optional 0x, then exactly 64 hex digits.
std::optional<crypto::Hash256> parse_hash(std::string_view text) {
  const std::string_view hex = strip_0x(text);
  if (hex.size() != 64) return std::nullopt;
  for (const char c : hex) {
    if (!is_hex_digit(c)) return std::nullopt;
  }
  const std::vector<std::uint8_t> bytes = crypto::from_hex(hex);
  crypto::Hash256 out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

std::string hash_hex(const crypto::Hash256& h) {
  return "0x" + crypto::to_hex(h);
}

void append_str(std::string& out, std::string_view value) {
  out += '"';
  out += value;  // hex strings and enum names only — nothing needs escaping
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

obs::HttpResponse json_response(int status, std::string body) {
  obs::HttpResponse resp;
  resp.status = status;
  resp.content_type = std::string(kJsonContentType);
  resp.body = std::move(body);
  return resp;
}

/// The uniform error shape: {"error": <code>, "detail": <human text>}.
obs::HttpResponse error_response(int status, std::string_view code,
                                 std::string_view detail) {
  std::string out = "{";
  append_key(out, "error");
  append_str(out, code);
  out += ',';
  append_key(out, "detail");
  append_str(out, detail);
  out += "}\n";
  return json_response(status, std::move(out));
}

/// Every OK response leads with the staleness stamp: the head the rows are
/// complete through plus the snapshot version that answered.
void append_stamp(std::string& out, const Snapshot& snap) {
  append_key(out, "head_block");
  append_u64(out, snap.head_block);
  out += ',';
  append_key(out, "snapshot_version");
  append_u64(out, snap.version);
}

void append_address_list(std::string& out, const Snapshot& snap,
                         const std::vector<std::uint32_t>& indexes,
                         std::size_t max_results) {
  const std::size_t listed = std::min(indexes.size(), max_results);
  append_key(out, "count");
  append_u64(out, indexes.size());
  out += ',';
  append_key(out, "truncated");
  append_bool(out, listed < indexes.size());
  out += ',';
  append_key(out, "addresses");
  out += '[';
  for (std::size_t i = 0; i < listed; ++i) {
    if (i > 0) out += ',';
    append_str(out, snap.rows[indexes[i]].address.to_hex());
  }
  out += ']';
}

bool row_has_vuln(const core::VerdictRow& row, VulnClass c) {
  switch (c) {
    case VulnClass::kFunctionCollision: return row.function_collision;
    case VulnClass::kStorageCollision: return row.storage_collision;
    case VulnClass::kStorageCollisionExploitable:
      return row.storage_collision_exploitable;
    case VulnClass::kFamilyCollision: return row.family_collision;
  }
  return false;
}

}  // namespace

void append_key(std::string& out, std::string_view key) {
  out += '"';
  out += key;
  out += "\":";
}

std::string_view to_string(VulnClass c) noexcept {
  switch (c) {
    case VulnClass::kFunctionCollision: return "function_collision";
    case VulnClass::kStorageCollision: return "storage_collision";
    case VulnClass::kStorageCollisionExploitable:
      return "storage_collision_exploitable";
    case VulnClass::kFamilyCollision: return "family_collision";
  }
  return "?";
}

std::optional<VulnClass> vuln_class_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kVulnClassCount; ++i) {
    const auto c = static_cast<VulnClass>(i);
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

QueryService::QueryService(QueryServiceConfig config)
    : config_(config) {
  // Readers must never observe a null snapshot — an empty version-0 one
  // answers "nothing known yet" until the first publish.
  published_.store(std::make_shared<const Snapshot>(),
                   std::memory_order_release);
}

void QueryService::apply_records(
    std::span<const store::ContractRecord> records) {
  for (const store::ContractRecord& rec : records) {
    core::VerdictRow row = core::extract_verdict(rec.analysis, rec.code_hash);
    const auto [it, inserted] = live_.try_emplace(row.address, row);
    if (inserted) {
      order_.push_back(row.address);
    } else {
      it->second = row;
    }
  }
}

std::shared_ptr<const Snapshot> QueryService::publish(
    std::uint64_t head_block) {
  auto snap = std::make_shared<Snapshot>();
  snap->head_block = head_block;
  snap->version = ++versions_published_;
  snap->rows.reserve(order_.size());
  snap->by_address.reserve(order_.size());
  for (const evm::Address& addr : order_) {
    const core::VerdictRow& row = live_.at(addr);
    const auto index = static_cast<std::uint32_t>(snap->rows.size());
    snap->by_address.emplace(addr, index);
    snap->by_code_hash[row.code_hash].push_back(index);
    for (std::size_t c = 0; c < kVulnClassCount; ++c) {
      if (row_has_vuln(row, static_cast<VulnClass>(c))) {
        snap->by_vuln[c].push_back(index);
      }
    }
    if (row.verdict == core::ProxyVerdict::kProxy) ++snap->proxies;
    if (row.quarantined) ++snap->quarantined;
    snap->rows.push_back(row);
  }
  std::shared_ptr<const Snapshot> frozen = std::move(snap);
  published_.store(frozen, std::memory_order_release);
  return frozen;
}

obs::HttpResponse QueryService::contract_endpoint(
    const std::string& rest) const {
  const std::optional<evm::Address> addr = parse_address(rest);
  if (!addr) {
    return error_response(400, "bad_address",
                          "expected /v1/contract/0x + 40 hex digits");
  }
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const auto it = snap->by_address.find(*addr);
  if (it == snap->by_address.end()) {
    return error_response(404, "not_found",
                          "address not in the current snapshot");
  }
  const core::VerdictRow& row = snap->rows[it->second];
  std::string out = "{";
  append_stamp(out, *snap);
  out += ',';
  append_key(out, "address");
  append_str(out, row.address.to_hex());
  out += ',';
  append_key(out, "code_hash");
  append_str(out, hash_hex(row.code_hash));
  out += ',';
  append_key(out, "year");
  append_u64(out, static_cast<std::uint64_t>(row.year));
  out += ',';
  append_key(out, "verdict");
  append_str(out, core::to_string(row.verdict));
  out += ',';
  append_key(out, "standard");
  append_str(out, core::to_string(row.standard));
  out += ',';
  append_key(out, "hidden");
  append_bool(out, row.hidden);
  out += ',';
  append_key(out, "has_source");
  append_bool(out, row.has_source);
  out += ',';
  append_key(out, "has_tx");
  append_bool(out, row.has_tx);
  out += ',';
  append_key(out, "deduplicated");
  append_bool(out, row.deduplicated);
  out += ',';
  append_key(out, "quarantined");
  append_bool(out, row.quarantined);
  out += ',';
  append_key(out, "error_kind");
  if (row.quarantined) {
    append_str(out, core::to_string(row.error_kind));
  } else {
    out += "null";
  }
  out += ',';
  append_key(out, "logic");
  out += '{';
  append_key(out, "source");
  append_str(out, core::to_string(row.logic_source));
  out += ',';
  append_key(out, "logic_address");
  if (row.logic_source == core::LogicSource::kNone) {
    out += "null";
  } else {
    append_str(out, row.logic_address.to_hex());
  }
  out += ',';
  append_key(out, "slot");
  if (row.logic_source == core::LogicSource::kStorageSlot) {
    append_str(out, row.logic_slot.to_hex());
  } else {
    out += "null";
  }
  out += ',';
  append_key(out, "upgrade_events");
  append_u64(out, row.upgrade_events);
  out += "},";
  append_key(out, "vulns");
  out += '{';
  append_key(out, "function_collision");
  append_bool(out, row.function_collision);
  out += ',';
  append_key(out, "storage_collision");
  append_bool(out, row.storage_collision);
  out += ',';
  append_key(out, "storage_collision_exploitable");
  append_bool(out, row.storage_collision_exploitable);
  out += ',';
  append_key(out, "family_collision");
  append_bool(out, row.family_collision);
  out += "}}\n";
  return json_response(200, std::move(out));
}

obs::HttpResponse QueryService::codehash_endpoint(
    const std::string& rest) const {
  const std::optional<crypto::Hash256> hash = parse_hash(rest);
  if (!hash) {
    return error_response(400, "bad_hash",
                          "expected /v1/codehash/0x + 64 hex digits");
  }
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const auto it = snap->by_code_hash.find(*hash);
  if (it == snap->by_code_hash.end()) {
    return error_response(404, "not_found",
                          "code hash not in the current snapshot");
  }
  std::string out = "{";
  append_stamp(out, *snap);
  out += ',';
  append_key(out, "code_hash");
  append_str(out, hash_hex(*hash));
  out += ',';
  append_address_list(out, *snap, it->second, config_.max_results);
  out += "}\n";
  return json_response(200, std::move(out));
}

obs::HttpResponse QueryService::vulns_endpoint(const std::string& query) const {
  // The only recognized parameter is class=<name>; a raw scan suffices.
  std::string_view value;
  std::string_view q = query;
  while (!q.empty()) {
    const std::size_t amp = q.find('&');
    const std::string_view pair = q.substr(0, amp);
    q = amp == std::string_view::npos ? std::string_view{} : q.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == "class") {
      value = pair.substr(eq + 1);
    }
  }
  if (value.empty()) {
    return error_response(400, "missing_class",
                          "expected /v1/vulns?class=<vulnerability class>");
  }
  const std::optional<VulnClass> vuln = vuln_class_from_name(value);
  if (!vuln) {
    std::string detail = "unknown class; one of:";
    for (std::size_t i = 0; i < kVulnClassCount; ++i) {
      detail += ' ';
      detail += to_string(static_cast<VulnClass>(i));
    }
    return error_response(400, "unknown_class", detail);
  }
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const std::vector<std::uint32_t>& indexes =
      snap->by_vuln[static_cast<std::size_t>(*vuln)];
  std::string out = "{";
  append_stamp(out, *snap);
  out += ',';
  append_key(out, "class");
  append_str(out, to_string(*vuln));
  out += ',';
  append_address_list(out, *snap, indexes, config_.max_results);
  out += "}\n";
  return json_response(200, std::move(out));
}

void QueryService::register_endpoints(obs::HttpServer& server) {
  server.handle_prefix(
      "/v1/contract/",
      [this](const std::string& rest, const std::string&) {
        return contract_endpoint(rest);
      });
  server.handle_prefix(
      "/v1/codehash/",
      [this](const std::string& rest, const std::string&) {
        return codehash_endpoint(rest);
      });
  server.handle("/v1/vulns", [this](const std::string& query) {
    return vulns_endpoint(query);
  });
}

}  // namespace proxion::serve
