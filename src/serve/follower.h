// The chain follower: turns the batch durable sweep into an always-on
// daemon. It subscribes to Blockchain head advances, diffs each new block's
// deployment and storage-writer feeds, and when anything analysis-relevant
// changed drives store::DurableSweep::incremental() so the journal-backed
// verdict store tracks the head; blocks that touched nothing fast-forward
// the query snapshot without a lap. The sweep's record sink streams every
// commit into the QueryService, so readers see shard-granular freshness
// while a lap is still running.
//
// Threading model: block production, poll laps, and the HTTP plane are
// three different threads.
//   - The chain stays single-writer. The head callback does nothing but
//     flag the poll thread (plus one relaxed head store for staleness
//     rendering); the poll thread only reads the chain between blocks —
//     callers that mutate the chain concurrently with a running follower
//     must fence mutations with wait_synced() (the example's workload loop
//     and the tests do exactly that).
//   - All QueryService writer calls happen on the poll thread (or whoever
//     calls poll() when the background thread is not running) — the query
//     plane's single-writer contract.
//   - /v1/status renders from FollowerStats' relaxed atomics only; it never
//     touches the chain, so a scrape cannot race block production.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "chain/blockchain.h"
#include "core/pipeline.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "sourcemeta/source.h"
#include "store/durable_sweep.h"

namespace proxion::serve {

/// Live follower progress for /v1/status and the sweep.follower.* gauges.
/// All relaxed atomics, same independent-facts contract as obs::SweepStatus.
struct FollowerStats {
  std::atomic<bool> following{false};
  /// Latest chain height seen (head callback updates this immediately, so
  /// staleness = chain_head - snapshot_head is honest between laps).
  std::atomic<std::uint64_t> chain_head{0};
  /// Height the published snapshot is complete through.
  std::atomic<std::uint64_t> snapshot_head{0};
  std::atomic<std::uint64_t> laps{0};            // incremental sweeps run
  std::atomic<std::uint64_t> fast_forwards{0};   // empty-range publishes
  std::atomic<std::uint64_t> blocks_processed{0};
  std::atomic<std::uint64_t> contracts_discovered{0};
  std::atomic<std::uint64_t> last_lap_us{0};
  std::atomic<std::uint64_t> snapshot_entries{0};
  std::atomic<std::uint64_t> snapshot_version{0};
};

struct ChainFollowerConfig {
  /// Maps a deployment block to the SweepInput presentation year for newly
  /// discovered contracts. Null = year 0.
  std::function<int(std::uint64_t block)> year_of_block;
  /// Metrics sink for the sweep.follower.* gauges. Null = Registry::global().
  obs::Registry* registry = nullptr;
  /// Structured event sink for lap/discovery lines (borrowed). Null = none.
  obs::EventLog* event_log = nullptr;
  /// Shared /healthz progress block (borrowed): the follower parks the
  /// phase at kFollowing between laps so the health endpoint never claims a
  /// sweep is mid-phase while it is merely waiting for blocks. Null = none.
  obs::SweepStatus* status = nullptr;
};

class ChainFollower {
 public:
  /// `pipeline`, `chain`, `sources`, and `query` must outlive the follower.
  /// `sweep_config.record_sink` is overwritten — the follower owns the
  /// commit→publish wiring. `initial_inputs` is the population known at
  /// start; contracts deployed later are discovered from the chain's
  /// per-block feeds.
  ChainFollower(core::AnalysisPipeline& pipeline, chain::Blockchain& chain,
                const sourcemeta::SourceRepository* sources,
                store::DurableSweepConfig sweep_config, QueryService& query,
                std::vector<core::SweepInput> initial_inputs,
                ChainFollowerConfig config = {});
  ~ChainFollower();  // stop()s

  ChainFollower(const ChainFollower&) = delete;
  ChainFollower& operator=(const ChainFollower&) = delete;

  /// Synchronous catch-up to the current head: absorb new blocks, lap or
  /// fast-forward, publish. The first call seeds from the journal (a
  /// missing journal degrades to a fresh full sweep). Usable stand-alone
  /// without start() — the tests drive it deterministically this way.
  /// Returns the number of chain blocks absorbed by this call.
  std::uint64_t poll();

  /// Launches the background poll thread and subscribes to head advances.
  void start();
  /// Unsubscribes, stops, and joins the poll thread (idempotent).
  void stop();

  /// Blocks until the published snapshot is complete through `height` AND
  /// the background poll thread is quiescent (parked, nothing pending), or
  /// the timeout expires — returns false. Quiescence is what makes this a
  /// real fence: a caller that mutates the chain after wait_synced() returns
  /// cannot race a poll that is still reading it (including the catch-up
  /// poll start() schedules). The fence mutating workloads use between
  /// blocks — and immediately after start(), before their first mutation.
  bool wait_synced(std::uint64_t height, std::int64_t timeout_ms = 60'000);

  const FollowerStats& stats() const noexcept { return stats_; }
  /// The current population (initial inputs + discovered contracts).
  std::vector<core::SweepInput> inputs() const;
  /// Last lap's sweep error ("" when healthy).
  std::string last_error() const;

  /// /v1/status JSON (schema in docs/QUERY_API.md).
  obs::HttpResponse status_endpoint() const;
  /// Registers /v1/status on `server`; call before server.start().
  void register_status_endpoint(obs::HttpServer& server);

 private:
  void run_loop();
  /// The poll body; requires lap_mu_.
  std::uint64_t poll_locked();

  core::AnalysisPipeline& pipeline_;
  chain::Blockchain& chain_;
  const sourcemeta::SourceRepository* sources_;
  QueryService& query_;
  ChainFollowerConfig config_;
  obs::Registry& metrics_;
  std::unique_ptr<store::DurableSweep> sweep_;

  /// Serializes laps with inputs() snapshots; everything below it is
  /// poll-thread state.
  mutable std::mutex lap_mu_;
  std::vector<core::SweepInput> inputs_;
  std::unordered_set<evm::Address, evm::AddressHasher> known_;
  bool primed_ = false;
  std::uint64_t last_head_ = 0;       // last height fully absorbed
  std::uint64_t published_head_ = 0;  // head the snapshot is complete through

  FollowerStats stats_;
  mutable std::mutex err_mu_;
  std::string last_error_;

  // ---- background thread plumbing ----------------------------------------
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool pending_ = false;
  bool stop_requested_ = false;
  /// True while the poll thread is parked in run_loop's wait (or not
  /// running at all). wait_synced() requires it so the fence also covers a
  /// poll that is mid-flight when the caller checks.
  bool idle_ = true;
  std::uint64_t synced_head_ = 0;  // published under wake_mu_ for wait_synced
  std::thread thread_;
  bool started_ = false;
  std::uint64_t head_token_ = 0;
};

}  // namespace proxion::serve
