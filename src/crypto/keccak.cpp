#include "crypto/keccak.h"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"

namespace proxion::crypto {
namespace {

constexpr int kRounds = 24;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr std::uint64_t rotl64(std::uint64_t x, unsigned n) noexcept {
  return (x << n) | (x >> (64 - n));
}

}  // namespace

namespace detail {

void keccak_f1600(std::array<std::uint64_t, 25>& a) noexcept {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) a[x + y] ^= d;
    }
    // Rho + Pi
    std::uint64_t last = a[1];
    constexpr int kPi[24] = {10, 7,  11, 17, 18, 3,  5,  16, 8,  21, 24, 4,
                             15, 23, 19, 13, 12, 2,  20, 14, 22, 9,  6,  1};
    constexpr int kRho[24] = {1,  3,  6,  10, 15, 21, 28, 36, 45, 55, 2,  14,
                              27, 41, 56, 8,  25, 43, 62, 18, 39, 61, 20, 44};
    for (int i = 0; i < 24; ++i) {
      const int j = kPi[i];
      const std::uint64_t tmp = a[j];
      a[j] = rotl64(last, static_cast<unsigned>(kRho[i]));
      last = tmp;
    }
    // Chi
    for (int y = 0; y < 25; y += 5) {
      std::uint64_t row[5];
      for (int x = 0; x < 5; ++x) row[x] = a[y + x];
      for (int x = 0; x < 5; ++x) {
        a[y + x] = row[x] ^ (~row[(x + 1) % 5] & row[(x + 2) % 5]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace detail

Keccak256::Keccak256() noexcept = default;

void Keccak256::absorb_block() noexcept {
  for (std::size_t i = 0; i < buffer_.size() / 8; ++i) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, buffer_.data() + i * 8, 8);  // little-endian hosts only
    state_[i] ^= lane;
  }
  detail::keccak_f1600(state_);
  buffered_ = 0;
}

void Keccak256::update(std::span<const std::uint8_t> data) noexcept {
  for (std::size_t i = 0; i < data.size();) {
    const std::size_t take =
        std::min(data.size() - i, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data() + i, take);
    buffered_ += take;
    i += take;
    if (buffered_ == buffer_.size()) absorb_block();
  }
}

void Keccak256::update(std::string_view text) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

namespace {
// The invocation count lives in the process-wide metrics registry; this
// accessor caches the counter reference so the hot path never takes the
// registry's name-lookup mutex.
obs::Counter& invocation_counter() noexcept {
  static obs::Counter& c =
      obs::Registry::global().counter("crypto.keccak.invocations");
  return c;
}
}  // namespace

std::uint64_t keccak_invocations() noexcept {
  return invocation_counter().value();
}

namespace detail {
void count_keccak_digests(std::uint64_t n) noexcept {
  invocation_counter().add(n);
}
}  // namespace detail

Hash256 Keccak256::finalize() noexcept {
  invocation_counter().add(1);
  // Keccak padding: 0x01 ... 0x80 (multi-rate padding, first bit 1).
  std::memset(buffer_.data() + buffered_, 0, buffer_.size() - buffered_);
  buffer_[buffered_] = 0x01;
  buffer_[buffer_.size() - 1] |= 0x80;
  buffered_ = buffer_.size();
  absorb_block();
  finalized_ = true;

  Hash256 out{};
  std::memcpy(out.data(), state_.data(), out.size());
  return out;
}

Hash256 keccak256(std::span<const std::uint8_t> data) {
  Keccak256 h;
  h.update(data);
  return h.finalize();
}

Hash256 keccak256(std::string_view text) {
  Keccak256 h;
  h.update(text);
  return h.finalize();
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length hex string");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("from_hex: non-hex character");
  };
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(nibble(hex[2 * i]) << 4 |
                                       nibble(hex[2 * i + 1]));
  }
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

}  // namespace proxion::crypto
