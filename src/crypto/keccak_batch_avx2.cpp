// AVX2 4-lane keccak-f[1600] kernel. This TU is compiled with -mavx2 and is
// only part of the build under PROXION_SIMD=ON; nothing here runs unless the
// CPU reports AVX2 at runtime (keccak_avx2_supported), so the rest of the
// binary stays baseline-ISA clean.
//
// State layout matches keccak_batch.cpp: word-major / lane-minor, so the four
// copies of state word w are st[w*4 .. w*4+3] — one 256-bit register per word.
#include <cstdint>

#if defined(PROXION_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace proxion::crypto::detail {

#if defined(PROXION_SIMD_AVX2)

namespace {

constexpr int kRounds = 24;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kPi[24] = {10, 7,  11, 17, 18, 3,  5,  16, 8,  21, 24, 4,
                         15, 23, 19, 13, 12, 2,  20, 14, 22, 9,  6,  1};
constexpr int kRho[24] = {1,  3,  6,  10, 15, 21, 28, 36, 45, 55, 2,  14,
                          27, 41, 56, 8,  25, 43, 62, 18, 39, 61, 20, 44};

inline __m256i rotl(__m256i x, int n) noexcept {
  return _mm256_or_si256(_mm256_slli_epi64(x, n), _mm256_srli_epi64(x, 64 - n));
}

}  // namespace

bool keccak_avx2_supported() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

void keccak_f1600_x4_avx2(std::uint64_t* st) noexcept {
  __m256i a[25];
  for (int w = 0; w < 25; ++w) {
    a[w] = _mm256_load_si256(reinterpret_cast<const __m256i*>(st + w * 4));
  }
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    __m256i c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_xor_si256(a[x], a[x + 5]),
                           _mm256_xor_si256(a[x + 10], a[x + 15])),
          a[x + 20]);
    }
    for (int x = 0; x < 5; ++x) {
      const __m256i d =
          _mm256_xor_si256(c[(x + 4) % 5], rotl(c[(x + 1) % 5], 1));
      for (int y = 0; y < 25; y += 5) a[x + y] = _mm256_xor_si256(a[x + y], d);
    }
    // Rho + Pi
    __m256i last = a[1];
    for (int i = 0; i < 24; ++i) {
      const int j = kPi[i];
      const __m256i tmp = a[j];
      a[j] = rotl(last, kRho[i]);
      last = tmp;
    }
    // Chi
    for (int y = 0; y < 25; y += 5) {
      __m256i row[5];
      for (int x = 0; x < 5; ++x) row[x] = a[y + x];
      for (int x = 0; x < 5; ++x) {
        a[y + x] = _mm256_xor_si256(
            row[x], _mm256_andnot_si256(row[(x + 1) % 5], row[(x + 2) % 5]));
      }
    }
    // Iota
    a[0] = _mm256_xor_si256(
        a[0], _mm256_set1_epi64x(
                  static_cast<long long>(kRoundConstants[round])));
  }
  for (int w = 0; w < 25; ++w) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(st + w * 4), a[w]);
  }
}

#endif  // PROXION_SIMD_AVX2

}  // namespace proxion::crypto::detail
