// Ethereum-specific hashing helpers: function selectors, well-known proxy
// storage slots (EIP-1967 / EIP-1822 / EIP-2535), RLP encoding, and the
// CREATE / CREATE2 contract-address derivations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/keccak.h"

namespace proxion::crypto {

using AddressBytes = std::array<std::uint8_t, 20>;
using Selector = std::array<std::uint8_t, 4>;

/// 4-byte function selector: first four bytes of keccak256(prototype).
/// The prototype is the canonical signature, e.g. "transfer(address,uint256)".
/// Backed by a process-wide memo keyed by prototype string: repeated calls
/// for the same signature never re-hash (source corpora mention the same
/// handful of prototypes across thousands of contracts). Hit/miss counts are
/// published as crypto.selector_memo.hits / crypto.selector_memo.misses.
Selector selector_of(std::string_view prototype);

/// Enables/disables the selector memo (enabled by default). Disabling also
/// clears it; used by benchmarks to measure the memo's effect.
void set_selector_memo_enabled(bool enabled);
bool selector_memo_enabled() noexcept;
/// Drops every memoized selector (the toggle state is unchanged).
void clear_selector_memo();

/// Selector packed into a uint32 (big-endian), convenient as a map key.
std::uint32_t selector_u32(std::string_view prototype);
constexpr std::uint32_t selector_u32(const Selector& s) noexcept {
  return (std::uint32_t{s[0]} << 24) | (std::uint32_t{s[1]} << 16) |
         (std::uint32_t{s[2]} << 8) | std::uint32_t{s[3]};
}

/// EIP-1967 logic slot: keccak256("eip1967.proxy.implementation") - 1.
Hash256 eip1967_implementation_slot();
/// EIP-1967 admin slot: keccak256("eip1967.proxy.admin") - 1.
Hash256 eip1967_admin_slot();
/// EIP-1967 beacon slot: keccak256("eip1967.proxy.beacon") - 1.
Hash256 eip1967_beacon_slot();
/// EIP-1822 (UUPS) logic slot: keccak256("PROXIABLE").
Hash256 eip1822_proxiable_slot();
/// EIP-2535 diamond storage base slot:
/// keccak256("diamond.standard.diamond.storage").
Hash256 eip2535_diamond_storage_slot();

/// Minimal RLP encoder — just enough to derive CREATE addresses
/// (list of [address, nonce]).
namespace rlp {
std::vector<std::uint8_t> encode_bytes(std::span<const std::uint8_t> data);
std::vector<std::uint8_t> encode_uint(std::uint64_t value);
std::vector<std::uint8_t> encode_list(
    std::span<const std::vector<std::uint8_t>> items);
}  // namespace rlp

/// CREATE address: last 20 bytes of keccak256(rlp([sender, nonce])).
AddressBytes create_address(const AddressBytes& sender, std::uint64_t nonce);

/// CREATE2 address: last 20 bytes of
/// keccak256(0xff ++ sender ++ salt ++ keccak256(init_code)).
AddressBytes create2_address(const AddressBytes& sender, const Hash256& salt,
                             std::span<const std::uint8_t> init_code);

}  // namespace proxion::crypto
