#include "crypto/eth.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace proxion::crypto {
namespace {

/// Interprets a 32-byte hash as a big-endian integer and subtracts one.
/// Used for the EIP-1967 "hash minus one" slot convention.
Hash256 minus_one(Hash256 h) noexcept {
  for (int i = 31; i >= 0; --i) {
    if (h[static_cast<std::size_t>(i)]-- != 0) break;  // no borrow needed
  }
  return h;
}

// Process-wide prototype -> selector memo, sharded to keep lock contention
// negligible under the sweep's parallel_for. Size-capped as a safety valve:
// real corpora carry a few thousand distinct prototypes, so the cap is never
// reached in practice, but a hostile source set cannot grow the map without
// bound — once a shard is full, new prototypes are hashed without insertion.
struct SelectorMemo {
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kMaxPerShard = (1u << 16) / kShards;

  // Transparent hashing so lookups take string_view without allocating.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Selector, StringHash, std::equal_to<>> map;
  };

  std::atomic<bool> enabled{true};
  Shard shards[kShards];

  Shard& shard_for(std::string_view key) noexcept {
    return shards[std::hash<std::string_view>{}(key) % kShards];
  }

  void clear() {
    for (Shard& s : shards) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
    }
  }
};

SelectorMemo& selector_memo() noexcept {
  static SelectorMemo* memo = new SelectorMemo;  // leaked: process lifetime
  return *memo;
}

obs::Counter& memo_hits() noexcept {
  static obs::Counter& c =
      obs::Registry::global().counter("crypto.selector_memo.hits");
  return c;
}

obs::Counter& memo_misses() noexcept {
  static obs::Counter& c =
      obs::Registry::global().counter("crypto.selector_memo.misses");
  return c;
}

Selector hash_selector(std::string_view prototype) {
  const Hash256 h = keccak256(prototype);
  return {h[0], h[1], h[2], h[3]};
}

}  // namespace

Selector selector_of(std::string_view prototype) {
  SelectorMemo& memo = selector_memo();
  if (!memo.enabled.load(std::memory_order_relaxed)) {
    return hash_selector(prototype);
  }
  SelectorMemo::Shard& shard = memo.shard_for(prototype);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(prototype);
    if (it != shard.map.end()) {
      memo_hits().add(1);
      return it->second;
    }
  }
  memo_misses().add(1);
  const Selector sel = hash_selector(prototype);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() < SelectorMemo::kMaxPerShard) {
      shard.map.emplace(std::string(prototype), sel);
    }
  }
  return sel;
}

void set_selector_memo_enabled(bool enabled) {
  SelectorMemo& memo = selector_memo();
  memo.enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) memo.clear();
}

bool selector_memo_enabled() noexcept {
  return selector_memo().enabled.load(std::memory_order_relaxed);
}

void clear_selector_memo() { selector_memo().clear(); }

std::uint32_t selector_u32(std::string_view prototype) {
  return selector_u32(selector_of(prototype));
}

Hash256 eip1967_implementation_slot() {
  return minus_one(keccak256("eip1967.proxy.implementation"));
}

Hash256 eip1967_admin_slot() {
  return minus_one(keccak256("eip1967.proxy.admin"));
}

Hash256 eip1967_beacon_slot() {
  return minus_one(keccak256("eip1967.proxy.beacon"));
}

Hash256 eip1822_proxiable_slot() { return keccak256("PROXIABLE"); }

Hash256 eip2535_diamond_storage_slot() {
  return keccak256("diamond.standard.diamond.storage");
}

namespace rlp {

std::vector<std::uint8_t> encode_bytes(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  if (data.size() == 1 && data[0] < 0x80) {
    out.push_back(data[0]);
    return out;
  }
  if (data.size() <= 55) {
    out.push_back(static_cast<std::uint8_t>(0x80 + data.size()));
  } else {
    // Length-of-length form; contract-address derivation never needs >2 bytes
    // of length, but support the general case for completeness.
    std::vector<std::uint8_t> len_bytes;
    for (std::size_t n = data.size(); n != 0; n >>= 8) {
      len_bytes.push_back(static_cast<std::uint8_t>(n & 0xff));
    }
    std::reverse(len_bytes.begin(), len_bytes.end());
    out.push_back(static_cast<std::uint8_t>(0xb7 + len_bytes.size()));
    out.insert(out.end(), len_bytes.begin(), len_bytes.end());
  }
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::vector<std::uint8_t> encode_uint(std::uint64_t value) {
  if (value == 0) return {0x80};  // zero encodes as the empty byte string
  std::vector<std::uint8_t> be;
  for (std::uint64_t v = value; v != 0; v >>= 8) {
    be.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  std::reverse(be.begin(), be.end());
  return encode_bytes(be);
}

std::vector<std::uint8_t> encode_list(
    std::span<const std::vector<std::uint8_t>> items) {
  std::size_t payload = 0;
  for (const auto& item : items) payload += item.size();

  std::vector<std::uint8_t> out;
  if (payload <= 55) {
    out.push_back(static_cast<std::uint8_t>(0xc0 + payload));
  } else {
    std::vector<std::uint8_t> len_bytes;
    for (std::size_t n = payload; n != 0; n >>= 8) {
      len_bytes.push_back(static_cast<std::uint8_t>(n & 0xff));
    }
    std::reverse(len_bytes.begin(), len_bytes.end());
    out.push_back(static_cast<std::uint8_t>(0xf7 + len_bytes.size()));
    out.insert(out.end(), len_bytes.begin(), len_bytes.end());
  }
  for (const auto& item : items) out.insert(out.end(), item.begin(), item.end());
  return out;
}

}  // namespace rlp

AddressBytes create_address(const AddressBytes& sender, std::uint64_t nonce) {
  const std::vector<std::vector<std::uint8_t>> items = {
      rlp::encode_bytes(std::span<const std::uint8_t>(sender)),
      rlp::encode_uint(nonce),
  };
  const auto encoded = rlp::encode_list(items);
  const Hash256 h = keccak256(encoded);
  AddressBytes out;
  std::memcpy(out.data(), h.data() + 12, 20);
  return out;
}

AddressBytes create2_address(const AddressBytes& sender, const Hash256& salt,
                             std::span<const std::uint8_t> init_code) {
  std::vector<std::uint8_t> preimage;
  preimage.reserve(1 + 20 + 32 + 32);
  preimage.push_back(0xff);
  preimage.insert(preimage.end(), sender.begin(), sender.end());
  preimage.insert(preimage.end(), salt.begin(), salt.end());
  const Hash256 code_hash = keccak256(init_code);
  preimage.insert(preimage.end(), code_hash.begin(), code_hash.end());
  const Hash256 h = keccak256(preimage);
  AddressBytes out;
  std::memcpy(out.data(), h.data() + 12, 20);
  return out;
}

}  // namespace proxion::crypto
