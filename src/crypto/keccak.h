// Keccak-256 as used by Ethereum (original Keccak padding 0x01, not SHA-3's
// 0x06). Self-contained; no external dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace proxion::crypto {

using Hash256 = std::array<std::uint8_t, 32>;

/// Keccak-256 digest of an arbitrary byte string.
Hash256 keccak256(std::span<const std::uint8_t> data);

/// Process-wide count of digests computed (one per finalize; batch calls add
/// one per input), monotonic and thread-safe. Lets perf tests assert that
/// hashing work was amortized (e.g. the pipeline hashes each distinct logic
/// blob once, not once per pair).
std::uint64_t keccak_invocations() noexcept;

/// Convenience overload hashing the raw bytes of a string (no terminator).
Hash256 keccak256(std::string_view text);

/// Lane count of the batched permutation: inputs are processed in groups of
/// this many independent messages per keccak-f[1600] sweep.
inline constexpr std::size_t kKeccakLanes = 4;

/// Batched Keccak-256: hashes each input independently and returns digests in
/// input order, bit-identical to calling keccak256() per element. Inputs of
/// any (ragged) lengths are accepted; same-padded-block-count messages are
/// grouped into kKeccakLanes-wide interleaved permutation sweeps (portable
/// 64-bit SWAR, or AVX2 when built with PROXION_SIMD and the CPU supports it;
/// leftovers fall back to the scalar reference).
std::vector<Hash256> keccak256_many(std::span<const std::vector<std::uint8_t>> inputs);
std::vector<Hash256> keccak256_many(std::span<const std::span<const std::uint8_t>> inputs);

/// Name of the multi-lane backend selected at startup: "avx2" or "swar".
/// Purely informational (benchmarks and tests print it).
const char* keccak_batch_backend() noexcept;

/// Incremental hasher for streaming input (used when hashing large code blobs
/// chunk-by-chunk, e.g. while deduplicating a population of contracts).
class Keccak256 {
 public:
  Keccak256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Hash256 finalize() noexcept;

 private:
  void absorb_block() noexcept;

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, 136> buffer_{};  // rate = 1088 bits = 136 bytes
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

/// Hex string ("deadbeef" or "0xdeadbeef") -> bytes. Throws std::invalid_argument
/// on odd length or non-hex characters.
std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Bytes -> lowercase hex without 0x prefix.
std::string to_hex(std::span<const std::uint8_t> data);

namespace detail {

/// The scalar keccak-f[1600] permutation (24 rounds) over the 25-word state.
/// Exposed for the batch implementations, which must stay bit-identical to it.
void keccak_f1600(std::array<std::uint64_t, 25>& a) noexcept;

/// Bumps the process-wide digest counter by `n` (one per digest produced).
/// Batch paths call this once per batch instead of once per input.
void count_keccak_digests(std::uint64_t n) noexcept;

}  // namespace detail

}  // namespace proxion::crypto
