// Keccak-256 as used by Ethereum (original Keccak padding 0x01, not SHA-3's
// 0x06). Self-contained; no external dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace proxion::crypto {

using Hash256 = std::array<std::uint8_t, 32>;

/// Keccak-256 digest of an arbitrary byte string.
Hash256 keccak256(std::span<const std::uint8_t> data);

/// Process-wide count of digests computed (one per finalize), monotonic and
/// thread-safe. Lets perf tests assert that hashing work was amortized (e.g.
/// the pipeline hashes each distinct logic blob once, not once per pair).
std::uint64_t keccak_invocations() noexcept;

/// Convenience overload hashing the raw bytes of a string (no terminator).
Hash256 keccak256(std::string_view text);

/// Incremental hasher for streaming input (used when hashing large code blobs
/// chunk-by-chunk, e.g. while deduplicating a population of contracts).
class Keccak256 {
 public:
  Keccak256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Hash256 finalize() noexcept;

 private:
  void absorb_block() noexcept;

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, 136> buffer_{};  // rate = 1088 bits = 136 bytes
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

/// Hex string ("deadbeef" or "0xdeadbeef") -> bytes. Throws std::invalid_argument
/// on odd length or non-hex characters.
std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Bytes -> lowercase hex without 0x prefix.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace proxion::crypto
