// SHA-256 (FIPS 180-4), self-contained. Backs the 0x02 precompiled contract
// in the EVM interpreter.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace proxion::crypto {

std::array<std::uint8_t, 32> sha256(std::span<const std::uint8_t> data);
std::array<std::uint8_t, 32> sha256(std::string_view text);

}  // namespace proxion::crypto
