// Batched multi-lane Keccak-256.
//
// keccak256_many() hashes independent messages kKeccakLanes (4) at a time
// through one interleaved keccak-f[1600] permutation. The interleaved state
// is word-major / lane-minor: st[word * kKeccakLanes + lane], i.e. the four
// copies of state word w sit in adjacent u64s — exactly one 256-bit vector
// register per word, so the AVX2 kernel loads/stores each word with a single
// instruction and the portable kernel below expresses the same thing as
// 4-wide SWAR structs the compiler can auto-vectorize.
//
// Messages are grouped by padded block count (floor(len/136) + 1); lanes in a
// sweep must agree on block count so every lane absorbs and permutes in
// lockstep. Leftover groups of one message fall back to the scalar reference.
// Every path is bit-identical to detail::keccak_f1600 by construction (same
// round constants, same rho/pi schedules) and verified in test_keccak.cpp.
//
// Backend selection happens once per process: the AVX2 kernel (separate TU
// compiled with -mavx2, present only under PROXION_SIMD=ON) is used when the
// CPU reports AVX2 at runtime, otherwise the portable SWAR kernel.
#include "crypto/keccak.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace proxion::crypto {
namespace detail {

#if defined(PROXION_SIMD_AVX2)
// Defined in keccak_batch_avx2.cpp (compiled with -mavx2).
void keccak_f1600_x4_avx2(std::uint64_t* st) noexcept;
bool keccak_avx2_supported() noexcept;
#endif

namespace {

constexpr int kRounds = 24;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kPi[24] = {10, 7,  11, 17, 18, 3,  5,  16, 8,  21, 24, 4,
                         15, 23, 19, 13, 12, 2,  20, 14, 22, 9,  6,  1};
constexpr int kRho[24] = {1,  3,  6,  10, 15, 21, 28, 36, 45, 55, 2,  14,
                          27, 41, 56, 8,  25, 43, 62, 18, 39, 61, 20, 44};

constexpr std::uint64_t rotl64(std::uint64_t x, unsigned n) noexcept {
  return (x << n) | (x >> (64 - n));
}

// One u64 per lane; the compiler vectorizes the element-wise ops.
struct V4 {
  std::uint64_t v[kKeccakLanes];
};

inline V4 operator^(const V4& a, const V4& b) noexcept {
  return {{a.v[0] ^ b.v[0], a.v[1] ^ b.v[1], a.v[2] ^ b.v[2], a.v[3] ^ b.v[3]}};
}

inline V4& operator^=(V4& a, const V4& b) noexcept {
  for (std::size_t i = 0; i < kKeccakLanes; ++i) a.v[i] ^= b.v[i];
  return a;
}

/// ~a & b (the chi nonlinearity; matches _mm256_andnot_si256 operand order).
inline V4 andn(const V4& a, const V4& b) noexcept {
  return {{~a.v[0] & b.v[0], ~a.v[1] & b.v[1], ~a.v[2] & b.v[2],
           ~a.v[3] & b.v[3]}};
}

inline V4 rotl(const V4& a, unsigned n) noexcept {
  return {{rotl64(a.v[0], n), rotl64(a.v[1], n), rotl64(a.v[2], n),
           rotl64(a.v[3], n)}};
}

}  // namespace

/// Portable 4-lane permutation over the interleaved state (25 * 4 u64,
/// word-major). Same round structure as the scalar keccak_f1600.
void keccak_f1600_x4_swar(std::uint64_t* st) noexcept {
  V4 a[25];
  std::memcpy(a, st, sizeof(a));
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    V4 c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      const V4 d = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) a[x + y] ^= d;
    }
    // Rho + Pi
    V4 last = a[1];
    for (int i = 0; i < 24; ++i) {
      const int j = kPi[i];
      const V4 tmp = a[j];
      a[j] = rotl(last, static_cast<unsigned>(kRho[i]));
      last = tmp;
    }
    // Chi
    for (int y = 0; y < 25; y += 5) {
      V4 row[5];
      for (int x = 0; x < 5; ++x) row[x] = a[y + x];
      for (int x = 0; x < 5; ++x) {
        a[y + x] = row[x] ^ andn(row[(x + 1) % 5], row[(x + 2) % 5]);
      }
    }
    // Iota
    const std::uint64_t rc = kRoundConstants[round];
    for (std::size_t l = 0; l < kKeccakLanes; ++l) a[0].v[l] ^= rc;
  }
  std::memcpy(st, a, sizeof(a));
}

}  // namespace detail

namespace {

constexpr std::size_t kRate = 136;  // 1088-bit rate of Keccak-256

using PermX4 = void (*)(std::uint64_t*) noexcept;

struct Backend {
  PermX4 perm;
  const char* name;
};

Backend pick_backend() noexcept {
#if defined(PROXION_SIMD_AVX2)
  if (detail::keccak_avx2_supported()) {
    return {detail::keccak_f1600_x4_avx2, "avx2"};
  }
#endif
  return {detail::keccak_f1600_x4_swar, "swar"};
}

const Backend& backend() noexcept {
  static const Backend b = pick_backend();
  return b;
}

/// Padded block count: Keccak's 0x01..0x80 padding always adds at least one
/// byte, so an exact-multiple message still gains a final all-padding block.
constexpr std::size_t blocks_of(std::size_t len) noexcept {
  return len / kRate + 1;
}

/// Hashes `lanes` (2..kKeccakLanes) messages of identical padded block count
/// through the interleaved permutation. Unused lanes stay zero (harmless —
/// their output is never read).
void hash_lanes(const std::uint8_t* const* data, const std::size_t* len,
                std::size_t lanes, std::size_t nblocks, Hash256* out) {
  alignas(32) std::uint64_t st[25 * kKeccakLanes] = {};
  std::uint8_t block[kRate];
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * kRate;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t remaining = len[l] - off;
      if (remaining >= kRate) {
        std::memcpy(block, data[l] + off, kRate);
      } else {
        if (remaining > 0) std::memcpy(block, data[l] + off, remaining);
        std::memset(block + remaining, 0, kRate - remaining);
        block[remaining] = 0x01;  // multi-rate padding start
        block[kRate - 1] |= 0x80;
      }
      for (std::size_t w = 0; w < kRate / 8; ++w) {
        std::uint64_t word = 0;
        std::memcpy(&word, block + w * 8, 8);  // little-endian hosts only
        st[w * kKeccakLanes + l] ^= word;
      }
    }
    backend().perm(st);
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t w = 0; w < Hash256{}.size() / 8; ++w) {
      std::memcpy(out[l].data() + w * 8, &st[w * kKeccakLanes + l], 8);
    }
  }
}

/// Scalar reference without the per-digest counter bump (the batch entry
/// points count all inputs in one add).
Hash256 hash_scalar_uncounted(const std::uint8_t* data, std::size_t len) {
  std::array<std::uint64_t, 25> state{};
  std::uint8_t block[kRate];
  const std::size_t nblocks = blocks_of(len);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t off = b * kRate;
    const std::size_t remaining = len - off;
    if (remaining >= kRate) {
      std::memcpy(block, data + off, kRate);
    } else {
      if (remaining > 0) std::memcpy(block, data + off, remaining);
      std::memset(block + remaining, 0, kRate - remaining);
      block[remaining] = 0x01;
      block[kRate - 1] |= 0x80;
    }
    for (std::size_t w = 0; w < kRate / 8; ++w) {
      std::uint64_t word = 0;
      std::memcpy(&word, block + w * 8, 8);
      state[w] ^= word;
    }
    detail::keccak_f1600(state);
  }
  Hash256 out{};
  std::memcpy(out.data(), state.data(), out.size());
  return out;
}

/// Shared driver: groups inputs by padded block count (a stable sort of
/// indices — digests land back in input order regardless), sweeps full and
/// partial lane groups through the interleaved kernel, and counts every
/// digest in one registry add.
std::vector<Hash256> many_impl(const std::uint8_t* const* datas,
                               const std::size_t* lens, std::size_t n) {
  std::vector<Hash256> out(n);
  if (n == 0) return out;

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return blocks_of(lens[a]) < blocks_of(lens[b]);
                   });

  std::size_t i = 0;
  while (i < n) {
    const std::size_t nb = blocks_of(lens[order[i]]);
    std::size_t j = i + 1;
    while (j < n && j - i < kKeccakLanes && blocks_of(lens[order[j]]) == nb) {
      ++j;
    }
    const std::size_t lanes = j - i;
    if (lanes >= 2) {
      const std::uint8_t* data[kKeccakLanes] = {};
      std::size_t len[kKeccakLanes] = {};
      Hash256 res[kKeccakLanes];
      for (std::size_t l = 0; l < lanes; ++l) {
        data[l] = datas[order[i + l]];
        len[l] = lens[order[i + l]];
      }
      hash_lanes(data, len, lanes, nb, res);
      for (std::size_t l = 0; l < lanes; ++l) out[order[i + l]] = res[l];
    } else {
      out[order[i]] =
          hash_scalar_uncounted(datas[order[i]], lens[order[i]]);
    }
    i = j;
  }

  detail::count_keccak_digests(n);
  return out;
}

}  // namespace

const char* keccak_batch_backend() noexcept { return backend().name; }

std::vector<Hash256> keccak256_many(
    std::span<const std::vector<std::uint8_t>> inputs) {
  std::vector<const std::uint8_t*> datas(inputs.size());
  std::vector<std::size_t> lens(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    datas[i] = inputs[i].data();
    lens[i] = inputs[i].size();
  }
  return many_impl(datas.data(), lens.data(), inputs.size());
}

std::vector<Hash256> keccak256_many(
    std::span<const std::span<const std::uint8_t>> inputs) {
  std::vector<const std::uint8_t*> datas(inputs.size());
  std::vector<std::size_t> lens(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    datas[i] = inputs[i].data();
    lens[i] = inputs[i].size();
  }
  return many_impl(datas.data(), lens.data(), inputs.size());
}

}  // namespace proxion::crypto
