#include "core/selector_extractor.h"

#include <algorithm>

namespace proxion::core {

using evm::Instruction;
using evm::Opcode;

namespace {

std::uint32_t selector_of(const Instruction& push4) {
  return (std::uint32_t{push4.immediate[0]} << 24) |
         (std::uint32_t{push4.immediate[1]} << 16) |
         (std::uint32_t{push4.immediate[2]} << 8) |
         std::uint32_t{push4.immediate[3]};
}

/// Does instructions[i..] match "<compare> [PUSHn] JUMPI" within a small
/// window? Compilers interleave DUP/SWAP for stack scheduling, so we skip
/// those, but any other opcode breaks the pattern.
bool compare_jump_follows(const std::vector<Instruction>& ins, std::size_t i) {
  bool saw_compare = false;
  bool saw_push_target = false;
  std::size_t window = 0;
  for (std::size_t j = i; j < ins.size() && window < 6; ++j, ++window) {
    const Opcode op = ins[j].opcode();
    if (op == Opcode::EQ || op == Opcode::GT || op == Opcode::LT ||
        op == Opcode::SUB) {
      // SUB covers the "sub and jump if nonzero" dispatch variant.
      saw_compare = true;
      continue;
    }
    if (evm::is_push(ins[j].byte)) {
      if (!saw_compare) return false;  // PUSH before any compare: not a match
      saw_push_target = true;
      continue;
    }
    if (op == Opcode::JUMPI) {
      return saw_compare && saw_push_target;
    }
    if (evm::is_dup(ins[j].byte) || evm::is_swap(ins[j].byte)) {
      continue;  // stack scheduling noise
    }
    return false;
  }
  return false;
}

}  // namespace

std::vector<std::uint32_t> extract_selectors(const evm::Disassembly& dis) {
  std::vector<std::uint32_t> out;
  const auto& ins = dis.instructions();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i].byte != 0x63 || ins[i].immediate.size() != 4) continue;
    if (compare_jump_follows(ins, i + 1)) {
      out.push_back(selector_of(ins[i]));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::uint32_t> extract_selectors(evm::BytesView code) {
  return extract_selectors(evm::Disassembly(code));
}

std::vector<std::uint32_t> extract_selectors_naive(evm::BytesView code) {
  const evm::Disassembly dis(code);
  std::vector<std::uint32_t> out = dis.push4_values();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace proxion::core
