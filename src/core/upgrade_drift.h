// Upgrade-induced storage drift (§2.3): "Upgrading the logic contract to
// newer versions that change the order or types of variables also
// facilitates storage collisions." Given a proxy's full logic history
// (Algorithm 1), this detector compares the storage profile of each logic
// version against its successor and flags slots whose typed byte ranges
// changed across the upgrade — data written by vN is reinterpreted by vN+1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/logic_finder.h"
#include "core/storage_profile.h"
#include "evm/host.h"
#include "evm/types.h"

namespace proxion::core {

struct DriftFinding {
  std::size_t from_version = 0;  // index into the logic history
  std::size_t to_version = 0;
  evm::U256 slot;
  std::uint8_t old_offset = 0, old_width = 32;
  std::uint8_t new_offset = 0, new_width = 32;
  /// The slot was actually written under the old version (live data is at
  /// risk, not just a theoretical remapping).
  bool old_version_wrote = false;
};

struct UpgradeDriftResult {
  std::vector<DriftFinding> findings;
  bool has_drift() const noexcept { return !findings.empty(); }
};

class UpgradeDriftDetector {
 public:
  explicit UpgradeDriftDetector(evm::Host& state) : state_(state) {}

  /// Compares each consecutive pair of logic versions in the history.
  UpgradeDriftResult analyze(const Address& proxy,
                             const LogicHistory& history);

 private:
  evm::Host& state_;
};

}  // namespace proxion::core
