#include "core/selector_grinder.h"

#include <algorithm>

#include "crypto/keccak.h"

namespace proxion::core {

namespace {

constexpr char kAlphabet[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
constexpr std::uint64_t kBase = 62;

std::string suffix_for(std::uint64_t n) {
  // Bijective base-62: every n maps to a distinct non-empty suffix.
  std::string out;
  std::uint64_t v = n + 1;
  while (v != 0) {
    --v;
    out.push_back(kAlphabet[v % kBase]);
    v /= kBase;
  }
  return out;
}

}  // namespace

std::optional<GrindResult> grind_selector(std::uint32_t target_selector,
                                          const GrindConfig& config) {
  const int bits = std::clamp(config.match_bits, 1, 32);
  const std::uint32_t mask =
      bits == 32 ? 0xffffffffu : ~((1u << (32 - bits)) - 1u);
  const std::uint32_t want = target_selector & mask;

  for (std::uint64_t attempt = 0;
       config.max_attempts == 0 || attempt < config.max_attempts; ++attempt) {
    const std::string prototype =
        config.prefix + suffix_for(attempt) + config.arguments;
    const crypto::Hash256 h = crypto::keccak256(prototype);
    const std::uint32_t selector = (std::uint32_t{h[0]} << 24) |
                                   (std::uint32_t{h[1]} << 16) |
                                   (std::uint32_t{h[2]} << 8) |
                                   std::uint32_t{h[3]};
    if ((selector & mask) == want) {
      return GrindResult{prototype, attempt + 1};
    }
  }
  return std::nullopt;
}

}  // namespace proxion::core
