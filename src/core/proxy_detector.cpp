#include "core/proxy_detector.h"

#include <algorithm>
#include <unordered_set>

#include "crypto/eth.h"
#include "obs/metrics.h"

namespace proxion::core {

std::string_view to_string(ProxyVerdict v) noexcept {
  switch (v) {
    case ProxyVerdict::kNotProxy: return "not-proxy";
    case ProxyVerdict::kProxy: return "proxy";
    case ProxyVerdict::kEmulationError: return "emulation-error";
  }
  return "?";
}

std::string_view to_string(LogicSource s) noexcept {
  switch (s) {
    case LogicSource::kNone: return "none";
    case LogicSource::kHardcoded: return "hardcoded";
    case LogicSource::kStorageSlot: return "storage-slot";
    case LogicSource::kComputed: return "computed";
  }
  return "?";
}

std::string_view to_string(ProxyStandard s) noexcept {
  switch (s) {
    case ProxyStandard::kNotProxy: return "not-proxy";
    case ProxyStandard::kEip1167: return "EIP-1167";
    case ProxyStandard::kEip1822: return "EIP-1822";
    case ProxyStandard::kEip1967: return "EIP-1967";
    case ProxyStandard::kOther: return "other";
  }
  return "?";
}

std::string_view to_string(StaticTriage t) noexcept {
  switch (t) {
    case StaticTriage::kNotRun: return "not-run";
    case StaticTriage::kEmulated: return "emulated";
    case StaticTriage::kSkippedNoDelegatecall: return "skip-no-delegatecall";
    case StaticTriage::kSkippedDeadDelegatecall:
      return "skip-dead-delegatecall";
    case StaticTriage::kSkippedMinimalProxy: return "skip-minimal-proxy";
  }
  return "?";
}

namespace {

/// Watches the emulated execution for (a) DELEGATECALLs issued by the tested
/// contract's own frame that forward the crafted call data, and (b) SLOADs
/// against the tested contract's storage, to later attribute the logic
/// address to the slot it was loaded from.
class ProxyProbeObserver final : public evm::TraceObserver {
 public:
  /// A keccak-derived slot-family identity reconstructed from the concrete
  /// hashes the probe computed (mirrors static_analysis::SlotFamily).
  struct ObservedFamily {
    U256 base;
    std::uint8_t depth = 1;
    std::uint8_t path = 0;
  };
  struct ObservedWrite {
    U256 slot;
    U256 old_value;
    U256 new_value;
  };

  /// `host` (may be null) is queried in on_sstore for the pre-write value,
  /// which the layout-width oracle needs to compute the changed byte range.
  ProxyProbeObserver(const Address& contract, const evm::Bytes& probe,
                     evm::Host* host = nullptr)
      : contract_(contract), probe_(probe), host_(host) {}

  void on_call(evm::CallKind kind, int /*depth*/, const Address& from,
               const Address& to, BytesView calldata) override {
    if (kind != evm::CallKind::kDelegateCall) return;
    if (!(from == contract_)) return;
    saw_delegatecall_ = true;
    const bool forwarded =
        calldata.size() == probe_.size() &&
        std::equal(calldata.begin(), calldata.end(), probe_.begin());
    if (forwarded && !forwarding_target_) {
      forwarding_target_ = to;
    }
  }

  void on_sload(int depth, const Address& storage_addr, const U256& slot,
                const U256& value) override {
    if (storage_addr == contract_) {
      sloads_.emplace_back(slot, value);
      // Layout oracle: only the contract's own frame (depth 0) executes the
      // contract's own code — delegatecalled logic runs against the same
      // storage but belongs to the *logic* contract's layout.
      if (depth == 0) probe_read_slots_.push_back(slot);
    }
  }

  void on_sstore(int depth, const Address& storage_addr, const U256& slot,
                 const U256& value) override {
    if (depth == 0 && storage_addr == contract_ && host_ != nullptr) {
      probe_writes_.push_back(
          {slot, host_->get_storage(storage_addr, slot), value});
    }
  }

  void on_keccak(int /*depth*/, BytesView input, const U256& hash) override {
    // Solidity's two slot-derivation shapes: 64 bytes = key ++ base_slot
    // (mapping element), 32 bytes = base_slot (dynamic-array data start).
    if (input.size() != 32 && input.size() != 64) return;
    const bool mapping = input.size() == 64;
    const U256 base_word =
        U256::from_be_slice(mapping ? input.subspan(32) : input);
    ObservedFamily fam{base_word, 1,
                      mapping ? std::uint8_t{1} : std::uint8_t{0}};
    for (const auto& [h, f] : keccak_families_) {
      // Nesting: the base word is itself a hash we computed earlier, so this
      // keccak extends that family by one level.
      if (h == base_word && f.depth < 8) {
        fam.base = f.base;
        fam.depth = static_cast<std::uint8_t>(f.depth + 1);
        fam.path = f.path;
        if (mapping) fam.path |= static_cast<std::uint8_t>(1u << f.depth);
        break;
      }
    }
    keccak_families_.emplace_back(hash, fam);
  }

  bool saw_delegatecall() const noexcept { return saw_delegatecall_; }
  const std::optional<Address>& forwarding_target() const noexcept {
    return forwarding_target_;
  }
  const std::vector<std::pair<U256, U256>>& sloads() const noexcept {
    return sloads_;
  }
  const std::vector<U256>& probe_read_slots() const noexcept {
    return probe_read_slots_;
  }
  const std::vector<ObservedWrite>& probe_writes() const noexcept {
    return probe_writes_;
  }
  const std::vector<std::pair<U256, ObservedFamily>>& keccak_families()
      const noexcept {
    return keccak_families_;
  }

 private:
  Address contract_;
  evm::Bytes probe_;
  evm::Host* host_;
  bool saw_delegatecall_ = false;
  std::optional<Address> forwarding_target_;
  std::vector<std::pair<U256, U256>> sloads_;
  std::vector<U256> probe_read_slots_;             // depth-0 reads
  std::vector<ObservedWrite> probe_writes_;        // depth-0 writes
  std::vector<std::pair<U256, ObservedFamily>> keccak_families_;
};

/// Do the 20 address bytes appear contiguously in the code?
bool address_in_code(const Address& a, BytesView code) {
  if (code.size() < 20) return false;
  return std::search(code.begin(), code.end(), a.bytes.begin(),
                     a.bytes.end()) != code.end();
}

const U256& eip1967_impl_slot() {
  static const U256 s = evm::to_u256(crypto::eip1967_implementation_slot());
  return s;
}
const U256& eip1967_beacon_slot() {
  static const U256 s = evm::to_u256(crypto::eip1967_beacon_slot());
  return s;
}
const U256& eip1822_slot() {
  static const U256 s = evm::to_u256(crypto::eip1822_proxiable_slot());
  return s;
}

ProxyStandard classify(const ProxyReport& r, BytesView code) {
  if (r.verdict != ProxyVerdict::kProxy) return ProxyStandard::kNotProxy;
  switch (r.logic_source) {
    case LogicSource::kHardcoded:
      // The minimal-proxy EIPs pin the logic address in the bytecode; the
      // paper additionally notes their runtime is under ~100 bytes (§4.3).
      return code.size() <= 100 ? ProxyStandard::kEip1167
                                : ProxyStandard::kOther;
    case LogicSource::kStorageSlot:
      if (r.logic_slot == eip1967_impl_slot() ||
          r.logic_slot == eip1967_beacon_slot()) {
        return ProxyStandard::kEip1967;
      }
      if (r.logic_slot == eip1822_slot()) return ProxyStandard::kEip1822;
      return ProxyStandard::kOther;
    default:
      return ProxyStandard::kOther;
  }
}

/// Largest family-element displacement the oracle will attribute to an
/// array index (`keccak(base) + i`): beyond this, an observed slot near a
/// computed hash is treated as outside the family.
constexpr std::uint64_t kMaxFamilyOffset = 1024;

/// The observed slot, if keccak-derived, resolved to a family the layout
/// knows. Returns nullptr when no recorded hash explains the slot.
const static_analysis::SlotFamily* admitted_family(
    const static_analysis::StorageLayout& layout, const U256& slot,
    const ProxyProbeObserver& obs) {
  for (const auto& [hash, fam] : obs.keccak_families()) {
    if (slot < hash) continue;
    const U256 diff = slot - hash;
    if (!diff.fits_u64() || diff.low64() > kMaxFamilyOffset) continue;
    if (const auto* f = layout.family(fam.base, fam.depth, fam.path)) {
      return f;
    }
  }
  return nullptr;
}

/// kMismatchLayout* bits: the probe's depth-0 storage accesses checked
/// against a *reliable* inferred layout (the caller guarantees reliability —
/// anything weaker makes no contradictable claim, PR-4 oracle posture).
std::uint8_t layout_vs_emulation_mismatch(
    const static_analysis::StorageLayout& layout,
    const ProxyProbeObserver& obs) {
  std::uint8_t bits = 0;
  for (const U256& slot : obs.probe_read_slots()) {
    if (!layout.admits_slot(slot) &&
        admitted_family(layout, slot, obs) == nullptr) {
      bits |= kMismatchLayoutSlot;
    }
  }
  for (const auto& w : obs.probe_writes()) {
    const bool is_member = layout.admits_slot(w.slot);
    const auto* fam =
        is_member ? nullptr : admitted_family(layout, w.slot, obs);
    if (!is_member && fam == nullptr) {
      bits |= kMismatchLayoutSlot;
      continue;
    }
    if (w.old_value == w.new_value) continue;  // no observable byte change
    // Changed byte range, as (offset from the LSB end, width) — the
    // core::StorageAccess convention the layout's ranges use.
    const auto ob = w.old_value.to_be_bytes();
    const auto nb = w.new_value.to_be_bytes();
    int first = -1, last = -1;
    for (int i = 0; i < 32; ++i) {
      if (ob[static_cast<std::size_t>(i)] != nb[static_cast<std::size_t>(i)]) {
        if (first < 0) first = i;
        last = i;
      }
    }
    const auto changed_offset = static_cast<std::uint8_t>(31 - last);
    const auto changed_width = static_cast<std::uint8_t>(last - first + 1);
    if (is_member) {
      // Enforce widths only when every inferred view of the slot is
      // sub-word: a full-word member admits any byte change by definition.
      bool any = false, all_subword = true;
      for (const auto& m : layout.members) {
        if (!(m.slot == w.slot)) continue;
        any = true;
        if (m.offset == 0 && m.width == 32) all_subword = false;
      }
      if (any && all_subword &&
          !layout.covers_range(w.slot, changed_offset, changed_width)) {
        bits |= kMismatchLayoutWidth;
      }
    } else if (fam != nullptr &&
               !(fam->value_offset == 0 && fam->value_width == 32)) {
      if (changed_offset < fam->value_offset ||
          changed_offset + changed_width >
              fam->value_offset + fam->value_width) {
        bits |= kMismatchLayoutWidth;
      }
    }
  }
  return bits;
}

}  // namespace

std::uint32_t ProxyDetector::craft_probe_selector(
    const Address& contract, const evm::Disassembly& dis) {
  const auto push4 = dis.push4_values();
  const std::unordered_set<std::uint32_t> avoid(push4.begin(), push4.end());

  // Deterministic starting point derived from the address, then linear
  // probing until we clear every candidate selector in the code.
  const crypto::Hash256 seed =
      crypto::keccak256("proxion.probe:" + contract.to_hex());
  std::uint32_t candidate = (std::uint32_t{seed[0]} << 24) |
                            (std::uint32_t{seed[1]} << 16) |
                            (std::uint32_t{seed[2]} << 8) |
                            std::uint32_t{seed[3]};
  while (avoid.contains(candidate)) ++candidate;
  return candidate;
}

ProxyReport ProxyDetector::analyze(const Address& contract) {
  return analyze_code(contract, state_.get_code(contract));
}

ProxyReport ProxyDetector::analyze_code(const Address& contract,
                                        BytesView code) {
  if (code.empty()) return ProxyReport{};
  if (cache_ != nullptr) {
    return analyze_code(contract, code, evm::code_hash(code));
  }
  const evm::Disassembly dis(code);
  return analyze_disassembled(contract, code, dis, nullptr);
}

ProxyReport ProxyDetector::analyze_code(const Address& contract,
                                        BytesView code,
                                        const crypto::Hash256& code_hash) {
  if (code.empty()) return ProxyReport{};
  if (cache_ == nullptr) {
    const evm::Disassembly dis(code);
    return analyze_disassembled(contract, code, dis, &code_hash);
  }
  const auto dis = cache_->disassembly(code_hash, code);
  return analyze_disassembled(contract, code, *dis, &code_hash);
}

std::uint8_t ProxyDetector::static_vs_emulation_mismatch(
    const static_analysis::StaticReport& st, const ProxyReport& emulated) {
  // One-sided oracle: only a *complete* CFG makes claims strong enough for
  // emulation to contradict. (The converse direction — statically reachable
  // but not executed by this probe — is expected: static reachability is
  // "for SOME input", the probe is one input.)
  if (!st.cfg.complete) return 0;
  std::uint8_t bits = 0;
  if (st.provably_no_delegatecall && emulated.delegatecall_executed) {
    bits |= kMismatchReachability;
  }
  if (emulated.is_proxy()) {
    const auto sites = st.reachable_sites();
    if (!sites.empty()) {
      using static_analysis::TargetClass;
      const bool all_storage =
          std::all_of(sites.begin(), sites.end(), [](const auto& s) {
            return s.target_class == TargetClass::kStorageSlot;
          });
      const bool all_hardcoded =
          std::all_of(sites.begin(), sites.end(), [](const auto& s) {
            return s.target_class == TargetClass::kHardcoded;
          });
      if (emulated.logic_source == LogicSource::kStorageSlot && all_storage &&
          std::none_of(sites.begin(), sites.end(), [&](const auto& s) {
            return s.slot == emulated.logic_slot;
          })) {
        bits |= kMismatchSlot;
      }
      if (all_hardcoded &&
          std::none_of(sites.begin(), sites.end(), [&](const auto& s) {
            return s.address == emulated.logic_address;
          })) {
        bits |= kMismatchTarget;
      }
    }
  }
  return bits;
}

ProxyReport ProxyDetector::analyze_disassembled(
    const Address& contract, BytesView code, const evm::Disassembly& dis,
    const crypto::Hash256* code_hash) {
  ProxyReport report;

  // ---- Phase 1: opcode prefilter (§4.1) --------------------------------
  report.has_delegatecall_opcode = dis.contains(evm::Opcode::DELEGATECALL);
  if (!report.has_delegatecall_opcode) {
    if (config_.static_tier.enabled) {
      report.static_triage = StaticTriage::kSkippedNoDelegatecall;
    }
    return report;
  }

  // ---- Static triage tier (CFG recovery + provenance) -------------------
  std::shared_ptr<const static_analysis::StaticReport> st_owned;
  const static_analysis::StaticReport* st = nullptr;
  if (config_.static_tier.enabled) {
    if (cache_ != nullptr && code_hash != nullptr) {
      st_owned = cache_->static_report(*code_hash, code);
    } else {
      st_owned = std::make_shared<const static_analysis::StaticReport>(
          static_analysis::analyze(dis));
    }
    st = st_owned.get();

    if (st->minimal_proxy_target.has_value()) {
      // Byte-exact EIP-1167 runtime: the fallback unconditionally forwards
      // the full calldata to the embedded address — equivalent to what the
      // probe emulation would witness, minus the emulation steps.
      report.static_triage = StaticTriage::kSkippedMinimalProxy;
      report.verdict = ProxyVerdict::kProxy;
      report.delegatecall_executed = true;
      report.calldata_forwarded = true;
      report.logic_address = *st->minimal_proxy_target;
      report.logic_source = LogicSource::kHardcoded;
      report.standard = classify(report, code);
      return report;
    }
    if (st->skip_dead(config_.emulation_gas, config_.step_limit)) {
      // No DELEGATECALL can execute on any input and the probe provably
      // halts cleanly within budget: emulation would report exactly the
      // default (kNotProxy, no delegatecall) — skip it.
      report.static_triage = StaticTriage::kSkippedDeadDelegatecall;
      return report;
    }
    report.static_triage = StaticTriage::kEmulated;
  }

  // ---- Phase 2: emulation with crafted call data (§4.2) -----------------
  report.probe_selector = craft_probe_selector(contract, dis);
  evm::Bytes probe(4 + config_.probe_argument_bytes, 0);
  probe[0] = static_cast<std::uint8_t>(report.probe_selector >> 24);
  probe[1] = static_cast<std::uint8_t>(report.probe_selector >> 16);
  probe[2] = static_cast<std::uint8_t>(report.probe_selector >> 8);
  probe[3] = static_cast<std::uint8_t>(report.probe_selector);

  // Emulate against an overlay: probing must never mutate real state. The
  // probed code is installed at the contract's address so self-referential
  // opcodes (CODESIZE, EXTCODESIZE on self) behave.
  evm::OverlayHost overlay(state_);
  overlay.set_code(contract, evm::Bytes(code.begin(), code.end()));

  ProxyProbeObserver observer(contract, probe, &overlay);
  evm::InterpreterConfig interp_config;
  interp_config.step_limit = config_.step_limit;
  interp_config.max_call_depth = config_.max_call_depth;
  evm::Interpreter interp(overlay, interp_config);
  interp.set_observer(&observer);

  evm::CallParams params;
  params.code_address = contract;
  params.storage_address = contract;
  params.caller = Address::from_label("proxion.prober");
  params.origin = params.caller;
  params.calldata = probe;
  params.gas = config_.emulation_gas;

  const evm::ExecResult result = interp.execute(params);
  report.halt = result.halt;
  report.emulation_steps = interp.steps_executed();
  report.delegatecall_executed = observer.saw_delegatecall();
  report.calldata_forwarded = observer.forwarding_target().has_value();

  if (report.calldata_forwarded) {
    report.verdict = ProxyVerdict::kProxy;
    report.logic_address = *observer.forwarding_target();

    // Attribute the logic address: storage slot beats hard-coded bytes when
    // both match (a slot-stored address may coincidentally appear in code).
    const U256 target_word = report.logic_address.to_word();
    for (const auto& [slot, value] : observer.sloads()) {
      if ((value & ((U256{1} << U256{160}) - U256{1})) == target_word) {
        report.logic_source = LogicSource::kStorageSlot;
        report.logic_slot = slot;
        break;
      }
    }
    if (report.logic_source == LogicSource::kNone) {
      report.logic_source = address_in_code(report.logic_address, code)
                                ? LogicSource::kHardcoded
                                : LogicSource::kComputed;
    }
  } else if (!evm::is_success(result.halt) &&
             result.halt != evm::HaltReason::kRevert) {
    // Emulation faulted (stack underflow, step limit, bad jump, ...) before
    // we could conclude anything — the paper's §6.2/§7.1 error bucket.
    report.verdict = ProxyVerdict::kEmulationError;
  } else {
    report.verdict = ProxyVerdict::kNotProxy;
  }

  report.standard = classify(report, code);

  if (st != nullptr && config_.static_tier.cross_check) {
    report.static_mismatch = static_vs_emulation_mismatch(*st, report);
  }

  // ---- Layout oracle (storage-layout inference cross-check) -------------
  if (st != nullptr && config_.static_tier.infer_layout) {
    std::shared_ptr<const static_analysis::StorageLayout> layout;
    if (cache_ != nullptr && code_hash != nullptr) {
      layout = cache_->layout(*code_hash, code);
    } else {
      layout = std::make_shared<const static_analysis::StorageLayout>(
          static_analysis::infer_layout(dis, st->cfg));
    }
    report.layout_inferred = true;
    report.layout_reliable = layout->reliable();
    if (report.layout_reliable) {
      report.static_mismatch |= layout_vs_emulation_mismatch(*layout, observer);
      obs::Registry& reg = obs::Registry::global();
      static obs::Counter& slot_mismatches = reg.counter("layout.mismatch.slot");
      static obs::Counter& width_mismatches =
          reg.counter("layout.mismatch.width");
      if ((report.static_mismatch & kMismatchLayoutSlot) != 0) {
        slot_mismatches.add(1);
      }
      if ((report.static_mismatch & kMismatchLayoutWidth) != 0) {
        width_mismatches.add(1);
      }
    }
  }
  return report;
}

}  // namespace proxion::core
