#include "core/pipeline.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "core/report.h"
#include "crypto/keccak.h"

namespace proxion::core {

namespace {

/// Debug-mode enforcement of the external-serialization contract: entering
/// run()/resume()/summarize() while another is in flight on the same
/// pipeline trips the assert. Release builds compile this to nothing.
class ReentrancyGuard {
 public:
  explicit ReentrancyGuard(std::atomic<bool>& busy) : busy_(busy) {
#ifndef NDEBUG
    const bool was_busy = busy_.exchange(true, std::memory_order_acquire);
    assert(!was_busy &&
           "AnalysisPipeline::run/resume/summarize must be externally "
           "serialized per instance");
#endif
  }
  ~ReentrancyGuard() {
#ifndef NDEBUG
    busy_.store(false, std::memory_order_release);
#endif
  }

  ReentrancyGuard(const ReentrancyGuard&) = delete;
  ReentrancyGuard& operator=(const ReentrancyGuard&) = delete;

 private:
  [[maybe_unused]] std::atomic<bool>& busy_;
};

std::string hash_key(const crypto::Hash256& h) {
  return std::string(reinterpret_cast<const char*>(h.data()), h.size());
}

// Cross-run verdict reuse is only sound at the exact address the verdict was
// computed for: the crafted probe selector is seeded from the address, and a
// slot-proxy's logic target is read from that address's storage. Keying the
// memo by (code hash, representative address) makes a warm sweep whose
// representative for a hash changed recompute at the new address — exactly
// what the cache-off pipeline would do — instead of inheriting another
// address's report.
std::string verdict_key(const std::string& code_key, const Address& a) {
  std::string k = code_key;
  k.append(reinterpret_cast<const char*>(a.bytes.data()), a.bytes.size());
  return k;
}

unsigned thread_count(unsigned configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

ErrorKind classify_rpc(const chain::RpcError& e) noexcept {
  switch (e.kind()) {
    case chain::RpcErrorKind::kExhausted:
    case chain::RpcErrorKind::kCircuitOpen:
      return ErrorKind::kRpcExhausted;
    default:
      return ErrorKind::kRpcTransient;
  }
}

ErrorRecord record_of(const chain::RpcError& e, const char* phase) {
  return ErrorRecord{classify_rpc(e), phase, e.what()};
}

}  // namespace

std::string_view to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kRpcTransient: return "rpc_transient";
    case ErrorKind::kRpcExhausted: return "rpc_exhausted";
    case ErrorKind::kEmulationLimit: return "emulation_limit";
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kDiskIo: return "disk_io";
  }
  return "unknown";
}

AnalysisPipeline::AnalysisPipeline(chain::Blockchain& chain,
                                   const sourcemeta::SourceRepository* sources,
                                   PipelineConfig config)
    : chain_(chain), node_(chain), sources_(sources), config_(config) {
  backend_ = config_.archive_node != nullptr ? config_.archive_node : &node_;

  clock_ = config_.telemetry.clock
               ? config_.telemetry.clock
               : obs::TraceClock(&obs::steady_now_ns);
  if (config_.telemetry.enabled) {
    h_contract_ = &registry_.histogram("sweep.contract_latency_ns");
    h_rpc_ = &registry_.histogram("sweep.rpc_latency_ns");
    h_steps_ = &registry_.histogram("sweep.emulation_steps");
    c_contracts_ = &registry_.counter("sweep.contracts");
    if (!config_.telemetry.trace_path.empty() ||
        !config_.telemetry.events_path.empty() ||
        config_.telemetry.live_spans) {
      tracer_ = std::make_unique<obs::Tracer>(
          clock_, config_.telemetry.trace_ring_capacity);
      const std::size_t every = config_.telemetry.span_sample_every_n;
      tracer_->set_sample_every(
          static_cast<std::uint32_t>(every == 0 ? 1 : every));
      tracer_->set_coarse_clock(config_.telemetry.coarse_clock);
    }
  }

  // Archive decorator stack, innermost out: backend -> tracing -> resilient
  // -> coalescing. Tracing sits under the retry layer so every *attempt*
  // (including the ones a retry absorbs) is a latency sample and a span; the
  // coalescer sits outermost so its cache hits skip the retry ladder, the
  // trace spans, and the backend call counters entirely — what the counters
  // report is true backend probe volume.
  const chain::IArchiveNode* wire = backend_;
  if (h_rpc_ != nullptr || tracer_ != nullptr) {
    tracing_node_ = std::make_unique<chain::TracingArchiveNode>(
        *backend_, h_rpc_, tracer_.get(), clock_);
    wire = tracing_node_.get();
  }
  if (config_.enable_retries) {
    resilient_ = std::make_unique<chain::ResilientArchiveNode>(
        *wire, config_.retry, config_.breaker);
    wire = resilient_.get();
    // Publish breaker flips to the introspection plane. The listener fires
    // outside the breaker's lock (see CircuitBreaker::set_state_listener),
    // so emitting an event from it cannot deadlock against RPC traffic.
    obs::EventLog* log = config_.telemetry.event_log;
    obs::SweepStatus* status = config_.telemetry.status;
    if (log != nullptr || status != nullptr) {
      if (status != nullptr) {
        status->breaker_state.store(
            static_cast<std::uint8_t>(resilient_->breaker().state()),
            std::memory_order_relaxed);
      }
      resilient_->breaker().set_state_listener(
          [log, status](util::CircuitBreaker::State s) {
            if (status != nullptr) {
              status->breaker_state.store(static_cast<std::uint8_t>(s),
                                          std::memory_order_relaxed);
            }
            if (log != nullptr) {
              using State = util::CircuitBreaker::State;
              const char* name = s == State::kOpen       ? "open"
                                 : s == State::kHalfOpen ? "half-open"
                                                         : "closed";
              log->emit(s == State::kOpen ? obs::Severity::kWarn
                                          : obs::Severity::kInfo,
                        "chain.breaker",
                        std::string("circuit breaker ") + name);
            }
          });
    }
  }
  if (config_.coalesce_archive_reads) {
    coalescer_ = std::make_unique<chain::CoalescingArchiveNode>(
        *wire, config_.coalescer_shards == 0 ? 1 : config_.coalescer_shards);
  }
  const unsigned shards = config_.cache_shards == 0 ? 1 : config_.cache_shards;
  if (config_.use_analysis_cache) {
    cache_ = std::make_unique<AnalysisCache>(shards);
    if (config_.dedup_by_code_hash) {
      verdict_cache_ =
          std::make_unique<StripedOnceMap<std::string, ProxyReport>>(shards);
    }
  }
  if (config_.use_analysis_cache) {
    blob_cache_ = std::make_unique<CodeBlobMap>(shards);
  }
}

AnalysisPipeline::~AnalysisPipeline() = default;

util::ThreadPool& AnalysisPipeline::pool() {
  if (!pool_) {
    pool_ = std::make_unique<util::ThreadPool>(thread_count(config_.threads));
  }
  return *pool_;
}

std::vector<ContractAnalysis> AnalysisPipeline::run(
    const std::vector<SweepInput>& inputs) {
  ReentrancyGuard guard(busy_);
  return run_internal(inputs, nullptr);
}

std::size_t AnalysisPipeline::resume(const std::vector<SweepInput>& inputs,
                                     std::vector<ContractAnalysis>& reports) {
  ReentrancyGuard guard(busy_);
  if (reports.size() != inputs.size()) {
    throw std::invalid_argument(
        "resume: reports must come from a run over the same inputs");
  }
  bool any_quarantined = false;
  for (const ContractAnalysis& r : reports) {
    if (r.error) {
      any_quarantined = true;
      break;
    }
  }
  if (!any_quarantined) return 0;

  reports = run_internal(inputs, &reports);
  std::size_t still_quarantined = 0;
  for (const ContractAnalysis& r : reports) {
    if (r.error) ++still_quarantined;
  }
  return still_quarantined;
}

std::vector<ContractAnalysis> AnalysisPipeline::run_internal(
    const std::vector<SweepInput>& inputs,
    const std::vector<ContractAnalysis>* prior) {
  const auto t_start = std::chrono::steady_clock::now();
  util::ThreadPool& workers = pool();

  // Live-introspection publishing: phase and progress land in the shared
  // status block as they happen; operational events go to the event log.
  // Both are optional and borrowed — null means no publishing.
  obs::EventLog* const event_log = config_.telemetry.event_log;
  obs::SweepStatus* const status = config_.telemetry.status;
  if (status != nullptr) {
    status->sweeps_started.fetch_add(1, std::memory_order_relaxed);
    status->contracts_total.store(inputs.size(), std::memory_order_relaxed);
    status->contracts_done.store(0, std::memory_order_relaxed);
    status->set_phase(obs::SweepPhase::kFetch);
  }
  if (event_log != nullptr) {
    event_log->emit(obs::Severity::kInfo, "pipeline",
                    (prior != nullptr ? "resume pass started over "
                                      : "sweep started over ") +
                        std::to_string(inputs.size()) + " contracts");
  }

  // Each run entry asserts the backend is worth talking to again; a breaker
  // left open by a previous run's outage must not fast-fail a resume pass.
  if (resilient_) resilient_->breaker().reset();

  // Telemetry scope is one run: the histograms behind the LandscapeStats
  // summaries and the trace rings restart here (the workers are parked
  // between runs, so this reset happens at quiescence).
  if (h_contract_ != nullptr) {
    h_contract_->reset();
    h_rpc_->reset();
    h_steps_->reset();
  }
  if (tracer_) tracer_->clear();
  // Per-contract span sampling: histograms always see every sample, only
  // the trace timeline is thinned.
  const std::size_t every_n = config_.telemetry.sample_every_n;
  auto span_tracer = [&](std::size_t i) -> obs::Tracer* {
    if (!tracer_) return nullptr;
    return (every_n <= 1 || i % every_n == 0) ? tracer_.get() : nullptr;
  };

  // The pair memo never outlives a run, with or without the analysis cache:
  // a PairOutcome depends on run-local state — the §7.1 donor map is built
  // from *this* run's population, and exploit verification reads the proxy's
  // live storage — so a cross-run hit could silently reuse a result that a
  // fresh computation would no longer produce. Only the pure per-bytecode
  // artifacts (AnalysisCache), the immutable code blobs, and the
  // address-keyed proxy verdicts persist across runs.
  pair_cache_ = std::make_unique<StripedOnceMap<std::string, PairOutcome>>(
      config_.cache_shards == 0 ? 1 : config_.cache_shards);

  std::vector<ContractAnalysis> out(inputs.size());

  // ---- fetch code and hash it ------------------------------------------
  // Each distinct address is fetched (through the fault-tolerant archive
  // seam) and keccak'd exactly once — per run when the analysis cache is off
  // (seed semantics), ever when it is on (deployed code is immutable, so a
  // warm sweep skips this phase's work). A failed fetch quarantines only its
  // own contract: the once-map clears the in-flight marker on throw, so a
  // later retry (or resume pass) recomputes instead of caching the failure.
  CodeBlobMap run_local_blobs(config_.cache_shards == 0 ? 1
                                                        : config_.cache_shards);
  CodeBlobMap& blob_map = blob_cache_ ? *blob_cache_ : run_local_blobs;
  auto fetch_blob = [&](const Address& address) {
    return blob_map.get_or_compute(address, [&] {
      auto b = std::make_shared<CodeBlob>();
      b->code = rpc().get_code(address);
      b->hash = evm::code_hash(b->code);
      b->key = hash_key(b->hash);
      return std::shared_ptr<const CodeBlob>(std::move(b));
    });
  };

  std::vector<std::shared_ptr<const CodeBlob>> blobs(inputs.size());
  {
    obs::Span phase_span(tracer_.get(), "phase:fetch");
    workers.parallel_for(inputs.size(), [&](std::size_t i) {
      try {
        blobs[i] = fetch_blob(inputs[i].address);
      } catch (const chain::RpcError& e) {
        out[i].error = record_of(e, "fetch");
      } catch (const std::exception& e) {
        out[i].error = ErrorRecord{ErrorKind::kInternal, "fetch", e.what()};
      }
    });
  }
  auto key_of = [&](std::size_t i) -> const std::string& {
    return blobs[i]->key;
  };
  const auto t_fetch = std::chrono::steady_clock::now();

  // ---- resume bookkeeping ----------------------------------------------
  // Code hashes touched by a previously-quarantined contract. Their healthy
  // siblings are recomputed too: the prior (faulty) run may have promoted a
  // different representative for the hash, and dedup metadata must converge
  // to what a fault-free full run produces.
  std::unordered_set<std::string> dirty_keys;
  if (prior != nullptr) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if ((*prior)[i].error && blobs[i]) dirty_keys.insert(key_of(i));
    }
  }
  auto reuse_prior = [&](std::size_t i) {
    return prior != nullptr && !(*prior)[i].error &&
           (!blobs[i] || dirty_keys.count(key_of(i)) == 0);
  };

  // ---- §7.1 source propagation: first verified address per code hash ----
  // The donor overlay (sharded sweeps) replaces the run-local construction:
  // a shard sees only its member contracts, but the donor for a code hash is
  // defined over the whole population, so the driver precomputes the global
  // map once and injects it here.
  std::unordered_map<std::string, Address> run_local_donor;
  if (donor_overlay_.empty() && config_.propagate_source_by_code_hash &&
      sources_ != nullptr) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (!blobs[i]) continue;
      if (sources_->has_source(inputs[i].address)) {
        run_local_donor.emplace(key_of(i), inputs[i].address);
      }
    }
  }
  const std::unordered_map<std::string, Address>& source_donor =
      (config_.propagate_source_by_code_hash && !donor_overlay_.empty())
          ? donor_overlay_
          : run_local_donor;
  auto with_source_donor = [&](const std::string& hash,
                               const Address& original) {
    if (sources_ != nullptr && sources_->has_source(original)) {
      return original;
    }
    const auto it = source_donor.find(hash);
    return it == source_donor.end() ? original : it->second;
  };

  // ---- pick one representative per unique code blob ---------------------
  std::unordered_map<std::string, std::size_t> representative;
  std::vector<std::size_t> unique_indices;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!blobs[i]) continue;  // fetch failed; quarantined above
    if (!config_.dedup_by_code_hash) {
      unique_indices.push_back(i);
      continue;
    }
    if (representative.emplace(key_of(i), i).second) {
      unique_indices.push_back(i);
    }
  }

  // ---- Phase A: proxy detection per unique blob (parallel) ---------------
  // Detection emulates against in-process state (no archive RPCs) and its
  // step fuse turns adversarial bytecode into a kEmulationError verdict, so
  // failures here are internal bugs — contained per blob all the same.
  std::vector<ProxyReport> unique_reports(unique_indices.size());
  std::vector<std::optional<ErrorRecord>> unique_errors(unique_indices.size());
  if (status != nullptr) status->set_phase(obs::SweepPhase::kProxy);
  {
    obs::Span phase_span(tracer_.get(), "phase:proxy");
    workers.parallel_for(unique_indices.size(), [&](std::size_t u) {
      const std::size_t i = unique_indices[u];
      obs::Span contract_span(span_tracer(i), "contract");
      contract_span.arg("index", static_cast<std::int64_t>(i));
      try {
        auto analyze = [&] {
          // Spanned inside the verdict memo: a cross-run cache hit reuses
          // the verdict without emulating, so it rightly shows no
          // proxy-detect span.
          obs::Span detect_span(span_tracer(i), "proxy-detect");
          ProxyDetectorConfig detector_config;
          detector_config.step_limit = config_.emulation_step_limit;
          detector_config.static_tier = config_.static_tier;
          ProxyDetector detector(chain_, detector_config, cache_.get());
          return detector.analyze_code(inputs[i].address, blobs[i]->code,
                                       blobs[i]->hash);
        };
        unique_reports[u] =
            verdict_cache_
                ? verdict_cache_->get_or_compute(
                      verdict_key(key_of(i), inputs[i].address), analyze)
                : analyze();
        if (h_steps_ != nullptr &&
            unique_reports[u].has_delegatecall_opcode) {
          // Deterministic per (address, code), so cached verdicts replay
          // the same sample the original emulation produced.
          h_steps_->record(unique_reports[u].emulation_steps);
        }
      } catch (const chain::RpcError& e) {
        unique_errors[u] = record_of(e, "proxy");
      } catch (const std::exception& e) {
        unique_errors[u] = ErrorRecord{ErrorKind::kInternal, "proxy", e.what()};
      }
    });
  }
  std::unordered_map<std::string, const ProxyReport*> verdicts;
  std::unordered_map<std::string, ErrorRecord> failed_keys;
  verdicts.reserve(unique_indices.size());
  last_static_skips_ = 0;
  last_static_mismatches_ = 0;
  last_layout_inferred_ = 0;
  last_layout_reliable_ = 0;
  for (std::size_t u = 0; u < unique_indices.size(); ++u) {
    const std::size_t i = unique_indices[u];
    if (unique_errors[u]) {
      out[i].error = *unique_errors[u];
      failed_keys.emplace(key_of(i), *unique_errors[u]);
    } else {
      switch (unique_reports[u].static_triage) {
        case StaticTriage::kSkippedNoDelegatecall:
        case StaticTriage::kSkippedDeadDelegatecall:
        case StaticTriage::kSkippedMinimalProxy:
          ++last_static_skips_;
          break;
        default:
          break;
      }
      if (unique_reports[u].static_mismatch != 0) ++last_static_mismatches_;
      if (unique_reports[u].layout_inferred) ++last_layout_inferred_;
      if (unique_reports[u].layout_reliable) ++last_layout_reliable_;
      verdicts.emplace(key_of(i), &unique_reports[u]);
    }
  }
  const auto t_proxy = std::chrono::steady_clock::now();

  // ---- Phase B: per-contract results (parallel) ---------------------------
  // Logic blobs go through the same once-map as the sweep inputs: each
  // distinct logic address is fetched and hashed at most once, however many
  // proxies delegate to it (the seed re-hashed per pair). Every contract is
  // its own failure domain: an RPC giving up mid-history or a watchdog
  // expiry quarantines this contract and the sweep moves on.
  if (status != nullptr) status->set_phase(obs::SweepPhase::kPairs);
  {
    obs::Span phase_span(tracer_.get(), "phase:pairs");
    workers.parallel_for(inputs.size(), [&](std::size_t i) {
      ContractAnalysis& a = out[i];
      if (reuse_prior(i)) {
        a = (*prior)[i];
        if (c_contracts_ != nullptr) c_contracts_->add();
        if (status != nullptr) {
          status->contracts_done.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      // Per-contract latency stopwatch + trace span around the whole pair
      // phase for this contract; the body runs as an immediately-invoked
      // lambda so its early returns still land on the record below.
      const std::uint64_t t0 = h_contract_ != nullptr ? clock_() : 0;
      {
        obs::Span contract_span(span_tracer(i), "contract");
        contract_span.arg("index", static_cast<std::int64_t>(i));
        [&] {
          a.address = inputs[i].address;
          a.year = inputs[i].year;
          a.has_source = inputs[i].has_source;
          a.has_tx = inputs[i].has_tx;
          if (a.error) return;  // fetch or Phase A already quarantined it

          const auto vit = verdicts.find(key_of(i));
          if (vit == verdicts.end()) {
            // Our representative's Phase A failed; inherit its quarantine
            // record.
            a.error = failed_keys.at(key_of(i));
            return;
          }
          a.proxy = *vit->second;
          a.deduplicated =
              config_.dedup_by_code_hash &&
              representative.at(key_of(i)) != i;

          util::Watchdog watchdog(config_.contract_wall_budget_ms);
          try {
            if (!a.proxy.is_proxy()) {
              if (config_.probe_diamonds && a.proxy.has_delegatecall_opcode &&
                  a.proxy.verdict == ProxyVerdict::kNotProxy) {
                DiamondProber prober(chain_, {}, cache_.get());
                a.diamond = prober.probe(a.address, a.proxy);
              }
              return;
            }

            // A deduplicated slot-proxy verdict carries the representative's
            // logic address; re-read this contract's slot for its own logic
            // target.
            if (a.deduplicated &&
                a.proxy.logic_source == LogicSource::kStorageSlot) {
              const U256 word =
                  chain_.get_storage(a.address, a.proxy.logic_slot) &
                  ((U256{1} << U256{160}) - U256{1});
              a.proxy.logic_address = Address::from_word(word);
            }

            watchdog.check("logic-history");
            if (config_.find_logic_history) {
              obs::Span logic_span(span_tracer(i), "logic-search");
              LogicFinder finder(rpc());
              a.logic_history = finder.find(a.address, a.proxy);
            } else if (!a.proxy.logic_address.is_zero()) {
              a.logic_history.logic_addresses.push_back(a.proxy.logic_address);
            }

            if (!config_.detect_collisions) return;
            for (const Address& logic : a.logic_history.logic_addresses) {
              watchdog.check("pair-collisions");
              const std::shared_ptr<const CodeBlob> blob = fetch_blob(logic);
              if (blob->code.empty()) continue;
              a.logic_has_source =
                  a.logic_has_source ||
                  (sources_ != nullptr && sources_->has_source(logic));

              const PairOutcome outcome = pair_cache_->get_or_compute(
                  key_of(i) + blob->key, [&] {
                    // Spanned inside the pair memo: a hit reuses the outcome
                    // without running the detectors, so it shows no
                    // collision-check span.
                    obs::Span pair_span(span_tracer(i), "collision-check");
                    PairOutcome o;
                    FunctionCollisionDetector fn_detector(sources_,
                                                          cache_.get());
                    // Source-mode lookups go through same-bytecode donors
                    // (§7.1): a clone of a verified contract is analyzed as
                    // if verified itself.
                    const Address proxy_lookup =
                        with_source_donor(key_of(i), a.address);
                    const Address logic_lookup =
                        with_source_donor(blob->key, logic);
                    o.function_collision =
                        fn_detector
                            .detect(proxy_lookup, blobs[i]->code,
                                    &blobs[i]->hash, logic_lookup, blob->code,
                                    &blob->hash)
                            .has_collision();
                    StorageCollisionConfig st_config;
                    st_config.compare_families =
                        config_.static_tier.infer_layout;
                    StorageCollisionDetector st_detector(
                        chain_, st_config, cache_.get(), sources_);
                    const StorageCollisionResult st = st_detector.detect(
                        a.address, blobs[i]->code, &blobs[i]->hash, logic,
                        blob->code, &blob->hash, &proxy_lookup, &logic_lookup);
                    o.storage_collision = st.has_collision();
                    o.storage_exploitable = st.has_verified_exploit();
                    o.family_collision = st.has_family_collision();
                    o.family_checked = st.family_checked;
                    o.family_source_free = st.family_source_free;
                    return o;
                  });
              a.function_collision |= outcome.function_collision;
              a.storage_collision |= outcome.storage_collision;
              a.storage_collision_exploitable |= outcome.storage_exploitable;
              a.family_collision |= outcome.family_collision;
              if (outcome.family_checked) ++a.collision_pairs_family_checked;
              if (outcome.family_source_free) {
                ++a.collision_pairs_source_free;
              }
            }
          } catch (const chain::RpcError& e) {
            a.error = record_of(e, "pairs");
          } catch (const util::WatchdogExpired& e) {
            a.error = ErrorRecord{ErrorKind::kEmulationLimit, "pairs",
                                  e.what()};
          } catch (const std::exception& e) {
            a.error = ErrorRecord{ErrorKind::kInternal, "pairs", e.what()};
          }
        }();
      }
      if (h_contract_ != nullptr) h_contract_->record(clock_() - t0);
      if (c_contracts_ != nullptr) c_contracts_->add();
      if (status != nullptr) {
        status->contracts_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto t_end = std::chrono::steady_clock::now();
  last_source_free_pairs_ = 0;
  for (const ContractAnalysis& a : out) {
    last_source_free_pairs_ += a.collision_pairs_source_free;
  }
  last_run_ms_ = ms_between(t_start, t_end);
  last_fetch_ms_ = ms_between(t_start, t_fetch);
  last_proxy_ms_ = ms_between(t_fetch, t_proxy);
  last_pairs_ms_ = ms_between(t_proxy, t_end);
  last_pair_hits_ = pair_cache_->hits();
  last_pair_misses_ = pair_cache_->misses();
  last_pair_waits_ = pair_cache_->waits();

  if (config_.telemetry.enabled) {
    // Gauge snapshots of the run-scoped cache totals and the (monotonic)
    // resilience counters: set(), not add(), so repeat runs don't
    // double-count in the registry snapshot.
    registry_.gauge("sweep.pair_cache.hits")
        .set(static_cast<std::int64_t>(last_pair_hits_));
    registry_.gauge("sweep.pair_cache.misses")
        .set(static_cast<std::int64_t>(last_pair_misses_));
    registry_.gauge("sweep.pair_cache.waits")
        .set(static_cast<std::int64_t>(last_pair_waits_));
    registry_.gauge("sweep.static.skips")
        .set(static_cast<std::int64_t>(last_static_skips_));
    registry_.gauge("sweep.static.mismatches")
        .set(static_cast<std::int64_t>(last_static_mismatches_));
    registry_.gauge("sweep.layout.inferred")
        .set(static_cast<std::int64_t>(last_layout_inferred_));
    registry_.gauge("sweep.layout.reliable")
        .set(static_cast<std::int64_t>(last_layout_reliable_));
    registry_.gauge("sweep.layout.source_free_pairs")
        .set(static_cast<std::int64_t>(last_source_free_pairs_));
    if (resilient_) {
      registry_.gauge("sweep.rpc.retries")
          .set(static_cast<std::int64_t>(resilient_->retries()));
      registry_.gauge("sweep.rpc.faults")
          .set(static_cast<std::int64_t>(resilient_->faults_seen()));
      registry_.gauge("sweep.rpc.giveups")
          .set(static_cast<std::int64_t>(resilient_->giveups()));
      registry_.gauge("sweep.rpc.breaker_trips")
          .set(static_cast<std::int64_t>(resilient_->breaker().trips()));
    }
    if (coalescer_) {
      const chain::CoalescingArchiveNode::Stats cs = coalescer_->stats();
      registry_.gauge("sweep.coalescer.exact_hits")
          .set(static_cast<std::int64_t>(cs.exact_hits));
      registry_.gauge("sweep.coalescer.interval_hits")
          .set(static_cast<std::int64_t>(cs.interval_hits));
      registry_.gauge("sweep.coalescer.misses")
          .set(static_cast<std::int64_t>(cs.misses));
      registry_.gauge("sweep.coalescer.inflight_waits")
          .set(static_cast<std::int64_t>(cs.inflight_waits));
    }
  }
  // Trace files are written after t_end so export cost never pollutes the
  // phase timings; the parallel_for joins above provide the quiescence the
  // tracer's bulk read requires.
  if (tracer_) {
    if (!config_.telemetry.trace_path.empty()) {
      tracer_->write_chrome_trace(config_.telemetry.trace_path);
    }
    if (!config_.telemetry.events_path.empty()) {
      tracer_->write_ndjson(config_.telemetry.events_path);
    }
  }

  // Quarantine accounting + run-completion event. One event per quarantined
  // contract (correlated by address), which is rare by construction — the
  // happy path emits exactly one completion event per run.
  std::uint64_t quarantined_now = 0;
  for (const ContractAnalysis& a : out) {
    if (!a.error) continue;
    ++quarantined_now;
    if (event_log != nullptr) {
      event_log->emit(obs::Severity::kWarn, "pipeline",
                      std::string("quarantined in ") + a.error->phase + ": " +
                          std::string(to_string(a.error->kind)),
                      a.address.to_hex());
    }
  }
  if (status != nullptr) {
    status->quarantined.fetch_add(quarantined_now, std::memory_order_relaxed);
    status->sweeps_completed.fetch_add(1, std::memory_order_relaxed);
    status->set_phase(obs::SweepPhase::kDone);
  }
  if (event_log != nullptr) {
    event_log->emit(obs::Severity::kInfo, "pipeline",
                    "sweep completed: " + std::to_string(out.size()) +
                        " contracts, " + std::to_string(quarantined_now) +
                        " quarantined");
  }
  return out;
}

LandscapeStats AnalysisPipeline::summarize(
    const std::vector<ContractAnalysis>& reports) const {
  ReentrancyGuard guard(busy_);
  LandscapeAccumulator acc;
  for (const ContractAnalysis& a : reports) acc.add(a);
  LandscapeStats stats = acc.take();
  annotate_run_stats(stats);
  return stats;
}

void AnalysisPipeline::annotate_run_stats(LandscapeStats& stats) const {
  stats.get_storage_at_calls = rpc().get_storage_at_calls();
  if (resilient_) {
    stats.rpc_retries = resilient_->retries();
    stats.rpc_faults = resilient_->faults_seen();
    stats.rpc_giveups = resilient_->giveups();
    stats.breaker_trips = resilient_->breaker().trips();
  }
  if (stats.total_contracts > 0) {
    stats.ms_per_contract =
        last_run_ms_ / static_cast<double>(stats.total_contracts);
  }
  stats.phase_fetch_ms = last_fetch_ms_;
  stats.phase_proxy_ms = last_proxy_ms_;
  stats.phase_pairs_ms = last_pairs_ms_;
  if (cache_) stats.cache = cache_->stats();
  stats.pair_cache_hits = last_pair_hits_;
  stats.pair_cache_misses = last_pair_misses_;
  stats.pair_cache_waits = last_pair_waits_;
  if (h_contract_ != nullptr) {
    stats.contract_latency_ns = h_contract_->summary();
    stats.rpc_latency_ns = h_rpc_->summary();
    stats.emulation_steps = h_steps_->summary();
  }
  if (tracer_) {
    stats.trace_spans_recorded = tracer_->recorded();
    stats.trace_spans_dropped = tracer_->dropped();
  }
}

void AnalysisPipeline::shed_cross_run_state() {
  if (blob_cache_) blob_cache_->clear();
  if (verdict_cache_) verdict_cache_->clear();
  // Dropping whole AnalysisCache entries also sheds the memoized
  // StorageLayout side table — a resumed lap must re-infer layouts so its
  // reports stay bit-identical with a cold run over the same population.
  if (cache_) cache_->clear();
  // Gauges are last-writer-wins facts about ONE run; a serving-mode daemon
  // shedding state between sweeps must not keep exposing the previous run's
  // cache/RPC totals until the next run happens to overwrite them.
  registry_.reset_gauges("sweep.");
  // The coalescer's sealed observations assume the chain was not mutated;
  // shedding is exactly the moment that assumption is surrendered (the
  // durable driver may feed a mutated chain into the next pass).
  if (coalescer_) coalescer_->clear();
}

bool AnalysisPipeline::seed_verdict(const crypto::Hash256& code_hash,
                                    const Address& representative,
                                    const ProxyReport& report) {
  if (!verdict_cache_) return false;
  verdict_cache_->get_or_compute(
      verdict_key(hash_key(code_hash), representative), [&] { return report; });
  return true;
}

void AnalysisPipeline::set_source_donor_overlay(
    std::vector<std::pair<crypto::Hash256, Address>> donors) {
  donor_overlay_.clear();
  for (const auto& [hash, address] : donors) {
    donor_overlay_.emplace(hash_key(hash), address);
  }
}

}  // namespace proxion::core
