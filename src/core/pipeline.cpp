#include "core/pipeline.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "crypto/keccak.h"

namespace proxion::core {

namespace {

std::string hash_key(const crypto::Hash256& h) {
  return std::string(reinterpret_cast<const char*>(h.data()), h.size());
}

unsigned thread_count(unsigned configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Runs `fn(i)` for i in [0, n) across `threads` workers (static sharding).
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  const unsigned workers = std::min<std::size_t>(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < n; i += workers) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace

AnalysisPipeline::AnalysisPipeline(chain::Blockchain& chain,
                                   const sourcemeta::SourceRepository* sources,
                                   PipelineConfig config)
    : chain_(chain), node_(chain), sources_(sources), config_(config) {}

std::vector<ContractAnalysis> AnalysisPipeline::run(
    const std::vector<SweepInput>& inputs) {
  const auto t_start = std::chrono::steady_clock::now();
  const unsigned threads = thread_count(config_.threads);

  std::vector<ContractAnalysis> out(inputs.size());
  std::vector<evm::Bytes> codes(inputs.size());
  std::vector<std::string> hash_keys(inputs.size());

  // ---- fetch code and hash it ------------------------------------------
  parallel_for(inputs.size(), threads, [&](std::size_t i) {
    codes[i] = chain_.get_code(inputs[i].address);
    hash_keys[i] = hash_key(evm::code_hash(codes[i]));
  });

  // ---- §7.1 source propagation: first verified address per code hash ----
  std::unordered_map<std::string, Address> source_donor;
  if (config_.propagate_source_by_code_hash && sources_ != nullptr) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (sources_->has_source(inputs[i].address)) {
        source_donor.emplace(hash_keys[i], inputs[i].address);
      }
    }
  }
  auto with_source_donor = [&](const std::string& hash,
                               const Address& original) {
    if (sources_ != nullptr && sources_->has_source(original)) {
      return original;
    }
    const auto it = source_donor.find(hash);
    return it == source_donor.end() ? original : it->second;
  };

  // ---- pick one representative per unique code blob ---------------------
  std::unordered_map<std::string, std::size_t> representative;
  std::vector<std::size_t> unique_indices;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!config_.dedup_by_code_hash) {
      unique_indices.push_back(i);
      continue;
    }
    if (representative.emplace(hash_keys[i], i).second) {
      unique_indices.push_back(i);
    }
  }

  // ---- Phase A: proxy detection per unique blob (parallel) ---------------
  std::vector<ProxyReport> unique_reports(unique_indices.size());
  parallel_for(unique_indices.size(), threads, [&](std::size_t u) {
    const std::size_t i = unique_indices[u];
    ProxyDetector detector(chain_);
    unique_reports[u] = detector.analyze_code(inputs[i].address, codes[i]);
  });
  std::unordered_map<std::string, const ProxyReport*> verdicts;
  verdicts.reserve(unique_indices.size());
  for (std::size_t u = 0; u < unique_indices.size(); ++u) {
    verdicts.emplace(hash_keys[unique_indices[u]], &unique_reports[u]);
  }

  // ---- Phase B: per-contract results (parallel) ---------------------------
  std::mutex pair_cache_mutex;
  struct PairOutcome {
    bool function_collision = false;
    bool storage_collision = false;
    bool storage_exploitable = false;
  };
  std::unordered_map<std::string, PairOutcome> pair_cache;

  parallel_for(inputs.size(), threads, [&](std::size_t i) {
    ContractAnalysis& a = out[i];
    a.address = inputs[i].address;
    a.year = inputs[i].year;
    a.has_source = inputs[i].has_source;
    a.has_tx = inputs[i].has_tx;
    a.proxy = *verdicts.at(hash_keys[i]);
    a.deduplicated =
        config_.dedup_by_code_hash &&
        representative.at(hash_keys[i]) != i;

    if (!a.proxy.is_proxy()) {
      if (config_.probe_diamonds && a.proxy.has_delegatecall_opcode &&
          a.proxy.verdict == ProxyVerdict::kNotProxy) {
        DiamondProber prober(chain_);
        a.diamond = prober.probe(a.address, a.proxy);
      }
      return;
    }

    // A deduplicated slot-proxy verdict carries the representative's logic
    // address; re-read this contract's slot for its own logic target.
    if (a.deduplicated && a.proxy.logic_source == LogicSource::kStorageSlot) {
      const U256 word = chain_.get_storage(a.address, a.proxy.logic_slot) &
                        ((U256{1} << U256{160}) - U256{1});
      a.proxy.logic_address = Address::from_word(word);
    }

    if (config_.find_logic_history) {
      LogicFinder finder(node_);
      a.logic_history = finder.find(a.address, a.proxy);
    } else if (!a.proxy.logic_address.is_zero()) {
      a.logic_history.logic_addresses.push_back(a.proxy.logic_address);
    }

    if (!config_.detect_collisions) return;
    for (const Address& logic : a.logic_history.logic_addresses) {
      const evm::Bytes logic_code = chain_.get_code(logic);
      if (logic_code.empty()) continue;
      a.logic_has_source =
          a.logic_has_source ||
          (sources_ != nullptr && sources_->has_source(logic));

      const std::string key =
          hash_keys[i] + hash_key(evm::code_hash(logic_code));
      {
        std::lock_guard<std::mutex> lock(pair_cache_mutex);
        const auto it = pair_cache.find(key);
        if (it != pair_cache.end()) {
          a.function_collision |= it->second.function_collision;
          a.storage_collision |= it->second.storage_collision;
          a.storage_collision_exploitable |= it->second.storage_exploitable;
          continue;
        }
      }

      PairOutcome outcome;
      FunctionCollisionDetector fn_detector(sources_);
      // Source-mode lookups go through same-bytecode donors (§7.1): a clone
      // of a verified contract is analyzed as if verified itself.
      const Address proxy_lookup = with_source_donor(hash_keys[i], a.address);
      const Address logic_lookup = with_source_donor(
          hash_key(evm::code_hash(logic_code)), logic);
      outcome.function_collision =
          fn_detector.detect(proxy_lookup, codes[i], logic_lookup, logic_code)
              .has_collision();
      StorageCollisionDetector st_detector(chain_);
      const StorageCollisionResult st =
          st_detector.detect(a.address, codes[i], logic, logic_code);
      outcome.storage_collision = st.has_collision();
      outcome.storage_exploitable = st.has_verified_exploit();

      {
        std::lock_guard<std::mutex> lock(pair_cache_mutex);
        pair_cache.emplace(key, outcome);
      }
      a.function_collision |= outcome.function_collision;
      a.storage_collision |= outcome.storage_collision;
      a.storage_collision_exploitable |= outcome.storage_exploitable;
    }
  });

  const auto t_end = std::chrono::steady_clock::now();
  last_run_ms_ = std::chrono::duration<double, std::milli>(t_end - t_start)
                     .count();
  return out;
}

LandscapeStats AnalysisPipeline::summarize(
    const std::vector<ContractAnalysis>& reports) const {
  LandscapeStats stats;
  stats.total_contracts = reports.size();
  std::unordered_map<std::string, bool> seen_hash;

  for (const ContractAnalysis& a : reports) {
    if (a.proxy.verdict == ProxyVerdict::kEmulationError) {
      ++stats.emulation_errors;
    }
    if (a.diamond.is_diamond) ++stats.diamonds_recovered;
    if (!a.proxy.is_proxy()) continue;
    ++stats.proxies;
    if (!a.has_source && !a.has_tx) ++stats.hidden_proxies;
    if (!a.deduplicated) ++stats.unique_proxy_codehashes;
    ++stats.by_standard[a.proxy.standard];
    ++stats.proxies_by_year[a.year];
    if (!a.logic_history.logic_addresses.empty()) {
      ++stats.pairs_by_source[{a.has_source, a.logic_has_source}];
    }
    if (a.function_collision) {
      ++stats.function_collisions;
      ++stats.function_collisions_by_year[a.year];
    }
    if (a.storage_collision) {
      ++stats.storage_collisions;
      ++stats.storage_collisions_by_year[a.year];
    }
    if (a.storage_collision_exploitable) {
      ++stats.exploitable_storage_collisions;
    }
    ++stats.upgrade_histogram[a.logic_history.upgrade_events];
    stats.total_upgrade_events += a.logic_history.upgrade_events;
  }
  stats.get_storage_at_calls = node_.get_storage_at_calls();
  if (!reports.empty()) {
    stats.ms_per_contract = last_run_ms_ / static_cast<double>(reports.size());
  }
  return stats;
}

}  // namespace proxion::core
