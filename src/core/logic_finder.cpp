#include "core/logic_finder.h"

#include <algorithm>
#include <map>

namespace proxion::core {

namespace {

LogicHistory summarize(std::vector<std::pair<std::uint64_t, U256>> values,
                       std::uint64_t api_calls) {
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  LogicHistory history;
  history.api_calls = api_calls;
  U256 previous;
  bool have_previous = false;
  for (const auto& [block, value] : values) {
    if (have_previous && value == previous) continue;
    if (have_previous && !previous.is_zero() && !value.is_zero()) {
      ++history.upgrade_events;
    }
    previous = value;
    have_previous = true;
    if (value.is_zero()) continue;
    const Address logic = Address::from_word(value);
    if (std::find(history.logic_addresses.begin(),
                  history.logic_addresses.end(),
                  logic) == history.logic_addresses.end()) {
      history.logic_addresses.push_back(logic);
    }
  }
  return history;
}

}  // namespace

LogicHistory LogicFinder::find(const Address& proxy,
                               const ProxyReport& report) const {
  LogicHistory history;
  if (!report.is_proxy()) return history;

  if (report.logic_source != LogicSource::kStorageSlot) {
    // Hard-coded (EIP-1167) or computed targets: one fixed logic contract,
    // no archive queries needed (§4.3).
    if (!report.logic_address.is_zero()) {
      history.logic_addresses.push_back(report.logic_address);
    }
    return history;
  }

  // Algorithm 1, run breadth-first: instead of recursing one range at a
  // time, all open ranges of the current depth emit their uncached
  // endpoints as ONE batched get_storage_at_many probe — the archive stack
  // (retry ladder, trace span, coalescer pass) then handles a frontier per
  // round trip instead of a call per endpoint. The ranges visited, the
  // heights probed, and api_calls are exactly those of the recursive
  // formulation (endpoints are memoized in `cache` just as the recursive
  // client memoized re-visited endpoints), so LogicHistory is bit-identical.
  std::map<std::uint64_t, U256> cache;
  std::uint64_t api_calls = 0;
  std::vector<std::pair<std::uint64_t, U256>> values;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> open = {
      {0, node_.latest_block()}};

  while (!open.empty()) {
    // The probe frontier: endpoints of every open range not yet fetched.
    std::vector<std::uint64_t> need;
    for (const auto& [lo, hi] : open) {
      if (cache.find(lo) == cache.end()) need.push_back(lo);
      if (cache.find(hi) == cache.end()) need.push_back(hi);
    }
    std::sort(need.begin(), need.end());
    need.erase(std::unique(need.begin(), need.end()), need.end());
    if (!need.empty()) {
      std::vector<chain::StorageQuery> batch;
      batch.reserve(need.size());
      for (const std::uint64_t b : need) {
        batch.push_back({proxy, report.logic_slot, b});
      }
      const std::vector<U256> fetched = node_.get_storage_at_many(batch);
      for (std::size_t i = 0; i < need.size(); ++i) {
        cache.emplace(need[i], fetched[i]);
      }
      // Paper semantics: api_calls counts distinct heights the search needed
      // (§6.1's ~26 per proxy), independent of how the archive stack
      // coalesces or batches them.
      api_calls += need.size();
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> next;
    for (const auto& [lo, hi] : open) {
      const U256& v_lo = cache.at(lo);
      const U256& v_hi = cache.at(hi);
      if (v_lo == v_hi) {
        // Algorithm 1's core assumption: logic addresses are unique through
        // history, so equal endpoint values mean no change inside the range.
        values.emplace_back(lo, v_lo);
      } else if (hi == lo + 1) {
        values.emplace_back(lo, v_lo);
        values.emplace_back(hi, v_hi);
      } else {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        next.emplace_back(lo, mid);
        next.emplace_back(mid + 1, hi);
      }
    }
    open = std::move(next);
  }
  return summarize(std::move(values), api_calls);
}

LogicHistory LogicFinder::find_naive(const Address& proxy,
                                     const U256& slot) const {
  std::vector<std::pair<std::uint64_t, U256>> values;
  const std::uint64_t latest = node_.latest_block();
  for (std::uint64_t b = 0; b <= latest; ++b) {
    values.emplace_back(b, node_.get_storage_at(proxy, slot, b));
  }
  return summarize(std::move(values), latest + 1);
}

}  // namespace proxion::core
