#include "core/logic_finder.h"

#include <algorithm>
#include <map>

namespace proxion::core {

namespace {

/// Memoizing wrapper: Algorithm 1 revisits range endpoints, and the client
/// caches those responses rather than re-querying the archive node.
class CachedSlotReader {
 public:
  CachedSlotReader(const chain::IArchiveNode& node, const Address& proxy,
                   const U256& slot)
      : node_(node), proxy_(proxy), slot_(slot) {}

  U256 at(std::uint64_t block) {
    const auto it = cache_.find(block);
    if (it != cache_.end()) return it->second;
    const U256 v = node_.get_storage_at(proxy_, slot_, block);
    ++api_calls_;
    cache_.emplace(block, v);
    return v;
  }

  std::uint64_t api_calls() const noexcept { return api_calls_; }

 private:
  const chain::IArchiveNode& node_;
  Address proxy_;
  U256 slot_;
  std::map<std::uint64_t, U256> cache_;
  std::uint64_t api_calls_ = 0;
};

void partition(CachedSlotReader& reader, std::uint64_t lower,
               std::uint64_t upper,
               std::vector<std::pair<std::uint64_t, U256>>& values) {
  const U256 v_lower = reader.at(lower);
  const U256 v_upper = reader.at(upper);
  if (v_lower == v_upper) {
    // Algorithm 1's core assumption: logic addresses are unique through
    // history, so equal endpoint values mean no change inside the range.
    values.emplace_back(lower, v_lower);
    return;
  }
  if (upper == lower + 1) {
    values.emplace_back(lower, v_lower);
    values.emplace_back(upper, v_upper);
    return;
  }
  const std::uint64_t mid = lower + (upper - lower) / 2;
  partition(reader, lower, mid, values);
  partition(reader, mid + 1, upper, values);
}

LogicHistory summarize(std::vector<std::pair<std::uint64_t, U256>> values,
                       std::uint64_t api_calls) {
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  LogicHistory history;
  history.api_calls = api_calls;
  U256 previous;
  bool have_previous = false;
  for (const auto& [block, value] : values) {
    if (have_previous && value == previous) continue;
    if (have_previous && !previous.is_zero() && !value.is_zero()) {
      ++history.upgrade_events;
    }
    previous = value;
    have_previous = true;
    if (value.is_zero()) continue;
    const Address logic = Address::from_word(value);
    if (std::find(history.logic_addresses.begin(),
                  history.logic_addresses.end(),
                  logic) == history.logic_addresses.end()) {
      history.logic_addresses.push_back(logic);
    }
  }
  return history;
}

}  // namespace

LogicHistory LogicFinder::find(const Address& proxy,
                               const ProxyReport& report) const {
  LogicHistory history;
  if (!report.is_proxy()) return history;

  if (report.logic_source != LogicSource::kStorageSlot) {
    // Hard-coded (EIP-1167) or computed targets: one fixed logic contract,
    // no archive queries needed (§4.3).
    if (!report.logic_address.is_zero()) {
      history.logic_addresses.push_back(report.logic_address);
    }
    return history;
  }

  CachedSlotReader reader(node_, proxy, report.logic_slot);
  std::vector<std::pair<std::uint64_t, U256>> values;
  partition(reader, 0, node_.latest_block(), values);
  return summarize(std::move(values), reader.api_calls());
}

LogicHistory LogicFinder::find_naive(const Address& proxy,
                                     const U256& slot) const {
  std::vector<std::pair<std::uint64_t, U256>> values;
  const std::uint64_t latest = node_.latest_block();
  for (std::uint64_t b = 0; b <= latest; ++b) {
    values.emplace_back(b, node_.get_storage_at(proxy, slot, b));
  }
  return summarize(std::move(values), latest + 1);
}

}  // namespace proxion::core
