#include "core/storage_profile.h"

#include <algorithm>
#include <unordered_set>

namespace proxion::core {

using evm::Instruction;
using evm::Opcode;
using evm::U256;

namespace {

/// Abstract value on the simulated operand stack.
struct AbsVal {
  enum class Kind : std::uint8_t {
    kUnknown,
    kConst,
    kCaller,
    kCalldata,
    kSload,
    kHashed,       // involves KECCAK256 (mapping/array slot)
    kCallerCheck,  // boolean result of comparing something with CALLER
    kPackedWrite,  // read-modify-write value ready for a packed SSTORE
  };
  Kind kind = Kind::kUnknown;
  U256 constant;
  U256 slot;               // kSload: which slot the value came from
  int access_index = -1;   // kSload: index into profile.accesses
  std::uint8_t width = 32;
  std::uint8_t byte_offset = 0;  // kSload: bytes shifted off (packing)
  bool negated = false;    // kCallerCheck: polarity after ISZERO chains

  // Solidity's packed-write (read-modify-write) idiom:
  //   sstore(slot, (sload(slot) & ~hole) | ((v & mask) << 8k))
  // kSloadHole: a load with a contiguous byte range masked OUT.
  // kShiftedValue: a typed value shifted into position.
  bool is_hole = false;           // kind kSload + hole_* valid
  std::uint8_t hole_offset = 0;
  std::uint8_t hole_width = 0;
  ValueOrigin shifted_origin = ValueOrigin::kUnknown;  // shifted value only

  static AbsVal unknown() { return {}; }
};

/// Is `mask` a contiguous run of 0xff bytes somewhere in the word? Returns
/// (byte offset from the LSB end, byte width).
std::optional<std::pair<std::uint8_t, std::uint8_t>> contiguous_byte_mask(
    const U256& mask) {
  const auto be = mask.to_be_bytes();
  int first = -1, last = -1;
  for (int i = 0; i < 32; ++i) {
    if (be[static_cast<std::size_t>(i)] == 0xff) {
      if (first < 0) first = i;
      last = i;
    } else if (be[static_cast<std::size_t>(i)] != 0x00) {
      return std::nullopt;  // partial byte: not a byte-granular mask
    } else if (first >= 0 && last >= 0 && i > last &&
               be[static_cast<std::size_t>(i)] != 0) {
      return std::nullopt;
    }
  }
  if (first < 0) return std::nullopt;
  // Contiguity: everything between first and last must be 0xff.
  for (int i = first; i <= last; ++i) {
    if (be[static_cast<std::size_t>(i)] != 0xff) return std::nullopt;
  }
  // Offset counted from the least-significant (rightmost) byte.
  const std::uint8_t offset = static_cast<std::uint8_t>(31 - last);
  const std::uint8_t width = static_cast<std::uint8_t>(last - first + 1);
  return std::make_pair(offset, width);
}

/// Is `mask` a contiguous low-byte mask (0xff, 0xffff, ..., 2^160-1, ...)?
/// Returns its byte width, or nullopt.
std::optional<std::uint8_t> low_mask_width(const U256& mask) {
  const int bits = mask.bit_length();
  if (bits == 0 || bits % 8 != 0 || bits > 256) return std::nullopt;
  // mask + 1 must be a power of two.
  const U256 plus1 = mask + U256{1};
  if ((plus1 & mask) != U256{}) return std::nullopt;
  return static_cast<std::uint8_t>(bits / 8);
}

class BlockAnalyzer {
 public:
  BlockAnalyzer(StorageProfile& profile,
                std::unordered_set<std::uint32_t>& guarded_pcs)
      : profile_(profile), guarded_pcs_(guarded_pcs) {}

  void run(const std::vector<Instruction>& ins, std::uint32_t first,
           std::uint32_t count) {
    stack_.clear();
    for (std::uint32_t i = first; i < first + count; ++i) {
      step(ins[i]);
    }
  }

 private:
  AbsVal pop() {
    if (stack_.empty()) return AbsVal::unknown();
    AbsVal v = stack_.back();
    stack_.pop_back();
    return v;
  }
  void push(AbsVal v) { stack_.push_back(std::move(v)); }
  void push_unknown(int n) {
    for (int i = 0; i < n; ++i) push(AbsVal::unknown());
  }

  /// Narrows a loaded value's *read* record to (byte_offset, width). The
  /// first interpretation refines the original SLOAD record in place; a
  /// second, different interpretation of the same load gets its own record
  /// (one physical read, two typed views).
  void refine_read(AbsVal& v, std::uint8_t width) {
    if (v.kind != AbsVal::Kind::kSload || v.access_index < 0) return;
    width = std::min<std::uint8_t>(width,
                                   static_cast<std::uint8_t>(32 - v.byte_offset));
    auto& access = profile_.accesses[static_cast<std::size_t>(v.access_index)];
    if (!refined_.contains(v.access_index)) {
      access.width = width;
      access.offset = v.byte_offset;
      refined_.insert(v.access_index);
    } else if (access.offset != v.byte_offset || access.width != width) {
      StorageAccess extra = access;
      extra.width = width;
      extra.offset = v.byte_offset;
      extra.caller_compared = false;
      profile_.accesses.push_back(extra);
      v.access_index = static_cast<int>(profile_.accesses.size()) - 1;
      refined_.insert(v.access_index);
    }
    v.width = width;
  }

  void step(const Instruction& ins) {
    const std::uint8_t byte = ins.byte;
    const Opcode op = ins.opcode();

    if (evm::is_push(byte)) {
      AbsVal v;
      v.kind = AbsVal::Kind::kConst;
      v.constant = ins.push_value();
      v.width = static_cast<std::uint8_t>(
          std::max<std::size_t>(ins.immediate.size(), 1));
      push(std::move(v));
      return;
    }
    if (evm::is_dup(byte)) {
      const std::size_t n = static_cast<std::size_t>(byte - 0x80) + 1;
      push(n <= stack_.size() ? stack_[stack_.size() - n]
                              : AbsVal::unknown());
      return;
    }
    if (evm::is_swap(byte)) {
      const std::size_t n = static_cast<std::size_t>(byte - 0x90) + 1;
      if (n < stack_.size()) {
        std::swap(stack_.back(), stack_[stack_.size() - 1 - n]);
      } else {
        stack_.clear();  // lost track; poison the block-local stack
      }
      return;
    }

    switch (op) {
      case Opcode::CALLER: {
        AbsVal v;
        v.kind = AbsVal::Kind::kCaller;
        v.width = 20;
        push(std::move(v));
        return;
      }
      case Opcode::CALLDATALOAD: {
        pop();
        AbsVal v;
        v.kind = AbsVal::Kind::kCalldata;
        push(std::move(v));
        return;
      }
      case Opcode::KECCAK256: {
        pop();
        pop();
        AbsVal v;
        v.kind = AbsVal::Kind::kHashed;
        push(std::move(v));
        return;
      }
      case Opcode::SLOAD: {
        const AbsVal slot = pop();
        if (slot.kind == AbsVal::Kind::kConst) {
          StorageAccess access;
          access.slot = slot.constant;
          access.is_write = false;
          access.width = 32;
          access.pc = ins.pc;
          profile_.accesses.push_back(access);
          AbsVal v;
          v.kind = AbsVal::Kind::kSload;
          v.slot = slot.constant;
          v.access_index =
              static_cast<int>(profile_.accesses.size()) - 1;
          push(std::move(v));
        } else {
          if (slot.kind == AbsVal::Kind::kHashed) {
            ++profile_.hashed_slot_accesses;
          }
          push(AbsVal::unknown());
        }
        return;
      }
      case Opcode::SSTORE: {
        const AbsVal slot = pop();
        const AbsVal value = pop();
        if (slot.kind == AbsVal::Kind::kConst) {
          StorageAccess access;
          access.slot = slot.constant;
          access.is_write = true;
          access.width = value.width;
          access.pc = ins.pc;
          if (value.kind == AbsVal::Kind::kPackedWrite) {
            // The read-modify-write idiom writes only the hole's bytes.
            access.offset = value.byte_offset;
            access.width = value.width;
            access.value_origin = value.shifted_origin;
            access.guarded_by_caller =
                guarded_pcs_.contains(block_start_pc(ins));
            profile_.accesses.push_back(access);
            return;
          }
          switch (value.kind) {
            case AbsVal::Kind::kConst:
              access.value_origin = ValueOrigin::kConstant;
              break;
            case AbsVal::Kind::kCaller:
              access.value_origin = ValueOrigin::kCaller;
              access.width = 20;
              break;
            case AbsVal::Kind::kCalldata:
              access.value_origin = ValueOrigin::kCalldata;
              break;
            case AbsVal::Kind::kSload:
              access.value_origin = ValueOrigin::kStorage;
              break;
            default:
              access.value_origin = ValueOrigin::kUnknown;
              break;
          }
          access.guarded_by_caller = guarded_pcs_.contains(block_start_pc(ins));
          profile_.accesses.push_back(access);
        } else if (slot.kind == AbsVal::Kind::kHashed) {
          ++profile_.hashed_slot_accesses;
        }
        return;
      }
      case Opcode::AND: {
        AbsVal a = pop();
        AbsVal b = pop();
        if (a.kind == AbsVal::Kind::kConst &&
            b.kind != AbsVal::Kind::kConst) {
          std::swap(a, b);
        }
        // a = value, b = mask (if constant)
        if (b.kind == AbsVal::Kind::kConst) {
          if (const auto w = low_mask_width(b.constant)) {
            if (a.kind == AbsVal::Kind::kSload) {
              // Narrowing a loaded value types the *read*: width from the
              // mask, offset from any preceding SHR (Solidity packing).
              refine_read(a, *w);
            } else {
              a.width = std::min(a.width, *w);
            }
            push(std::move(a));
            return;
          }
          // Hole mask: sload & ~(mask << 8k) — the first half of the
          // packed-write read-modify-write idiom. The semantic variable
          // touched is the hole, so the raw full-width load record is
          // refined down to the hole's byte range.
          if (a.kind == AbsVal::Kind::kSload) {
            if (const auto hole = contiguous_byte_mask(~b.constant)) {
              a.is_hole = true;
              a.hole_offset = hole->first;
              a.hole_width = hole->second;
              const std::uint8_t saved_offset = a.byte_offset;
              a.byte_offset = hole->first;
              refine_read(a, hole->second);
              a.byte_offset = saved_offset;
              push(std::move(a));
              return;
            }
          }
        }
        push(AbsVal::unknown());
        return;
      }
      case Opcode::EQ: {
        AbsVal a = pop();
        AbsVal b = pop();
        AbsVal* caller = nullptr;
        AbsVal* other = nullptr;
        if (a.kind == AbsVal::Kind::kCaller) {
          caller = &a;
          other = &b;
        } else if (b.kind == AbsVal::Kind::kCaller) {
          caller = &b;
          other = &a;
        }
        if (caller != nullptr && other->kind == AbsVal::Kind::kSload &&
            other->access_index >= 0) {
          // Comparing against CALLER types the read as an address *at the
          // read's packing offset*: refine through refine_read so a shifted
          // load records (byte_offset, 20) — a direct width clobber used to
          // leave offset 0, making a packed address read claim bytes of
          // every lower-packed neighbor.
          refine_read(*other, 20);
          auto& access =
              profile_.accesses[static_cast<std::size_t>(other->access_index)];
          access.caller_compared = true;
          AbsVal check;
          check.kind = AbsVal::Kind::kCallerCheck;
          check.width = 1;
          push(std::move(check));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::ISZERO: {
        AbsVal a = pop();
        if (a.kind == AbsVal::Kind::kCallerCheck) {
          a.negated = !a.negated;
          push(std::move(a));
          return;
        }
        // ISZERO of a *narrowed* load keeps the narrow width; an unmasked
        // full-word truth test stays width 32 (testing the whole slot).
        push_unknown(1);
        return;
      }
      case Opcode::SHL: {
        const AbsVal shift = pop();
        AbsVal value = pop();
        const bool typed = value.kind == AbsVal::Kind::kCaller ||
                           value.kind == AbsVal::Kind::kCalldata ||
                           value.kind == AbsVal::Kind::kConst;
        if (typed && shift.kind == AbsVal::Kind::kConst &&
            shift.constant.fits_u64() && shift.constant.low64() < 256 &&
            shift.constant.low64() % 8 == 0) {
          // Value shifted into packing position: remember where.
          value.byte_offset =
              static_cast<std::uint8_t>(shift.constant.low64() / 8);
          switch (value.kind) {
            case AbsVal::Kind::kCaller:
              value.shifted_origin = ValueOrigin::kCaller;
              break;
            case AbsVal::Kind::kCalldata:
              value.shifted_origin = ValueOrigin::kCalldata;
              break;
            default:
              value.shifted_origin = ValueOrigin::kConstant;
              break;
          }
          push(std::move(value));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::OR: {
        AbsVal a = pop();
        AbsVal b = pop();
        // Packed write: (sload-with-hole) | (typed value shifted into the
        // hole). Either operand order; an unshifted value fills a hole at
        // offset 0.
        if (b.is_hole && !a.is_hole) std::swap(a, b);
        if (a.is_hole) {
          ValueOrigin origin = ValueOrigin::kUnknown;
          if (b.shifted_origin != ValueOrigin::kUnknown &&
              b.byte_offset == a.hole_offset) {
            origin = b.shifted_origin;
          } else if (a.hole_offset == 0) {
            switch (b.kind) {
              case AbsVal::Kind::kCaller: origin = ValueOrigin::kCaller; break;
              case AbsVal::Kind::kCalldata:
                origin = ValueOrigin::kCalldata;
                break;
              case AbsVal::Kind::kConst:
                origin = ValueOrigin::kConstant;
                break;
              default: break;
            }
          }
          if (origin != ValueOrigin::kUnknown) {
            AbsVal packed;
            packed.kind = AbsVal::Kind::kPackedWrite;
            packed.slot = a.slot;
            packed.byte_offset = a.hole_offset;
            packed.width = a.hole_width;
            packed.shifted_origin = origin;
            push(std::move(packed));
            return;
          }
        }
        push_unknown(1);
        return;
      }
      case Opcode::SHR: {
        const AbsVal shift = pop();
        AbsVal value = pop();
        if (value.kind == AbsVal::Kind::kSload &&
            shift.kind == AbsVal::Kind::kConst &&
            shift.constant.fits_u64() && shift.constant.low64() < 256 &&
            shift.constant.low64() % 8 == 0) {
          // (sload >> 8k): reading a packed variable at byte offset k.
          value.byte_offset = static_cast<std::uint8_t>(
              value.byte_offset + shift.constant.low64() / 8);
          push(std::move(value));
          return;
        }
        push_unknown(1);
        return;
      }
      case Opcode::JUMPI: {
        const AbsVal target = pop();
        const AbsVal cond = pop();
        if (cond.kind == AbsVal::Kind::kCallerCheck && !cond.negated &&
            target.kind == AbsVal::Kind::kConst && target.constant.fits_u64()) {
          guarded_pcs_.insert(
              static_cast<std::uint32_t>(target.constant.low64()));
        }
        if (cond.kind == AbsVal::Kind::kCallerCheck && cond.negated) {
          // Jump taken when the caller check FAILS: the fallthrough
          // instruction starts the guarded region.
          guarded_pcs_.insert(ins.pc + 1);
        }
        return;
      }
      default: {
        const auto& info = ins.info();
        for (int i = 0; i < info.stack_in; ++i) pop();
        push_unknown(info.stack_out);
        return;
      }
    }
  }

  /// Start pc of the block an instruction belongs to (filled by the caller).
  std::uint32_t block_start_pc(const Instruction&) const {
    return current_block_start_;
  }

 public:
  std::uint32_t current_block_start_ = 0;

 private:
  StorageProfile& profile_;
  std::unordered_set<std::uint32_t>& guarded_pcs_;
  std::vector<AbsVal> stack_;
  std::unordered_set<int> refined_;  // access indices already typed once
};

}  // namespace

std::vector<U256> StorageProfile::slots() const {
  std::vector<U256> out;
  for (const StorageAccess& a : accesses) {
    if (std::find(out.begin(), out.end(), a.slot) == out.end()) {
      out.push_back(a.slot);
    }
  }
  return out;
}

std::vector<std::pair<std::uint8_t, std::uint8_t>> StorageProfile::ranges_of(
    const U256& slot) const {
  std::vector<std::pair<std::uint8_t, std::uint8_t>> out;
  for (const StorageAccess& a : accesses) {
    if (!(a.slot == slot)) continue;
    const auto range = std::make_pair(a.offset, a.width);
    if (std::find(out.begin(), out.end(), range) == out.end()) {
      out.push_back(range);
    }
  }
  return out;
}

std::optional<std::uint8_t> StorageProfile::width_of(const U256& slot) const {
  std::optional<std::uint8_t> width;
  for (const StorageAccess& a : accesses) {
    if (a.slot == slot) {
      width = width ? std::min(*width, a.width) : a.width;
    }
  }
  return width;
}

bool StorageProfile::is_sensitive(const U256& slot) const {
  return std::any_of(accesses.begin(), accesses.end(),
                     [&](const StorageAccess& a) {
                       return a.slot == slot &&
                              (a.caller_compared ||
                               (a.is_write &&
                                a.value_origin == ValueOrigin::kCaller));
                     });
}

bool StorageProfile::has_unguarded_write(const U256& slot) const {
  return std::any_of(accesses.begin(), accesses.end(),
                     [&](const StorageAccess& a) {
                       return a.slot == slot && a.is_write &&
                              !a.guarded_by_caller;
                     });
}

StorageProfile profile_storage(const evm::Disassembly& dis) {
  StorageProfile profile;
  std::unordered_set<std::uint32_t> guarded_pcs;

  // Two passes: the first pass discovers caller-guard jump targets; the
  // second attributes guardedness to writes inside those targets' blocks.
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) {
      profile = StorageProfile{};
    }
    BlockAnalyzer analyzer(profile, guarded_pcs);
    for (const evm::BasicBlock& block : dis.blocks()) {
      analyzer.current_block_start_ = block.start_pc;
      analyzer.run(dis.instructions(), block.first_instruction,
                   block.instruction_count);
    }
  }
  return profile;
}

StorageProfile profile_storage(evm::BytesView code) {
  return profile_storage(evm::Disassembly(code));
}

}  // namespace proxion::core
