#include "core/analysis_cache.h"

#include "core/selector_extractor.h"

namespace proxion::core {

AnalysisCache::AnalysisCache(unsigned shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<AnalysisCache::Entry> AnalysisCache::entry_for(
    const crypto::Hash256& code_hash) {
  Shard& s = *shards_[HashKey{}(code_hash) % shards_.size()];
  std::lock_guard<std::mutex> lk(s.mu);
  auto [it, inserted] = s.map.try_emplace(code_hash);
  if (inserted) {
    it->second = std::make_shared<Entry>();
    entries_.add(1);
  }
  return it->second;
}

const std::shared_ptr<const evm::Disassembly>& AnalysisCache::ensure_disassembly(
    Entry& entry, evm::BytesView code) {
  if (entry.dis) {
    disassembly_hits_.add(1);
  } else {
    disassembly_misses_.add(1);
    entry.dis = std::make_shared<const evm::Disassembly>(code);
  }
  return entry.dis;
}

std::shared_ptr<const evm::Disassembly> AnalysisCache::disassembly(
    const crypto::Hash256& code_hash, evm::BytesView code) {
  const std::shared_ptr<Entry> entry = entry_for(code_hash);
  std::lock_guard<std::mutex> lk(entry->mu);
  return ensure_disassembly(*entry, code);
}

std::shared_ptr<const std::vector<std::uint32_t>> AnalysisCache::selectors(
    const crypto::Hash256& code_hash, evm::BytesView code) {
  const std::shared_ptr<Entry> entry = entry_for(code_hash);
  std::lock_guard<std::mutex> lk(entry->mu);
  if (entry->selectors) {
    selector_hits_.add(1);
  } else {
    selector_misses_.add(1);
    entry->selectors = std::make_shared<const std::vector<std::uint32_t>>(
        extract_selectors(*ensure_disassembly(*entry, code)));
  }
  return entry->selectors;
}

std::shared_ptr<const StorageProfile> AnalysisCache::storage_profile(
    const crypto::Hash256& code_hash, evm::BytesView code) {
  const std::shared_ptr<Entry> entry = entry_for(code_hash);
  std::lock_guard<std::mutex> lk(entry->mu);
  if (entry->profile) {
    profile_hits_.add(1);
  } else {
    profile_misses_.add(1);
    entry->profile = std::make_shared<const StorageProfile>(
        profile_storage(*ensure_disassembly(*entry, code)));
  }
  return entry->profile;
}

const std::shared_ptr<const static_analysis::StaticReport>&
AnalysisCache::ensure_static_report(Entry& entry, evm::BytesView code) {
  // No hit/miss accounting here: static_{hits,misses} mean "triage
  // requests", and layout() reaching for the CFG as an ingredient must not
  // inflate them (its own layout_{hits,misses} pair tells that story).
  if (!entry.static_report) {
    entry.static_report = std::make_shared<const static_analysis::StaticReport>(
        static_analysis::analyze(*ensure_disassembly(entry, code)));
  }
  return entry.static_report;
}

std::shared_ptr<const static_analysis::StaticReport>
AnalysisCache::static_report(const crypto::Hash256& code_hash,
                             evm::BytesView code) {
  const std::shared_ptr<Entry> entry = entry_for(code_hash);
  std::lock_guard<std::mutex> lk(entry->mu);
  if (entry->static_report) {
    static_hits_.add(1);
  } else {
    static_misses_.add(1);
  }
  return ensure_static_report(*entry, code);
}

std::shared_ptr<const static_analysis::StorageLayout> AnalysisCache::layout(
    const crypto::Hash256& code_hash, evm::BytesView code) {
  const std::shared_ptr<Entry> entry = entry_for(code_hash);
  std::lock_guard<std::mutex> lk(entry->mu);
  if (entry->layout) {
    layout_hits_.add(1);
  } else {
    layout_misses_.add(1);
    entry->layout = std::make_shared<const static_analysis::StorageLayout>(
        static_analysis::infer_layout(
            *ensure_disassembly(*entry, code),
            ensure_static_report(*entry, code)->cfg));
  }
  return entry->layout;
}

void AnalysisCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->map.clear();
  }
}

AnalysisCacheStats AnalysisCache::stats() const {
  AnalysisCacheStats s;
  s.disassembly_hits = disassembly_hits_.value();
  s.disassembly_misses = disassembly_misses_.value();
  s.selector_hits = selector_hits_.value();
  s.selector_misses = selector_misses_.value();
  s.profile_hits = profile_hits_.value();
  s.profile_misses = profile_misses_.value();
  s.static_hits = static_hits_.value();
  s.static_misses = static_misses_.value();
  s.layout_hits = layout_hits_.value();
  s.layout_misses = layout_misses_.value();
  s.entries = entries_.value();
  return s;
}

}  // namespace proxion::core
