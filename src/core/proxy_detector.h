// Proxy detection exactly as the paper describes (§4.1–§4.2):
//
//   Phase 1 — disassemble; no DELEGATECALL opcode anywhere => not a proxy.
//   Phase 2 — emulate the contract in an EVM with *crafted call data*: a
//   4-byte selector chosen to miss every candidate selector in the bytecode
//   (every PUSH4 payload is avoided), so execution must land in the fallback
//   function. The contract is a proxy iff a DELEGATECALL issued from the
//   contract's own frame forwards that call data verbatim to another
//   contract. This needs neither source code nor transaction history.
//
// The detector also recovers where the logic address lives (hard-coded bytes
// vs a storage slot, and which slot), which both classifies the proxy
// standard (Table 4) and seeds the logic-finder's archive-node search (§4.3).
#pragma once

#include <cstdint>
#include <optional>

#include "core/analysis_cache.h"
#include "evm/disassembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"
#include "evm/types.h"
#include "static/provenance.h"

namespace proxion::core {

using evm::Address;
using evm::Bytes;
using evm::BytesView;
using evm::U256;

enum class ProxyVerdict : std::uint8_t {
  kNotProxy,
  kProxy,
  kEmulationError,  // emulation faulted before a verdict could be reached
};

enum class LogicSource : std::uint8_t {
  kNone,
  kHardcoded,    // address embedded in the bytecode (EIP-1167 / clones)
  kStorageSlot,  // address read from a storage slot during the fallback
  kComputed,     // observed target not traceable to code bytes or a slot
};

/// Proxy standard taxonomy of Table 4.
enum class ProxyStandard : std::uint8_t {
  kNotProxy,
  kEip1167,   // minimal proxy, hard-coded logic address
  kEip1822,   // UUPS: keccak256("PROXIABLE") slot
  kEip1967,   // keccak256("eip1967.proxy.implementation") - 1 slot
  kOther,     // storage-based but non-standard slot (incl. slot 0)
};

/// How the static triage tier routed this contract (kNotRun when the tier
/// is disabled). Skips never change verdicts: they fire only when the static
/// pass *proved* what emulation would conclude (see DESIGN.md).
enum class StaticTriage : std::uint8_t {
  kNotRun,
  kEmulated,                  // static pass ran, emulation still required
  kSkippedNoDelegatecall,     // phase-1 absence, recorded by the tier
  kSkippedDeadDelegatecall,   // every DELEGATECALL provably unreachable
  kSkippedMinimalProxy,       // byte-exact EIP-1167 runtime
};

std::string_view to_string(ProxyVerdict v) noexcept;
std::string_view to_string(LogicSource s) noexcept;
std::string_view to_string(ProxyStandard s) noexcept;
std::string_view to_string(StaticTriage t) noexcept;

// static_mismatch bits: typed disagreement between the static pass and the
// emulated verdict (only ever set when the recovered CFG was complete — an
// incomplete CFG makes no claim emulation could contradict).
inline constexpr std::uint8_t kMismatchReachability = 1u << 0;
inline constexpr std::uint8_t kMismatchSlot = 1u << 1;
inline constexpr std::uint8_t kMismatchTarget = 1u << 2;
// Layout-oracle bits (only ever set when the inferred StorageLayout was
// `reliable()` — an unreliable layout makes no claim emulation could
// contradict): the probe touched a slot outside every inferred member and
// slot family, or a write changed bytes outside the inferred sub-word ranges.
inline constexpr std::uint8_t kMismatchLayoutSlot = 1u << 3;
inline constexpr std::uint8_t kMismatchLayoutWidth = 1u << 4;

struct ProxyReport {
  ProxyVerdict verdict = ProxyVerdict::kNotProxy;
  bool has_delegatecall_opcode = false;  // phase-1 outcome
  bool delegatecall_executed = false;    // a DELEGATECALL ran during emulation
  bool calldata_forwarded = false;       // ... and forwarded our crafted data
  evm::HaltReason halt = evm::HaltReason::kStop;

  Address logic_address;   // target observed at the DELEGATECALL
  LogicSource logic_source = LogicSource::kNone;
  U256 logic_slot;         // meaningful iff logic_source == kStorageSlot
  ProxyStandard standard = ProxyStandard::kNotProxy;

  /// Static-tier routing + cross-check outcome for this contract.
  StaticTriage static_triage = StaticTriage::kNotRun;
  std::uint8_t static_mismatch = 0;  // kMismatch* bits
  /// Layout inference (static_tier.infer_layout) ran for this contract...
  bool layout_inferred = false;
  /// ...and produced a reliable() layout, so the kMismatchLayout* oracle was
  /// armed against the probe's observed storage accesses.
  bool layout_reliable = false;

  std::uint32_t probe_selector = 0;  // the crafted selector used
  /// Interpreter steps the phase-2 probe emulation consumed (0 when the
  /// phase-1 prefilter skipped emulation). Deterministic per (address,
  /// code), so cached verdicts replay the same number — it feeds the
  /// pipeline's emulation-cost histogram.
  std::uint64_t emulation_steps = 0;

  bool is_proxy() const noexcept { return verdict == ProxyVerdict::kProxy; }

  friend bool operator==(const ProxyReport&, const ProxyReport&) = default;
};

struct ProxyDetectorConfig {
  std::uint64_t emulation_gas = 5'000'000;
  std::uint64_t step_limit = 200'000;
  /// Call-depth bound for detection emulation, far below the EVM's 1024:
  /// real proxies delegate a handful of frames deep, and the interpreter
  /// recurses natively per frame — adversarial self-recursing bytecode must
  /// exhaust its *step* budget in bounded process stack, not overflow it.
  int max_call_depth = 64;
  /// Calldata appended after the probe selector (function "arguments").
  std::size_t probe_argument_bytes = 32;
  /// Static triage tier (CFG recovery + DELEGATECALL provenance). Disabled
  /// by default for standalone detector use; the pipeline turns it on.
  static_analysis::StaticTierConfig static_tier;
};

class ProxyDetector {
 public:
  /// `cache` may be null (standalone use, no memoization). With a cache the
  /// phase-1 disassembly is shared across every stage touching this blob.
  explicit ProxyDetector(evm::Host& state, ProxyDetectorConfig config = {},
                         AnalysisCache* cache = nullptr)
      : state_(state), config_(config), cache_(cache) {}

  /// Analyzes the contract deployed at `contract` (code read via the host).
  ProxyReport analyze(const Address& contract);

  /// Analyzes explicit bytecode as if deployed at `contract` (used when
  /// sweeping code blobs deduplicated by hash).
  ProxyReport analyze_code(const Address& contract, BytesView code);

  /// Same, with the blob's hash precomputed by the caller so the cache key
  /// costs nothing extra (the pipeline already hashed every blob for dedup).
  ProxyReport analyze_code(const Address& contract, BytesView code,
                           const crypto::Hash256& code_hash);

  /// The crafted probe selector for a given code blob: deterministic, and
  /// guaranteed to differ from every 4-byte immediate following a PUSH4
  /// (§4.2's "random signature different from all existing functions").
  static std::uint32_t craft_probe_selector(const Address& contract,
                                            const evm::Disassembly& dis);

  /// Typed disagreement between a (complete) static report and an emulated
  /// proxy report; 0 when the static pass made no contradicted claim.
  /// Exposed for the cross-check tests.
  static std::uint8_t static_vs_emulation_mismatch(
      const static_analysis::StaticReport& st, const ProxyReport& emulated);

 private:
  /// `code_hash` may be null (no cache key precomputed); with a cache and a
  /// hash the static report is memoized per blob.
  ProxyReport analyze_disassembled(const Address& contract, BytesView code,
                                   const evm::Disassembly& dis,
                                   const crypto::Hash256* code_hash);

  evm::Host& state_;
  ProxyDetectorConfig config_;
  AnalysisCache* cache_;
};

}  // namespace proxion::core
