// §2.3's attack primitive: grinding a function *name* whose 4-byte selector
// collides with a target (the paper found a free_ether_withdrawal() twin
// after ~600M attempts on a laptop). Used by the honeypot example and by
// bench_perf to reproduce the attempts/second figure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace proxion::core {

struct GrindResult {
  std::string prototype;       // e.g. "impl_AbC12xyz()"
  std::uint64_t attempts = 0;  // hashes evaluated before the hit
};

struct GrindConfig {
  std::string prefix = "impl_";   // function-name prefix (naming camouflage)
  std::string arguments = "()";   // canonical argument list
  std::uint64_t max_attempts = 0; // 0 = unbounded (full search)
  /// Number of leading selector bits that must match. 32 is a true
  /// collision; smaller values let tests and benches bound the search.
  int match_bits = 32;
};

/// Searches name suffixes in base-62 order until keccak256(prefix + suffix +
/// arguments) starts with the target selector (to `match_bits` bits).
/// Returns nullopt if max_attempts is exhausted first.
std::optional<GrindResult> grind_selector(std::uint32_t target_selector,
                                          const GrindConfig& config = {});

}  // namespace proxion::core
