// §8.2 (future work, implemented here): detecting EIP-2535 diamond proxies.
// A diamond's fallback only delegates selectors registered in its facet
// mapping, so Proxion's random probe bounces off (§8.1). The paper's
// proposed fix is to harvest selectors that were *actually sent* to the
// contract from past transactions (as CRUSH does) and probe with those; we
// additionally probe with selectors found in the diamond's own bytecode and
// with the facets registered under the standard diamond storage slot.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/blockchain.h"
#include "core/analysis_cache.h"
#include "core/proxy_detector.h"

namespace proxion::core {

struct DiamondProbeConfig {
  /// Upper bound on selectors probed per contract.
  std::size_t max_probes = 64;
  std::uint64_t emulation_gas = 5'000'000;
  std::uint64_t step_limit = 200'000;
};

struct DiamondReport {
  bool is_diamond = false;
  /// Selectors whose probe triggered a forwarding DELEGATECALL.
  std::vector<std::uint32_t> routed_selectors;
  /// Facet addresses observed as DELEGATECALL targets.
  std::vector<Address> facets;

  friend bool operator==(const DiamondReport&, const DiamondReport&) = default;
};

class DiamondProber {
 public:
  /// `cache` may be null; with a cache the selector harvest reuses the
  /// pipeline's memoized disassembly instead of re-sweeping the bytecode.
  explicit DiamondProber(chain::Blockchain& chain,
                         DiamondProbeConfig config = {},
                         AnalysisCache* cache = nullptr)
      : chain_(chain), config_(config), cache_(cache) {}

  /// Re-examines a contract that the plain detector called "not a proxy"
  /// despite a DELEGATECALL opcode: probes with selector hints harvested
  /// from (a) past transactions targeting the contract and (b) PUSH4
  /// candidates in its bytecode. Returns a diamond verdict plus the facets.
  DiamondReport probe(const Address& contract, const ProxyReport& base);

  /// The selector hints that would be used (exposed for tests/benches).
  std::vector<std::uint32_t> harvest_selectors(const Address& contract) const;

 private:
  chain::Blockchain& chain_;
  DiamondProbeConfig config_;
  AnalysisCache* cache_;
};

}  // namespace proxion::core
