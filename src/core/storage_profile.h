// CRUSH-style storage analysis (§5.2): program slicing plus lightweight
// symbolic execution over the disassembly to recover, for every SLOAD /
// SSTORE with a resolvable slot, the *byte width* the contract treats the
// slot as (a bool read masks with 0xff, an address read masks with 2^160-1
// or compares against CALLER, ...), whether the access sits behind a
// caller-equality guard, and where written values come from. Two contracts
// disagreeing on a slot's width is the storage-collision signal.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "evm/disassembler.h"
#include "evm/types.h"

namespace proxion::core {

enum class ValueOrigin : std::uint8_t {
  kUnknown,
  kConstant,
  kCaller,    // derived from CALLER (msg.sender)
  kCalldata,  // derived from CALLDATALOAD
  kStorage,   // derived from another SLOAD
};

struct StorageAccess {
  evm::U256 slot;
  bool is_write = false;
  /// Inferred byte width of the variable at this access (1..32). Reads
  /// default to 32 unless a narrowing mask or typed comparison is observed.
  std::uint8_t width = 32;
  /// Byte offset inside the slot (Solidity packing): an `(sload >> 8k) &
  /// mask` idiom reads the packed variable starting at byte k (counted from
  /// the slot's least-significant end). 0 for unpacked accesses.
  std::uint8_t offset = 0;

  /// Does this access's byte range [offset, offset+width) overlap `other`'s
  /// on the same slot?
  bool overlaps(const StorageAccess& other) const noexcept {
    return slot == other.slot && offset < other.offset + other.width &&
           other.offset < offset + width;
  }
  /// Same byte range?
  bool same_range(const StorageAccess& other) const noexcept {
    return offset == other.offset && width == other.width;
  }
  /// The access's value is compared against CALLER somewhere downstream —
  /// the slot takes part in an access-control decision (CRUSH's "sensitive
  /// slot" notion).
  bool caller_compared = false;
  /// This write executes only on the taken edge of a caller-equality guard.
  bool guarded_by_caller = false;
  ValueOrigin value_origin = ValueOrigin::kUnknown;  // writes only
  std::uint32_t pc = 0;
};

struct StorageProfile {
  std::vector<StorageAccess> accesses;
  /// Slots whose computation involved KECCAK256 (mappings / dynamic arrays)
  /// — excluded from pairwise comparison, like CRUSH excludes non-concrete
  /// slots.
  std::uint32_t hashed_slot_accesses = 0;

  /// All concrete slots read or written.
  std::vector<evm::U256> slots() const;
  /// Narrowest width observed for a slot (the declared variable's width).
  std::optional<std::uint8_t> width_of(const evm::U256& slot) const;
  /// Every distinct (offset, width) byte range accessed on a slot.
  std::vector<std::pair<std::uint8_t, std::uint8_t>> ranges_of(
      const evm::U256& slot) const;
  bool is_sensitive(const evm::U256& slot) const;
  bool has_unguarded_write(const evm::U256& slot) const;
};

/// Runs the abstract interpretation over every basic block.
StorageProfile profile_storage(const evm::Disassembly& dis);
StorageProfile profile_storage(evm::BytesView code);

}  // namespace proxion::core
