// Code-hash-keyed memoization for the sweep pipeline (the amortization layer
// behind §6.1's throughput claim). Every downstream stage of the pipeline
// used to recompute the same per-bytecode artifacts — the linear-sweep
// disassembly, the dispatcher-pattern selector list, and the CRUSH-style
// storage profile — once per stage and once per proxy/logic pair, even
// though all three are pure functions of the code blob. This cache computes
// each artifact at most once per distinct code hash and shares it across
// stages, contracts, and pipeline runs.
//
// Concurrency: the entry table is sharded N ways (lock striping on the code
// hash) so the sweep's workers rarely contend; each entry then carries its
// own mutex, so two workers racing on the *same* blob serialize only with
// each other and the loser reuses the winner's artifact instead of
// recomputing it. Entries are never evicted — determinism with the cache on
// vs off is part of the contract (tested).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/storage_profile.h"
#include "crypto/keccak.h"
#include "evm/disassembler.h"
#include "obs/metrics.h"
#include "static/layout.h"
#include "static/provenance.h"

namespace proxion::core {

struct AnalysisCacheStats {
  std::uint64_t disassembly_hits = 0;
  std::uint64_t disassembly_misses = 0;
  std::uint64_t selector_hits = 0;
  std::uint64_t selector_misses = 0;
  std::uint64_t profile_hits = 0;
  std::uint64_t profile_misses = 0;
  std::uint64_t static_hits = 0;
  std::uint64_t static_misses = 0;
  std::uint64_t layout_hits = 0;
  std::uint64_t layout_misses = 0;
  std::uint64_t entries = 0;  // distinct code hashes ever seen

  std::uint64_t hits() const noexcept {
    return disassembly_hits + selector_hits + profile_hits + static_hits +
           layout_hits;
  }
  std::uint64_t misses() const noexcept {
    return disassembly_misses + selector_misses + profile_misses +
           static_misses + layout_misses;
  }
};

class AnalysisCache {
 public:
  /// `shards` is clamped to at least 1; a power of two keeps the stripe
  /// selection a cheap mask but any count works.
  explicit AnalysisCache(unsigned shards = 16);

  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  /// The linear-sweep disassembly of `code` (keyed by `code_hash`, which the
  /// caller must have computed from the same bytes). Computed once per hash.
  std::shared_ptr<const evm::Disassembly> disassembly(
      const crypto::Hash256& code_hash, evm::BytesView code);

  /// The sorted, deduped dispatcher-selector list (§5.1 extraction).
  /// Computes (and caches) the disassembly as a byproduct when absent.
  std::shared_ptr<const std::vector<std::uint32_t>> selectors(
      const crypto::Hash256& code_hash, evm::BytesView code);

  /// The CRUSH-style storage profile (§5.2). Also computed off the cached
  /// disassembly.
  std::shared_ptr<const StorageProfile> storage_profile(
      const crypto::Hash256& code_hash, evm::BytesView code);

  /// The static-tier report (CFG recovery + DELEGATECALL provenance): a pure
  /// function of the bytecode, so a warm sweep pays zero static-analysis
  /// cost. Also computed off the cached disassembly.
  std::shared_ptr<const static_analysis::StaticReport> static_report(
      const crypto::Hash256& code_hash, evm::BytesView code);

  /// The inferred storage layout (static/layout.h): pure function of the
  /// bytecode, derived from the cached static report's CFG. Computes (and
  /// caches) the disassembly and static report as byproducts when absent.
  std::shared_ptr<const static_analysis::StorageLayout> layout(
      const crypto::Hash256& code_hash, evm::BytesView code);

  AnalysisCacheStats stats() const;
  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Drops every cached entry. Requires quiescence (no concurrent accessor
  /// calls). The hit/miss counters keep their lifetime totals; `entries`
  /// stays "distinct code hashes ever seen". The durable sharded sweep
  /// calls this between shards so peak memory tracks the shard, not the
  /// population — correctness is unaffected (pure caches).
  void clear();

 private:
  struct Entry {
    std::mutex mu;
    std::shared_ptr<const evm::Disassembly> dis;
    std::shared_ptr<const std::vector<std::uint32_t>> selectors;
    std::shared_ptr<const StorageProfile> profile;
    std::shared_ptr<const static_analysis::StaticReport> static_report;
    std::shared_ptr<const static_analysis::StorageLayout> layout;
  };
  struct HashKey {
    std::size_t operator()(const crypto::Hash256& h) const noexcept {
      std::size_t out = 0;
      for (std::size_t i = 0; i < sizeof(out); ++i) out = (out << 8) | h[i];
      return out;
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<crypto::Hash256, std::shared_ptr<Entry>, HashKey> map;
  };

  std::shared_ptr<Entry> entry_for(const crypto::Hash256& code_hash);
  /// Computes the disassembly if absent; caller holds `entry.mu`.
  const std::shared_ptr<const evm::Disassembly>& ensure_disassembly(
      Entry& entry, evm::BytesView code);
  /// Computes the static report if absent (with hit/miss accounting);
  /// caller holds `entry.mu`.
  const std::shared_ptr<const static_analysis::StaticReport>&
  ensure_static_report(Entry& entry, evm::BytesView code);

  std::vector<std::unique_ptr<Shard>> shards_;

  // Hit/miss accounting on the shared telemetry counter primitive (sharded
  // relaxed atomics); stats() reads are point-in-time snapshots as before.
  obs::Counter disassembly_hits_;
  obs::Counter disassembly_misses_;
  obs::Counter selector_hits_;
  obs::Counter selector_misses_;
  obs::Counter profile_hits_;
  obs::Counter profile_misses_;
  obs::Counter static_hits_;
  obs::Counter static_misses_;
  obs::Counter layout_hits_;
  obs::Counter layout_misses_;
  obs::Counter entries_;
};

/// Striped "compute at most once per key" map, used for the pipeline's
/// proxy/logic pair outcomes (and its per-run logic-blob table). Unlike a
/// plain guarded map, an entry being computed leaves an in-flight marker:
/// a second thread asking for the same key *waits* for the first result
/// instead of redundantly running the (expensive) computation — the seed's
/// Phase B let both threads miss and both run the collision detectors.
template <typename Key, typename Value, typename Hasher = std::hash<Key>>
class StripedOnceMap {
 public:
  explicit StripedOnceMap(unsigned shards = 16) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  StripedOnceMap(const StripedOnceMap&) = delete;
  StripedOnceMap& operator=(const StripedOnceMap&) = delete;

  /// Returns the value for `key`, running `fn` exactly once across all
  /// threads for a given key. Concurrent callers on an in-flight key block
  /// until the computing thread publishes. If `fn` throws, the marker is
  /// cleared (waiters see the failure and one of them retries the compute
  /// on its next call) and the exception propagates to the computing caller.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& fn) {
    Shard& s = *shards_[Hasher{}(key) % shards_.size()];
    Slot* slot = nullptr;
    {
      std::unique_lock<std::mutex> lk(s.mu);
      auto [it, inserted] = s.map.try_emplace(key);
      slot = &it->second;  // element references survive rehash
      if (!inserted) {
        if (slot->state == State::kComputing) {
          waits_.add(1);
          s.cv.wait(lk, [&] { return slot->state != State::kComputing; });
        }
        if (slot->state == State::kReady) {
          hits_.add(1);
          return slot->value;
        }
        // kFailed: the previous computation threw; take over the marker.
      }
      slot->state = State::kComputing;
    }
    misses_.add(1);
    try {
      Value v = fn();
      std::lock_guard<std::mutex> lk(s.mu);
      slot->value = std::move(v);
      slot->state = State::kReady;
      s.cv.notify_all();
      return slot->value;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(s.mu);
        slot->state = State::kFailed;
      }
      s.cv.notify_all();
      throw;
    }
  }

  std::uint64_t hits() const noexcept { return hits_.value(); }
  std::uint64_t misses() const noexcept { return misses_.value(); }
  /// Number of times a caller blocked on another thread's in-flight compute.
  std::uint64_t waits() const noexcept { return waits_.value(); }

  /// Drops every entry. Requires quiescence — a concurrent get_or_compute()
  /// holding an in-flight marker would be left waiting on an erased slot.
  /// Counters keep their lifetime totals.
  void clear() {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->mu);
      s->map.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lk(s->mu);
      n += s->map.size();
    }
    return n;
  }

 private:
  enum class State : std::uint8_t { kComputing, kReady, kFailed };
  struct Slot {
    State state = State::kComputing;
    Value value{};
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<Key, Slot, Hasher> map;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter waits_;
};

}  // namespace proxion::core
