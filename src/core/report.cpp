#include "core/report.h"

#include <sstream>

namespace proxion::core {

namespace {

double pct(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) /
                              static_cast<double>(den);
}

/// Nanoseconds with an adaptive unit (ns/us/ms/s), one decimal.
std::string fmt_ns(double ns) {
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o.precision(1);
  if (ns >= 1e9) {
    o << ns / 1e9 << "s";
  } else if (ns >= 1e6) {
    o << ns / 1e6 << "ms";
  } else if (ns >= 1e3) {
    o << ns / 1e3 << "us";
  } else {
    o << ns << "ns";
  }
  return o.str();
}

void latency_line(std::ostringstream& out, const char* label,
                  const obs::HistogramSummary& s) {
  out << "  " << label << " p50=" << fmt_ns(s.p50) << " p90=" << fmt_ns(s.p90)
      << " p99=" << fmt_ns(s.p99) << " max=" << fmt_ns(static_cast<double>(s.max))
      << " (" << s.count << " samples)\n";
}

}  // namespace

VerdictRow extract_verdict(const ContractAnalysis& a,
                           const crypto::Hash256& code_hash) {
  VerdictRow row;
  row.address = a.address;
  row.code_hash = code_hash;
  row.year = a.year;
  row.verdict = a.proxy.verdict;
  row.standard = a.proxy.standard;
  row.logic_source = a.proxy.logic_source;
  row.logic_address = a.proxy.logic_address;
  row.logic_slot = a.proxy.logic_slot;
  row.upgrade_events = a.logic_history.upgrade_events;
  row.has_source = a.has_source;
  row.has_tx = a.has_tx;
  row.hidden = a.proxy.is_proxy() && !a.has_source && !a.has_tx;
  row.deduplicated = a.deduplicated;
  row.function_collision = a.function_collision;
  row.storage_collision = a.storage_collision;
  row.storage_collision_exploitable = a.storage_collision_exploitable;
  row.family_collision = a.family_collision;
  row.quarantined = a.error.has_value();
  if (a.error) row.error_kind = a.error->kind;
  return row;
}

void LandscapeAccumulator::add(const ContractAnalysis& a) {
  LandscapeStats& stats = stats_;
  ++stats.total_contracts;
  if (a.error) {
    // Quarantined: partial analysis, excluded from landscape aggregates
    // until a resume pass clears it.
    ++stats.quarantined;
    ++stats.errors_by_kind[a.error->kind];
    return;
  }
  if (a.proxy.verdict == ProxyVerdict::kEmulationError) {
    ++stats.emulation_errors;
    if (a.proxy.halt == evm::HaltReason::kStepLimit) {
      // Adversarial bytecode that ran into the emulator's step fuse —
      // distinct in the taxonomy from blobs that merely fault.
      ++stats.errors_by_kind[ErrorKind::kEmulationLimit];
    }
  }
  if (a.diamond.is_diamond) ++stats.diamonds_recovered;
  if (!a.deduplicated) {
    // Static-tier triage per unique blob: clones share their
    // representative's triage, so counting them again would overstate the
    // emulation work the tier saved.
    switch (a.proxy.static_triage) {
      case StaticTriage::kSkippedNoDelegatecall:
        ++stats.static_skipped_absent;
        break;
      case StaticTriage::kSkippedDeadDelegatecall:
        ++stats.static_skipped_dead;
        break;
      case StaticTriage::kSkippedMinimalProxy:
        ++stats.static_skipped_minimal;
        break;
      case StaticTriage::kEmulated:
        ++stats.static_emulated;
        break;
      case StaticTriage::kNotRun:
        break;
    }
    if (a.proxy.static_mismatch != 0) {
      ++stats.static_mismatches;
      for (const std::uint8_t bit :
           {kMismatchReachability, kMismatchSlot, kMismatchTarget,
            kMismatchLayoutSlot, kMismatchLayoutWidth}) {
        if ((a.proxy.static_mismatch & bit) != 0) {
          ++stats.static_mismatch_bits[bit];
        }
      }
    }
    if (a.proxy.layout_inferred) ++stats.layout_inferred;
    if (a.proxy.layout_reliable) ++stats.layout_reliable;
  }
  stats.collision_pairs_family_checked += a.collision_pairs_family_checked;
  stats.collision_pairs_source_free += a.collision_pairs_source_free;
  if (a.family_collision) ++stats.family_collisions;
  if (!a.proxy.is_proxy()) return;
  ++stats.proxies;
  if (!a.has_source && !a.has_tx) ++stats.hidden_proxies;
  if (!a.deduplicated) ++stats.unique_proxy_codehashes;
  ++stats.by_standard[a.proxy.standard];
  ++stats.proxies_by_year[a.year];
  if (!a.logic_history.logic_addresses.empty()) {
    ++stats.pairs_by_source[{a.has_source, a.logic_has_source}];
  }
  if (a.function_collision) {
    ++stats.function_collisions;
    ++stats.function_collisions_by_year[a.year];
  }
  if (a.storage_collision) {
    ++stats.storage_collisions;
    ++stats.storage_collisions_by_year[a.year];
  }
  if (a.storage_collision_exploitable) {
    ++stats.exploitable_storage_collisions;
  }
  ++stats.upgrade_histogram[a.logic_history.upgrade_events];
  stats.total_upgrade_events += a.logic_history.upgrade_events;
}

LandscapeStats LandscapeAccumulator::take() {
  stats_.analyzed_contracts = stats_.total_contracts - stats_.quarantined;
  return std::move(stats_);
}

std::string render_landscape_text(const LandscapeStats& stats) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  out << "contracts analyzed:  " << stats.total_contracts << "\n";
  out << "proxy contracts:     " << stats.proxies << " ("
      << pct(stats.proxies, stats.total_contracts) << "%)\n";
  out << "hidden proxies:      " << stats.hidden_proxies
      << " (no source, no transactions)\n";
  out << "emulation errors:    " << stats.emulation_errors << " ("
      << pct(stats.emulation_errors, stats.total_contracts) << "%)\n";
  if (stats.quarantined > 0) {
    out << "quarantined:         " << stats.quarantined << " ("
        << pct(stats.quarantined, stats.total_contracts)
        << "% — partial coverage, resume to retry)\n";
    out << "error taxonomy:";
    for (const auto& [kind, count] : stats.errors_by_kind) {
      out << "  " << to_string(kind) << "=" << count;
    }
    out << "\n";
  }
  if (stats.sweep_shards > 0) {
    out << "durable sweep:       " << stats.sweep_shards << " shards, "
        << stats.journal_replayed << " replayed from journal";
    if (stats.incremental_reanalyzed > 0) {
      out << ", " << stats.incremental_reanalyzed
          << " re-analyzed (incremental)";
    }
    if (stats.selfheal_shards > 0) {
      out << ", " << stats.selfheal_shards
          << " corrupt region(s) self-healed";
    }
    out << "\n";
    if (stats.sweep_degraded != 0) {
      out << "DEGRADED:            disk gave out mid-sweep; verdicts are "
             "complete but checkpointing stopped at the last good commit\n";
    }
  }
  if (stats.rpc_retries > 0 || stats.rpc_giveups > 0) {
    out << "rpc faults absorbed: " << stats.rpc_retries << " retried, "
        << stats.rpc_giveups << " gave up, " << stats.breaker_trips
        << " breaker trips\n";
  }
  out << "unique proxy codebases: " << stats.unique_proxy_codehashes << "\n";
  const std::uint64_t static_triaged =
      stats.static_skipped_absent + stats.static_skipped_dead +
      stats.static_skipped_minimal + stats.static_emulated;
  if (static_triaged > 0) {
    const std::uint64_t skips = static_triaged - stats.static_emulated;
    out << "static tier:         " << skips << "/" << static_triaged
        << " blobs skipped emulation (" << pct(skips, static_triaged)
        << "%): absent=" << stats.static_skipped_absent
        << " dead=" << stats.static_skipped_dead
        << " eip1167=" << stats.static_skipped_minimal << "\n";
    if (stats.static_mismatches > 0) {
      out << "static mismatches:   " << stats.static_mismatches
          << " (static vs emulation disagreement —";
      for (const auto& [bit, count] : stats.static_mismatch_bits) {
        out << ' '
            << (bit == kMismatchReachability  ? "reachability"
                : bit == kMismatchSlot        ? "slot"
                : bit == kMismatchTarget      ? "target"
                : bit == kMismatchLayoutSlot  ? "layout-slot"
                : bit == kMismatchLayoutWidth ? "layout-width"
                                              : "unknown")
            << "=" << count;
      }
      out << ")\n";
    }
  }
  if (stats.layout_inferred > 0) {
    out << "layout inference:    " << stats.layout_inferred
        << " blobs inferred (" << stats.layout_reliable << " reliable); "
        << stats.collision_pairs_source_free << "/"
        << stats.collision_pairs_family_checked
        << " pairs checked source-free; family collisions="
        << stats.family_collisions << "\n";
  }
  if (stats.diamonds_recovered > 0) {
    out << "diamonds recovered (tx-hint probing): "
        << stats.diamonds_recovered << "\n";
  }
  out << "function collisions: " << stats.function_collisions << "\n";
  out << "storage collisions:  " << stats.storage_collisions << " ("
      << stats.exploitable_storage_collisions << " with verified exploit)\n";
  out << "upgrade events:      " << stats.total_upgrade_events << "\n";
  if (stats.contract_latency_ns.count > 0 || stats.rpc_latency_ns.count > 0) {
    out << "latency (telemetry):\n";
    if (stats.contract_latency_ns.count > 0) {
      latency_line(out, "per contract:", stats.contract_latency_ns);
    }
    if (stats.rpc_latency_ns.count > 0) {
      latency_line(out, "per rpc:     ", stats.rpc_latency_ns);
    }
    if (stats.emulation_steps.count > 0) {
      const auto& e = stats.emulation_steps;
      out << "  steps/probe:  p50=" << static_cast<std::uint64_t>(e.p50)
          << " p90=" << static_cast<std::uint64_t>(e.p90)
          << " p99=" << static_cast<std::uint64_t>(e.p99) << " max=" << e.max
          << " (" << e.count << " probes)\n";
    }
  }
  out << "standards:";
  for (const auto& [standard, count] : stats.by_standard) {
    out << "  " << to_string(standard) << "=" << count;
  }
  out << "\n";
  return out.str();
}

std::string render_collisions_csv(const LandscapeStats& stats) {
  std::ostringstream out;
  out << "year,function_collisions,storage_collisions\n";
  for (int year = 2015; year <= 2023; ++year) {
    const auto fn = stats.function_collisions_by_year.find(year);
    const auto st = stats.storage_collisions_by_year.find(year);
    out << year << ','
        << (fn == stats.function_collisions_by_year.end() ? 0 : fn->second)
        << ','
        << (st == stats.storage_collisions_by_year.end() ? 0 : st->second)
        << '\n';
  }
  return out.str();
}

std::string render_standards_csv(const LandscapeStats& stats) {
  std::ostringstream out;
  out << "standard,count,ratio_pct\n";
  out.setf(std::ios::fixed);
  out.precision(2);
  for (const auto& [standard, count] : stats.by_standard) {
    out << to_string(standard) << ',' << count << ','
        << pct(count, stats.proxies) << '\n';
  }
  return out.str();
}

std::string render_upgrades_csv(const LandscapeStats& stats) {
  std::ostringstream out;
  out << "upgrades,proxies\n";
  for (const auto& [upgrades, count] : stats.upgrade_histogram) {
    out << upgrades << ',' << count << '\n';
  }
  return out.str();
}

std::string render_contracts_csv(
    const std::vector<ContractAnalysis>& reports) {
  std::ostringstream out;
  out << "address,year,verdict,standard,logic,function_collision,"
         "storage_collision\n";
  for (const ContractAnalysis& a : reports) {
    out << a.address.to_hex() << ',' << a.year << ','
        << to_string(a.proxy.verdict) << ',' << to_string(a.proxy.standard)
        << ','
        << (a.proxy.is_proxy() ? a.proxy.logic_address.to_hex() : "")
        << ',' << (a.function_collision ? 1 : 0) << ','
        << (a.storage_collision ? 1 : 0) << '\n';
  }
  return out.str();
}

}  // namespace proxion::core
