#include "core/storage_collision.h"

#include <algorithm>

#include "core/selector_extractor.h"
#include "evm/interpreter.h"

namespace proxion::core {

namespace {

/// Records SSTOREs against the proxy's storage context during an exploit
/// attempt, so we can tell whether the sensitive slot was written and with
/// what provenance.
class ExploitObserver final : public evm::TraceObserver {
 public:
  ExploitObserver(const Address& proxy, const U256& slot)
      : proxy_(proxy), slot_(slot) {}

  void on_sstore(int /*depth*/, const Address& storage_addr, const U256& slot,
                 const U256& value) override {
    if (storage_addr == proxy_ && slot == slot_) {
      wrote_ = true;
      last_value_ = value;
    }
  }

  bool wrote() const noexcept { return wrote_; }
  const U256& last_value() const noexcept { return last_value_; }

 private:
  Address proxy_;
  U256 slot_;
  bool wrote_ = false;
  U256 last_value_;
};

}  // namespace

std::vector<FamilyView> StorageCollisionDetector::declared_families(
    const sourcemeta::SourceRecord& record) {
  std::vector<FamilyView> out;
  for (const sourcemeta::VariableDecl& var : record.storage) {
    if (var.is_padding) continue;
    FamilyView view;
    view.base_slot = U256{var.slot};
    view.depth = 1;
    if (var.type.rfind("mapping", 0) == 0) {
      view.path = 1;  // level 1 hashed key ++ slot
    } else if (var.type.size() >= 2 &&
               var.type.compare(var.type.size() - 2, 2, "[]") == 0) {
      view.path = 0;  // dynamic array: level 1 hashed slot alone
    } else {
      continue;  // elementary variable, not a slot family
    }
    // Source records carry no element type for mappings/arrays, so the
    // declared view is the full word — matching what layout_storage() gives
    // the declaration itself.
    out.push_back(view);
  }
  return out;
}

std::vector<FamilyView> StorageCollisionDetector::inferred_families(
    const static_analysis::StorageLayout& layout) {
  std::vector<FamilyView> out;
  out.reserve(layout.families.size());
  for (const static_analysis::SlotFamily& f : layout.families) {
    FamilyView view;
    view.base_slot = f.base_slot;
    view.depth = f.depth;
    view.path = f.path;
    view.value_offset = f.value_offset;
    view.value_width = f.value_width;
    out.push_back(view);
  }
  return out;
}

void StorageCollisionDetector::compare_family_layouts(
    const Address& proxy_lookup, BytesView proxy_code,
    const crypto::Hash256* proxy_hash, const Address& logic_lookup,
    BytesView logic_code, const crypto::Hash256* logic_hash,
    StorageCollisionResult& result) const {
  const sourcemeta::SourceRecord* proxy_src =
      sources_ != nullptr ? sources_->lookup(proxy_lookup) : nullptr;
  const sourcemeta::SourceRecord* logic_src =
      sources_ != nullptr ? sources_->lookup(logic_lookup) : nullptr;

  auto inferred = [&](BytesView code,
                      const crypto::Hash256* hash) -> std::vector<FamilyView> {
    if (cache_ != nullptr && hash != nullptr) {
      return inferred_families(*cache_->layout(*hash, code));
    }
    return inferred_families(
        static_analysis::infer_layout(evm::Disassembly(code)));
  };

  // Source-attached mode needs declared layouts on *both* sides; anything
  // less and the pair is analyzed source-free from the bytecode alone.
  std::vector<FamilyView> proxy_views, logic_views;
  if (proxy_src != nullptr && logic_src != nullptr) {
    proxy_views = declared_families(*proxy_src);
    logic_views = declared_families(*logic_src);
  } else {
    result.family_source_free = true;
    proxy_views = inferred(proxy_code, proxy_hash);
    logic_views = inferred(logic_code, logic_hash);
  }
  result.family_checked = true;

  // Same overlap-and-differ rule as the static-slot loop, applied to the
  // element value ranges of identity-matched families. One finding per
  // family identity (first conflicting view pair wins), mirroring the
  // per-slot "first conflict" convention above.
  for (const FamilyView& pv : proxy_views) {
    for (const FamilyView& lv : logic_views) {
      if (!pv.same_identity(lv)) continue;
      const bool overlap =
          pv.value_offset < lv.value_offset + lv.value_width &&
          lv.value_offset < pv.value_offset + pv.value_width;
      const bool differ = pv.value_offset != lv.value_offset ||
                          pv.value_width != lv.value_width;
      if (!overlap || !differ) continue;
      const bool seen = std::any_of(
          result.family_findings.begin(), result.family_findings.end(),
          [&](const FamilyCollisionFinding& f) {
            return f.base_slot == pv.base_slot && f.depth == pv.depth &&
                   f.path == pv.path;
          });
      if (seen) continue;
      FamilyCollisionFinding finding;
      finding.base_slot = pv.base_slot;
      finding.depth = pv.depth;
      finding.path = pv.path;
      finding.proxy_offset = pv.value_offset;
      finding.proxy_width = pv.value_width;
      finding.logic_offset = lv.value_offset;
      finding.logic_width = lv.value_width;
      result.family_findings.push_back(finding);
    }
  }
}

StorageCollisionResult StorageCollisionDetector::detect(
    const Address& proxy, BytesView proxy_code, const Address& logic,
    BytesView logic_code) const {
  return detect(proxy, proxy_code, nullptr, logic, logic_code, nullptr);
}

StorageCollisionResult StorageCollisionDetector::detect(
    const Address& proxy, BytesView proxy_code,
    const crypto::Hash256* proxy_hash, const Address& logic,
    BytesView logic_code, const crypto::Hash256* logic_hash,
    const Address* proxy_source_lookup,
    const Address* logic_source_lookup) const {
  const bool cached = cache_ != nullptr;
  StorageCollisionResult result;
  result.proxy_profile = cached && proxy_hash != nullptr
                             ? *cache_->storage_profile(*proxy_hash, proxy_code)
                             : profile_storage(proxy_code);
  result.logic_profile = cached && logic_hash != nullptr
                             ? *cache_->storage_profile(*logic_hash, logic_code)
                             : profile_storage(logic_code);

  // The probe list for exploit verification is also a pure function of the
  // logic blob; share it across every finding (and, via the cache, across
  // every pair touching this blob).
  std::vector<std::uint32_t> probes;
  bool probes_ready = false;
  auto probe_selectors = [&]() -> const std::vector<std::uint32_t>& {
    if (!probes_ready) {
      probes = cached && logic_hash != nullptr
                   ? *cache_->selectors(*logic_hash, logic_code)
                   : extract_selectors(logic_code);
      probes_ready = true;
    }
    return probes;
  };

  for (const U256& slot : result.proxy_profile.slots()) {
    const auto proxy_ranges = result.proxy_profile.ranges_of(slot);
    const auto logic_ranges = result.logic_profile.ranges_of(slot);
    if (proxy_ranges.empty() || logic_ranges.empty()) continue;  // not shared

    // Two typed views collide when their byte ranges overlap but are not
    // identical — Solidity packing makes disjoint ranges on one slot
    // perfectly compatible (e.g. an address at bytes 0-19 and a bool at
    // byte 20).
    std::optional<std::pair<std::pair<std::uint8_t, std::uint8_t>,
                            std::pair<std::uint8_t, std::uint8_t>>>
        conflict;
    for (const auto& pr : proxy_ranges) {
      for (const auto& lr : logic_ranges) {
        const bool overlap = pr.first < lr.first + lr.second &&
                             lr.first < pr.first + pr.second;
        if (overlap && pr != lr) {
          conflict = {pr, lr};
          break;
        }
      }
      if (conflict) break;
    }
    if (!conflict) continue;

    StorageCollisionFinding finding;
    finding.slot = slot;
    finding.proxy_offset = conflict->first.first;
    finding.proxy_width = conflict->first.second;
    finding.logic_offset = conflict->second.first;
    finding.logic_width = conflict->second.second;
    finding.sensitive = result.proxy_profile.is_sensitive(slot) ||
                        result.logic_profile.is_sensitive(slot);
    finding.exploitable =
        finding.sensitive && (result.logic_profile.has_unguarded_write(slot) ||
                              result.proxy_profile.has_unguarded_write(slot));

    if (finding.exploitable && config_.attempt_verification) {
      verify_exploit(proxy, proxy_code, logic, logic_code, probe_selectors(),
                     finding);
    }
    result.findings.push_back(finding);
  }

  if (config_.compare_families) {
    compare_family_layouts(
        proxy_source_lookup != nullptr ? *proxy_source_lookup : proxy,
        proxy_code, proxy_hash,
        logic_source_lookup != nullptr ? *logic_source_lookup : logic,
        logic_code, logic_hash, result);
  }
  return result;
}

bool StorageCollisionDetector::verify_exploit(
    const Address& proxy, BytesView proxy_code, const Address& logic,
    BytesView logic_code, const std::vector<std::uint32_t>& logic_selectors,
    StorageCollisionFinding& finding) const {
  const Address attacker = Address::from_label("proxion.attacker");

  std::vector<std::uint32_t> probes = logic_selectors;
  if (probes.size() > config_.max_probe_functions) {
    probes.resize(config_.max_probe_functions);
  }

  // Two starting states: the live one, and one with the colliding slot
  // zeroed (concrete stand-in for CRUSH's symbolic path feasibility).
  for (const bool zero_slot : {false, true}) {
    for (const std::uint32_t selector : probes) {
      evm::OverlayHost overlay(state_);
      overlay.set_code(proxy, evm::Bytes(proxy_code.begin(), proxy_code.end()));
      overlay.set_code(logic, evm::Bytes(logic_code.begin(), logic_code.end()));
      if (zero_slot) overlay.set_storage(proxy, finding.slot, U256{});

      evm::Bytes calldata(4 + 32, 0);
      calldata[0] = static_cast<std::uint8_t>(selector >> 24);
      calldata[1] = static_cast<std::uint8_t>(selector >> 16);
      calldata[2] = static_cast<std::uint8_t>(selector >> 8);
      calldata[3] = static_cast<std::uint8_t>(selector);
      // Argument = the attacker's address, useful for setter-style writes.
      const auto arg = attacker.to_word().to_be_bytes();
      std::copy(arg.begin(), arg.end(), calldata.begin() + 4);

      ExploitObserver observer(proxy, finding.slot);
      evm::InterpreterConfig interp_config;
      interp_config.step_limit = 200'000;
      interp_config.max_call_depth = 64;  // bounded native recursion
      evm::Interpreter interp(overlay, interp_config);
      interp.set_observer(&observer);

      evm::CallParams params;
      params.code_address = proxy;
      params.storage_address = proxy;
      params.caller = attacker;
      params.origin = attacker;
      params.calldata = calldata;
      params.gas = config_.emulation_gas;

      const evm::ExecResult exec = interp.execute(params);
      if (!exec.success() || !observer.wrote()) continue;

      // The exploit counts if the attacker overwrote the sensitive slot
      // with data they control (their own address) or clobbered it with a
      // differently-typed value.
      const U256 written = observer.last_value();
      const bool attacker_controlled =
          (written & ((U256{1} << U256{160}) - U256{1})) ==
          attacker.to_word();
      const U256 before = zero_slot ? U256{}
                                    : state_.get_storage(proxy, finding.slot);
      if (attacker_controlled || written != before) {
        finding.verified = true;
        finding.exploit_selector = selector;

        // §2.3: re-run the exact transaction against the post-exploit
        // state. If the write fires again, the collision has defeated the
        // "only once" guard itself (the Audius failure mode).
        ExploitObserver replay_observer(proxy, finding.slot);
        evm::Interpreter replay(overlay, interp_config);
        replay.set_observer(&replay_observer);
        const evm::ExecResult second = replay.execute(params);
        finding.repeatable = second.success() && replay_observer.wrote();
        return true;
      }
    }
  }
  return false;
}

}  // namespace proxion::core
