#include "core/function_collision.h"

#include <algorithm>

#include "core/selector_extractor.h"

namespace proxion::core {

std::vector<std::uint32_t> FunctionCollisionDetector::selectors_for(
    const Address& address, BytesView code, const crypto::Hash256* code_hash,
    bool& from_source) const {
  if (sources_ != nullptr) {
    if (const auto* record = sources_->lookup(address)) {
      from_source = true;
      return record->selectors();  // already sorted + deduped
    }
  }
  from_source = false;
  if (cache_ != nullptr && code_hash != nullptr) {
    return *cache_->selectors(*code_hash, code);  // sorted + deduped
  }
  return extract_selectors(code);  // sorted + deduped
}

FunctionCollisionResult FunctionCollisionDetector::detect(
    const Address& proxy, BytesView proxy_code, const Address& logic,
    BytesView logic_code) const {
  return detect(proxy, proxy_code, nullptr, logic, logic_code, nullptr);
}

FunctionCollisionResult FunctionCollisionDetector::detect(
    const Address& proxy, BytesView proxy_code,
    const crypto::Hash256* proxy_hash, const Address& logic,
    BytesView logic_code, const crypto::Hash256* logic_hash) const {
  FunctionCollisionResult result;
  bool proxy_from_source = false;
  bool logic_from_source = false;
  result.proxy_selectors =
      selectors_for(proxy, proxy_code, proxy_hash, proxy_from_source);
  result.logic_selectors =
      selectors_for(logic, logic_code, logic_hash, logic_from_source);

  if (proxy_from_source && logic_from_source) {
    result.mode = CollisionMode::kSourceSource;
  } else if (proxy_from_source || logic_from_source) {
    result.mode = CollisionMode::kMixed;
  } else {
    result.mode = CollisionMode::kBytecodeBytecode;
  }

  std::set_intersection(result.proxy_selectors.begin(),
                        result.proxy_selectors.end(),
                        result.logic_selectors.begin(),
                        result.logic_selectors.end(),
                        std::back_inserter(result.colliding_selectors));
  return result;
}

}  // namespace proxion::core
