// The end-to-end sweep Proxion runs over the whole chain (§6.1, §7):
// per-contract proxy detection (with bytecode-hash deduplication so
// identical clones are analyzed once), logic-history recovery via
// Algorithm 1, per-pair collision checks, and aggregation into the
// landscape statistics behind every figure and table of §7.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/diamond_probe.h"
#include "core/function_collision.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "core/storage_collision.h"
#include "sourcemeta/source.h"

namespace proxion::core {

/// One contract handed to the sweep. `year` is presentation metadata used to
/// bucket the landscape statistics (the chain itself orders by block).
struct SweepInput {
  Address address;
  int year = 0;
  bool has_source = false;
  bool has_tx = false;
};

struct ContractAnalysis {
  Address address;
  int year = 0;
  bool has_source = false;
  bool has_tx = false;

  ProxyReport proxy;
  LogicHistory logic_history;
  bool deduplicated = false;  // verdict reused from an identical code blob
  /// §8.2 extension result (only populated when config.probe_diamonds and
  /// the base detector said "not a proxy" despite a DELEGATECALL opcode).
  DiamondReport diamond;

  bool function_collision = false;
  bool storage_collision = false;
  bool storage_collision_exploitable = false;
  bool logic_has_source = false;
};

struct PipelineConfig {
  unsigned threads = 0;             // 0 = hardware_concurrency
  bool dedup_by_code_hash = true;   // §6.1's re-analysis avoidance
  bool detect_collisions = true;
  bool find_logic_history = true;
  /// §7.1: "we assign the source code of a contract to all other contracts
  /// with the same bytecode hash" — lets clones of one verified contract be
  /// analyzed in source mode.
  bool propagate_source_by_code_hash = true;
  /// Re-probe DELEGATECALL-bearing non-proxies with tx-harvested selectors
  /// to catch EIP-2535 diamonds (§8.2 future work, implemented).
  bool probe_diamonds = false;
};

struct LandscapeStats {
  std::uint64_t total_contracts = 0;
  std::uint64_t proxies = 0;
  std::uint64_t emulation_errors = 0;
  std::uint64_t hidden_proxies = 0;  // no source AND no tx (the novel set)
  std::uint64_t unique_proxy_codehashes = 0;
  std::uint64_t function_collisions = 0;
  std::uint64_t storage_collisions = 0;
  std::uint64_t exploitable_storage_collisions = 0;

  std::uint64_t diamonds_recovered = 0;  // via the §8.2 extension

  std::map<ProxyStandard, std::uint64_t> by_standard;          // Table 4
  std::map<int, std::uint64_t> proxies_by_year;                // Fig 4 feed
  std::map<int, std::uint64_t> function_collisions_by_year;    // Table 3
  std::map<int, std::uint64_t> storage_collisions_by_year;     // Table 3
  /// Pair counts keyed by (proxy_has_source, logic_has_source) — Figure 4.
  std::map<std::pair<bool, bool>, std::uint64_t> pairs_by_source;
  /// Upgrade-count histogram (upgrades -> proxies) — Figure 6.
  std::map<std::uint64_t, std::uint64_t> upgrade_histogram;
  std::uint64_t total_upgrade_events = 0;

  std::uint64_t get_storage_at_calls = 0;
  double ms_per_contract = 0.0;
};

class AnalysisPipeline {
 public:
  AnalysisPipeline(chain::Blockchain& chain,
                   const sourcemeta::SourceRepository* sources,
                   PipelineConfig config = {});

  /// Analyzes every input contract; returns per-contract reports in input
  /// order. Thread-safe over the (read-only) chain.
  std::vector<ContractAnalysis> run(const std::vector<SweepInput>& inputs);

  /// Aggregates reports into the landscape statistics.
  LandscapeStats summarize(const std::vector<ContractAnalysis>& reports) const;

 private:
  chain::Blockchain& chain_;
  chain::ArchiveNode node_;
  const sourcemeta::SourceRepository* sources_;
  PipelineConfig config_;
  double last_run_ms_ = 0.0;
};

}  // namespace proxion::core
