// The end-to-end sweep Proxion runs over the whole chain (§6.1, §7):
// per-contract proxy detection (with bytecode-hash deduplication so
// identical clones are analyzed once), logic-history recovery via
// Algorithm 1, per-pair collision checks, and aggregation into the
// landscape statistics behind every figure and table of §7.
//
// Fault tolerance: the pipeline talks to its archive backend through the
// IArchiveNode seam, wrapped (by default) in a ResilientArchiveNode that
// retries transient RpcErrors with backoff behind a circuit breaker. Every
// per-contract unit of work runs under a try/catch plus a wall-clock
// watchdog: a failing contract becomes a quarantined ErrorRecord on its
// ContractAnalysis instead of aborting the sweep, and resume() re-enters the
// run to retry only the quarantined set.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "chain/coalescing_node.h"
#include "chain/resilient_node.h"
#include "chain/tracing_node.h"
#include "core/analysis_cache.h"
#include "core/diamond_probe.h"
#include "core/function_collision.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "core/storage_collision.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sourcemeta/source.h"
#include "util/resilience.h"
#include "util/thread_pool.h"

namespace proxion::core {

/// One contract handed to the sweep. `year` is presentation metadata used to
/// bucket the landscape statistics (the chain itself orders by block).
struct SweepInput {
  Address address;
  int year = 0;
  bool has_source = false;
  bool has_tx = false;
};

/// Why a contract's analysis could not complete (quarantine taxonomy).
enum class ErrorKind : std::uint8_t {
  kRpcTransient,    // a retriable RPC error surfaced with retries disabled
  kRpcExhausted,    // retry budget spent / circuit open; backend gave nothing
  kEmulationLimit,  // step or wall-clock watchdog budget exceeded
  kInternal,        // unexpected exception inside the analysis itself
  kDiskIo,          // checkpoint-store I/O failure (errno detail in text)
};

std::string_view to_string(ErrorKind kind) noexcept;

/// Per-contract failure record. A report carrying one is "quarantined":
/// its analysis is partial (whatever phases completed before the failure)
/// and resume() will retry it.
struct ErrorRecord {
  ErrorKind kind = ErrorKind::kInternal;
  std::string phase;   // "fetch" | "proxy" | "pairs"
  std::string detail;  // human-readable cause (exception text)

  friend bool operator==(const ErrorRecord&, const ErrorRecord&) = default;
};

struct ContractAnalysis {
  Address address;
  int year = 0;
  bool has_source = false;
  bool has_tx = false;

  ProxyReport proxy;
  LogicHistory logic_history;
  bool deduplicated = false;  // verdict reused from an identical code blob
  /// §8.2 extension result (only populated when config.probe_diamonds and
  /// the base detector said "not a proxy" despite a DELEGATECALL opcode).
  DiamondReport diamond;

  bool function_collision = false;
  bool storage_collision = false;
  bool storage_collision_exploitable = false;
  bool logic_has_source = false;
  /// Any proxy/logic pair collided on a keccak-derived slot family
  /// (mapping/dynamic array) — declared or inferred layouts.
  bool family_collision = false;
  /// Pairs whose slot families were compared at all, and the subset that
  /// had to use bytecode-inferred layouts (no sourcemeta for the pair).
  std::uint32_t collision_pairs_family_checked = 0;
  std::uint32_t collision_pairs_source_free = 0;

  /// Set iff this contract's analysis failed; see ErrorRecord. A fault that
  /// retries absorbed leaves no trace here — the report is bit-identical to
  /// a fault-free run's.
  std::optional<ErrorRecord> error;

  bool quarantined() const noexcept { return error.has_value(); }

  /// Field-for-field equality — the cache on/off and threads=1 vs N
  /// bit-identity tests compare entire reports with this.
  friend bool operator==(const ContractAnalysis&,
                         const ContractAnalysis&) = default;
};

/// Telemetry knobs for one pipeline. Latency histograms are on by default —
/// their hot-path cost is a few relaxed atomic ops per contract/RPC and the
/// default landscape report prints the percentile section from them. Span
/// tracing only activates when an export path is set: rings cost memory per
/// recording thread, and a trace nobody writes out observes nothing.
struct TelemetryConfig {
  /// Master switch. Off, every instrumentation point in the pipeline reduces
  /// to a null-pointer branch (measured by bench_telemetry_overhead); the
  /// landscape latency section is omitted.
  bool enabled = true;
  /// Chrome trace_event JSON output (Perfetto / chrome://tracing loadable).
  /// Non-empty = record spans during run() and write the file at run exit.
  std::string trace_path;
  /// NDJSON span log (one JSON object per line), same gating as trace_path.
  std::string events_path;
  /// Record per-contract spans only for every n-th sweep index (1 = all).
  /// Histograms are never sampled — percentiles stay exact over the
  /// population; sampling only thins the trace timeline.
  std::size_t sample_every_n = 1;
  /// Tracer-level span sampling: keep only every n-th span per recording
  /// thread (1 = all, the default). Unlike sample_every_n (which selects
  /// whole contracts), this thins every span family — phases, per-contract,
  /// and rpc:* spans — and the sampled-out spans skip clock reads and
  /// argument formatting entirely (the PR-3 tracing-overhead fix). The
  /// first span per thread is always kept.
  std::size_t span_sample_every_n = 1;
  /// Completed spans retained per recording thread before the ring wraps.
  std::size_t trace_ring_capacity = 1 << 15;
  /// Monotonic nanosecond clock for spans and latency stopwatches; empty =
  /// std::chrono::steady_clock. Tests inject a fake for deterministic
  /// traces (the PR-2 testable-time convention).
  obs::TraceClock clock;
  /// Keep the span tracer alive without any file export, so a live /spans
  /// endpoint can drain the rings mid-run (the introspection plane's use).
  bool live_spans = false;
  /// Span timestamps from a TLS-cached coarse clock: one real clock read
  /// amortized over ~32 spans instead of two per span. The cheap-tracing
  /// mode for always-on serving; timestamps stay monotonic per thread but
  /// gain up to ~32-span granularity. Only affects the default steady
  /// clock; an injected `clock` stays exact.
  bool coarse_clock = false;
  /// Structured event sink (borrowed; must outlive the pipeline). When set,
  /// operational events — run start/end, quarantines, breaker transitions —
  /// are emitted here instead of being invisible. Null = no events.
  obs::EventLog* event_log = nullptr;
  /// Live progress block for /healthz (borrowed; must outlive the
  /// pipeline). When set, the pipeline publishes phase transitions and
  /// contract progress into it as the sweep runs. Null = no publishing.
  obs::SweepStatus* status = nullptr;
};

struct PipelineConfig {
  unsigned threads = 0;             // pool size; 0 = hardware_concurrency
  bool dedup_by_code_hash = true;   // §6.1's re-analysis avoidance
  bool detect_collisions = true;
  bool find_logic_history = true;
  /// §7.1: "we assign the source code of a contract to all other contracts
  /// with the same bytecode hash" — lets clones of one verified contract be
  /// analyzed in source mode.
  bool propagate_source_by_code_hash = true;
  /// Re-probe DELEGATECALL-bearing non-proxies with tx-harvested selectors
  /// to catch EIP-2535 diamonds (§8.2 future work, implemented).
  bool probe_diamonds = false;
  /// Memoize across stages AND across runs of the same pipeline everything
  /// that is a pure function of immutable chain state: per-bytecode
  /// artifacts (disassembly, selectors, storage profiles), per-address code
  /// blobs, and proxy verdicts keyed by (code hash, analyzed address).
  /// Pair collision outcomes are always per-run — they depend on run-local
  /// donor resolution and live proxy storage. Results are bit-identical
  /// either way; off reproduces the seed's recompute-everything behavior
  /// for ablations.
  bool use_analysis_cache = true;
  /// Lock stripes for the analysis/pair caches (clamped to >= 1).
  unsigned cache_shards = 16;

  // ---- fault tolerance --------------------------------------------------
  /// External archive backend (a FaultInjectingArchiveNode in tests, a real
  /// RPC client in production). Null = the in-process facade over `chain`.
  /// The pointee must outlive the pipeline; it is wrapped in the retry /
  /// circuit-breaker layer below unless enable_retries is false.
  chain::IArchiveNode* archive_node = nullptr;
  /// Wrap the backend in ResilientArchiveNode (retry + breaker). Off, every
  /// RpcError immediately quarantines its contract (kRpcTransient).
  bool enable_retries = true;
  /// Wrap the archive stack in a CoalescingArchiveNode (outermost layer):
  /// identical (account, slot, height) probes dedup in flight, and sealed
  /// observations answer interval-covered probes from cache. Results are
  /// bit-identical either way (tested); off reproduces the raw probe volume
  /// for ablations. The cache is dropped by shed_cross_run_state().
  bool coalesce_archive_reads = true;
  /// Lock shards of the coalescer's slot-timeline cache (clamped to >= 1).
  unsigned coalescer_shards = 16;
  /// Backoff shape for retried archive RPCs.
  util::RetryPolicy retry{};
  /// Per-backend circuit breaker (trips on consecutive failures, half-opens
  /// on a probe after its cooldown). Reset at each run()/resume() entry.
  util::CircuitBreakerConfig breaker{};
  /// Wall-clock budget per contract in the pair phase; 0 = unlimited. A
  /// contract exceeding it quarantines as kEmulationLimit at the next
  /// cooperative checkpoint (between logic targets / history steps).
  double contract_wall_budget_ms = 0.0;
  /// Interpreter step fuse for proxy-detection emulation (adversarial
  /// bytecode — infinite loops, unbounded recursion — halts here).
  std::uint64_t emulation_step_limit = 200'000;

  // ---- static triage tier -----------------------------------------------
  /// CFG recovery + DELEGATECALL provenance before phase-2 emulation:
  /// statically-dead DELEGATECALL and byte-exact EIP-1167 blobs skip
  /// emulation (only on a proof of equivalence — verdicts are bit-identical
  /// either way, tested), and with cross_check every emulated contract's
  /// verdict is audited against the static claims (mismatches surface in
  /// LandscapeStats / the text report). Both default on.
  /// infer_layout additionally recovers per-contract storage layouts from
  /// bytecode (static slots, mapping/array slot families, packed members):
  /// the collision phase then compares slot families even for pairs with no
  /// verified source (the source-free mode), and reliable layouts arm the
  /// kMismatchLayout* cross-check bits.
  static_analysis::StaticTierConfig static_tier{
      .enabled = true, .cross_check = true, .infer_layout = true};

  // ---- observability ----------------------------------------------------
  TelemetryConfig telemetry{};
};

struct LandscapeStats {
  std::uint64_t total_contracts = 0;
  std::uint64_t proxies = 0;
  std::uint64_t emulation_errors = 0;
  std::uint64_t hidden_proxies = 0;  // no source AND no tx (the novel set)
  std::uint64_t unique_proxy_codehashes = 0;
  std::uint64_t function_collisions = 0;
  std::uint64_t storage_collisions = 0;
  std::uint64_t exploitable_storage_collisions = 0;

  std::uint64_t diamonds_recovered = 0;  // via the §8.2 extension

  std::map<ProxyStandard, std::uint64_t> by_standard;          // Table 4
  std::map<int, std::uint64_t> proxies_by_year;                // Fig 4 feed
  std::map<int, std::uint64_t> function_collisions_by_year;    // Table 3
  std::map<int, std::uint64_t> storage_collisions_by_year;     // Table 3
  /// Pair counts keyed by (proxy_has_source, logic_has_source) — Figure 4.
  std::map<std::pair<bool, bool>, std::uint64_t> pairs_by_source;
  /// Upgrade-count histogram (upgrades -> proxies) — Figure 6.
  std::map<std::uint64_t, std::uint64_t> upgrade_histogram;
  std::uint64_t total_upgrade_events = 0;

  std::uint64_t get_storage_at_calls = 0;
  double ms_per_contract = 0.0;

  // ---- durable sharded sweep accounting (zero for monolithic run()) -----
  /// Shards the durable driver ran (or replayed) to produce these stats.
  std::uint64_t sweep_shards = 0;
  /// Contracts whose reports were replayed from the checkpoint journal
  /// instead of being recomputed (resume / incremental modes).
  std::uint64_t journal_replayed = 0;
  /// Contracts the incremental mode re-analyzed because their
  /// (code hash, implementation-slot head) fingerprint changed.
  std::uint64_t incremental_reanalyzed = 0;
  /// 1 when the durable driver lost its disk mid-sweep (ENOSPC/persistent
  /// write or fsync failure) and finished in in-memory degraded mode:
  /// verdicts are complete and correct, but nothing past the last good
  /// shard commit is checkpointed.
  std::uint64_t sweep_degraded = 0;
  /// Corrupt journal regions (bit rot) detected during replay and healed
  /// by recomputing exactly the records they destroyed.
  std::uint64_t selfheal_shards = 0;

  // ---- fault / coverage accounting --------------------------------------
  /// Contracts whose reports carry an ErrorRecord (excluded from the
  /// aggregates above: the sweep's coverage is partial until resume()
  /// clears them).
  std::uint64_t quarantined = 0;
  /// total_contracts - quarantined.
  std::uint64_t analyzed_contracts = 0;
  /// Failure taxonomy over quarantine records PLUS deterministic emulation
  /// step-limit halts (kEmulationLimit counts both).
  std::map<ErrorKind, std::uint64_t> errors_by_kind;
  /// Resilience-layer counters for the pipeline's backend (zero when
  /// enable_retries is false).
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_faults = 0;
  std::uint64_t rpc_giveups = 0;
  std::uint64_t breaker_trips = 0;

  // ---- perf accounting for the last run ---------------------------------
  /// Wall-clock per phase: code fetch + hashing, proxy detection (Phase A),
  /// logic history + pair collision checks (Phase B).
  double phase_fetch_ms = 0.0;
  double phase_proxy_ms = 0.0;
  double phase_pairs_ms = 0.0;
  /// Artifact-cache effectiveness (all zeros when the cache is disabled).
  AnalysisCacheStats cache;
  /// Proxy/logic pair outcome cache: hits reuse a finished pair result,
  /// waits blocked on another worker's in-flight computation of the same
  /// pair (the seed recomputed in that race).
  std::uint64_t pair_cache_hits = 0;
  std::uint64_t pair_cache_misses = 0;
  std::uint64_t pair_cache_waits = 0;

  // ---- static triage tier (all-zero when static_tier.enabled is false) --
  /// Unique blobs triaged per outcome. *_skipped_* blobs paid zero
  /// emulation steps; static_emulated went through the full probe.
  std::uint64_t static_skipped_absent = 0;   // no DELEGATECALL opcode
  std::uint64_t static_skipped_dead = 0;     // provably-dead DELEGATECALL
  std::uint64_t static_skipped_minimal = 0;  // byte-exact EIP-1167
  std::uint64_t static_emulated = 0;
  /// Emulated blobs whose static claims the emulation contradicted
  /// (cross_check only; an always-zero invariant on sound corpora).
  std::uint64_t static_mismatches = 0;
  /// Mismatch taxonomy keyed by the kMismatch* bit value.
  std::map<std::uint8_t, std::uint64_t> static_mismatch_bits;

  // ---- storage-layout inference (zero when infer_layout is false) -------
  /// Unique blobs for which a bytecode storage layout was inferred, and the
  /// subset whose layout was reliable() (complete CFG, every access
  /// resolved) and therefore armed the kMismatchLayout* oracle.
  std::uint64_t layout_inferred = 0;
  std::uint64_t layout_reliable = 0;
  /// Proxy/logic pairs whose slot families were compared, and the subset
  /// that ran source-free (bytecode-inferred layouts, no sourcemeta).
  std::uint64_t collision_pairs_family_checked = 0;
  std::uint64_t collision_pairs_source_free = 0;
  /// Contracts with at least one slot-family collision.
  std::uint64_t family_collisions = 0;

  // ---- latency distributions (telemetry; all-zero when disabled) --------
  /// Phase-B wall time per contract, nanoseconds (count = contracts that
  /// went through the pair phase this run, excluding resume carry-overs).
  obs::HistogramSummary contract_latency_ns;
  /// Per-RPC-attempt latency, nanoseconds — each retry is its own sample,
  /// matching §6.1's call-level accounting.
  obs::HistogramSummary rpc_latency_ns;
  /// Interpreter steps per phase-2 probe emulation (one sample per
  /// DELEGATECALL-bearing unique blob).
  obs::HistogramSummary emulation_steps;
  /// Span tracer accounting for the last run (zero unless an export path
  /// was configured).
  std::uint64_t trace_spans_recorded = 0;
  std::uint64_t trace_spans_dropped = 0;
};

class AnalysisPipeline {
 public:
  AnalysisPipeline(chain::Blockchain& chain,
                   const sourcemeta::SourceRepository* sources,
                   PipelineConfig config = {});
  ~AnalysisPipeline();

  /// Analyzes every input contract; returns per-contract reports in input
  /// order. The worker pool and the content-keyed caches persist across
  /// calls, so repeat sweeps over overlapping populations run warm; results
  /// assume the chain was not mutated between runs (the same assumption the
  /// per-run dedup already made).
  ///
  /// Fault containment: a contract whose analysis fails (RPC exhausted,
  /// watchdog, internal error) is returned with `error` set rather than
  /// aborting the run; see resume().
  ///
  /// Concurrency contract: the parallelism lives *inside* a run (the pool
  /// reads the chain concurrently, which must therefore be read-safe).
  /// run(), resume(), and summarize() must be EXTERNALLY SERIALIZED per
  /// pipeline instance — concurrent calls on one AnalysisPipeline race on
  /// the per-run pair memo, the run-scoped histograms, and the timing
  /// fields. Debug builds enforce this with a re-entrancy guard (assert);
  /// release builds do not check. Distinct AnalysisPipeline instances are
  /// independent and may run concurrently over a read-safe chain.
  std::vector<ContractAnalysis> run(const std::vector<SweepInput>& inputs);

  /// Checkpoint/resume: retries only the quarantined contracts of a prior
  /// run over the same `inputs`, patching `reports` in place. Healthy
  /// reports are carried over untouched — except contracts sharing a code
  /// hash with a quarantined one, which are recomputed so dedup metadata
  /// (representative choice, probe seeding) converges to exactly what a
  /// fault-free run over the full population produces. The breaker is reset
  /// on entry (the caller is asserting the backend recovered). Returns the
  /// number of contracts still quarantined.
  std::size_t resume(const std::vector<SweepInput>& inputs,
                     std::vector<ContractAnalysis>& reports);

  /// Aggregates reports into the landscape statistics. Quarantined reports
  /// count toward `quarantined` / `errors_by_kind` only. Same external-
  /// serialization contract as run() — it reads the run-scoped counters.
  LandscapeStats summarize(const std::vector<ContractAnalysis>& reports) const;

  /// Copies the pipeline-scoped perf/coverage fields of the LAST run into
  /// `stats`: phase wall times, cache + pair-memo counters, resilience
  /// totals, RPC call counts, latency histogram summaries, and tracer
  /// accounting. summarize() = LandscapeAccumulator over the reports + this.
  /// Exposed for the durable sharded driver, which aggregates reports
  /// incrementally across shards and only needs the annotation step.
  void annotate_run_stats(LandscapeStats& stats) const;

  /// Drops every cross-run memo keyed per address or per code hash — the
  /// address->blob map, the (code hash, address) verdict memo, and the
  /// artifact cache entries — so peak memory tracks the working set instead
  /// of the population. The sharded driver calls this between shards; with
  /// code-hash-affine shards the dropped state would not have hit again
  /// anyway. Requires quiescence (no run in flight). Results are unaffected:
  /// these are pure caches.
  void shed_cross_run_state();

  /// Pre-seeds the cross-run verdict memo with a known-good ProxyReport for
  /// (code_hash, representative). The incremental sweep uses this to skip
  /// Phase A emulation for journaled contracts whose bytecode did not
  /// change; the caller must patch slot-read fields (logic_address) to the
  /// current chain head first, exactly as Phase B's dedup re-read would.
  /// No-op (returns false) when dedup or the analysis cache is off.
  bool seed_verdict(const crypto::Hash256& code_hash,
                    const Address& representative, const ProxyReport& report);

  /// Replaces the run-local §7.1 source-donor map with a caller-provided
  /// one for subsequent runs (empty map = back to run-local construction).
  /// The sharded driver passes the whole-population donor map so a shard
  /// containing a clone still resolves the same donor a monolithic run
  /// would, keeping sharded results bit-identical to unsharded ones.
  void set_source_donor_overlay(
      std::vector<std::pair<crypto::Hash256, Address>> donors);

  /// The artifact cache (null when config.use_analysis_cache is false).
  /// Exposed for benches/tests that inspect hit/miss accounting.
  AnalysisCache* analysis_cache() noexcept { return cache_.get(); }

  /// The resilience wrapper around the backend (null when enable_retries is
  /// false). Exposed for tests/benches inspecting retry accounting.
  const chain::ResilientArchiveNode* resilient_node() const noexcept {
    return resilient_.get();
  }

  /// The coalescing layer (null when coalesce_archive_reads is false).
  /// Exposed for tests/benches inspecting hit/miss accounting.
  const chain::CoalescingArchiveNode* coalescing_node() const noexcept {
    return coalescer_.get();
  }

  /// This pipeline's metric registry (per-instance, distinct from
  /// obs::Registry::global()): the sweep histograms plus end-of-run gauge
  /// snapshots of the cache/resilience totals. Exposed for benches that dump
  /// a full snapshot into BENCH_results.json.
  const obs::Registry& registry() const noexcept { return registry_; }

  /// The span tracer (null unless telemetry.enabled and an export path was
  /// configured). Exposed for tests asserting on recorded spans directly.
  const obs::Tracer* tracer() const noexcept { return tracer_.get(); }

 private:
  /// Outcome of one proxy/logic pair's collision checks (memoized by the
  /// concatenated code-hash pair key).
  struct PairOutcome {
    bool function_collision = false;
    bool storage_collision = false;
    bool storage_exploitable = false;
    bool family_collision = false;
    bool family_checked = false;
    bool family_source_free = false;
  };
  /// One account's code blob, fetched and hashed exactly once per distinct
  /// address — however many sweep inputs or proxy/logic pairs touch it.
  struct CodeBlob {
    evm::Bytes code;
    crypto::Hash256 hash{};
    std::string key;
  };
  using CodeBlobMap =
      StripedOnceMap<Address, std::shared_ptr<const CodeBlob>,
                     evm::AddressHasher>;

  /// The sweep body. `prior` non-null = resume semantics (recompute only
  /// quarantined contracts and their code-hash siblings).
  std::vector<ContractAnalysis> run_internal(
      const std::vector<SweepInput>& inputs,
      const std::vector<ContractAnalysis>* prior);

  util::ThreadPool& pool();
  /// The backend every archive RPC goes through. Decorator stack, outermost
  /// first: coalescing (probe dedup + interval cache; its hits never touch
  /// the layers below, so retries/tracing/counters only see true backend
  /// probes) -> resilient (retry/breaker) -> tracing (per-attempt
  /// latency/spans) -> raw backend; each layer is present only when
  /// configured.
  const chain::IArchiveNode& rpc() const noexcept {
    if (coalescer_) return *coalescer_;
    if (resilient_) return *resilient_;
    if (tracing_node_) return *tracing_node_;
    return *backend_;
  }

  chain::Blockchain& chain_;
  chain::ArchiveNode node_;
  chain::IArchiveNode* backend_ = nullptr;  // config override or &node_
  std::unique_ptr<chain::TracingArchiveNode> tracing_node_;
  std::unique_ptr<chain::ResilientArchiveNode> resilient_;
  std::unique_ptr<chain::CoalescingArchiveNode> coalescer_;
  const sourcemeta::SourceRepository* sources_;
  PipelineConfig config_;

  // ---- telemetry --------------------------------------------------------
  /// Resolved span/stopwatch clock (config override or steady_clock).
  obs::TraceClock clock_;
  /// Per-pipeline registry; the sweep histograms live here so concurrent
  /// pipelines don't interleave samples (process-wide counters stay in
  /// obs::Registry::global()).
  obs::Registry registry_;
  /// Borrowed from registry_ at construction; null when telemetry is
  /// disabled — every record site branches on that (the disabled-overhead
  /// contract).
  obs::Histogram* h_contract_ = nullptr;
  obs::Histogram* h_rpc_ = nullptr;
  obs::Histogram* h_steps_ = nullptr;
  /// Contracts completed, cumulative across runs — the exporter derives the
  /// headline `contracts_per_s` rate from this counter's deltas.
  obs::Counter* c_contracts_ = nullptr;
  /// Non-null when an export path is configured or live_spans is on.
  std::unique_ptr<obs::Tracer> tracer_;

  std::unique_ptr<AnalysisCache> cache_;  // null when disabled
  std::unique_ptr<util::ThreadPool> pool_;  // created lazily on first run
  /// Cross-run proxy-verdict memo, keyed by (code hash, representative
  /// address) — a verdict is only reusable at the exact address it was
  /// computed for (address-seeded probe selector, slot reads). Only
  /// consulted when dedup is on — with dedup off every clone must genuinely
  /// re-run, that's the ablation.
  std::unique_ptr<StripedOnceMap<std::string, ProxyReport>> verdict_cache_;
  /// Per-run pair-outcome memo with in-flight markers, rebuilt at the start
  /// of every run() (outcomes depend on run-local donor resolution and live
  /// proxy storage, so they must not leak across runs).
  std::unique_ptr<StripedOnceMap<std::string, PairOutcome>> pair_cache_;
  /// Cross-run address -> (code, hash, key) memo. Deployed code is immutable
  /// on-chain, so a warm sweep skips the whole fetch+keccak phase; like the
  /// verdict/pair memos it assumes the chain is not mutated between runs
  /// (only kept when the analysis cache is enabled).
  std::unique_ptr<CodeBlobMap> blob_cache_;

  /// §7.1 donor overlay (code-hash key -> donor address); empty = build the
  /// donor map run-locally from the inputs, the monolithic default.
  std::unordered_map<std::string, Address> donor_overlay_;

  /// Debug-only re-entrancy guard for the external-serialization contract
  /// (run/resume/summarize must not overlap on one instance). mutable so
  /// the const summarize() can participate.
  mutable std::atomic<bool> busy_{false};

  double last_run_ms_ = 0.0;
  double last_fetch_ms_ = 0.0;
  double last_proxy_ms_ = 0.0;
  double last_pairs_ms_ = 0.0;
  std::uint64_t last_pair_hits_ = 0;
  std::uint64_t last_pair_misses_ = 0;
  std::uint64_t last_pair_waits_ = 0;
  /// Static-tier totals over the last run's unique blobs (gauge mirrors).
  std::uint64_t last_static_skips_ = 0;
  std::uint64_t last_static_mismatches_ = 0;
  /// Layout-inference totals over the last run (gauge mirrors).
  std::uint64_t last_layout_inferred_ = 0;
  std::uint64_t last_layout_reliable_ = 0;
  std::uint64_t last_source_free_pairs_ = 0;
};

}  // namespace proxion::core
