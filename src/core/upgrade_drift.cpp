#include "core/upgrade_drift.h"

namespace proxion::core {

UpgradeDriftResult UpgradeDriftDetector::analyze(const Address& /*proxy*/,
                                                 const LogicHistory& history) {
  UpgradeDriftResult result;
  if (history.logic_addresses.size() < 2) return result;

  std::vector<StorageProfile> profiles;
  profiles.reserve(history.logic_addresses.size());
  for (const Address& logic : history.logic_addresses) {
    profiles.push_back(profile_storage(state_.get_code(logic)));
  }

  for (std::size_t v = 0; v + 1 < profiles.size(); ++v) {
    const StorageProfile& old_profile = profiles[v];
    const StorageProfile& new_profile = profiles[v + 1];
    for (const evm::U256& slot : old_profile.slots()) {
      const auto old_ranges = old_profile.ranges_of(slot);
      const auto new_ranges = new_profile.ranges_of(slot);
      if (new_ranges.empty()) continue;  // slot abandoned: stale, not drift

      // Drift: a byte range the new version uses overlaps an old range but
      // is typed differently.
      for (const auto& old_range : old_ranges) {
        for (const auto& new_range : new_ranges) {
          const bool overlap =
              old_range.first < new_range.first + new_range.second &&
              new_range.first < old_range.first + old_range.second;
          if (!overlap || old_range == new_range) continue;

          DriftFinding finding;
          finding.from_version = v;
          finding.to_version = v + 1;
          finding.slot = slot;
          finding.old_offset = old_range.first;
          finding.old_width = old_range.second;
          finding.new_offset = new_range.first;
          finding.new_width = new_range.second;
          for (const StorageAccess& access : old_profile.accesses) {
            if (access.slot == slot && access.is_write &&
                access.offset == old_range.first &&
                access.width == old_range.second) {
              finding.old_version_wrote = true;
            }
          }
          result.findings.push_back(finding);
        }
      }
    }
  }
  return result;
}

}  // namespace proxion::core
