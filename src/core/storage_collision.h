// Storage-collision detection (§5.2), after CRUSH: profile both contracts'
// storage accesses (slots, inferred widths, guards), compare the layouts
// slot-by-slot, and for each type mismatch on a *sensitive* slot attempt a
// concrete exploit: drive the logic contract's functions through the proxy's
// fallback inside a state overlay and observe whether the sensitive slot is
// overwritten with attacker-derived data.
//
// Substitution note (DESIGN.md): CRUSH proves path feasibility symbolically;
// we approximate it concretely by attempting the exploit both from the
// current chain state and from a state where the colliding slot is zeroed
// (a state the slot provably had when the contract was fresh).
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis_cache.h"
#include "core/storage_profile.h"
#include "evm/host.h"
#include "evm/types.h"

namespace proxion::core {

using evm::Address;
using evm::BytesView;
using evm::U256;

struct StorageCollisionFinding {
  U256 slot;
  std::uint8_t proxy_width = 32;
  std::uint8_t logic_width = 32;
  /// Byte offsets (Solidity packing) of the conflicting accesses.
  std::uint8_t proxy_offset = 0;
  std::uint8_t logic_offset = 0;
  bool sensitive = false;     // slot feeds an access-control decision
  bool exploitable = false;   // sensitive + an unguarded colliding write path
  bool verified = false;      // concrete exploit succeeded in the overlay
  /// §2.3 (Audius): the exploit transaction can be replayed — the collision
  /// breaks the "only once" guard itself, so e.g. initialize() re-runs and
  /// ownership can be reassigned repeatedly.
  bool repeatable = false;
  std::uint32_t exploit_selector = 0;  // logic function that performed it
};

struct StorageCollisionResult {
  std::vector<StorageCollisionFinding> findings;
  StorageProfile proxy_profile;
  StorageProfile logic_profile;

  bool has_collision() const noexcept { return !findings.empty(); }
  bool has_verified_exploit() const noexcept {
    for (const auto& f : findings) {
      if (f.verified) return true;
    }
    return false;
  }
};

struct StorageCollisionConfig {
  bool attempt_verification = true;
  std::size_t max_probe_functions = 16;  // logic selectors tried per finding
  std::uint64_t emulation_gas = 5'000'000;
};

class StorageCollisionDetector {
 public:
  /// `cache` may be null (standalone use — profiles and probe selectors are
  /// recomputed per call).
  explicit StorageCollisionDetector(evm::Host& state,
                                    StorageCollisionConfig config = {},
                                    AnalysisCache* cache = nullptr)
      : state_(state), config_(config), cache_(cache) {}

  StorageCollisionResult detect(const Address& proxy, BytesView proxy_code,
                                const Address& logic,
                                BytesView logic_code) const;

  /// Cache-keyed variant: hashes (when non-null) key the memoized storage
  /// profiles and the logic's probe-selector list.
  StorageCollisionResult detect(const Address& proxy, BytesView proxy_code,
                                const crypto::Hash256* proxy_hash,
                                const Address& logic, BytesView logic_code,
                                const crypto::Hash256* logic_hash) const;

 private:
  bool verify_exploit(const Address& proxy, BytesView proxy_code,
                      const Address& logic, BytesView logic_code,
                      const std::vector<std::uint32_t>& logic_selectors,
                      StorageCollisionFinding& finding) const;

  evm::Host& state_;
  StorageCollisionConfig config_;
  AnalysisCache* cache_;
};

}  // namespace proxion::core
