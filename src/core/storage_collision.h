// Storage-collision detection (§5.2), after CRUSH: profile both contracts'
// storage accesses (slots, inferred widths, guards), compare the layouts
// slot-by-slot, and for each type mismatch on a *sensitive* slot attempt a
// concrete exploit: drive the logic contract's functions through the proxy's
// fallback inside a state overlay and observe whether the sensitive slot is
// overwritten with attacker-derived data.
//
// Substitution note (DESIGN.md): CRUSH proves path feasibility symbolically;
// we approximate it concretely by attempting the exploit both from the
// current chain state and from a state where the colliding slot is zeroed
// (a state the slot provably had when the contract was fresh).
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis_cache.h"
#include "core/storage_profile.h"
#include "evm/host.h"
#include "evm/types.h"
#include "sourcemeta/source.h"
#include "static/layout.h"

namespace proxion::core {

using evm::Address;
using evm::BytesView;
using evm::U256;

struct StorageCollisionFinding {
  U256 slot;
  std::uint8_t proxy_width = 32;
  std::uint8_t logic_width = 32;
  /// Byte offsets (Solidity packing) of the conflicting accesses.
  std::uint8_t proxy_offset = 0;
  std::uint8_t logic_offset = 0;
  bool sensitive = false;     // slot feeds an access-control decision
  bool exploitable = false;   // sensitive + an unguarded colliding write path
  bool verified = false;      // concrete exploit succeeded in the overlay
  /// §2.3 (Audius): the exploit transaction can be replayed — the collision
  /// breaks the "only once" guard itself, so e.g. initialize() re-runs and
  /// ownership can be reassigned repeatedly.
  bool repeatable = false;
  std::uint32_t exploit_selector = 0;  // logic function that performed it
};

/// One typed view of a keccak-derived slot family, normalized so declared
/// (sourcemeta) and inferred (static/layout.h) families compare through the
/// same code path — bit-identical verdicts regardless of where the layout
/// came from is the source-free mode's core contract.
struct FamilyView {
  U256 base_slot;
  std::uint8_t depth = 1;
  std::uint8_t path = 0;  // bit (level-1): 1 = mapping, 0 = array
  std::uint8_t value_offset = 0;
  std::uint8_t value_width = 32;

  bool same_identity(const FamilyView& o) const noexcept {
    return base_slot == o.base_slot && depth == o.depth && path == o.path;
  }
  friend bool operator==(const FamilyView&, const FamilyView&) = default;
};

/// A collision between two contracts' views of the *same* slot family: both
/// derive element slots from the same base via the same keccak shape, but
/// type the element value differently (the mapping analogue of a static-slot
/// width/offset disagreement).
struct FamilyCollisionFinding {
  U256 base_slot;
  std::uint8_t depth = 1;
  std::uint8_t path = 0;
  std::uint8_t proxy_offset = 0;
  std::uint8_t proxy_width = 32;
  std::uint8_t logic_offset = 0;
  std::uint8_t logic_width = 32;

  friend bool operator==(const FamilyCollisionFinding&,
                         const FamilyCollisionFinding&) = default;
};

struct StorageCollisionResult {
  std::vector<StorageCollisionFinding> findings;
  StorageProfile proxy_profile;
  StorageProfile logic_profile;

  /// Family-by-family comparison ran (config.compare_families)...
  bool family_checked = false;
  /// ...and used bytecode-inferred layouts because sourcemeta had no record
  /// for the pair (the source-free mode).
  bool family_source_free = false;
  std::vector<FamilyCollisionFinding> family_findings;

  bool has_collision() const noexcept { return !findings.empty(); }
  bool has_family_collision() const noexcept {
    return !family_findings.empty();
  }
  bool has_verified_exploit() const noexcept {
    for (const auto& f : findings) {
      if (f.verified) return true;
    }
    return false;
  }
};

struct StorageCollisionConfig {
  bool attempt_verification = true;
  std::size_t max_probe_functions = 16;  // logic selectors tried per finding
  std::uint64_t emulation_gas = 5'000'000;
  /// Compare mapping/array slot families in addition to static slots:
  /// declared layouts when sourcemeta has the pair, bytecode-inferred
  /// layouts otherwise (the source-free mode). Off by default for standalone
  /// detector use; the pipeline turns it on with static_tier.infer_layout.
  bool compare_families = false;
};

class StorageCollisionDetector {
 public:
  /// `cache` may be null (standalone use — profiles and probe selectors are
  /// recomputed per call). `sources` (may be null) supplies declared layouts
  /// for the family comparison; without it (or without records for the
  /// pair), compare_families falls back to bytecode-inferred layouts.
  explicit StorageCollisionDetector(
      evm::Host& state, StorageCollisionConfig config = {},
      AnalysisCache* cache = nullptr,
      const sourcemeta::SourceRepository* sources = nullptr)
      : state_(state), config_(config), cache_(cache), sources_(sources) {}

  StorageCollisionResult detect(const Address& proxy, BytesView proxy_code,
                                const Address& logic,
                                BytesView logic_code) const;

  /// Cache-keyed variant: hashes (when non-null) key the memoized storage
  /// profiles, inferred layouts, and the logic's probe-selector list.
  /// `proxy_source_lookup`/`logic_source_lookup` (when non-null) are the
  /// addresses to query sourcemeta with — the pipeline passes §7.1 donor
  /// addresses so same-bytecode clones of verified contracts count as
  /// verified; null falls back to `proxy`/`logic` themselves.
  StorageCollisionResult detect(const Address& proxy, BytesView proxy_code,
                                const crypto::Hash256* proxy_hash,
                                const Address& logic, BytesView logic_code,
                                const crypto::Hash256* logic_hash,
                                const Address* proxy_source_lookup = nullptr,
                                const Address* logic_source_lookup = nullptr)
      const;

  /// Declared-layout families of a source record (mapping / dynamic-array
  /// declarations), normalized to FamilyViews. Exposed for tests.
  static std::vector<FamilyView> declared_families(
      const sourcemeta::SourceRecord& record);
  /// Inferred-layout families, normalized to FamilyViews. Exposed for tests.
  static std::vector<FamilyView> inferred_families(
      const static_analysis::StorageLayout& layout);

 private:
  bool verify_exploit(const Address& proxy, BytesView proxy_code,
                      const Address& logic, BytesView logic_code,
                      const std::vector<std::uint32_t>& logic_selectors,
                      StorageCollisionFinding& finding) const;

  void compare_family_layouts(const Address& proxy_lookup,
                              BytesView proxy_code,
                              const crypto::Hash256* proxy_hash,
                              const Address& logic_lookup,
                              BytesView logic_code,
                              const crypto::Hash256* logic_hash,
                              StorageCollisionResult& result) const;

  evm::Host& state_;
  StorageCollisionConfig config_;
  AnalysisCache* cache_;
  const sourcemeta::SourceRepository* sources_;
};

}  // namespace proxion::core
