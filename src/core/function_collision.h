// Function-collision detection (§5.1). For a proxy/logic pair the detector
// compares the two contracts' function-selector sets; any intersection means
// calls meant for the logic contract are silently captured by the proxy
// (Listing 1's honeypot). Selector sets come from verified source when
// available (the Slither path) and from dispatcher-pattern extraction over
// the bytecode otherwise — the paper's novel no-source mode.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis_cache.h"
#include "evm/types.h"
#include "sourcemeta/source.h"

namespace proxion::core {

using evm::Address;
using evm::BytesView;

enum class CollisionMode : std::uint8_t {
  kSourceSource,      // both sides had verified source
  kMixed,             // one side from source, one from bytecode
  kBytecodeBytecode,  // both sides from bytecode (the novel coverage)
};

struct FunctionCollisionResult {
  CollisionMode mode = CollisionMode::kBytecodeBytecode;
  std::vector<std::uint32_t> colliding_selectors;
  std::vector<std::uint32_t> proxy_selectors;
  std::vector<std::uint32_t> logic_selectors;

  bool has_collision() const noexcept { return !colliding_selectors.empty(); }
};

class FunctionCollisionDetector {
 public:
  /// `sources` may be null (pure bytecode mode); `cache` may be null
  /// (standalone use — selector extraction runs per call).
  explicit FunctionCollisionDetector(
      const sourcemeta::SourceRepository* sources = nullptr,
      AnalysisCache* cache = nullptr)
      : sources_(sources), cache_(cache) {}

  FunctionCollisionResult detect(const Address& proxy, BytesView proxy_code,
                                 const Address& logic,
                                 BytesView logic_code) const;

  /// Cache-keyed variant: hashes (when non-null) key the memoized selector
  /// lists, so the sweep never re-extracts a blob it has seen before.
  FunctionCollisionResult detect(const Address& proxy, BytesView proxy_code,
                                 const crypto::Hash256* proxy_hash,
                                 const Address& logic, BytesView logic_code,
                                 const crypto::Hash256* logic_hash) const;

 private:
  std::vector<std::uint32_t> selectors_for(const Address& address,
                                           BytesView code,
                                           const crypto::Hash256* code_hash,
                                           bool& from_source) const;

  const sourcemeta::SourceRepository* sources_;
  AnalysisCache* cache_;
};

}  // namespace proxion::core
