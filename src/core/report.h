// Report rendering for sweep results: a human-readable landscape summary
// (the §7 "findings" shape) and machine-readable CSV series for each figure,
// so downstream tooling can plot Fig 2/4/5/6 without re-running the sweep.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace proxion::core {

/// Streaming aggregation of `ContractAnalysis` reports into `LandscapeStats`.
/// One `add()` per report, in any order, from one thread; `take()` finalizes
/// the derived fields. `AnalysisPipeline::summarize()` is exactly
/// accumulate-over-reports + `annotate_run_stats()`, and the durable sharded
/// sweep feeds the same accumulator one shard at a time so the whole-run
/// aggregates never require the whole-run reports in memory.
class LandscapeAccumulator {
 public:
  void add(const ContractAnalysis& report);
  std::uint64_t added() const noexcept { return stats_.total_contracts; }
  /// Finalizes (analyzed_contracts) and returns the aggregate. The
  /// accumulator is left in a moved-from state; make a fresh one per sweep.
  LandscapeStats take();

 private:
  LandscapeStats stats_;
};

/// Multi-line human-readable summary of a sweep (§7 headline numbers).
std::string render_landscape_text(const LandscapeStats& stats);

/// "year,function_collisions,storage_collisions" rows (Table 3 series).
std::string render_collisions_csv(const LandscapeStats& stats);

/// "standard,count,ratio" rows (Table 4 series).
std::string render_standards_csv(const LandscapeStats& stats);

/// "upgrades,proxies" rows (Figure 6 histogram).
std::string render_upgrades_csv(const LandscapeStats& stats);

/// One-line machine-readable record per analyzed contract:
/// "address,year,verdict,standard,logic,fn_collision,storage_collision".
std::string render_contracts_csv(const std::vector<ContractAnalysis>& reports);

}  // namespace proxion::core
