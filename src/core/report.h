// Report rendering for sweep results: a human-readable landscape summary
// (the §7 "findings" shape) and machine-readable CSV series for each figure,
// so downstream tooling can plot Fig 2/4/5/6 without re-running the sweep.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace proxion::core {

/// Compact serving-plane projection of one ContractAnalysis: everything the
/// /v1 query endpoints answer with, flattened to fixed-size fields so a
/// Snapshot holding millions of rows stays cache-friendly. Extraction is a
/// pure function — two analyses that compare equal yield equal rows, which
/// is what makes the followed query plane's answers bit-comparable to a
/// cold batch sweep's.
struct VerdictRow {
  Address address;
  crypto::Hash256 code_hash{};
  std::int32_t year = 0;
  ProxyVerdict verdict = ProxyVerdict::kNotProxy;
  ProxyStandard standard = ProxyStandard::kNotProxy;
  LogicSource logic_source = LogicSource::kNone;
  Address logic_address;
  U256 logic_slot;
  std::uint64_t upgrade_events = 0;
  bool has_source = false;
  bool has_tx = false;
  /// Proxy with neither source nor transactions — §7's hidden set.
  bool hidden = false;
  bool deduplicated = false;
  bool function_collision = false;
  bool storage_collision = false;
  bool storage_collision_exploitable = false;
  bool family_collision = false;
  bool quarantined = false;
  ErrorKind error_kind = ErrorKind::kInternal;  // meaningful iff quarantined

  friend bool operator==(const VerdictRow&, const VerdictRow&) = default;
};

/// Flattens one report plus its journal fingerprint hash into the row the
/// query plane serves.
VerdictRow extract_verdict(const ContractAnalysis& analysis,
                           const crypto::Hash256& code_hash);

/// Streaming aggregation of `ContractAnalysis` reports into `LandscapeStats`.
/// One `add()` per report, in any order, from one thread; `take()` finalizes
/// the derived fields. `AnalysisPipeline::summarize()` is exactly
/// accumulate-over-reports + `annotate_run_stats()`, and the durable sharded
/// sweep feeds the same accumulator one shard at a time so the whole-run
/// aggregates never require the whole-run reports in memory.
class LandscapeAccumulator {
 public:
  void add(const ContractAnalysis& report);
  std::uint64_t added() const noexcept { return stats_.total_contracts; }
  /// Finalizes (analyzed_contracts) and returns the aggregate. The
  /// accumulator is left in a moved-from state; make a fresh one per sweep.
  LandscapeStats take();

 private:
  LandscapeStats stats_;
};

/// Multi-line human-readable summary of a sweep (§7 headline numbers).
std::string render_landscape_text(const LandscapeStats& stats);

/// "year,function_collisions,storage_collisions" rows (Table 3 series).
std::string render_collisions_csv(const LandscapeStats& stats);

/// "standard,count,ratio" rows (Table 4 series).
std::string render_standards_csv(const LandscapeStats& stats);

/// "upgrades,proxies" rows (Figure 6 histogram).
std::string render_upgrades_csv(const LandscapeStats& stats);

/// One-line machine-readable record per analyzed contract:
/// "address,year,verdict,standard,logic,fn_collision,storage_collision".
std::string render_contracts_csv(const std::vector<ContractAnalysis>& reports);

}  // namespace proxion::core
