// Function-signature extraction from bytecode alone (§5.1). Function
// selectors always follow a PUSH4, but not every PUSH4 payload is a selector
// — the paper's key observation is that *dispatcher* selectors take part in
// a compare-and-jump pattern (PUSH4 ... EQ/GT/LT ... JUMPI), while garbage
// constants do not. Extracting only pattern-matched selectors is what lets
// Proxion detect function collisions with zero false positives (Table 2).
#pragma once

#include <cstdint>
#include <vector>

#include "evm/disassembler.h"

namespace proxion::core {

/// Selectors that participate in the dispatcher pattern, sorted and deduped.
std::vector<std::uint32_t> extract_selectors(const evm::Disassembly& dis);

/// Convenience: disassembles and extracts in one step.
std::vector<std::uint32_t> extract_selectors(evm::BytesView code);

/// The naive strawman from §3.1: every 4-byte immediate after any PUSH4.
/// Kept for the ablation bench that shows why it produces false positives.
std::vector<std::uint32_t> extract_selectors_naive(evm::BytesView code);

}  // namespace proxion::core
