// Finding every logic contract ever associated with a proxy (§4.3,
// Algorithm 1): a binary-partition search over blockchain history that
// queries the archive node's getStorageAt only where the slot value changes,
// needing ~log2(blocks) * upgrades calls instead of one call per block.
// The search runs breadth-first and emits each depth's probe frontier as a
// single get_storage_at_many batch, so the archive decorator stack (retries,
// tracing, coalescing) pays per frontier instead of per endpoint; the probe
// set and resulting LogicHistory are identical to the recursive formulation.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/archive_node.h"
#include "core/proxy_detector.h"
#include "evm/types.h"

namespace proxion::core {

struct LogicHistory {
  /// Every distinct logic address ever stored in the slot, in first-seen
  /// (block) order. Excludes the zero address (uninitialized slot).
  std::vector<Address> logic_addresses;
  /// Number of upgrade events (value transitions between distinct non-zero
  /// addresses) — Figure 6's metric.
  std::uint64_t upgrade_events = 0;
  /// getStorageAt calls this search consumed (§6.1 reports ~26 per proxy).
  std::uint64_t api_calls = 0;

  friend bool operator==(const LogicHistory&, const LogicHistory&) = default;
};

class LogicFinder {
 public:
  explicit LogicFinder(const chain::IArchiveNode& node) : node_(node) {}

  /// Runs Algorithm 1 for the proxy's logic slot between the genesis block
  /// and the latest block. For hard-coded (EIP-1167) proxies the history is
  /// the single embedded address, with zero API calls.
  LogicHistory find(const Address& proxy, const ProxyReport& report) const;

  /// The naive strawman: query every block in range. Used by the ablation
  /// bench to demonstrate Algorithm 1's savings.
  LogicHistory find_naive(const Address& proxy, const U256& slot) const;

 private:
  const chain::IArchiveNode& node_;
};

}  // namespace proxion::core
