#include "core/diamond_probe.h"

#include <algorithm>
#include <unordered_set>

#include "evm/disassembler.h"
#include "evm/interpreter.h"

namespace proxion::core {

namespace {

/// Watches one selector probe for a forwarding DELEGATECALL, as the plain
/// detector does, and records the facet it targets.
class FacetObserver final : public evm::TraceObserver {
 public:
  FacetObserver(const Address& contract, const evm::Bytes& probe)
      : contract_(contract), probe_(probe) {}

  void on_call(evm::CallKind kind, int /*depth*/, const Address& from,
               const Address& to, evm::BytesView calldata) override {
    if (kind != evm::CallKind::kDelegateCall || !(from == contract_)) return;
    const bool forwarded =
        calldata.size() == probe_.size() &&
        std::equal(calldata.begin(), calldata.end(), probe_.begin());
    if (forwarded && !facet_) facet_ = to;
  }

  const std::optional<Address>& facet() const noexcept { return facet_; }

 private:
  Address contract_;
  evm::Bytes probe_;
  std::optional<Address> facet_;
};

}  // namespace

std::vector<std::uint32_t> DiamondProber::harvest_selectors(
    const Address& contract) const {
  std::vector<std::uint32_t> hints;
  std::unordered_set<std::uint32_t> seen;

  // (a) selectors from past transactions that reached the contract — the
  // CRUSH-style harvest the paper proposes in §8.2: external tx calldata
  // first, then internal call edges.
  for (const std::uint32_t s : chain_.external_selectors(contract)) {
    if (seen.insert(s).second) hints.push_back(s);
  }
  for (const chain::InternalTx& tx : chain_.internal_txs()) {
    if (tx.to == contract && seen.insert(tx.selector).second) {
      hints.push_back(tx.selector);
    }
  }

  // (b) PUSH4 candidates in the contract's own bytecode: registered facet
  // selectors often appear in the diamondCut bookkeeping code.
  const evm::Bytes code = chain_.get_code(contract);
  std::vector<std::uint32_t> push4;
  if (cache_ != nullptr) {
    push4 = cache_->disassembly(evm::code_hash(code), code)->push4_values();
  } else {
    push4 = evm::Disassembly(code).push4_values();
  }
  for (const std::uint32_t s : push4) {
    if (seen.insert(s).second) hints.push_back(s);
  }
  return hints;
}

DiamondReport DiamondProber::probe(const Address& contract,
                                   const ProxyReport& base) {
  DiamondReport report;
  // Only worth re-examining contracts that carry a DELEGATECALL but did not
  // forward the random probe.
  if (base.is_proxy() || !base.has_delegatecall_opcode) return report;

  std::vector<std::uint32_t> hints = harvest_selectors(contract);
  if (hints.size() > config_.max_probes) hints.resize(config_.max_probes);

  for (const std::uint32_t selector : hints) {
    evm::Bytes probe(36, 0);
    probe[0] = static_cast<std::uint8_t>(selector >> 24);
    probe[1] = static_cast<std::uint8_t>(selector >> 16);
    probe[2] = static_cast<std::uint8_t>(selector >> 8);
    probe[3] = static_cast<std::uint8_t>(selector);

    evm::OverlayHost overlay(chain_);
    FacetObserver observer(contract, probe);
    evm::InterpreterConfig interp_config;
    interp_config.step_limit = config_.step_limit;
    interp_config.max_call_depth = 64;  // bounded native recursion
    evm::Interpreter interp(overlay, interp_config);
    interp.set_observer(&observer);

    evm::CallParams params;
    params.code_address = contract;
    params.storage_address = contract;
    params.caller = Address::from_label("proxion.diamond.prober");
    params.origin = params.caller;
    params.calldata = probe;
    params.gas = config_.emulation_gas;
    interp.execute(params);

    if (observer.facet()) {
      report.routed_selectors.push_back(selector);
      if (std::find(report.facets.begin(), report.facets.end(),
                    *observer.facet()) == report.facets.end()) {
        report.facets.push_back(*observer.facet());
      }
    }
  }

  // Selector-conditional delegation is the diamond signature: the random
  // probe failed but at least one registered selector forwards.
  report.is_diamond = !report.routed_selectors.empty();
  return report;
}

}  // namespace proxion::core
