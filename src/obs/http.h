// Minimal dependency-free HTTP/1.1 server for the introspection plane. It
// serves exactly what a scraper or a human with curl needs — GET on a small
// set of registered paths, Connection: close, no keep-alive, no TLS, no
// chunking — and deliberately nothing more: the attack/bug surface of a real
// HTTP stack has no place inside an analysis pipeline. Binds 127.0.0.1 only;
// exposing metrics beyond the host is a reverse proxy's job.
//
// Threading: one accept thread, requests handled inline on it (scrapes are
// serial and cheap; Prometheus scrapes one target at a time). Handlers run
// on that thread and must be thread-safe against the pipeline (ours render
// from racy-by-design snapshots, which are).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace proxion::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one registered path; receives the raw query string (no
/// parsing — current endpoints take no parameters).
using HttpHandler = std::function<HttpResponse(const std::string& query)>;

/// Handler for a registered path prefix (the /v1/contract/<addr> family):
/// receives the target's remainder after the prefix plus the raw query
/// string. The handler owns all validation of `rest`.
using HttpPrefixHandler =
    std::function<HttpResponse(const std::string& rest,
                               const std::string& query)>;

class HttpServer {
 public:
  HttpServer();
  ~HttpServer();  // stops and joins

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register before start(); exact path match (no prefixes).
  void handle(const std::string& path, HttpHandler handler);

  /// Register before start(); matches any target starting with `prefix`
  /// (longest registered prefix wins). Exact-path registrations take
  /// priority over prefix matches.
  void handle_prefix(const std::string& prefix, HttpPrefixHandler handler);

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and launch the accept thread.
  /// Returns false (with no thread started) when the bind/listen fails.
  bool start(std::uint16_t port);
  void stop();
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// The bound port (resolves ephemeral requests); 0 before start().
  std::uint16_t port() const noexcept { return port_; }

  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_one(int client_fd);

  std::map<std::string, HttpHandler> handlers_;
  std::map<std::string, HttpPrefixHandler> prefix_handlers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace proxion::obs
