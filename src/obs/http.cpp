#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace proxion::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;  // headers incl.; GETs are tiny

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a scraper that hung up mid-response must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string render_response(const HttpResponse& resp) {
  std::string out;
  out.reserve(128 + resp.body.size());
  char head[160];
  std::snprintf(head, sizeof head,
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                resp.status, status_text(resp.status),
                resp.content_type.c_str(), resp.body.size());
  out += head;
  out += resp.body;
  return out;
}

}  // namespace

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, HttpHandler handler) {
  handlers_[path] = std::move(handler);
}

void HttpServer::handle_prefix(const std::string& prefix,
                               HttpPrefixHandler handler) {
  prefix_handlers_[prefix] = std::move(handler);
}

bool HttpServer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_relaxed)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);  // resolves port 0 to the ephemeral choice
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // shutdown() unblocks the accept() in the loop thread; close follows the
  // join so the fd number can't be recycled under a still-running accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // Shutdown (or a fatal accept error): leave the loop; stop() flips
      // running_ before shutdown so the normal path reads false here.
      return;
    }
    // Bound the time one stuck client can hold the single serve thread.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    serve_one(client);
    ::close(client);
  }
}

void HttpServer::serve_one(int client_fd) {
  std::string req;
  char buf[2048];
  while (req.size() < kMaxRequestBytes &&
         req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = req.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line

  // "METHOD SP target SP version"
  const std::string line = req.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  HttpResponse resp;
  if (sp1 == std::string::npos || sp2 == sp1) {
    resp.status = 400;
    resp.body = "malformed request line\n";
  } else if (line.substr(0, sp1) != "GET") {
    resp.status = 405;
    resp.body = "only GET is served here\n";
  } else {
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string query;
    const std::size_t q = target.find('?');
    if (q != std::string::npos) {
      query = target.substr(q + 1);
      target.resize(q);
    }
    const auto it = handlers_.find(target);
    if (it != handlers_.end()) {
      resp = it->second(query);
    } else {
      // Longest matching registered prefix wins; the map is sorted
      // ascending, so the last match seen is the longest.
      const HttpPrefixHandler* best = nullptr;
      std::size_t best_len = 0;
      for (const auto& [prefix, handler] : prefix_handlers_) {
        if (target.starts_with(prefix) && prefix.size() >= best_len) {
          best = &handler;
          best_len = prefix.size();
        }
      }
      if (best != nullptr) {
        resp = (*best)(target.substr(best_len), query);
      } else {
        resp.status = 404;
        resp.body = "no such endpoint; try /metrics /healthz /spans /v1/status\n";
      }
    }
  }
  send_all(client_fd, render_response(resp));
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace proxion::obs
