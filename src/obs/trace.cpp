#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

namespace proxion::obs {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Thread-local pointer to this thread's ring in the tracer it last recorded
/// to. Keyed by a process-unique tracer id, never a pointer: a new tracer
/// allocated at a dead tracer's address must not inherit its rings.
struct TlsRingCache {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local TlsRingCache t_ring_cache;

/// Per-thread sampling countdown, keyed the same way as the ring cache so a
/// new tracer starts each thread at countdown 0 (first span always kept).
struct TlsSampleCache {
  std::uint64_t tracer_id = 0;
  std::uint32_t countdown = 0;
};
thread_local TlsSampleCache t_sample_cache;

/// Per-thread coarse-clock cache: one real steady_clock read amortized over
/// kCoarseRefresh now() calls. Keyed by tracer id like the caches above so a
/// fresh tracer never reuses a stale countdown.
struct TlsCoarseCache {
  std::uint64_t tracer_id = 0;
  std::uint64_t cached_ns = 0;
  std::uint32_t countdown = 0;
};
thread_local TlsCoarseCache t_coarse_cache;

// ---------------------------------------------------------------------------
// Span-name interning.
//
// The table is a leaked singleton (like Registry::global()): SpanRecord and
// drained exports hold `const char*` into it, and tracers may outlive any
// scoped table. Content-keyed so two literals with equal text (e.g. the same
// name in two translation units) intern to one id.
// ---------------------------------------------------------------------------

constexpr std::uint16_t kInternOverflow = 0xFFFF;  // table-full sentinel

struct InternTable {
  std::mutex mu;
  std::map<std::string, std::uint16_t> by_content;
  /// id -> stable C string. Entries are heap copies, never freed (the table
  /// is process-lifetime and bounded by the instrumentation surface).
  std::vector<const char*> by_id;
};

InternTable& intern_table() {
  static auto* table = [] {
    auto* t = new InternTable();
    t->by_id.push_back(nullptr);  // id 0 = "no name"
    return t;
  }();
  return *table;
}

std::uint16_t intern_slow(const char* name) {
  InternTable& t = intern_table();
  std::lock_guard<std::mutex> lk(t.mu);
  auto it = t.by_content.find(name);
  if (it != t.by_content.end()) return it->second;
  if (t.by_id.size() >= kInternOverflow) {
    // Saturated: collapse further names into one sentinel string rather than
    // recycle ids. 65k distinct span names means runaway dynamic naming —
    // the export stays well-formed and the overflow is visible by name.
    auto ov = t.by_content.find("<intern-overflow>");
    if (ov != t.by_content.end()) return ov->second;
    name = "<intern-overflow>";
  }
  const std::size_t len = std::strlen(name);
  char* copy = new char[len + 1];
  std::memcpy(copy, name, len + 1);
  const auto id = static_cast<std::uint16_t>(t.by_id.size());
  t.by_id.push_back(copy);
  t.by_content.emplace(copy, id);
  return id;
}

/// Direct-mapped TLS cache over the intern table, keyed by POINTER — the
/// common case is the same string literal passed repeatedly, so a pointer
/// compare resolves it without hashing the content.
struct TlsInternEntry {
  const char* ptr = nullptr;
  std::uint16_t id = 0;
};
constexpr std::size_t kTlsInternSlots = 64;  // power of two
thread_local TlsInternEntry t_intern_cache[kTlsInternSlots];

}  // namespace

std::uint16_t intern_name(const char* name) {
  if (name == nullptr) return 0;
  const auto slot =
      (reinterpret_cast<std::uintptr_t>(name) >> 3) & (kTlsInternSlots - 1);
  TlsInternEntry& e = t_intern_cache[slot];
  if (e.ptr == name) return e.id;
  const std::uint16_t id = intern_slow(name);
  e.ptr = name;
  e.id = id;
  return id;
}

const char* interned_name(std::uint16_t id) noexcept {
  InternTable& t = intern_table();
  std::lock_guard<std::mutex> lk(t.mu);
  if (id >= t.by_id.size()) return nullptr;
  return t.by_id[id];
}

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Tracer::coarse_now_ns(std::uint64_t tracer_id) {
  TlsCoarseCache& c = t_coarse_cache;
  if (c.tracer_id != tracer_id || c.countdown == 0) {
    c.tracer_id = tracer_id;
    c.cached_ns = steady_now_ns();
    c.countdown = kCoarseRefresh;
  }
  --c.countdown;
  return c.cached_ns;
}

Tracer::Tracer(TraceClock clock, std::size_t ring_capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      default_clock_(!clock),
      clock_(clock ? std::move(clock) : TraceClock(&steady_now_ns)) {}

Tracer::~Tracer() = default;

bool Tracer::sample_this_span() noexcept {
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  if (t_sample_cache.tracer_id != id_) {
    t_sample_cache.tracer_id = id_;
    t_sample_cache.countdown = 0;  // first span on this thread is kept
  }
  if (t_sample_cache.countdown == 0) {
    t_sample_cache.countdown = every - 1;
    return true;
  }
  --t_sample_cache.countdown;
  return false;
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  if (t_ring_cache.tracer_id == id_) {
    return *static_cast<Ring*>(t_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(rings_.size());
  // Slots are atomics (non-movable): size the buffer once at registration
  // rather than growing lazily. ~32 B/slot, one ring per recording thread.
  // One SPARE slot beyond the retained capacity: record w lands in slot
  // w % (capacity+1), so the slot a writer is (or is about to be) filling is
  // never the slot of the oldest retained record w-capacity — a quiescent
  // drain keeps the full window instead of conservatively dropping its head.
  ring->buf = std::vector<Slot>(capacity_ + 1);
  rings_.push_back(std::move(ring));
  t_ring_cache.tracer_id = id_;
  t_ring_cache.ring = rings_.back().get();
  return *rings_.back();
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const char* arg_name,
                    std::int64_t arg) {
  Ring& ring = ring_for_this_thread();
  const std::uint64_t w = ring.written.load(std::memory_order_relaxed);
  Slot& slot = ring.buf[w % (capacity_ + 1)];
  const std::uint64_t meta = (std::uint64_t{intern_name(name)} << 16) |
                             std::uint64_t{intern_name(arg_name)};
  slot.meta.store(meta, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  // Release-publish: a reader that acquires `written` > w sees this slot's
  // stores. Readers treat slots the writer might currently be overwriting
  // (index within one lap of a later `written`) as torn and drop them.
  ring.written.store(w + 1, std::memory_order_release);
}

void Tracer::drain_ring(const Ring& ring, std::vector<SpanRecord>& out) const {
  const std::uint64_t nslots = capacity_ + 1;
  const std::uint64_t w1 = ring.written.load(std::memory_order_acquire);
  if (w1 == 0) return;
  const std::uint64_t begin = w1 > capacity_ ? w1 - capacity_ : 0;
  std::vector<SpanRecord> tmp;
  tmp.reserve(static_cast<std::size_t>(w1 - begin));
  std::vector<std::uint64_t> idx;
  idx.reserve(static_cast<std::size_t>(w1 - begin));
  for (std::uint64_t i = begin; i < w1; ++i) {
    const Slot& s = ring.buf[i % nslots];
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    SpanRecord rec;
    rec.name = interned_name(static_cast<std::uint16_t>(meta >> 16));
    rec.arg_name = interned_name(static_cast<std::uint16_t>(meta & 0xFFFF));
    rec.arg = s.arg.load(std::memory_order_relaxed);
    rec.start_ns = s.start_ns.load(std::memory_order_relaxed);
    rec.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    rec.tid = ring.tid;
    tmp.push_back(rec);
    idx.push_back(i);
  }
  // Re-read `written`: record i's slot is reused by record i+nslots, so any
  // record whose reuser may have started during our copy (i + nslots <= w2,
  // counting the writer possibly mid-flight on record w2 itself... which
  // touches slot w2 % nslots = record w2-nslots's slot) is in doubt — the
  // loads above might have observed a half-written overwrite. Drop those;
  // keep the rest, which are release-published and untouched since. At
  // quiescence (w2 == w1) nothing is dropped, thanks to the spare slot.
  const std::uint64_t w2 = ring.written.load(std::memory_order_acquire);
  for (std::size_t k = 0; k < tmp.size(); ++k) {
    if (idx[k] + nslots > w2 && tmp[k].name != nullptr) {
      out.push_back(tmp[k]);
    }
  }
}

std::vector<SpanRecord> Tracer::spans() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& ring : rings_) drain_ring(*ring, out);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::vector<SpanRecord> Tracer::recent_spans(std::size_t max_spans) const {
  std::vector<SpanRecord> all = spans();
  if (all.size() > max_spans) {
    all.erase(all.begin(),
              all.begin() + static_cast<std::ptrdiff_t>(all.size() - max_spans));
  }
  return all;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->written.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->written.load(std::memory_order_relaxed);
    if (w > capacity_) total += w - capacity_;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    for (Slot& s : ring->buf) {
      s.meta.store(0, std::memory_order_relaxed);
      s.arg.store(0, std::memory_order_relaxed);
      s.start_ns.store(0, std::memory_order_relaxed);
      s.dur_ns.store(0, std::memory_order_relaxed);
    }
    ring->written.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Span names are compile-time literals from our own call sites, but keep
/// the export robust if one ever carries a quote or backslash.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

/// Nanoseconds as fixed-point microseconds (Chrome traces use us).
void append_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  char buf[8];
  std::snprintf(buf, sizeof buf, ".%03u", static_cast<unsigned>(ns % 1000));
  out += buf;
}

std::string spans_to_ndjson(const std::vector<SpanRecord>& all) {
  std::string out;
  out.reserve(all.size() * 96);
  for (const SpanRecord& s : all) {
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"tid\":";
    append_u64(out, s.tid);
    out += ",\"ts_ns\":";
    append_u64(out, s.start_ns);
    out += ",\"dur_ns\":";
    append_u64(out, s.dur_ns);
    if (s.arg_name != nullptr) {
      out += ",\"";
      append_escaped(out, s.arg_name);
      out += "\":";
      append_i64(out, s.arg);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> all = spans();
  std::string out;
  out.reserve(64 + all.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const SpanRecord& s : all) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"proxion\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, s.tid);
    out += ",\"ts\":";
    append_us(out, s.start_ns);
    out += ",\"dur\":";
    append_us(out, s.dur_ns);
    if (s.arg_name != nullptr) {
      out += ",\"args\":{\"";
      append_escaped(out, s.arg_name);
      out += "\":";
      append_i64(out, s.arg);
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::ndjson() const { return spans_to_ndjson(spans()); }

std::string Tracer::ndjson_recent(std::size_t max_spans) const {
  return spans_to_ndjson(recent_spans(max_spans));
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << chrome_trace_json();
  return static_cast<bool>(file);
}

bool Tracer::write_ndjson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << ndjson();
  return static_cast<bool>(file);
}

}  // namespace proxion::obs
