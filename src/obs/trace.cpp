#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>

namespace proxion::obs {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Thread-local pointer to this thread's ring in the tracer it last recorded
/// to. Keyed by a process-unique tracer id, never a pointer: a new tracer
/// allocated at a dead tracer's address must not inherit its rings.
struct TlsRingCache {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local TlsRingCache t_ring_cache;

/// Per-thread sampling countdown, keyed the same way as the ring cache so a
/// new tracer starts each thread at countdown 0 (first span always kept).
struct TlsSampleCache {
  std::uint64_t tracer_id = 0;
  std::uint32_t countdown = 0;
};
thread_local TlsSampleCache t_sample_cache;

}  // namespace

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer(TraceClock clock, std::size_t ring_capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      clock_(clock ? std::move(clock) : TraceClock(&steady_now_ns)) {}

Tracer::~Tracer() = default;

bool Tracer::sample_this_span() noexcept {
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  if (t_sample_cache.tracer_id != id_) {
    t_sample_cache.tracer_id = id_;
    t_sample_cache.countdown = 0;  // first span on this thread is kept
  }
  if (t_sample_cache.countdown == 0) {
    t_sample_cache.countdown = every - 1;
    return true;
  }
  --t_sample_cache.countdown;
  return false;
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  if (t_ring_cache.tracer_id == id_) {
    return *static_cast<Ring*>(t_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(rings_.size());
  ring->buf.reserve(std::min<std::size_t>(capacity_, 1024));
  rings_.push_back(std::move(ring));
  t_ring_cache.tracer_id = id_;
  t_ring_cache.ring = rings_.back().get();
  return *rings_.back();
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const char* arg_name,
                    std::int64_t arg) {
  Ring& ring = ring_for_this_thread();
  SpanRecord rec;
  rec.name = name;
  rec.arg_name = arg_name;
  rec.arg = arg;
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.tid = ring.tid;
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(rec);
  } else {
    ring.buf[ring.written % capacity_] = rec;  // overwrite the oldest
  }
  ++ring.written;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& ring : rings_) {
      out.insert(out.end(), ring->buf.begin(), ring->buf.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->written;
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    if (ring->written > ring->buf.size()) {
      total += ring->written - ring->buf.size();
    }
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    ring->buf.clear();
    ring->written = 0;
  }
}

namespace {

/// Span names are compile-time literals from our own call sites, but keep
/// the export robust if one ever carries a quote or backslash.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

/// Nanoseconds as fixed-point microseconds (Chrome traces use us).
void append_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  char buf[8];
  std::snprintf(buf, sizeof buf, ".%03u", static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> all = spans();
  std::string out;
  out.reserve(64 + all.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const SpanRecord& s : all) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"proxion\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, s.tid);
    out += ",\"ts\":";
    append_us(out, s.start_ns);
    out += ",\"dur\":";
    append_us(out, s.dur_ns);
    if (s.arg_name != nullptr) {
      out += ",\"args\":{\"";
      append_escaped(out, s.arg_name);
      out += "\":";
      append_i64(out, s.arg);
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::ndjson() const {
  const std::vector<SpanRecord> all = spans();
  std::string out;
  out.reserve(all.size() * 96);
  for (const SpanRecord& s : all) {
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"tid\":";
    append_u64(out, s.tid);
    out += ",\"ts_ns\":";
    append_u64(out, s.start_ns);
    out += ",\"dur_ns\":";
    append_u64(out, s.dur_ns);
    if (s.arg_name != nullptr) {
      out += ",\"";
      append_escaped(out, s.arg_name);
      out += "\":";
      append_i64(out, s.arg);
    }
    out += "}\n";
  }
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << chrome_trace_json();
  return static_cast<bool>(file);
}

bool Tracer::write_ndjson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << ndjson();
  return static_cast<bool>(file);
}

}  // namespace proxion::obs
