// Structured event log for the live introspection plane: one Event per
// operationally-interesting occurrence (phase transition, quarantine,
// breaker flip, shard commit, degraded-mode entry, journal self-heal),
// carrying a severity, BOTH timestamps (monotonic ns for ordering/joins
// against spans, wall-clock unix ms for humans), a component, and a
// correlation id (contract address, shard index) so events about one unit
// of work can be grepped together. This replaces the ad-hoc
// `std::fprintf(stderr, ...)` progress lines the pipeline and durable sweep
// accumulated: call sites emit here when a log is wired, and the log can
// mirror to stderr for interactive runs.
//
// Events are rare by design (nothing per-contract on the happy path), so
// emit() takes a mutex; it is safe from any thread. The log keeps a bounded
// in-memory ring (oldest overwritten) for the /events-style drains and can
// append each event as one NDJSON line to a file sink as it happens.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace proxion::obs {

enum class Severity : std::uint8_t { kDebug, kInfo, kWarn, kError };

std::string_view to_string(Severity severity) noexcept;

/// Wall clock, unix epoch milliseconds; empty std::function = system_clock.
using WallClock = std::function<std::int64_t()>;

/// system_clock now, in milliseconds since the unix epoch.
std::int64_t wall_now_ms() noexcept;

struct Event {
  Severity severity = Severity::kInfo;
  /// Monotonic nanoseconds (same clock family as span timestamps, so events
  /// and spans from one process interleave meaningfully).
  std::uint64_t mono_ns = 0;
  /// Wall-clock unix milliseconds at emit time.
  std::int64_t wall_ms = 0;
  /// Process-unique, strictly increasing per log: a drain can detect gaps.
  std::uint64_t seq = 0;
  std::string component;    // "pipeline", "sweep", "chain.breaker", ...
  std::string message;
  /// Correlation id: contract address hex, "shard:N", ... May be empty.
  std::string correlation;
};

struct EventLogConfig {
  /// Events retained in memory; older ones are overwritten (the file sink,
  /// when configured, still has them).
  std::size_t ring_capacity = 1024;
  /// NDJSON file sink, one line appended (and flushed) per event; empty =
  /// in-memory only.
  std::string path;
  /// Also write each event as a human-readable line to stderr — the
  /// interactive-run replacement for the old fprintf progress lines.
  bool mirror_stderr = false;
  /// Events below this severity are dropped at emit (counted, not stored).
  Severity min_severity = Severity::kDebug;
  /// Monotonic ns clock; empty = steady_clock. Tests inject fakes for
  /// byte-deterministic NDJSON.
  TraceClock clock;
  WallClock wall_clock;
};

class EventLog {
 public:
  explicit EventLog(EventLogConfig config = {});
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Thread-safe; takes the log's mutex (events are rare — this is NOT a
  /// per-contract hot path, see file comment).
  void emit(Severity severity, std::string_view component,
            std::string_view message, std::string_view correlation = {});

  /// Ring contents, oldest first. Thread-safe.
  std::vector<Event> recent() const;
  /// The ring as NDJSON (one object per line, oldest first). Thread-safe.
  std::string ndjson() const;

  std::uint64_t emitted() const noexcept;    // accepted into the ring
  std::uint64_t overwritten() const noexcept;  // evicted by ring wrap
  std::uint64_t suppressed() const noexcept;   // below min_severity

  /// One event as its NDJSON line (no trailing newline). Deterministic.
  static std::string render_ndjson_line(const Event& event);

 private:
  EventLogConfig config_;
  TraceClock clock_;
  WallClock wall_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;     // ring storage, capacity-bounded
  std::uint64_t written_ = 0;   // total events ever accepted
  std::uint64_t suppressed_ = 0;
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> sink_;
};

}  // namespace proxion::obs
