// Low-overhead execution tracing for the sweep pipeline: completed spans are
// appended to per-thread ring buffers (single-writer, no locking on the hot
// path after a thread's first span) and exported after the run as Chrome
// `trace_event` JSON — loadable in Perfetto / chrome://tracing — plus a
// line-delimited NDJSON event log for ad-hoc tooling.
//
// Time comes from an injectable monotonic-nanosecond clock (the same
// testable-time convention as util::CircuitBreaker's microsecond clock), so
// tests drive a fake clock and get byte-identical trace files.
//
// Quiescence contract: record() may run concurrently from any number of
// threads, but spans()/export/clear() must only run while no thread is
// recording (the pipeline exports after its parallel_for rounds joined,
// which establishes the needed happens-before).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace proxion::obs {

/// Monotonic nanosecond clock; empty std::function = steady_clock.
using TraceClock = std::function<std::uint64_t()>;

/// steady_clock now, in nanoseconds since an arbitrary epoch.
std::uint64_t steady_now_ns() noexcept;

/// One completed span. `name` and `arg_name` must be string literals (or
/// otherwise outlive the tracer) — nothing is copied on the hot path.
struct SpanRecord {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no argument
  std::int64_t arg = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // ring index, stable per recording thread
};

class Tracer {
 public:
  /// `ring_capacity` bounds the completed spans kept per recording thread;
  /// older spans are overwritten (the export keeps the most recent window
  /// and reports how many were dropped).
  explicit Tracer(TraceClock clock = {}, std::size_t ring_capacity = 1 << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::uint64_t now() const { return clock_(); }

  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              const char* arg_name = nullptr, std::int64_t arg = 0);

  /// Keep only every Nth span per thread (1 = keep all, the default; 0 is
  /// treated as 1). The decision runs BEFORE any clock read or argument
  /// formatting, so a sampled-out span costs one TLS countdown decrement.
  /// The first span on each thread is always kept, so span-existence
  /// assertions hold at any rate. Direct record() calls bypass sampling.
  void set_sample_every(std::uint32_t n) noexcept {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }
  /// Per-thread deterministic sampling decision (a countdown, not a RNG):
  /// true when the caller should record the span it is about to build.
  bool sample_this_span() noexcept;

  /// All retained spans, sorted by (start, longest-first, tid) so parents
  /// precede their children at equal timestamps. Quiescence required.
  std::vector<SpanRecord> spans() const;
  std::uint64_t recorded() const;  // total record() calls (incl. dropped)
  std::uint64_t dropped() const;   // spans overwritten by ring wrap
  /// Empties every ring (the rings themselves stay registered to their
  /// threads). Quiescence required.
  void clear();

  /// Chrome trace_event JSON (object format, complete "X" events, ts/dur in
  /// microseconds). Loadable in Perfetto and chrome://tracing.
  std::string chrome_trace_json() const;
  /// One JSON object per line per span.
  std::string ndjson() const;
  bool write_chrome_trace(const std::string& path) const;
  bool write_ndjson(const std::string& path) const;

 private:
  struct Ring {
    std::uint32_t tid = 0;
    std::uint64_t written = 0;   // total spans ever recorded to this ring
    std::vector<SpanRecord> buf;  // ring storage, capacity-bounded
  };

  Ring& ring_for_this_thread();

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const std::size_t capacity_;
  std::atomic<std::uint32_t> sample_every_{1};
  TraceClock clock_;
  mutable std::mutex mu_;  // guards ring registration and bulk reads
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: times construction -> destruction against the tracer's clock.
/// A null tracer makes every operation a no-op (one branch), which is the
/// telemetry-disabled hot path. The sampling decision is taken here in the
/// constructor — a sampled-out span degrades to the null-tracer no-op before
/// any clock read or argument formatting happens.
class Span {
 public:
  Span(Tracer* tracer, const char* name) noexcept
      : tracer_(tracer != nullptr && tracer->sample_this_span() ? tracer
                                                                : nullptr),
        name_(name), start_(tracer_ ? tracer_->now() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach one numeric argument (e.g. the sweep index). `arg_name` must be
  /// a string literal.
  void arg(const char* arg_name, std::int64_t value) noexcept {
    arg_name_ = arg_name;
    arg_ = value;
  }

  ~Span() {
    if (tracer_ == nullptr) return;
    tracer_->record(name_, start_, tracer_->now() - start_, arg_name_, arg_);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t start_;
};

}  // namespace proxion::obs
