// Low-overhead execution tracing for the sweep pipeline: completed spans are
// appended to per-thread ring buffers and can be exported as Chrome
// `trace_event` JSON — loadable in Perfetto / chrome://tracing — plus a
// line-delimited NDJSON event log for ad-hoc tooling and the live /spans
// endpoint.
//
// Hot-path design (the PR-3 tracing tax, shaved):
//   - span NAMES are interned once into a process-wide id table; a ring slot
//     stores a 16-bit id, never a pointer copy per export and never a
//     per-span std::string. The intern lookup is a TLS direct-mapped
//     pointer cache — one predictable hit for every literal after its first
//     use on a thread.
//   - ring SLOTS are four relaxed atomics (meta, arg, start, dur) published
//     by a release bump of the ring's `written` counter. That makes the
//     bulk readers (spans(), ndjson(), the /spans drain) safe to run WHILE
//     other threads record — a reader snapshots the window and drops any
//     record the writer may have been overwriting during the copy.
//   - the CLOCK has a branch-free-ish fast path: the default steady clock is
//     called directly (no std::function indirection), and set_coarse_clock()
//     switches span timestamps to a TLS-cached value refreshed every
//     kCoarseRefresh reads — one real clock read amortized over 32 spans,
//     at the cost of coarse (but still monotonic per thread) timestamps.
//
// Time comes from an injectable monotonic-nanosecond clock (the same
// testable-time convention as util::CircuitBreaker's microsecond clock), so
// tests drive a fake clock and get byte-identical trace files. The coarse
// option only applies to the built-in steady clock — injected clocks stay
// exact, deterministic tests included.
//
// Concurrency contract: record() may run concurrently from any number of
// threads, and spans()/chrome_trace_json()/ndjson()/recent_spans() may run
// concurrently with record() (see above). clear() still requires quiescence.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace proxion::obs {

/// Monotonic nanosecond clock; empty std::function = steady_clock.
using TraceClock = std::function<std::uint64_t()>;

/// steady_clock now, in nanoseconds since an arbitrary epoch.
std::uint64_t steady_now_ns() noexcept;

/// Process-wide span-name interning. Ids are stable for the process
/// lifetime; equal STRINGS get equal ids even from distinct pointers. Id 0
/// is reserved for "no name" (a null arg_name). The hot path is a TLS
/// direct-mapped cache keyed by pointer, so literals cost ~one compare per
/// call after first use; the slow path is a mutex-guarded map. The table
/// saturates at 65534 distinct names (further names collapse into a
/// sentinel) — far above any real instrumentation surface.
std::uint16_t intern_name(const char* name);
/// Stable storage for the interned string; nullptr for id 0 / unknown ids.
const char* interned_name(std::uint16_t id) noexcept;

/// One completed span, as drained from the rings. `name`/`arg_name` point
/// into the intern table (process-lifetime storage).
struct SpanRecord {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no argument
  std::int64_t arg = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // ring index, stable per recording thread
};

class Tracer {
 public:
  /// Real clock reads amortized per coarse-clock timestamp (see file
  /// comment); bounds the timestamp staleness to ~kCoarseRefresh spans.
  static constexpr std::uint32_t kCoarseRefresh = 32;

  /// `ring_capacity` bounds the completed spans kept per recording thread;
  /// older spans are overwritten (the export keeps the most recent window
  /// and reports how many were dropped).
  explicit Tracer(TraceClock clock = {}, std::size_t ring_capacity = 1 << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::uint64_t now() const {
    if (!default_clock_) return clock_();
    if (coarse_.load(std::memory_order_relaxed)) return coarse_now_ns(id_);
    return steady_now_ns();
  }

  /// Span timestamps from the TLS-cached coarse clock (default-clock tracers
  /// only; injected clocks are already cheap/fake and stay exact). May be
  /// toggled at any time; recording threads pick it up on their next span.
  void set_coarse_clock(bool on) noexcept {
    coarse_.store(on, std::memory_order_relaxed);
  }
  bool coarse_clock() const noexcept {
    return coarse_.load(std::memory_order_relaxed);
  }

  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              const char* arg_name = nullptr, std::int64_t arg = 0);

  /// Keep only every Nth span per thread (1 = keep all, the default; 0 is
  /// treated as 1). The decision runs BEFORE any clock read or argument
  /// formatting, so a sampled-out span costs one TLS countdown decrement.
  /// The first span on each thread is always kept, so span-existence
  /// assertions hold at any rate. Direct record() calls bypass sampling.
  void set_sample_every(std::uint32_t n) noexcept {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }
  /// Per-thread deterministic sampling decision (a countdown, not a RNG):
  /// true when the caller should record the span it is about to build.
  bool sample_this_span() noexcept;

  /// All retained spans, sorted by (start, longest-first, tid) so parents
  /// precede their children at equal timestamps. Safe to call while other
  /// threads record: records the writers were overwriting during the copy
  /// are dropped, never returned torn.
  std::vector<SpanRecord> spans() const;
  /// The most recent `max_spans` across all rings (newest kept), same
  /// ordering and concurrency contract as spans(). The /spans endpoint's
  /// drain.
  std::vector<SpanRecord> recent_spans(std::size_t max_spans) const;
  std::uint64_t recorded() const;  // total record() calls (incl. dropped)
  std::uint64_t dropped() const;   // spans overwritten by ring wrap
  /// Empties every ring (the rings themselves stay registered to their
  /// threads). Quiescence required — the one remaining bulk operation that
  /// must not race record().
  void clear();

  /// Chrome trace_event JSON (object format, complete "X" events, ts/dur in
  /// microseconds). Loadable in Perfetto and chrome://tracing.
  std::string chrome_trace_json() const;
  /// One JSON object per line per span.
  std::string ndjson() const;
  /// ndjson() over recent_spans(max_spans).
  std::string ndjson_recent(std::size_t max_spans) const;
  bool write_chrome_trace(const std::string& path) const;
  bool write_ndjson(const std::string& path) const;

 private:
  /// One completed span in ring storage: relaxed atomics so concurrent
  /// drains are race-free; `meta` packs (name_id << 16) | arg_name_id.
  struct Slot {
    std::atomic<std::uint64_t> meta{0};
    std::atomic<std::int64_t> arg{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
  };
  struct Ring {
    std::uint32_t tid = 0;
    /// Total spans ever recorded to this ring. Written only by the owning
    /// thread (release after the slot stores); readers acquire it to bound
    /// their copy window.
    std::atomic<std::uint64_t> written{0};
    std::vector<Slot> buf;  // fixed at ring creation: capacity_ slots
  };

  Ring& ring_for_this_thread();
  /// Copy one ring's consistent window into `out` (drops in-doubt records).
  void drain_ring(const Ring& ring, std::vector<SpanRecord>& out) const;
  static std::uint64_t coarse_now_ns(std::uint64_t tracer_id);

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const std::size_t capacity_;
  const bool default_clock_;
  std::atomic<bool> coarse_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  TraceClock clock_;
  mutable std::mutex mu_;  // guards ring registration and the rings_ vector
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: times construction -> destruction against the tracer's clock.
/// A null tracer makes every operation a no-op (one branch), which is the
/// telemetry-disabled hot path. The sampling decision is taken here in the
/// constructor — a sampled-out span degrades to the null-tracer no-op before
/// any clock read or argument formatting happens.
class Span {
 public:
  Span(Tracer* tracer, const char* name) noexcept
      : tracer_(tracer != nullptr && tracer->sample_this_span() ? tracer
                                                                : nullptr),
        name_(name), start_(tracer_ ? tracer_->now() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach one numeric argument (e.g. the sweep index). `arg_name` must be
  /// a string literal.
  void arg(const char* arg_name, std::int64_t value) noexcept {
    arg_name_ = arg_name;
    arg_ = value;
  }

  ~Span() {
    if (tracer_ == nullptr) return;
    tracer_->record(name_, start_, tracer_->now() - start_, arg_name_, arg_);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t start_;
};

}  // namespace proxion::obs
