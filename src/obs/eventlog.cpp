#include "obs/eventlog.h"

#include <chrono>
#include <cstdio>

namespace proxion::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::int64_t wall_now_ms() noexcept {
  return static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

EventLog::EventLog(EventLogConfig config)
    : config_(std::move(config)),
      clock_(config_.clock ? config_.clock : TraceClock(&steady_now_ns)),
      wall_(config_.wall_clock ? config_.wall_clock : WallClock(&wall_now_ms)),
      sink_(nullptr, &std::fclose) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.reserve(std::min<std::size_t>(config_.ring_capacity, 256));
  if (!config_.path.empty()) {
    sink_.reset(std::fopen(config_.path.c_str(), "a"));
  }
}

EventLog::~EventLog() = default;

void EventLog::emit(Severity severity, std::string_view component,
                    std::string_view message, std::string_view correlation) {
  // Timestamps are taken before the lock so contention never skews them.
  Event e;
  e.severity = severity;
  e.mono_ns = clock_();
  e.wall_ms = wall_();
  e.component.assign(component);
  e.message.assign(message);
  e.correlation.assign(correlation);

  std::lock_guard<std::mutex> lk(mu_);
  if (severity < config_.min_severity) {
    ++suppressed_;
    return;
  }
  e.seq = written_;
  if (sink_) {
    const std::string line = render_ndjson_line(e);
    std::fwrite(line.data(), 1, line.size(), sink_.get());
    std::fputc('\n', sink_.get());
    // Events are rare and operationally load-bearing (a crash right after a
    // degraded-mode entry must leave the event on disk): flush per line.
    std::fflush(sink_.get());
  }
  if (config_.mirror_stderr) {
    std::fprintf(stderr, "proxion[%s] %s: %.*s%s%.*s\n",
                 std::string(to_string(e.severity)).c_str(),
                 e.component.c_str(), static_cast<int>(e.message.size()),
                 e.message.data(), e.correlation.empty() ? "" : " ",
                 static_cast<int>(e.correlation.size()), e.correlation.data());
  }
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(std::move(e));
  } else {
    ring_[written_ % config_.ring_capacity] = std::move(e);
  }
  ++written_;
}

std::vector<Event> EventLog::recent() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  const std::size_t cap = config_.ring_capacity;
  const std::uint64_t begin = written_ > cap ? written_ - cap : 0;
  for (std::uint64_t i = begin; i < written_; ++i) {
    out.push_back(ring_[i % cap]);
  }
  return out;
}

std::string EventLog::ndjson() const {
  std::string out;
  for (const Event& e : recent()) {
    out += render_ndjson_line(e);
    out.push_back('\n');
  }
  return out;
}

std::uint64_t EventLog::emitted() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return written_;
}

std::uint64_t EventLog::overwritten() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return written_ > config_.ring_capacity ? written_ - config_.ring_capacity
                                          : 0;
}

std::uint64_t EventLog::suppressed() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return suppressed_;
}

std::string EventLog::render_ndjson_line(const Event& event) {
  std::string out;
  out.reserve(96 + event.component.size() + event.message.size() +
              event.correlation.size());
  char buf[32];
  out += "{\"severity\":";
  append_json_string(out, to_string(event.severity));
  std::snprintf(buf, sizeof buf, ",\"seq\":%llu",
                static_cast<unsigned long long>(event.seq));
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"mono_ns\":%llu",
                static_cast<unsigned long long>(event.mono_ns));
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"wall_ms\":%lld",
                static_cast<long long>(event.wall_ms));
  out += buf;
  out += ",\"component\":";
  append_json_string(out, event.component);
  out += ",\"message\":";
  append_json_string(out, event.message);
  if (!event.correlation.empty()) {
    out += ",\"correlation\":";
    append_json_string(out, event.correlation);
  }
  out += "}";
  return out;
}

}  // namespace proxion::obs
