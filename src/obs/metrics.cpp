#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace proxion::obs {

namespace {
std::atomic<unsigned> g_next_thread_shard{0};
std::atomic<bool> g_enabled{true};
}  // namespace

unsigned thread_shard() noexcept {
  thread_local const unsigned shard =
      g_next_thread_shard.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram() : shards_(new Shard[kShards]) {}

void Histogram::record(std::uint64_t v) noexcept {
  Shard& s = shards_[thread_shard() & (kShards - 1)];
  s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = s.min.load(std::memory_order_relaxed);
  while (v < seen &&
         !s.min.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = s.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !s.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (unsigned h = 0; h < kShards; ++h) {
    const Shard& s = shards_[h];
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, s.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
    for (unsigned b = 0; b < kBucketCount; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

HistogramSummary Histogram::summary() const { return snapshot().summary(); }

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (unsigned h = 0; h < kShards; ++h) {
    total += shards_[h].count.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (unsigned h = 0; h < kShards; ++h) {
    Shard& s = shards_[h];
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// ---- HistogramSnapshot ----------------------------------------------------

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
    buckets[b] += other.buckets[b];
  }
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double clamped_p = std::clamp(p, 0.0, 100.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped_p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;

  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      const std::uint64_t lo = Histogram::bucket_lower_bound(b);
      const std::uint64_t hi = Histogram::bucket_upper_bound(b);
      double v = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
      // The observed extremes live in (or beyond) this bucket whenever the
      // clamp fires, so clamping never leaves the bucket.
      v = std::min(v, static_cast<double>(max));
      v = std::max(v, static_cast<double>(min));
      return v;
    }
  }
  return static_cast<double>(max);
}

HistogramSummary HistogramSnapshot::summary() const {
  HistogramSummary s;
  s.count = count;
  s.sum = static_cast<double>(sum);
  if (count == 0) return s;
  s.min = min;
  s.max = max;
  s.mean = s.sum / static_cast<double>(count);
  s.p50 = percentile(50.0);
  s.p90 = percentile(90.0);
  s.p99 = percentile(99.0);
  return s;
}

// ---- Registry -------------------------------------------------------------

bool valid_metric_name(const std::string& name) noexcept {
  if (name.empty()) return false;
  if (name.front() >= '0' && name.front() <= '9') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':';
    if (!ok) return false;
  }
  return true;
}

namespace {
void require_valid_name(const std::string& name) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument(
        "obs: invalid metric name (must be [a-zA-Z0-9_.:], nonempty, not "
        "digit-led): \"" + name + "\"");
  }
}
}  // namespace

Counter& Registry::counter(const std::string& name) {
  require_valid_name(name);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  require_valid_name(name);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  require_valid_name(name);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->summary();
  }
  return snap;
}

std::map<std::string, HistogramSnapshot> Registry::histogram_snapshots()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->snapshot();
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::reset_gauges(std::string_view prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, g] : gauges_) {
    if (std::string_view(name).substr(0, prefix.size()) == prefix) g->reset();
  }
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace proxion::obs
