// Process-wide structured telemetry: named counters, gauges, and
// log-bucketed latency histograms behind a single registry, replacing the
// hand-rolled `std::atomic<std::uint64_t>` counters that had grown
// independently in crypto/ (keccak invocations), chain/ (archive RPC
// counters), util/ (thread-pool steal/executed counts), and core/ (cache
// hit/miss accounting).
//
// Hot-path contract: recording is lock-free and wait-free-in-practice — a
// Counter::add is one relaxed fetch_add on a thread-sharded cache line, a
// Histogram::record is a handful of relaxed atomic ops on a sharded bucket
// array. Nothing on the record path allocates, takes a mutex, or issues a
// fence stronger than relaxed. Registry lookups (name -> metric) DO take a
// mutex and are meant to be done once at setup; callers keep the returned
// reference, which is stable for the registry's lifetime.
//
// Reads (value(), snapshot()) are racy-by-design point-in-time sums of the
// shards, exactly like the relaxed counter snapshots the seed already used:
// call them after the recording threads quiesced when exact totals matter.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace proxion::obs {

/// Index used to spread hot-path recording across shards: each thread gets a
/// stable small integer on first use. Intentionally NOT the worker index of
/// any particular pool — telemetry is recorded from arbitrary threads.
unsigned thread_shard() noexcept;

/// Global telemetry master switch (relaxed atomic). The *disabled* state is
/// the one with a strict overhead contract: instrumentation points that are
/// not load-bearing for correctness (span recording, latency stopwatches)
/// must gate on this or on a null pointer — one predictable branch, nothing
/// else. Always-on counters that existing accessors/tests depend on (keccak
/// invocations, archive RPC counts) do not gate: they cost the same relaxed
/// add they always did.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic counter, sharded across cache-line-padded atomics so concurrent
/// recorders don't bounce one line. value() sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_shard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  /// Not atomic with respect to concurrent add(); call at quiescence.
  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShards = 16;  // power of two (mask selection)
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Last-writer-wins signed gauge (queue depths, in-flight counts).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Small summary of a histogram, cheap to copy into report structs.
/// Percentiles are bucket-midpoint estimates with bounded relative error
/// (<= 1/8, the histogram's sub-bucket resolution), clamped to the observed
/// [min, max].
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

class HistogramSnapshot;

/// Log-bucketed histogram over uint64 values (latencies in nanoseconds,
/// step counts, ...). Bucketing is HDR-style: 8 sub-buckets per power of
/// two, so any recorded value lands in a bucket whose width is at most 1/8
/// of its lower bound — percentile estimates carry <= 12.5% relative error
/// by construction. 496 buckets cover the full uint64 range; values below 8
/// get exact unit buckets.
///
/// Recording is sharded: each shard owns its own bucket array + count/sum/
/// min/max atomics, all updated with relaxed operations. snapshot() merges
/// the shards into an immutable view for percentile math and cross-histogram
/// merging.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 8
  static constexpr unsigned kBucketCount = (64 - kSubBits + 1) * kSubBuckets;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket containing `v`. Exact at boundaries: bucket_lower_bound(i) is
  /// the smallest value mapping to bucket i (tested against the inverse).
  static unsigned bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<unsigned>(v);
    const unsigned octave = std::bit_width(v) - 1;  // 2^octave <= v
    const unsigned sub = static_cast<unsigned>(
        (v >> (octave - kSubBits)) & (kSubBuckets - 1));
    return (octave - kSubBits + 1) * kSubBuckets + sub;
  }
  static std::uint64_t bucket_lower_bound(unsigned index) noexcept {
    if (index < kSubBuckets) return index;
    const unsigned q = index / kSubBuckets;  // >= 1
    const unsigned sub = index % kSubBuckets;
    return (std::uint64_t{kSubBuckets} + sub) << (q - 1);
  }
  /// Largest value mapping to bucket `index` (UINT64_MAX for the last).
  static std::uint64_t bucket_upper_bound(unsigned index) noexcept {
    if (index + 1 >= kBucketCount) return ~std::uint64_t{0};
    return bucket_lower_bound(index + 1) - 1;
  }

  void record(std::uint64_t v) noexcept;
  HistogramSnapshot snapshot() const;
  HistogramSummary summary() const;
  std::uint64_t count() const noexcept;
  /// Not atomic with respect to concurrent record(); call at quiescence
  /// (the pipeline resets its per-run histograms between runs).
  void reset() noexcept;

 private:
  static constexpr unsigned kShards = 4;  // power of two
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  };
  std::unique_ptr<Shard[]> shards_;
};

/// Immutable merged view of a histogram; supports merge (for combining
/// histograms across pipelines/threads) and rank-based percentiles.
class HistogramSnapshot {
 public:
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;

  void merge(const HistogramSnapshot& other);
  /// Value estimate at percentile p in [0, 100]: the midpoint of the bucket
  /// containing the ceil(p/100 * count)-th smallest sample, clamped to the
  /// observed [min, max] (both of which lie inside that bucket whenever the
  /// clamp fires). 0 when empty.
  double percentile(double p) const;
  HistogramSummary summary() const;
};

/// True when `name` is a valid metric name: nonempty, drawn entirely from
/// `[a-zA-Z0-9_.:]`, and not starting with a digit. The charset is the
/// Prometheus name charset plus `.` (our internal namespacing separator,
/// sanitized to `_` at exposition) — enforcing it at REGISTRATION means the
/// exposition renderer can never emit a malformed line, no matter what was
/// recorded.
bool valid_metric_name(const std::string& name) noexcept;

/// Process-wide (or per-component: it is instantiable) name -> metric
/// registry. References returned by counter()/gauge()/histogram() stay valid
/// for the registry's lifetime; lookups are mutex-guarded and intended for
/// setup paths, not hot loops.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration validates the name (see valid_metric_name) and throws
  /// std::invalid_argument on violation — a misnamed metric is a programming
  /// error caught at the first setup-path call, never a malformed exposition
  /// line discovered by a scraper.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Read-only lookup without creating: null when no histogram of that name
  /// was ever registered. The durable sharded driver uses this to merge a
  /// pipeline's per-shard histogram snapshots into sweep-wide percentiles.
  const Histogram* find_histogram(const std::string& name) const;

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSummary> histograms;
  };
  Snapshot snapshot() const;

  /// Full bucket-level histogram views (Snapshot carries only summaries):
  /// what the Prometheus renderer needs for `_bucket` series. Same
  /// racy-by-design consistency as snapshot().
  std::map<std::string, HistogramSnapshot> histogram_snapshots() const;

  /// Zero every metric (bench/test convenience; quiescence required).
  void reset();

  /// Zero every gauge whose name starts with `prefix` (empty = all gauges).
  /// Counters and histograms are untouched. Serving-mode hygiene: gauges are
  /// last-writer-wins facts about ONE run, so a daemon's shed-state step
  /// resets `sweep.`-prefixed gauges between sweeps rather than exposing the
  /// previous run's values until the next one overwrites them.
  void reset_gauges(std::string_view prefix);

  /// The process-wide instance absorbing the formerly scattered counters
  /// (crypto.keccak.*, chain.archive.*, threadpool.*).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace proxion::obs
