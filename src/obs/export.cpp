#include "obs/export.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace proxion::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

std::string_view to_string(SweepPhase phase) noexcept {
  switch (phase) {
    case SweepPhase::kIdle: return "idle";
    case SweepPhase::kFetch: return "fetch";
    case SweepPhase::kProxy: return "proxy";
    case SweepPhase::kPairs: return "pairs";
    case SweepPhase::kDone: return "done";
    case SweepPhase::kFollowing: return "following";
  }
  return "unknown";
}

Exporter::Exporter(std::vector<const Registry*> registries,
                   ExporterConfig config)
    : registries_(std::move(registries)),
      config_([&config] {
        if (config.ring_capacity < 2) config.ring_capacity = 2;
        return config;
      }()),
      clock_(config_.clock ? config_.clock : TraceClock(&steady_now_ns)) {}

Exporter::~Exporter() { stop(); }

void Exporter::start() {
  if (config_.interval_ms <= 0) return;
  if (running_.exchange(true, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run_loop(); });
}

void Exporter::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Exporter::run_loop() {
  // Snapshot immediately so a scrape right after start() has data, then on
  // every interval until stop() wakes us.
  tick();
  std::unique_lock<std::mutex> lk(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lk, std::chrono::milliseconds(config_.interval_ms),
                      [this] { return stop_requested_; });
    if (stop_requested_) break;
    lk.unlock();
    tick();
    lk.lock();
  }
}

TimedSnapshot Exporter::take_snapshot() {
  TimedSnapshot snap;
  snap.mono_ns = clock_();
  for (const Registry* reg : registries_) {
    const Registry::Snapshot part = reg->snapshot();
    for (const auto& [name, v] : part.counters) snap.merged.counters[name] += v;
    for (const auto& [name, v] : part.gauges) snap.merged.gauges[name] = v;
    for (auto& [name, h] : reg->histogram_snapshots()) {
      snap.histograms[name].merge(h);
    }
  }
  for (const auto& [name, h] : snap.histograms) {
    snap.merged.histograms[name] = h.summary();
  }
  return snap;
}

void Exporter::tick() {
  TimedSnapshot snap = take_snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  snap.seq = seq_++;
  if (ring_.size() >= config_.ring_capacity) {
    ring_.erase(ring_.begin());
  }
  ring_.push_back(std::move(snap));
}

std::uint64_t Exporter::ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_;
}

std::vector<TimedSnapshot> Exporter::series() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_;
}

std::map<std::string, double> Exporter::rates() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, double> out;
  if (ring_.size() < 2) return out;
  const TimedSnapshot& prev = ring_[ring_.size() - 2];
  const TimedSnapshot& last = ring_.back();
  if (last.mono_ns <= prev.mono_ns) return out;  // stalled/backwards clock
  const double dt_s =
      static_cast<double>(last.mono_ns - prev.mono_ns) / 1e9;
  for (const auto& [name, v1] : last.merged.counters) {
    std::uint64_t v0 = 0;
    const auto it = prev.merged.counters.find(name);
    if (it != prev.merged.counters.end()) v0 = it->second;
    // Counters are monotone; a smaller current value means a reset between
    // snapshots (serving-mode shed) — report the post-reset slope from 0.
    const std::uint64_t delta = v1 >= v0 ? v1 - v0 : v1;
    out[name] = static_cast<double>(delta) / dt_s;
  }
  // Headline throughput alias: the spec'd `contracts_per_s` series.
  const auto it = out.find("sweep.contracts");
  if (it != out.end()) out["contracts_per_s"] = it->second;
  return out;
}

std::string Exporter::sanitize_prometheus_name(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

std::string Exporter::render_prometheus() {
  bool empty;
  {
    std::lock_guard<std::mutex> lk(mu_);
    empty = ring_.empty();
  }
  // Self-prime: a scrape before the first interval still sees data.
  if (empty) tick();
  const std::map<std::string, double> rate_map = rates();
  TimedSnapshot snap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap = ring_.back();
  }

  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snap.merged.counters) {
    const std::string base = "proxion_" + sanitize_prometheus_name(name);
    out += "# TYPE " + base + "_total counter\n";
    out += base + "_total ";
    append_u64(out, v);
    out.push_back('\n');
  }
  for (const auto& [name, v] : snap.merged.gauges) {
    const std::string base = "proxion_" + sanitize_prometheus_name(name);
    out += "# TYPE " + base + " gauge\n";
    out += base + " ";
    append_i64(out, v);
    out.push_back('\n');
  }
  for (const auto& [name, rate] : rate_map) {
    const std::string base =
        "proxion_" + sanitize_prometheus_name(name) +
        (name == "contracts_per_s" ? "" : "_per_s");
    out += "# TYPE " + base + " gauge\n";
    out += base + " ";
    append_double(out, rate);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string base = "proxion_" + sanitize_prometheus_name(name);
    out += "# TYPE " + base + " histogram\n";
    // Cumulative buckets, only at occupied boundaries (496 mostly-empty
    // log buckets would bloat every scrape ~30x for no resolution gain).
    std::uint64_t cumulative = 0;
    for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += base + "_bucket{le=\"";
      append_u64(out, Histogram::bucket_upper_bound(b));
      out += "\"} ";
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += base + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out.push_back('\n');
    out += base + "_sum ";
    append_u64(out, h.sum);
    out.push_back('\n');
    out += base + "_count ";
    append_u64(out, h.count);
    out.push_back('\n');
  }
  return out;
}

std::string Exporter::render_healthz(const SweepStatus* status) const {
  std::string out;
  out.reserve(512);
  SweepPhase phase = SweepPhase::kIdle;
  std::uint64_t sweeps_started = 0, sweeps_completed = 0;
  std::uint64_t contracts_total = 0, contracts_done = 0;
  std::uint64_t quarantined = 0, shards_total = 0, shards_committed = 0;
  std::uint64_t journal_bytes = 0;
  bool degraded = false;
  std::uint8_t breaker = 255;
  if (status != nullptr) {
    phase = status->get_phase();
    sweeps_started = status->sweeps_started.load(std::memory_order_relaxed);
    sweeps_completed =
        status->sweeps_completed.load(std::memory_order_relaxed);
    contracts_total =
        status->contracts_total.load(std::memory_order_relaxed);
    contracts_done = status->contracts_done.load(std::memory_order_relaxed);
    quarantined = status->quarantined.load(std::memory_order_relaxed);
    shards_total = status->shards_total.load(std::memory_order_relaxed);
    shards_committed =
        status->shards_committed.load(std::memory_order_relaxed);
    journal_bytes = status->journal_bytes.load(std::memory_order_relaxed);
    degraded = status->degraded.load(std::memory_order_relaxed);
    breaker = status->breaker_state.load(std::memory_order_relaxed);
  }
  const char* breaker_name = "none";
  switch (breaker) {
    case 0: breaker_name = "closed"; break;
    case 1: breaker_name = "open"; break;
    case 2: breaker_name = "half_open"; break;
    default: break;
  }
  // "degraded" when the sweep runs in degraded mode or the breaker is open;
  // otherwise "ok" — coarse enough for a load balancer, detailed fields for
  // humans.
  const bool unhealthy = degraded || breaker == 1;
  out += "{\"status\":\"";
  out += unhealthy ? "degraded" : "ok";
  out += "\",\"phase\":\"";
  out += to_string(phase);
  out += "\",\"sweeps\":{\"started\":";
  append_u64(out, sweeps_started);
  out += ",\"completed\":";
  append_u64(out, sweeps_completed);
  out += "},\"contracts\":{\"total\":";
  append_u64(out, contracts_total);
  out += ",\"done\":";
  append_u64(out, contracts_done);
  out += "},\"shards\":{\"total\":";
  append_u64(out, shards_total);
  out += ",\"committed\":";
  append_u64(out, shards_committed);
  out += "},\"quarantined\":";
  append_u64(out, quarantined);
  out += ",\"journal_bytes\":";
  append_u64(out, journal_bytes);
  out += ",\"degraded\":";
  out += degraded ? "true" : "false";
  out += ",\"breaker\":\"";
  out += breaker_name;
  out += "\",\"snapshots\":";
  {
    std::lock_guard<std::mutex> lk(mu_);
    append_u64(out, seq_);
  }
  out += "}";
  return out;
}

}  // namespace proxion::obs
