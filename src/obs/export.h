// Live metric export for the introspection plane: a background Exporter
// thread snapshots one or more Registries on a fixed interval into a bounded
// time-series ring, computes counter deltas and per-second rates between
// consecutive snapshots, and renders the latest state as Prometheus text
// exposition format 0.0.4 (the /metrics payload) or an operational health
// JSON document (the /healthz payload).
//
// Consistency model: a snapshot is the same racy-by-design point-in-time sum
// that Registry::snapshot() documents — counters recorded during the scrape
// land in this snapshot or the next, never vanish. Rates are computed from
// the exporter's OWN monotonic timestamps, so a delayed tick yields a
// correct (lower) rate rather than a spike.
//
// The Exporter merges MULTIPLE registries into one logical snapshot because
// the process genuinely has two scopes: Registry::global() (keccak, archive
// RPC, thread pool — process-lifetime counters) and the pipeline's per-run
// registry (sweep.* gauges, per-run histograms). Counters sum, gauges are
// last-registry-wins, histograms merge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxion::obs {

/// Coarse sweep lifecycle for /healthz.
enum class SweepPhase : std::uint8_t {
  kIdle,     // no sweep started yet (or between serving-mode sweeps)
  kFetch,    // phase A: code fetch + proxy detection
  kProxy,    // phase B: logic-contract search
  kPairs,    // phase C: collision checking
  kDone,     // last sweep completed
  kFollowing,  // chain follower live, waiting for blocks between laps
};

std::string_view to_string(SweepPhase phase) noexcept;

/// Shared producer->consumer progress block for /healthz: the pipeline and
/// DurableSweep store into it as they go; the health handler loads from it
/// on every request. All relaxed atomics — each field is an independent
/// monotonic-ish fact, cross-field consistency is not promised (same
/// contract as metric snapshots).
struct SweepStatus {
  std::atomic<std::uint8_t> phase{static_cast<std::uint8_t>(SweepPhase::kIdle)};
  std::atomic<std::uint64_t> sweeps_started{0};
  std::atomic<std::uint64_t> sweeps_completed{0};
  std::atomic<std::uint64_t> contracts_total{0};  // current sweep's input size
  std::atomic<std::uint64_t> contracts_done{0};   // current sweep, monotone
  std::atomic<std::uint64_t> quarantined{0};      // cumulative across sweeps
  std::atomic<std::uint64_t> shards_total{0};
  std::atomic<std::uint64_t> shards_committed{0};
  std::atomic<std::uint64_t> journal_bytes{0};
  std::atomic<bool> degraded{false};
  /// util::CircuitBreaker::State of the archive-node breaker, as published
  /// by the breaker's state listener; 0=closed, 1=open, 2=half-open, and
  /// 255 = no breaker wired (rendered as "none").
  std::atomic<std::uint8_t> breaker_state{255};

  void set_phase(SweepPhase p) noexcept {
    phase.store(static_cast<std::uint8_t>(p), std::memory_order_relaxed);
  }
  SweepPhase get_phase() const noexcept {
    return static_cast<SweepPhase>(phase.load(std::memory_order_relaxed));
  }
};

/// One merged point-in-time view of the registries, stamped with the
/// exporter's monotonic clock.
struct TimedSnapshot {
  std::uint64_t mono_ns = 0;
  std::uint64_t seq = 0;  // strictly increasing per exporter
  Registry::Snapshot merged;
  std::map<std::string, HistogramSnapshot> histograms;
};

struct ExporterConfig {
  /// Snapshot cadence for the background thread. start() ignores a
  /// non-positive interval (tick() stays available for manual stepping).
  std::int64_t interval_ms = 1000;
  /// Snapshots retained in the ring (>= 2 so rates always have a baseline).
  std::size_t ring_capacity = 120;
  /// Monotonic ns clock; empty = steady_clock (tests inject fakes for exact
  /// rate math).
  TraceClock clock;
};

class Exporter {
 public:
  /// `registries` are borrowed and must outlive the exporter. Order matters
  /// only for gauges (later registries win on name collision).
  Exporter(std::vector<const Registry*> registries, ExporterConfig config = {});
  ~Exporter();  // stops the thread if running

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Launch the background snapshot thread (idempotent).
  void start();
  /// Stop and join the background thread (idempotent; also done by ~).
  void stop();
  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

  /// Take one snapshot NOW (also what the background thread calls each
  /// interval). Public so tests and scrape handlers can step deterministically.
  void tick();

  /// Snapshots taken so far (monotone; ring evicts oldest beyond capacity).
  std::uint64_t ticks() const;
  /// Ring contents, oldest first.
  std::vector<TimedSnapshot> series() const;

  /// Per-second rates for every counter, computed between the two most
  /// recent snapshots: (v1 - v0) / dt. Empty until two snapshots exist.
  /// Keys are the counter names plus the derived `contracts_per_s` alias for
  /// the `sweep.contracts` counter (the headline throughput series).
  std::map<std::string, double> rates() const;

  /// Prometheus text exposition 0.0.4 from the LATEST snapshot (self-priming:
  /// takes one if the ring is empty). Counters as `counter` with a `_total`
  /// suffix, gauges as `gauge`, histograms as cumulative `_bucket{le=...}`
  /// + `_sum` + `_count`, names sanitized `.` -> `_`. Rates appear as
  /// synthetic gauges (`proxion_contracts_per_s`).
  std::string render_prometheus();

  /// Operational health JSON from `status` + breaker/quarantine state.
  /// Always well-formed JSON, independent of snapshot history.
  std::string render_healthz(const SweepStatus* status) const;

  /// Prometheus-safe name: `.` -> `_`, everything else preserved (the
  /// registry already enforced the charset at registration).
  static std::string sanitize_prometheus_name(const std::string& name);

 private:
  TimedSnapshot take_snapshot();
  void run_loop();

  const std::vector<const Registry*> registries_;
  const ExporterConfig config_;
  TraceClock clock_;
  mutable std::mutex mu_;           // guards ring_ and seq_
  std::vector<TimedSnapshot> ring_;  // bounded: config_.ring_capacity
  std::uint64_t seq_ = 0;
  std::atomic<bool> running_{false};
  std::mutex stop_mu_;              // pairs with stop_cv_ for interruptible sleep
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace proxion::obs
