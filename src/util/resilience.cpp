#include "util/resilience.h"

#include <algorithm>

namespace proxion::util {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint32_t BackoffSequence::next() noexcept {
  state_ = splitmix64(state_);
  const std::uint32_t base = policy_.base_delay_us;
  const std::uint64_t grown = static_cast<std::uint64_t>(prev_) * 3;
  const std::uint32_t cap = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      grown, policy_.max_delay_us));
  const std::uint32_t span = cap > base ? cap - base : 0;
  const std::uint32_t delay =
      base + (span == 0 ? 0 : static_cast<std::uint32_t>(state_ % span));
  prev_ = delay;
  return delay;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock clock)
    : config_(config), clock_(clock ? std::move(clock) : steady_now_us) {
  if (config_.failure_threshold == 0) config_.failure_threshold = 1;
}

bool CircuitBreaker::allow() {
  bool transitioned = false;
  bool admit = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    switch (state_) {
      case State::kClosed:
        admit = true;
        break;
      case State::kOpen:
        if (clock_() >= reopen_at_us_) {
          state_ = State::kHalfOpen;
          probe_in_flight_ = true;
          transitioned = true;
          admit = true;
        } else {
          admit = false;
        }
        break;
      case State::kHalfOpen:
        if (!probe_in_flight_) {
          probe_in_flight_ = true;
          admit = true;
        } else {
          admit = false;
        }
        break;
    }
  }
  if (transitioned) notify(State::kHalfOpen);
  return admit;
}

void CircuitBreaker::on_success() {
  bool transitioned;
  {
    std::lock_guard<std::mutex> lk(mu_);
    transitioned = state_ != State::kClosed;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    state_ = State::kClosed;
  }
  if (transitioned) notify(State::kClosed);
}

void CircuitBreaker::on_failure() {
  bool tripped = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++consecutive_failures_;
    if (state_ == State::kHalfOpen) {
      trip_locked(clock_());
      tripped = true;
    } else if (state_ == State::kClosed &&
               consecutive_failures_ >= config_.failure_threshold) {
      trip_locked(clock_());
      tripped = true;
    }
  }
  if (tripped) notify(State::kOpen);
}

void CircuitBreaker::reset() {
  bool transitioned;
  {
    std::lock_guard<std::mutex> lk(mu_);
    transitioned = state_ != State::kClosed;
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
  }
  if (transitioned) notify(State::kClosed);
}

void CircuitBreaker::trip_locked(std::uint64_t now) {
  state_ = State::kOpen;
  reopen_at_us_ = now + config_.cooldown_us;
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  trips_.fetch_add(1, std::memory_order_relaxed);
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

void Watchdog::check(const char* where) const {
  if (expired()) {
    throw WatchdogExpired(std::string("watchdog budget exceeded in ") + where);
  }
}

}  // namespace proxion::util
