#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace proxion::util {

namespace {
// Which pool (if any) the current thread works for — the parallel_for
// re-entrancy guard keys on it.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker_pool == this;
}

ThreadPool::ThreadPool(unsigned threads)
    : reg_executed_(
          obs::Registry::global().counter("threadpool.tasks_executed")),
      reg_steals_(obs::Registry::global().counter("threadpool.steals")),
      reg_queue_depth_(
          obs::Registry::global().gauge("threadpool.queue_depth")) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 4 : hw;
  }
  worker_count_ = threads;
  queues_.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const unsigned q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % size();
  enqueue(q, std::move(task));
}

void ThreadPool::enqueue(unsigned queue, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(queues_[queue]->mu);
    queues_[queue]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  reg_queue_depth_.add(1);
  {
    // Pairs with the predicate re-check in worker_main: without this empty
    // critical section a worker could observe queued_ == 0, get preempted
    // before waiting, and miss the notify.
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_own(unsigned me, std::function<void()>& task) {
  WorkerQueue& q = *queues_[me];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.front());
  q.tasks.pop_front();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  reg_queue_depth_.add(-1);
  return true;
}

bool ThreadPool::try_steal(unsigned me, std::function<void()>& task) {
  const unsigned k = size();
  for (unsigned off = 1; off < k; ++off) {
    WorkerQueue& victim = *queues_[(me + off) % k];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    reg_queue_depth_.add(-1);
    steals_.fetch_add(1, std::memory_order_relaxed);
    reg_steals_.add(1);
    return true;
  }
  return false;
}

void ThreadPool::worker_main(unsigned me) {
  t_worker_pool = this;
  std::function<void()> task;
  while (true) {
    if (try_pop_own(me, task) || try_steal(me, task)) {
      task();
      task = nullptr;
      executed_.fetch_add(1, std::memory_order_relaxed);
      reg_executed_.add(1);
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunks = 0;
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  auto job = std::make_shared<Job>();
  job->fn = &fn;  // safe: this frame outlives the job (we block below)
  job->n = n;
  // More chunks than workers so a worker stuck on an expensive chunk sheds
  // the rest of its share to thieves; few enough that per-chunk overhead
  // stays negligible.
  job->chunks = std::min<std::size_t>(n, std::size_t{size()} * 4);
  job->remaining = job->chunks;

  for (std::size_t c = 0; c < job->chunks; ++c) {
    enqueue(static_cast<unsigned>(c % size()), [job, c] {
      const std::size_t begin = c * job->n / job->chunks;
      const std::size_t end = (c + 1) * job->n / job->chunks;
      std::exception_ptr error;
      for (std::size_t i = begin; i < end; ++i) {
        if (job->abort.load(std::memory_order_relaxed)) break;
        try {
          (*job->fn)(i);
        } catch (...) {
          error = std::current_exception();
          job->abort.store(true, std::memory_order_relaxed);
          break;
        }
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lk(job->mu);
        if (error && !job->error) job->error = error;
        last = --job->remaining == 0;
      }
      if (last) job->cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lk(job->mu);
  job->cv.wait(lk, [&] { return job->remaining == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace proxion::util
