// A deterministic fault-injecting Vfs over an in-memory model filesystem —
// the storage-side twin of chain::FaultInjectingArchiveNode. It models the
// two layers a real crash tears apart:
//
//   - inode CONTENT: each file keeps its live bytes and a snapshot of what
//     the last successful sync() made durable;
//   - the NAMESPACE: directory entries (creates, renames, removes) have
//     their own live vs durable state, made durable only by sync_dir().
//
// Supported faults (all a pure function of (seed, mutating-op index), so a
// run replays identically):
//   - EIO on write or read, short (torn) writes;
//   - ENOSPC once cumulative accepted bytes pass a budget (sticky, like a
//     full disk);
//   - fsync failure with dirty-page DROP (fsyncgate): the failed sync
//     discards the un-synced tail, and a later "retry" sync would succeed
//     while silently having lost data — callers must fail-stop instead;
//   - power cut at mutating-op boundary N: the op at boundary N applies a
//     deterministic torn prefix (writes) or nothing, then every subsequent
//     operation throws PowerCutException until reboot();
//   - at-rest bit rot via flip_byte().
//
// reboot() models the machine coming back: the namespace reverts to its
// durable state, each file reverts to its synced content plus a
// seed-deterministic prefix of any appended-but-unsynced tail (a torn
// append), and the world un-halts. mutating_ops() after a fault-free run
// gives the boundary count for an exhaustive power-cut matrix.
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/vfs.h"

namespace proxion::util {

/// Thrown by every Vfs operation once the simulated power cut has fired.
/// Deliberately NOT derived from std::runtime_error: production code that
/// catches (...) and "handles" a power cut would mask the crash the chaos
/// harness is trying to create, so the driver catches this exact type.
class PowerCutException : public std::exception {
 public:
  const char* what() const noexcept override {
    return "simulated power cut: the machine is off until reboot()";
  }
};

struct FaultVfsConfig {
  std::uint64_t seed = 1;
  /// Per-write / per-read probability of a clean EIO (nothing applied).
  double write_eio_rate = 0.0;
  double read_eio_rate = 0.0;
  /// Per-write probability of a torn write: a deterministic prefix is
  /// applied, then the write fails with EIO.
  double short_write_rate = 0.0;
  /// Total accepted write bytes before the disk is "full": further writes
  /// apply whatever still fits and fail with ENOSPC. -1 = unlimited.
  std::int64_t enospc_after_bytes = -1;
  /// Global sync() call index (0-based, counting file syncs only) that
  /// fails with EIO and DROPS the file's dirty tail (fsyncgate). -1 = never.
  std::int64_t fail_fsync_at = -1;
  /// Global mutating-op index (0-based) at which the power cut fires.
  /// -1 = never.
  std::int64_t power_cut_at = -1;
};

class FaultInjectingVfs final : public Vfs {
 public:
  explicit FaultInjectingVfs(FaultVfsConfig config = {}) : config_(config) {}

  std::unique_ptr<VfsFile> open(const std::string& path, OpenMode mode,
                                VfsStatus* status = nullptr) override;
  std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& path) override;
  VfsStatus rename(const std::string& from, const std::string& to) override;
  VfsStatus remove(const std::string& path) override;
  VfsStatus sync_dir(const std::string& path) override;

  /// Swap the fault profile mid-run (e.g. fill the disk after shard 1).
  /// Op counters and durable state are kept.
  void set_config(const FaultVfsConfig& config);
  /// Stop injecting anything (keeps the seed and all state).
  void heal();

  /// Bring the machine back after a power cut (also callable without one to
  /// model a hard kill at the current instant): live state reverts to
  /// durable state + deterministic torn tails, handles opened before the
  /// reboot go stale, and operations work again.
  void reboot();

  /// Flip (xor 0xFF) one durable byte of `path` — at-rest bit rot. False
  /// when the file is missing or `offset` is out of range.
  bool flip_byte(const std::string& path, std::uint64_t offset);

  /// Mutating ops seen so far (write/sync/truncate/open-create/rename/
  /// remove/sync_dir). After a fault-free run this is the power-cut
  /// boundary count: every value in [0, mutating_ops()) is a distinct
  /// crash point.
  std::uint64_t mutating_ops() const;
  /// Successful + failed sync() calls on `path`'s current inode (fsyncgate
  /// assertions: a fail-stopping writer never re-syncs a failed file).
  std::uint64_t fsync_calls(const std::string& path) const;
  std::uint64_t syncs_total() const;
  bool exists(const std::string& path) const;
  /// Whether a crash *right now* would preserve the directory entry.
  bool durable_exists(const std::string& path) const;
  /// Live content of `path` without fault injection (test oracle).
  std::optional<std::vector<std::uint8_t>> peek(const std::string& path) const;

 private:
  struct Inode {
    std::vector<std::uint8_t> current;
    std::vector<std::uint8_t> synced;
    std::uint64_t fsync_calls = 0;
  };
  using InodePtr = std::shared_ptr<Inode>;
  friend class FaultFile;

  /// Draws the deterministic fault decision for op/read index `op`; returns
  /// a uniform double in [0,1). Caller holds mu_.
  double roll(std::uint64_t op, std::uint64_t salt) const;
  /// Throws PowerCutException if the world is halted. Caller holds mu_.
  void check_halted_locked() const;

  mutable std::mutex mu_;
  FaultVfsConfig config_;
  std::map<std::string, InodePtr> live_;
  std::map<std::string, InodePtr> durable_;
  std::uint64_t ops_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t bytes_written_ = 0;
  mutable std::uint64_t reads_salt_ = 0;
  std::uint64_t reboots_ = 0;
  std::uint64_t epoch_ = 0;  // bumped on reboot; stale handles fault fast
  bool halted_ = false;
};

}  // namespace proxion::util
