// Persistent work-stealing executor for the sweep pipeline. The seed spawned
// and joined a fresh std::thread batch per pipeline phase and sharded work
// statically (worker w took indices w, w+k, w+2k, ...), which left most
// workers idle whenever a few contracts had deep logic histories. This pool
// keeps its workers alive across phases and runs, splits parallel_for ranges
// into more chunks than workers, and lets idle workers steal queued chunks
// from busy ones, so skewed per-item cost rebalances dynamically.
//
// Scheduling scheme: one task deque per worker. Owners pop from the front of
// their own deque (chunks of one job run roughly in submission order); a
// worker whose deque is empty scans the other deques and steals from the
// back. parallel_for blocks the caller until every iteration ran and
// rethrows the first exception any iteration produced.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace proxion::util {

class ThreadPool {
 public:
  /// `threads == 0` resolves to std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return worker_count_; }

  /// Runs `fn(i)` for every i in [0, n), chunked across the workers with
  /// dynamic (stealing) rebalance. Blocks until all iterations completed.
  /// If any iteration throws, the remaining iterations are skipped and the
  /// first exception is rethrown here. With a single worker (or n <= 1) the
  /// loop runs inline on the calling thread.
  ///
  /// Re-entrant calls — parallel_for from inside a task already running on
  /// this pool — also run the whole range inline on the nesting worker: a
  /// nested caller that parked on the completion wait would deadlock the
  /// pool if every worker nested at once, since no thread would remain to
  /// execute the queued chunks.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (size() <= 1 || n == 1 || on_worker_thread()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const std::function<void(std::size_t)> body = std::forward<Fn>(fn);
    run_indexed(n, body);
  }

  /// Fire-and-forget task. The destructor drains all queued tasks before
  /// the workers exit.
  void submit(std::function<void()> task);

  /// Number of tasks a worker took from another worker's deque (monotonic;
  /// observable evidence that rebalancing happened).
  std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Total tasks executed by pool workers (monotonic).
  std::uint64_t tasks_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks currently enqueued and not yet picked up by a worker — a
  /// point-in-time snapshot of the backlog this pool is working through.
  std::size_t queue_depth() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

  /// True iff the calling thread is one of *this* pool's workers.
  bool on_worker_thread() const noexcept;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);
  void enqueue(unsigned queue, std::function<void()> task);
  bool try_pop_own(unsigned me, std::function<void()>& task);
  bool try_steal(unsigned me, std::function<void()>& task);
  void worker_main(unsigned me);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Fixed at construction before any worker starts; size() must not read
  /// workers_.size() — workers call size() (via try_steal) while the
  /// constructor is still growing the vector.
  unsigned worker_count_ = 0;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};
  std::atomic<unsigned> next_queue_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};

  /// Process-wide registry mirrors, aggregated across every pool in the
  /// process (the per-pool accessors above stay the per-instance reads).
  obs::Counter& reg_executed_;
  obs::Counter& reg_steals_;
  obs::Gauge& reg_queue_depth_;
};

}  // namespace proxion::util
