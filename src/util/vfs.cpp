#include "util/vfs.h"

#include <cerrno>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define PROXION_HAVE_FSYNC 1
#endif

namespace proxion::util {

namespace {

VfsStatus fail_errno(const char* /*op*/) {
  VfsStatus s;
  s.ok = false;
  s.err = errno != 0 ? errno : EIO;
  return s;
}

/// VfsFile over stdio. fsync goes through the underlying fd so the
/// durability contract in vfs.h actually holds on POSIX.
class RealFile final : public VfsFile {
 public:
  explicit RealFile(std::FILE* f) : file_(f) {}
  RealFile(const RealFile&) = delete;
  RealFile& operator=(const RealFile&) = delete;
  ~RealFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  VfsStatus write(std::span<const std::uint8_t> bytes) override {
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return fail_errno("write");
    }
    return {};
  }

  VfsStatus seek(std::uint64_t offset) override {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return fail_errno("seek");
    }
    return {};
  }

  VfsStatus sync() override {
    if (std::fflush(file_) != 0) return fail_errno("flush");
#ifdef PROXION_HAVE_FSYNC
    if (::fsync(::fileno(file_)) != 0) return fail_errno("fsync");
#endif
    return {};
  }

  VfsStatus truncate(std::uint64_t size) override {
    if (std::fflush(file_) != 0) return fail_errno("flush");
#ifdef PROXION_HAVE_FSYNC
    if (::ftruncate(::fileno(file_), static_cast<off_t>(size)) != 0) {
      return fail_errno("truncate");
    }
#else
    (void)size;
#endif
    return {};
  }

 private:
  std::FILE* file_;
};

class RealVfs final : public Vfs {
 public:
  std::unique_ptr<VfsFile> open(const std::string& path, OpenMode mode,
                                VfsStatus* status) override {
    const char* flags = mode == OpenMode::kTruncate ? "wb" : "r+b";
    std::FILE* f = std::fopen(path.c_str(), flags);
    if (f == nullptr) {
      if (status != nullptr) *status = fail_errno("open");
      return nullptr;
    }
    if (status != nullptr) *status = {};
    return std::make_unique<RealFile>(f);
  }

  std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return std::nullopt;
    return bytes;
  }

  VfsStatus rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return fail_errno("rename");
    }
    return {};
  }

  VfsStatus remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return fail_errno("remove");
    return {};
  }

  VfsStatus sync_dir(const std::string& path) override {
#ifdef PROXION_HAVE_FSYNC
    // fsync the directory holding `path` so its entries (the create/rename
    // that just happened) are durable, not just the file contents.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return fail_errno("opendir");
    VfsStatus s;
    if (::fsync(fd) != 0) s = fail_errno("fsyncdir");
    ::close(fd);
    return s;
#else
    (void)path;
    return {};
#endif
  }
};

}  // namespace

Vfs& Vfs::real() {
  static RealVfs instance;
  return instance;
}

}  // namespace proxion::util
