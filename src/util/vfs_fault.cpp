#include "util/vfs_fault.h"

#include <algorithm>
#include <cerrno>
#include <unordered_set>
#include <utility>

namespace proxion::util {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

/// Directory part of `path` under the model's flat namespace ("" for a bare
/// filename) — only used to scope sync_dir.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

VfsStatus fail(int err) {
  VfsStatus s;
  s.ok = false;
  s.err = err;
  return s;
}

}  // namespace

/// Handle into the model. Every mutating call re-enters the owning vfs for
/// the fault decision; a handle from before the last reboot() is stale and
/// fails every operation with EIO (its process "died" in the crash).
class FaultFile final : public VfsFile {
 public:
  FaultFile(FaultInjectingVfs* vfs, FaultInjectingVfs::InodePtr inode,
            std::uint64_t epoch)
      : vfs_(vfs), inode_(std::move(inode)), epoch_(epoch) {}

  VfsStatus write(std::span<const std::uint8_t> bytes) override;
  VfsStatus seek(std::uint64_t offset) override;
  VfsStatus sync() override;
  VfsStatus truncate(std::uint64_t size) override;

 private:
  FaultInjectingVfs* vfs_;
  FaultInjectingVfs::InodePtr inode_;
  std::uint64_t epoch_;
  std::uint64_t cursor_ = 0;

  friend class FaultInjectingVfs;
};

VfsStatus FaultFile::write(std::span<const std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lk(vfs_->mu_);
  vfs_->check_halted_locked();
  if (epoch_ != vfs_->epoch_) return fail(EIO);
  const std::uint64_t op = vfs_->ops_++;
  const FaultVfsConfig& cfg = vfs_->config_;

  // Applies `n` bytes at the cursor (the part of the write that "happened").
  auto apply = [&](std::size_t n) {
    std::vector<std::uint8_t>& cur = inode_->current;
    if (cursor_ + n > cur.size()) cur.resize(cursor_ + n, 0);
    for (std::size_t i = 0; i < n; ++i) cur[cursor_ + i] = bytes[i];
    cursor_ += n;
    vfs_->bytes_written_ += n;
  };

  if (cfg.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(cfg.power_cut_at)) {
    // The cut lands mid-write: a deterministic prefix reaches the page
    // cache (whether it survives is then reboot()'s torn-tail roll).
    const std::size_t torn = bytes.empty()
                                 ? 0
                                 : static_cast<std::size_t>(
                                       splitmix64(cfg.seed ^ op * 0x9e37ULL) %
                                       (bytes.size() + 1));
    apply(torn);
    vfs_->halted_ = true;
    throw PowerCutException();
  }
  if (cfg.enospc_after_bytes >= 0) {
    const std::uint64_t budget =
        static_cast<std::uint64_t>(cfg.enospc_after_bytes);
    if (vfs_->bytes_written_ + bytes.size() > budget) {
      const std::uint64_t room =
          budget > vfs_->bytes_written_ ? budget - vfs_->bytes_written_ : 0;
      apply(static_cast<std::size_t>(
          room < bytes.size() ? room : bytes.size()));
      return fail(ENOSPC);
    }
  }
  const double r = vfs_->roll(op, 0x77);
  if (r < cfg.write_eio_rate) return fail(EIO);
  if (r < cfg.write_eio_rate + cfg.short_write_rate) {
    apply(bytes.size() / 2);
    return fail(EIO);
  }
  apply(bytes.size());
  return {};
}

VfsStatus FaultFile::seek(std::uint64_t offset) {
  std::lock_guard<std::mutex> lk(vfs_->mu_);
  vfs_->check_halted_locked();
  if (epoch_ != vfs_->epoch_) return fail(EIO);
  cursor_ = offset;  // non-mutating: no boundary claimed
  return {};
}

VfsStatus FaultFile::sync() {
  std::lock_guard<std::mutex> lk(vfs_->mu_);
  vfs_->check_halted_locked();
  if (epoch_ != vfs_->epoch_) return fail(EIO);
  const std::uint64_t op = vfs_->ops_++;
  const std::uint64_t sync_idx = vfs_->syncs_++;
  ++inode_->fsync_calls;
  const FaultVfsConfig& cfg = vfs_->config_;
  if (cfg.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(cfg.power_cut_at)) {
    vfs_->halted_ = true;  // dirty tail stays dirty; reboot() decides its fate
    throw PowerCutException();
  }
  if (cfg.fail_fsync_at >= 0 &&
      sync_idx == static_cast<std::uint64_t>(cfg.fail_fsync_at)) {
    // fsyncgate: the failed sync DROPS the dirty tail. A naive caller that
    // retried the sync would see success — over silently lost data.
    inode_->current = inode_->synced;
    return fail(EIO);
  }
  inode_->synced = inode_->current;
  return {};
}

VfsStatus FaultFile::truncate(std::uint64_t size) {
  std::lock_guard<std::mutex> lk(vfs_->mu_);
  vfs_->check_halted_locked();
  if (epoch_ != vfs_->epoch_) return fail(EIO);
  const std::uint64_t op = vfs_->ops_++;
  const FaultVfsConfig& cfg = vfs_->config_;
  if (cfg.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(cfg.power_cut_at)) {
    vfs_->halted_ = true;
    throw PowerCutException();
  }
  inode_->current.resize(static_cast<std::size_t>(size), 0);
  return {};
}

std::unique_ptr<VfsFile> FaultInjectingVfs::open(const std::string& path,
                                                 OpenMode mode,
                                                 VfsStatus* status) {
  std::lock_guard<std::mutex> lk(mu_);
  check_halted_locked();
  auto set = [&](VfsStatus s) {
    if (status != nullptr) *status = s;
  };
  if (mode == OpenMode::kReadWrite) {
    // Non-mutating: no namespace or content change happens at open time.
    auto it = live_.find(path);
    if (it == live_.end()) {
      set(fail(ENOENT));
      return nullptr;
    }
    set({});
    return std::make_unique<FaultFile>(this, it->second, epoch_);
  }
  // kTruncate: a NEW inode under the live namespace. The durable namespace
  // keeps pointing at the old inode (if any) until sync_dir — exactly the
  // window where a crash resurrects the old file.
  const std::uint64_t op = ops_++;
  if (config_.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(config_.power_cut_at)) {
    halted_ = true;
    throw PowerCutException();
  }
  InodePtr inode = std::make_shared<Inode>();
  live_[path] = inode;
  set({});
  return std::make_unique<FaultFile>(this, std::move(inode), epoch_);
}

std::optional<std::vector<std::uint8_t>> FaultInjectingVfs::read_file(
    const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  check_halted_locked();
  auto it = live_.find(path);
  if (it == live_.end()) return std::nullopt;
  // Reads are non-mutating but can still fault: key the decision on the
  // read counter so consecutive reads of one path draw fresh rolls.
  const double r = roll(reads_salt_++, 0x44);
  if (r < config_.read_eio_rate) return std::nullopt;
  return it->second->current;
}

VfsStatus FaultInjectingVfs::rename(const std::string& from,
                                    const std::string& to) {
  std::lock_guard<std::mutex> lk(mu_);
  check_halted_locked();
  const std::uint64_t op = ops_++;
  if (config_.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(config_.power_cut_at)) {
    halted_ = true;  // cut strikes before the rename lands
    throw PowerCutException();
  }
  auto it = live_.find(from);
  if (it == live_.end()) return fail(ENOENT);
  live_[to] = it->second;
  live_.erase(it);
  return {};
}

VfsStatus FaultInjectingVfs::remove(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  check_halted_locked();
  const std::uint64_t op = ops_++;
  if (config_.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(config_.power_cut_at)) {
    halted_ = true;
    throw PowerCutException();
  }
  if (live_.erase(path) == 0) return fail(ENOENT);
  return {};
}

VfsStatus FaultInjectingVfs::sync_dir(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  check_halted_locked();
  const std::uint64_t op = ops_++;
  if (config_.power_cut_at >= 0 &&
      op == static_cast<std::uint64_t>(config_.power_cut_at)) {
    halted_ = true;
    throw PowerCutException();
  }
  // Make the directory's live entries durable: creates and renames land,
  // removed entries disappear.
  const std::string dir = dir_of(path);
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (dir_of(it->first) == dir && live_.find(it->first) == live_.end()) {
      it = durable_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [name, inode] : live_) {
    if (dir_of(name) == dir) durable_[name] = inode;
  }
  return {};
}

void FaultInjectingVfs::set_config(const FaultVfsConfig& config) {
  std::lock_guard<std::mutex> lk(mu_);
  config_ = config;
}

void FaultInjectingVfs::heal() {
  std::lock_guard<std::mutex> lk(mu_);
  config_ = FaultVfsConfig{.seed = config_.seed};
}

void FaultInjectingVfs::reboot() {
  std::lock_guard<std::mutex> lk(mu_);
  ++reboots_;
  ++epoch_;
  halted_ = false;
  // Resolve each surviving inode's post-crash content exactly once (several
  // names may share an inode): the synced snapshot survives, plus — when
  // the live content was a pure append on top of it — a deterministic
  // prefix of the dirty tail (a torn append reaching the platter).
  std::unordered_set<Inode*> resolved;
  for (auto& [name, inode] : durable_) {
    if (!resolved.insert(inode.get()).second) continue;
    const std::vector<std::uint8_t>& cur = inode->current;
    const std::vector<std::uint8_t>& syn = inode->synced;
    std::vector<std::uint8_t> after = syn;
    if (cur.size() > syn.size() &&
        std::equal(syn.begin(), syn.end(), cur.begin())) {
      const std::uint64_t tail = cur.size() - syn.size();
      const std::uint64_t keep =
          splitmix64(config_.seed ^ reboots_ * 0x51ULL ^ hash_str(name)) %
          (tail + 1);
      after.insert(after.end(), cur.begin() + static_cast<std::ptrdiff_t>(
                                                  syn.size()),
                   cur.begin() + static_cast<std::ptrdiff_t>(syn.size() + keep));
    }
    inode->current = after;
    inode->synced = std::move(after);
  }
  live_ = durable_;
}

bool FaultInjectingVfs::flip_byte(const std::string& path,
                                  std::uint64_t offset) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) return false;
  Inode& inode = *it->second;
  if (offset >= inode.current.size()) return false;
  inode.current[offset] ^= 0xFF;
  if (offset < inode.synced.size()) inode.synced[offset] ^= 0xFF;
  return true;
}

std::uint64_t FaultInjectingVfs::mutating_ops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ops_;
}

std::uint64_t FaultInjectingVfs::fsync_calls(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(path);
  return it == live_.end() ? 0 : it->second->fsync_calls;
}

std::uint64_t FaultInjectingVfs::syncs_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return syncs_;
}

bool FaultInjectingVfs::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.find(path) != live_.end();
}

bool FaultInjectingVfs::durable_exists(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_.find(path) != durable_.end();
}

std::optional<std::vector<std::uint8_t>> FaultInjectingVfs::peek(
    const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) return std::nullopt;
  return it->second->current;
}

double FaultInjectingVfs::roll(std::uint64_t op, std::uint64_t salt) const {
  const std::uint64_t h = splitmix64(config_.seed ^ splitmix64(op ^ salt << 56));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjectingVfs::check_halted_locked() const {
  if (halted_) throw PowerCutException();
}

}  // namespace proxion::util
