// Chunked bump allocator for per-transaction emulation scratch. The
// interpreter's hot containers (operand stack, byte-addressed memory,
// return-data buffer) previously churned the global allocator once per
// frame; an Arena hands out pointer-bump allocations from geometrically
// growing chunks and reclaims everything at once when the owner calls
// reset() between transactions, so steady-state emulation performs zero
// malloc/free per message call.
//
// Deallocation is a no-op by design: memory is only reclaimed by reset(),
// which must not run while any arena-backed container is alive. The
// interpreter resets at top-level execute() entry, when no frames exist.
// Arenas are single-threaded — each Interpreter owns one; nothing here is
// synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace proxion::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_chunk_bytes = 64 * 1024)
      : next_chunk_bytes_(initial_chunk_bytes == 0 ? kMinChunk
                                                   : initial_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Pointer-bump allocation, aligned to `align` (which must be a power of
  /// two). Opens a new chunk when the current one cannot fit the request.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (!chunks_.empty()) {
      const std::size_t aligned = align_up(offset_, align);
      if (aligned + bytes <= chunks_.back().size) {
        offset_ = aligned + bytes;
        bytes_allocated_ += bytes;
        return chunks_.back().data.get() + aligned;
      }
    }
    // New chunk: geometric growth, but never smaller than the request.
    std::size_t chunk_bytes = next_chunk_bytes_;
    if (chunk_bytes < bytes + align) chunk_bytes = bytes + align;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(chunk_bytes),
                            chunk_bytes});
    if (next_chunk_bytes_ < kMaxChunkGrowth) next_chunk_bytes_ *= 2;
    const std::size_t aligned =
        align_up(reinterpret_cast<std::uintptr_t>(chunks_.back().data.get()),
                 align) -
        reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
    offset_ = aligned + bytes;
    bytes_allocated_ += bytes;
    return chunks_.back().data.get() + aligned;
  }

  /// Reclaims every allocation at once. Keeps only the largest chunk (the
  /// steady-state working set) so repeated transactions reuse one block
  /// instead of re-growing from the initial chunk size. Must not run while
  /// arena-backed containers are alive.
  void reset() noexcept {
    if (chunks_.size() > 1) {
      std::size_t largest = 0;
      for (std::size_t i = 1; i < chunks_.size(); ++i) {
        if (chunks_[i].size > chunks_[largest].size) largest = i;
      }
      Chunk keep = std::move(chunks_[largest]);
      chunks_.clear();
      chunks_.push_back(std::move(keep));
    }
    offset_ = 0;
    bytes_allocated_ = 0;
  }

  /// Bytes handed out since the last reset (no-op deallocate: this only
  /// ever grows within a transaction).
  std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
  /// Total chunk capacity currently held.
  std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  static constexpr std::size_t kMinChunk = 1024;
  /// Chunk sizes stop doubling here; a single request larger than this
  /// still gets a chunk of its exact size.
  static constexpr std::size_t kMaxChunkGrowth = 8u << 20;

  static constexpr std::size_t align_up(std::size_t v,
                                        std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t offset_ = 0;  // bump position inside chunks_.back()
  std::size_t next_chunk_bytes_;
  std::size_t bytes_allocated_ = 0;
};

/// std::allocator-shaped adapter over an Arena. deallocate is a no-op (the
/// arena reclaims in bulk at reset), so containers using it must not
/// outlive the owner's reset cycle.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* /*p*/, std::size_t /*n*/) noexcept {}

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator<U>& b) noexcept {
    return a.arena() == b.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace proxion::util
