// Resilience primitives for talking to an unreliable backend: retry shaping
// (exponential backoff with decorrelated jitter, bounded attempt budget,
// injectable sleep so tests never wall-clock wait), a per-backend circuit
// breaker (closed -> open after N consecutive failures, half-open probe after
// a cooldown), and a cooperative per-unit-of-work watchdog. All of it is
// backend-agnostic — the archive-node decorators in chain/ compose these.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

namespace proxion::util {

/// Shape of one call's retry loop. `max_attempts` is the total attempt
/// budget including the first try (1 = never retry). Delays follow the
/// decorrelated-jitter scheme: next = base + rand() % (min(cap, prev*3) -
/// base), so concurrent retriers spread out instead of thundering in
/// lockstep.
struct RetryPolicy {
  unsigned max_attempts = 4;
  std::uint32_t base_delay_us = 50;
  std::uint32_t max_delay_us = 5'000;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// One call's backoff state. Not thread-safe; make one per retry loop.
class BackoffSequence {
 public:
  explicit BackoffSequence(const RetryPolicy& policy,
                           std::uint64_t salt = 0) noexcept
      : policy_(policy), state_(policy.jitter_seed ^ salt),
        prev_(policy.base_delay_us) {}

  /// Next delay in microseconds (decorrelated jitter, capped).
  std::uint32_t next() noexcept;

 private:
  RetryPolicy policy_;
  std::uint64_t state_;
  std::uint32_t prev_;
};

struct CircuitBreakerConfig {
  /// Consecutive failures (across all keys) before the breaker opens. High
  /// by default: scattered per-contract faults must not trip it, only a
  /// backend that is failing everything in a row.
  unsigned failure_threshold = 32;
  /// How long an open breaker fast-fails before letting one probe through.
  std::uint32_t cooldown_us = 1'000;
};

/// Classic three-state breaker. Thread-safe; the clock is injectable so the
/// open -> half-open transition is testable without sleeping.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };
  /// Monotonic microsecond clock.
  using Clock = std::function<std::uint64_t()>;

  explicit CircuitBreaker(CircuitBreakerConfig config = {}, Clock clock = {});

  /// May this call proceed? Open -> false until the cooldown elapses, then
  /// half-open admits exactly one probe; the rest fast-fail until the probe
  /// resolves via on_success/on_failure.
  bool allow();
  void on_success();
  void on_failure();

  /// Back to closed with zeroed failure count (e.g. when a resume pass
  /// declares the backend healthy again). Trip count is preserved.
  void reset();

  State state() const;
  std::uint64_t trips() const noexcept {
    return trips_.load(std::memory_order_relaxed);
  }

  /// Observe state transitions (open/half-open/closed) — the introspection
  /// plane publishes them to /healthz and the event log. Invoked OUTSIDE the
  /// breaker's lock, after the transition committed, so the listener may
  /// call back into the breaker (state(), trips()) freely; with concurrent
  /// transitions, notifications can arrive out of order (each carries the
  /// state its own transition produced, not necessarily the latest). Set
  /// before the breaker sees traffic; not thread-safe against in-flight
  /// allow()/on_*() calls.
  using StateListener = std::function<void(State)>;
  void set_state_listener(StateListener listener) {
    listener_ = std::move(listener);
  }

 private:
  void trip_locked(std::uint64_t now);
  void notify(State s) {
    if (listener_) listener_(s);
  }

  CircuitBreakerConfig config_;
  Clock clock_;
  StateListener listener_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  unsigned consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t reopen_at_us_ = 0;
  std::atomic<std::uint64_t> trips_{0};
};

/// Thrown by Watchdog::check when a unit of work exceeds its wall budget.
class WatchdogExpired : public std::runtime_error {
 public:
  explicit WatchdogExpired(const std::string& what)
      : std::runtime_error(what) {}
};

/// Cooperative wall-clock budget for one unit of work. The holder calls
/// check() at its own cancellation points; a budget of 0 disables the dog.
class Watchdog {
 public:
  explicit Watchdog(double budget_ms) noexcept
      : budget_ms_(budget_ms), start_(std::chrono::steady_clock::now()) {}

  double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  bool expired() const noexcept {
    return budget_ms_ > 0.0 && elapsed_ms() > budget_ms_;
  }
  /// Throws WatchdogExpired naming `where` if the budget is spent.
  void check(const char* where) const;

 private:
  double budget_ms_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace proxion::util
