// The filesystem abstraction seam for the durable store: every byte the
// checkpoint journal and its manifest put on (or read off) disk goes through
// a `Vfs`, the storage-side twin of `chain::IArchiveNode`. Production uses
// the process-wide `Vfs::real()` (stdio + POSIX fsync, including the
// parent-directory fsync that makes rename(2) and file creation durable);
// tests swap in `util::FaultInjectingVfs` (vfs_fault.h), an in-memory
// filesystem that models exactly which bytes and directory entries survive
// a power cut.
//
// Durability contract the store relies on (and RealVfs implements):
//   - VfsFile::sync() returning ok means every byte written to the file so
//     far is durable. A FAILED sync means the dirty range is in an unknown
//     state and may be silently dropped by the page cache (fsyncgate):
//     callers must treat the file as dead, never "retry the fsync".
//   - rename() is atomic (POSIX rename(2)) but the *directory entry* is only
//     durable after sync_dir() on the containing directory; same for the
//     entry created by open(kTruncate). Skipping sync_dir is the classic
//     power-loss hole where a crash un-does a committed rename.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace proxion::util {

/// Outcome of one Vfs operation. `err` is the operation's errno (0 when ok).
struct VfsStatus {
  bool ok = true;
  int err = 0;

  explicit operator bool() const noexcept { return ok; }
};

/// An open file handle. Writes land at the cursor and advance it; partial
/// writes report failure (the prefix may have been applied — callers that
/// care about torn state must re-scan, which is what the journal's
/// valid-prefix recovery does).
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  virtual VfsStatus write(std::span<const std::uint8_t> bytes) = 0;
  virtual VfsStatus seek(std::uint64_t offset) = 0;
  /// Flush + fsync: on ok, everything written so far is durable. On failure,
  /// dirty data is in an unknown state (see file comment) — fail-stop.
  virtual VfsStatus sync() = 0;
  virtual VfsStatus truncate(std::uint64_t size) = 0;
};

class Vfs {
 public:
  enum class OpenMode {
    kTruncate,   // create or truncate, write cursor at 0 ("wb")
    kReadWrite,  // existing file, preserve content ("r+b")
  };

  virtual ~Vfs() = default;

  /// Null on failure; `status` (when non-null) carries the errno.
  virtual std::unique_ptr<VfsFile> open(const std::string& path, OpenMode mode,
                                        VfsStatus* status = nullptr) = 0;
  /// Whole-file read; nullopt when missing or unreadable.
  virtual std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& path) = 0;
  /// Atomic replace (POSIX rename(2)); durable only after sync_dir().
  virtual VfsStatus rename(const std::string& from, const std::string& to) = 0;
  virtual VfsStatus remove(const std::string& path) = 0;
  /// fsyncs the directory CONTAINING `path`, making its entries (creates,
  /// renames, removes) durable. No-op success on platforms without
  /// directory fsync.
  virtual VfsStatus sync_dir(const std::string& path) = 0;

  /// The process-wide real filesystem.
  static Vfs& real();
};

}  // namespace proxion::util
