// A deterministic, seed-driven fault-injecting decorator over any
// IArchiveNode, modelling the failure modes a real archive node exhibits
// under load: transient connection errors, timeouts, rate-limit bursts, and
// bounded stale reads (the node hasn't synced the requested height yet).
//
// Whether a request faults is a pure function of (seed, request key): the
// same (account, slot, block) query is faulty or healthy regardless of
// thread interleaving or call order. A faulty request fails a bounded number
// of attempts (failures_per_fault, or rate_limit_burst for rate limits) and
// then heals permanently — so a retrying caller always converges to the
// inner node's true answer, and a fault-injected sweep with retries enabled
// is bit-identical to a fault-free one.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "chain/archive_node.h"

namespace proxion::chain {

struct FaultProfile {
  std::uint64_t seed = 1;
  /// Per-request probabilities of each failure mode; they partition [0,1)
  /// cumulatively, so their sum is the overall fault rate (<= 1).
  double transient_rate = 0.0;
  double timeout_rate = 0.0;
  double rate_limit_rate = 0.0;
  double stale_read_rate = 0.0;
  /// Attempts a faulty request fails before healing. Set above the caller's
  /// retry budget to model a permanently-broken request.
  unsigned failures_per_fault = 1;
  /// Rate-limited requests fail this many attempts (bursts outlast blips).
  unsigned rate_limit_burst = 3;
  bool fault_get_code = true;
  bool fault_get_storage_at = true;

  double total_rate() const noexcept {
    return transient_rate + timeout_rate + rate_limit_rate + stale_read_rate;
  }
};

class FaultInjectingArchiveNode final : public IArchiveNode {
 public:
  FaultInjectingArchiveNode(const IArchiveNode& inner, FaultProfile profile)
      : inner_(inner), profile_(profile) {}

  U256 get_storage_at(const Address& account, const U256& slot,
                      std::uint64_t block) const override;
  /// Every query draws its per-request fault decision (same keys as the
  /// scalar path) BEFORE the inner batch runs, so a faulty element fails the
  /// batch without the backend returning partial results.
  std::vector<U256> get_storage_at_many(
      std::span<const StorageQuery> queries) const override;
  Bytes get_code(const Address& account) const override;
  std::uint64_t latest_block() const override { return inner_.latest_block(); }

  std::uint64_t get_storage_at_calls() const override {
    return inner_.get_storage_at_calls();
  }
  std::uint64_t get_code_calls() const override {
    return inner_.get_code_calls();
  }
  void reset_counters() const override { inner_.reset_counters(); }

  /// Faults injected so far (thrown RpcErrors).
  std::uint64_t injected_faults() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Swap the fault profile (e.g. a resume pass after the "outage" ends).
  /// Per-request attempt history is kept: already-healed requests stay
  /// healed.
  void set_profile(const FaultProfile& profile) {
    std::lock_guard<std::mutex> lk(mu_);
    profile_ = profile;
  }
  /// Stop injecting anything (equivalent to an all-zero-rate profile).
  void heal() {
    std::lock_guard<std::mutex> lk(mu_);
    profile_ = FaultProfile{.seed = profile_.seed};
  }

 private:
  /// Throws the request's assigned RpcError while its failure budget lasts.
  void maybe_fault(std::uint64_t request_key) const;

  const IArchiveNode& inner_;
  mutable std::mutex mu_;
  FaultProfile profile_;
  /// Attempts seen per faulty request key (only faulty keys are tracked).
  mutable std::unordered_map<std::uint64_t, unsigned> attempts_;
  mutable std::atomic<std::uint64_t> injected_{0};
};

}  // namespace proxion::chain
