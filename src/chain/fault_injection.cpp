#include "chain/fault_injection.h"

#include <exception>

namespace proxion::chain {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Distinguishes get_storage_at keys from get_code keys so the two call
// families draw independent fault decisions for the same account.
constexpr std::uint64_t kStorageTag = 0x5354'4f52'4147'45ull;  // "STORAGE"
constexpr std::uint64_t kCodeTag = 0x434f'4445ull;             // "CODE"

std::uint64_t mix_request(std::uint64_t seed, std::uint64_t tag,
                          const evm::Address& account, const evm::U256& slot,
                          std::uint64_t block) {
  std::uint64_t h = splitmix64(seed ^ tag);
  h = splitmix64(h ^ evm::AddressHasher{}(account));
  h = splitmix64(h ^ static_cast<std::uint64_t>(evm::U256Hasher{}(slot)));
  h = splitmix64(h ^ block);
  return h;
}

double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view to_string(RpcErrorKind kind) noexcept {
  switch (kind) {
    case RpcErrorKind::kTransient: return "transient";
    case RpcErrorKind::kTimeout: return "timeout";
    case RpcErrorKind::kRateLimited: return "rate-limited";
    case RpcErrorKind::kStaleRead: return "stale-read";
    case RpcErrorKind::kCircuitOpen: return "circuit-open";
    case RpcErrorKind::kExhausted: return "exhausted";
  }
  return "unknown";
}

void FaultInjectingArchiveNode::maybe_fault(std::uint64_t request_key) const {
  RpcErrorKind kind;
  unsigned budget;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const double u = unit_interval(request_key);
    double edge = profile_.transient_rate;
    if (u < edge) {
      kind = RpcErrorKind::kTransient;
      budget = profile_.failures_per_fault;
    } else if (u < (edge += profile_.timeout_rate)) {
      kind = RpcErrorKind::kTimeout;
      budget = profile_.failures_per_fault;
    } else if (u < (edge += profile_.rate_limit_rate)) {
      kind = RpcErrorKind::kRateLimited;
      budget = profile_.rate_limit_burst;
    } else if (u < (edge += profile_.stale_read_rate)) {
      kind = RpcErrorKind::kStaleRead;
      budget = profile_.failures_per_fault;
    } else {
      return;  // healthy request
    }
    const unsigned seen = attempts_[request_key]++;
    if (seen >= budget) return;  // healed: budget already spent
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  throw RpcError(kind, std::string("injected ") + std::string(to_string(kind)) +
                           " fault (key " + std::to_string(request_key) + ")");
}

U256 FaultInjectingArchiveNode::get_storage_at(const Address& account,
                                               const U256& slot,
                                               std::uint64_t block) const {
  std::uint64_t seed;
  bool armed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seed = profile_.seed;
    armed = profile_.fault_get_storage_at && profile_.total_rate() > 0.0;
  }
  if (armed) {
    maybe_fault(mix_request(seed, kStorageTag, account, slot, block));
  }
  return inner_.get_storage_at(account, slot, block);
}

std::vector<U256> FaultInjectingArchiveNode::get_storage_at_many(
    std::span<const StorageQuery> queries) const {
  std::uint64_t seed;
  bool armed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seed = profile_.seed;
    armed = profile_.fault_get_storage_at && profile_.total_rate() > 0.0;
  }
  if (armed) {
    // Fault decisions are per request key, identical to the scalar path.
    // One batch attempt consumes the fault budget of EVERY armed key (a
    // batched RPC round-trips each element once), so a retried batch heals
    // in the same number of attempts as the scalar path would per key; the
    // first fault still aborts the whole batch before the backend is asked.
    std::exception_ptr first;
    for (const StorageQuery& q : queries) {
      try {
        maybe_fault(mix_request(seed, kStorageTag, q.account, q.slot, q.block));
      } catch (const RpcError&) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }
  return inner_.get_storage_at_many(queries);
}

Bytes FaultInjectingArchiveNode::get_code(const Address& account) const {
  std::uint64_t seed;
  bool armed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seed = profile_.seed;
    armed = profile_.fault_get_code && profile_.total_rate() > 0.0;
  }
  if (armed) {
    maybe_fault(mix_request(seed, kCodeTag, account, U256{}, 0));
  }
  return inner_.get_code(account);
}

}  // namespace proxion::chain
