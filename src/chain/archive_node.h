// The archive-node facade Proxion queries: eth_getStorageAt at arbitrary
// heights plus code retrieval, with an API-call counter so the efficiency
// claim of Algorithm 1 (≈26 getStorageAt calls per proxy instead of one per
// block) is directly measurable.
#pragma once

#include <atomic>
#include <cstdint>

#include "chain/blockchain.h"

namespace proxion::chain {

class ArchiveNode {
 public:
  explicit ArchiveNode(const Blockchain& chain) : chain_(chain) {}

  /// eth_getStorageAt(account, slot, block). Counted.
  U256 get_storage_at(const Address& account, const U256& slot,
                      std::uint64_t block) const {
    ++get_storage_at_calls_;
    return chain_.storage_at(account, slot, block);
  }

  /// eth_getCode at the latest block. Counted.
  Bytes get_code(const Address& account) const {
    ++get_code_calls_;
    // Blockchain::get_code is non-const only because Host requires it.
    return const_cast<Blockchain&>(chain_).get_code(account);
  }

  std::uint64_t latest_block() const noexcept { return chain_.height(); }

  std::uint64_t get_storage_at_calls() const noexcept {
    return get_storage_at_calls_;
  }
  std::uint64_t get_code_calls() const noexcept { return get_code_calls_; }
  void reset_counters() const noexcept {
    get_storage_at_calls_ = 0;
    get_code_calls_ = 0;
  }

 private:
  const Blockchain& chain_;
  mutable std::atomic<std::uint64_t> get_storage_at_calls_{0};
  mutable std::atomic<std::uint64_t> get_code_calls_{0};
};

}  // namespace proxion::chain
