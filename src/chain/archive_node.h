// The archive-node facade Proxion queries: eth_getStorageAt at arbitrary
// heights plus code retrieval, with an API-call counter so the efficiency
// claim of Algorithm 1 (≈26 getStorageAt calls per proxy instead of one per
// block) is directly measurable.
//
// `IArchiveNode` is the seam the sweep pipeline talks through. The
// in-process `ArchiveNode` is one implementation; decorators stack on top of
// any other: `FaultInjectingArchiveNode` (chain/fault_injection.h) models a
// real node's failure modes, `ResilientArchiveNode` (chain/resilient_node.h)
// adds retries and a circuit breaker. Backend failures surface as the typed
// `RpcError`, never as silently-wrong data.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "chain/blockchain.h"
#include "obs/metrics.h"

namespace proxion::chain {

/// Failure taxonomy of an archive-node RPC, mirroring what a JSON-RPC client
/// actually sees against a loaded node.
enum class RpcErrorKind : std::uint8_t {
  kTransient,    // connection reset / 5xx; a fresh attempt may succeed
  kTimeout,      // deadline expired before a response arrived
  kRateLimited,  // 429 burst; succeeds again after backing off
  kStaleRead,    // node not yet synced to the requested height
  kCircuitOpen,  // local breaker fast-fail; the backend was never asked
  kExhausted,    // retry budget spent without a success; terminal
};

std::string_view to_string(RpcErrorKind kind) noexcept;

class RpcError : public std::runtime_error {
 public:
  RpcError(RpcErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  RpcErrorKind kind() const noexcept { return kind_; }
  /// Could another attempt succeed? Everything except the two terminal
  /// local verdicts (kExhausted, kCircuitOpen) is worth retrying.
  bool retriable() const noexcept {
    return kind_ != RpcErrorKind::kExhausted &&
           kind_ != RpcErrorKind::kCircuitOpen;
  }

 private:
  RpcErrorKind kind_;
};

/// One eth_getStorageAt probe, for the batched read path.
struct StorageQuery {
  Address account;
  U256 slot;
  std::uint64_t block = 0;
};

/// Abstract archive-node endpoint. Query methods may throw RpcError; the
/// counters are forwarded through decorators so callers always observe the
/// innermost facade's totals.
class IArchiveNode {
 public:
  virtual ~IArchiveNode() = default;

  /// eth_getStorageAt(account, slot, block).
  virtual U256 get_storage_at(const Address& account, const U256& slot,
                              std::uint64_t block) const = 0;

  /// Batched eth_getStorageAt: results[i] answers queries[i]. The default
  /// implementation loops the scalar call; decorators override it to apply
  /// their policy to the whole batch (one retry ladder, one trace span, one
  /// coalescing pass) instead of per element. On throw, no partial results
  /// are returned — callers retry or fail the whole batch.
  virtual std::vector<U256> get_storage_at_many(
      std::span<const StorageQuery> queries) const {
    std::vector<U256> out;
    out.reserve(queries.size());
    for (const StorageQuery& q : queries) {
      out.push_back(get_storage_at(q.account, q.slot, q.block));
    }
    return out;
  }

  /// eth_getCode at the latest block.
  virtual Bytes get_code(const Address& account) const = 0;
  virtual std::uint64_t latest_block() const = 0;

  virtual std::uint64_t get_storage_at_calls() const = 0;
  virtual std::uint64_t get_code_calls() const = 0;
  virtual void reset_counters() const = 0;
};

namespace detail {
/// Process-wide RPC totals in the metrics registry, aggregated across every
/// ArchiveNode instance. Cached references so the hot path skips the
/// registry's name lookup.
inline obs::Counter& global_storage_calls() {
  static obs::Counter& c =
      obs::Registry::global().counter("chain.archive.get_storage_at_calls");
  return c;
}
inline obs::Counter& global_code_calls() {
  static obs::Counter& c =
      obs::Registry::global().counter("chain.archive.get_code_calls");
  return c;
}
}  // namespace detail

/// The in-process implementation over the simulated chain. Never fails.
class ArchiveNode final : public IArchiveNode {
 public:
  explicit ArchiveNode(const Blockchain& chain) : chain_(chain) {}

  /// eth_getStorageAt(account, slot, block). Counted.
  U256 get_storage_at(const Address& account, const U256& slot,
                      std::uint64_t block) const override {
    get_storage_at_calls_.add(1);
    detail::global_storage_calls().add(1);
    return chain_.storage_at(account, slot, block);
  }

  /// Batched eth_getStorageAt: one counter add for the whole batch, then the
  /// in-process chain answers each query (still one storage lookup per query
  /// — a real JSON-RPC backend would answer these in a single round trip).
  std::vector<U256> get_storage_at_many(
      std::span<const StorageQuery> queries) const override {
    get_storage_at_calls_.add(queries.size());
    detail::global_storage_calls().add(queries.size());
    std::vector<U256> out;
    out.reserve(queries.size());
    for (const StorageQuery& q : queries) {
      out.push_back(chain_.storage_at(q.account, q.slot, q.block));
    }
    return out;
  }

  /// eth_getCode at the latest block. Counted.
  Bytes get_code(const Address& account) const override {
    get_code_calls_.add(1);
    detail::global_code_calls().add(1);
    return chain_.code_at(account);
  }

  std::uint64_t latest_block() const override { return chain_.height(); }

  // Counter-snapshot semantics: the counters are monotonic relaxed
  // (obs::Counter shards) incremented from every pipeline worker. A getter
  // returns a point-in-time snapshot of that one counter; reading both
  // getters is NOT an atomic pair (a call landing between the two loads
  // appears in one but not the other). That is fine for their only use —
  // end-of-phase accounting after the workers quiesced — and relaxed
  // ordering keeps the hot path to a plain atomic increment. The per-node
  // counts also feed the process-wide `chain.archive.*` registry totals
  // (which reset_counters leaves alone: registry totals are monotonic).
  std::uint64_t get_storage_at_calls() const override {
    return get_storage_at_calls_.value();
  }
  std::uint64_t get_code_calls() const override {
    return get_code_calls_.value();
  }
  void reset_counters() const override {
    get_storage_at_calls_.reset();
    get_code_calls_.reset();
  }

 private:
  const Blockchain& chain_;
  mutable obs::Counter get_storage_at_calls_;
  mutable obs::Counter get_code_calls_;
};

}  // namespace proxion::chain
