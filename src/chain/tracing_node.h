// Telemetry decorator over any IArchiveNode: times every RPC *attempt*
// against an injectable clock, records the latency into a histogram, and
// (when a tracer is attached) emits one span per attempt. The pipeline
// stacks it UNDER the retry layer — ResilientArchiveNode -> TracingNode ->
// backend — so a call that retries three times shows three "rpc:*" spans
// and three histogram samples, which is what the paper's per-RPC cost
// accounting needs (§6.1 counts getStorageAt calls, not logical queries).
//
// Failed attempts are recorded too (span arg ok=0) before the RpcError
// propagates: fault latency is part of the latency distribution.
//
// Both sinks are optional; with histogram == nullptr and tracer == nullptr
// every query is a plain forward (the pipeline simply doesn't install the
// decorator in that case).
#pragma once

#include <utility>

#include "chain/archive_node.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxion::chain {

class TracingArchiveNode final : public IArchiveNode {
 public:
  TracingArchiveNode(const IArchiveNode& inner, obs::Histogram* latency_ns,
                     obs::Tracer* tracer, obs::TraceClock clock = {})
      : inner_(inner), latency_(latency_ns), tracer_(tracer),
        clock_(clock ? std::move(clock)
                     : obs::TraceClock(&obs::steady_now_ns)) {}

  U256 get_storage_at(const Address& account, const U256& slot,
                      std::uint64_t block) const override {
    return timed("rpc:get_storage_at",
                 [&] { return inner_.get_storage_at(account, slot, block); });
  }
  /// One histogram sample and one span for the whole batch (arg n = batch
  /// size); per-element spans would dominate the cost being measured.
  std::vector<U256> get_storage_at_many(
      std::span<const StorageQuery> queries) const override {
    const std::uint64_t start = clock_();
    try {
      auto result = inner_.get_storage_at_many(queries);
      finish_batch(start, static_cast<std::int64_t>(queries.size()));
      return result;
    } catch (...) {
      finish_batch(start, static_cast<std::int64_t>(queries.size()));
      throw;
    }
  }
  Bytes get_code(const Address& account) const override {
    return timed("rpc:get_code", [&] { return inner_.get_code(account); });
  }
  std::uint64_t latest_block() const override { return inner_.latest_block(); }

  std::uint64_t get_storage_at_calls() const override {
    return inner_.get_storage_at_calls();
  }
  std::uint64_t get_code_calls() const override {
    return inner_.get_code_calls();
  }
  void reset_counters() const override { inner_.reset_counters(); }

 private:
  template <typename Fn>
  auto timed(const char* name, Fn&& fn) const -> decltype(fn()) {
    const std::uint64_t start = clock_();
    try {
      auto result = fn();
      finish(name, start, /*ok=*/true);
      return result;
    } catch (...) {
      finish(name, start, /*ok=*/false);
      throw;
    }
  }

  void finish(const char* name, std::uint64_t start, bool ok) const {
    const std::uint64_t dur = clock_() - start;
    if (latency_ != nullptr) latency_->record(dur);
    // sample_this_span() runs before any argument marshalling so sampled-out
    // spans cost one TLS decrement, not a record() call.
    if (tracer_ != nullptr && tracer_->sample_this_span()) {
      tracer_->record(name, start, dur, "ok", ok ? 1 : 0);
    }
  }

  void finish_batch(std::uint64_t start, std::int64_t n) const {
    const std::uint64_t dur = clock_() - start;
    if (latency_ != nullptr) latency_->record(dur);
    if (tracer_ != nullptr && tracer_->sample_this_span()) {
      tracer_->record("rpc:get_storage_at_many", start, dur, "n", n);
    }
  }

  const IArchiveNode& inner_;
  obs::Histogram* latency_;
  obs::Tracer* tracer_;
  obs::TraceClock clock_;
};

}  // namespace proxion::chain
