// A simulated Ethereum chain: accounts, block production, transaction
// execution through the EVM interpreter, and — crucially for the paper — a
// full per-slot storage *history journal* so that `getStorageAt(addr, slot,
// height)` works at any past height, exactly like a mainnet archive node.
//
// The chain also records every internal transaction (call-family edge) the
// way a transaction-tracing indexer would; the CRUSH baseline mines that log.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "evm/host.h"
#include "evm/interpreter.h"
#include "evm/types.h"

namespace proxion::chain {

using evm::Address;
using evm::Bytes;
using evm::BytesView;
using evm::U256;

struct Account {
  std::uint64_t nonce = 0;
  U256 balance;
  Bytes code;
  std::unordered_map<U256, U256, evm::U256Hasher> storage;
};

/// One call-family edge observed while tracing a transaction.
struct InternalTx {
  std::uint64_t block = 0;
  evm::CallKind kind = evm::CallKind::kCall;
  Address from;
  Address to;
  int depth = 0;
  std::uint32_t selector = 0;  // first 4 bytes of calldata (0 if shorter)
  bool in_fallback_position = false;  // calldata forwarded verbatim
};

struct ContractMeta {
  std::uint64_t deploy_block = 0;
  bool has_incoming_tx = false;  // ever the target of an external tx
  bool destroyed = false;
};

class Blockchain final : public evm::Host {
 public:
  Blockchain();

  // ---- block production -------------------------------------------------
  /// Seals the current block and opens the next one.
  void mine_block();
  /// Mines until the chain reaches `target` height.
  void mine_until(std::uint64_t target);
  std::uint64_t height() const noexcept { return height_; }

  // ---- head subscription / per-block change feeds -------------------------
  /// Invoked synchronously on the mining thread after every height advance
  /// (mine_until fires once, at the final height). The chain follower's
  /// wake-up seam — an eth_subscribe("newHeads") stand-in.
  using HeadCallback = std::function<void(std::uint64_t new_height)>;

  /// Registers `cb`; returns a token for unsubscribe_head(). Subscription
  /// changes must not race block production — the chain is single-writer,
  /// and callbacks run inline on that writer.
  std::uint64_t subscribe_head(HeadCallback cb);
  void unsubscribe_head(std::uint64_t token);

  /// Addresses that received code in `block` (deploy / deploy_runtime /
  /// set_code), first-occurrence order. What an indexer derives from
  /// per-block CREATE traces; the follower's new-contract feed.
  std::vector<Address> deployments_in(std::uint64_t block) const;

  /// Accounts whose storage was written in `block` (deduplicated,
  /// first-occurrence order). Implementation-slot and beacon writes are
  /// storage writes, so this feed is what makes an incremental lap
  /// worthwhile after an upgrade lands.
  std::vector<Address> storage_writers_in(std::uint64_t block) const;

  // ---- transactions -------------------------------------------------------
  /// Deploys via init code (CREATE semantics from an externally owned
  /// account). Returns the new contract address, or nullopt if init reverted.
  std::optional<Address> deploy(const Address& from, BytesView init_code,
                                const U256& value = {});

  /// Installs runtime code directly at a fresh CREATE-derived address —
  /// the shortcut datagen uses to lay down large synthetic populations
  /// without running constructors. Records the deployment block.
  Address deploy_runtime(const Address& from, Bytes runtime_code);

  /// External message call; traced, recorded in the internal-tx log, and
  /// counted as "this contract has transactions".
  evm::ExecResult call(const Address& from, const Address& to,
                       Bytes calldata, const U256& value = {},
                       std::uint64_t gas = 10'000'000);

  /// Funds an account out of thin air (test/datagen faucet).
  void fund(const Address& account, const U256& amount);

  /// §8.2: Proxion "may apply to several other blockchains" — any
  /// EVM-compatible chain differs here only by its chain id (and workload
  /// mix, which datagen controls).
  void set_chain_id(std::uint64_t chain_id) {
    block_ctx_.chain_id = U256{chain_id};
  }

  // ---- archive queries ------------------------------------------------------
  /// Value of `slot` of `account` as of the end of block `block` (i.e. after
  /// all transactions in blocks <= block). This is eth_getStorageAt.
  U256 storage_at(const Address& account, const U256& slot,
                  std::uint64_t block) const;

  /// Deployed code of `account` at the latest block (eth_getCode). The
  /// read-only twin of Host::get_code, which must stay non-const for the
  /// interpreter's Host contract.
  Bytes code_at(const Address& account) const;

  const std::vector<InternalTx>& internal_txs() const noexcept {
    return internal_txs_;
  }
  /// Selectors of external transactions ever sent to `account` (what an
  /// indexer would extract from tx calldata). Empty if none.
  std::vector<std::uint32_t> external_selectors(const Address& account) const {
    const auto it = external_selectors_.find(account);
    return it == external_selectors_.end() ? std::vector<std::uint32_t>{}
                                           : it->second;
  }
  const std::unordered_map<Address, ContractMeta, evm::AddressHasher>&
  contracts() const noexcept {
    return contract_meta_;
  }
  std::optional<ContractMeta> contract_meta(const Address& a) const {
    const auto it = contract_meta_.find(a);
    if (it == contract_meta_.end()) return std::nullopt;
    return it->second;
  }

  // ---- Host interface ------------------------------------------------------
  Bytes get_code(const Address& a) override;
  U256 get_storage(const Address& a, const U256& slot) override;
  void set_storage(const Address& a, const U256& slot,
                   const U256& value) override;
  U256 get_balance(const Address& a) override;
  void set_balance(const Address& a, const U256& value) override;
  std::uint64_t get_nonce(const Address& a) override;
  void set_nonce(const Address& a, std::uint64_t nonce) override;
  void set_code(const Address& a, Bytes code) override;
  bool account_exists(const Address& a) override;
  U256 block_hash(std::uint64_t block_number) override;
  const evm::BlockContext& block_context() override { return block_ctx_; }

 private:
  class TxTracer;

  void journal_write(const Address& a, const U256& slot, const U256& value);
  void note_contract(const Address& a);
  void notify_head();

  std::unordered_map<Address, Account, evm::AddressHasher> accounts_;
  std::uint64_t height_ = 0;
  evm::BlockContext block_ctx_;

  // (block, value) change log per account+slot, blocks ascending.
  using SlotHistory = std::vector<std::pair<std::uint64_t, U256>>;
  std::unordered_map<Address,
                     std::unordered_map<U256, SlotHistory, evm::U256Hasher>,
                     evm::AddressHasher>
      storage_history_;

  std::vector<InternalTx> internal_txs_;
  std::unordered_map<Address, std::vector<std::uint32_t>, evm::AddressHasher>
      external_selectors_;
  std::unordered_map<Address, ContractMeta, evm::AddressHasher> contract_meta_;

  // ---- head subscription + change feeds ----------------------------------
  std::vector<std::pair<std::uint64_t, HeadCallback>> head_subs_;
  std::uint64_t next_head_token_ = 1;
  /// Per-block change feeds, appended as writes/deploys happen. Dedup is
  /// O(1) via the last-block-recorded maps: an account is listed once per
  /// block however many slots it wrote.
  std::unordered_map<std::uint64_t, std::vector<Address>> deploys_by_block_;
  std::unordered_map<std::uint64_t, std::vector<Address>> writers_by_block_;
  std::unordered_map<Address, std::uint64_t, evm::AddressHasher>
      last_write_recorded_;
  std::unordered_map<Address, std::uint64_t, evm::AddressHasher>
      last_deploy_recorded_;
};

}  // namespace proxion::chain
