// Retry/backoff + circuit-breaker decorator over any IArchiveNode. Every
// query runs under util::RetryPolicy (exponential backoff with decorrelated
// jitter, bounded attempt budget); a per-backend CircuitBreaker trips after
// a run of consecutive failures and half-opens on a probe after its
// cooldown, so a dead backend fails fast instead of stalling every worker in
// its full retry ladder. Terminal outcomes surface as RpcError kExhausted
// (budget spent) or kCircuitOpen (breaker fast-fail); transient errors never
// escape unless retries are exhausted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "chain/archive_node.h"
#include "util/resilience.h"

namespace proxion::chain {

class ResilientArchiveNode final : public IArchiveNode {
 public:
  /// Injectable sleep (microseconds) so tests observe backoff without
  /// wall-clock waiting.
  using SleepFn = std::function<void(std::uint32_t)>;

  explicit ResilientArchiveNode(const IArchiveNode& inner,
                                util::RetryPolicy policy = {},
                                util::CircuitBreakerConfig breaker = {},
                                SleepFn sleep = {})
      : inner_(inner), policy_(policy), breaker_(breaker),
        sleep_(sleep ? std::move(sleep) : [](std::uint32_t us) {
          if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
        }) {
    if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  }

  U256 get_storage_at(const Address& account, const U256& slot,
                      std::uint64_t block) const override {
    return with_retries("get_storage_at", [&] {
      return inner_.get_storage_at(account, slot, block);
    });
  }
  /// The whole batch rides one retry ladder: a mid-batch failure retries the
  /// batch from the top (the inner call returns no partial results).
  std::vector<U256> get_storage_at_many(
      std::span<const StorageQuery> queries) const override {
    return with_retries("get_storage_at_many", [&] {
      return inner_.get_storage_at_many(queries);
    });
  }
  Bytes get_code(const Address& account) const override {
    return with_retries("get_code", [&] { return inner_.get_code(account); });
  }
  std::uint64_t latest_block() const override { return inner_.latest_block(); }

  std::uint64_t get_storage_at_calls() const override {
    return inner_.get_storage_at_calls();
  }
  std::uint64_t get_code_calls() const override {
    return inner_.get_code_calls();
  }
  void reset_counters() const override { inner_.reset_counters(); }

  /// Backoff retries performed (i.e. attempts beyond each call's first).
  std::uint64_t retries() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Backend failures observed (each failed attempt counts once).
  std::uint64_t faults_seen() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }
  /// Calls abandoned with kExhausted or kCircuitOpen.
  std::uint64_t giveups() const noexcept {
    return giveups_.load(std::memory_order_relaxed);
  }
  util::CircuitBreaker& breaker() const noexcept { return breaker_; }

 private:
  template <typename Fn>
  auto with_retries(const char* what, Fn&& fn) const -> decltype(fn()) {
    util::BackoffSequence backoff(
        policy_, jitter_salt_.fetch_add(1, std::memory_order_relaxed));
    for (unsigned attempt = 1;; ++attempt) {
      if (!breaker_.allow()) {
        giveups_.fetch_add(1, std::memory_order_relaxed);
        throw RpcError(RpcErrorKind::kCircuitOpen,
                       std::string("circuit open, fast-failing ") + what);
      }
      try {
        auto result = fn();
        breaker_.on_success();
        return result;
      } catch (const RpcError& e) {
        faults_.fetch_add(1, std::memory_order_relaxed);
        breaker_.on_failure();
        if (!e.retriable() || attempt >= policy_.max_attempts) {
          giveups_.fetch_add(1, std::memory_order_relaxed);
          throw RpcError(RpcErrorKind::kExhausted,
                         std::string(what) + " failed after " +
                             std::to_string(attempt) +
                             " attempts; last error: " + e.what());
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
        sleep_(backoff.next());
      }
    }
  }

  const IArchiveNode& inner_;
  util::RetryPolicy policy_;
  mutable util::CircuitBreaker breaker_;
  SleepFn sleep_;
  mutable std::atomic<std::uint64_t> jitter_salt_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> faults_{0};
  mutable std::atomic<std::uint64_t> giveups_{0};
};

}  // namespace proxion::chain
