#include "chain/blockchain.h"

#include <algorithm>

#include "crypto/eth.h"

namespace proxion::chain {

/// Observer installed for every externally submitted transaction; records
/// call-family edges into the chain's internal-transaction log, the way a
/// tracing indexer (or Google BigQuery's traces table) would.
class Blockchain::TxTracer final : public evm::TraceObserver {
 public:
  TxTracer(Blockchain& chain, Bytes top_level_calldata)
      : chain_(chain), top_calldata_(std::move(top_level_calldata)) {}

  void on_call(evm::CallKind kind, int depth, const Address& from,
               const Address& to, BytesView calldata) override {
    if (depth == 0) return;  // the external call itself is not "internal"
    InternalTx tx;
    tx.block = chain_.height_;
    tx.kind = kind;
    tx.from = from;
    tx.to = to;
    tx.depth = depth;
    if (calldata.size() >= 4) {
      tx.selector = (std::uint32_t{calldata[0]} << 24) |
                    (std::uint32_t{calldata[1]} << 16) |
                    (std::uint32_t{calldata[2]} << 8) |
                    std::uint32_t{calldata[3]};
    }
    tx.in_fallback_position =
        calldata.size() == top_calldata_.size() &&
        std::equal(calldata.begin(), calldata.end(), top_calldata_.begin());
    chain_.internal_txs_.push_back(tx);
  }

 private:
  Blockchain& chain_;
  Bytes top_calldata_;
};

Blockchain::Blockchain() {
  block_ctx_.number = U256{0};
  block_ctx_.timestamp = U256{1'438'269'973};  // Ethereum genesis timestamp
  block_ctx_.difficulty = U256{1u} << U256{40};
  block_ctx_.coinbase = Address::from_label("coinbase");
}

void Blockchain::mine_block() {
  ++height_;
  block_ctx_.number = U256{height_};
  block_ctx_.timestamp += U256{12};  // post-merge slot time
  notify_head();
}

void Blockchain::mine_until(std::uint64_t target) {
  if (target <= height_) return;
  height_ = target;
  block_ctx_.number = U256{height_};
  block_ctx_.timestamp = U256{1'438'269'973 + 12 * height_};
  notify_head();
}

std::uint64_t Blockchain::subscribe_head(HeadCallback cb) {
  const std::uint64_t token = next_head_token_++;
  head_subs_.emplace_back(token, std::move(cb));
  return token;
}

void Blockchain::unsubscribe_head(std::uint64_t token) {
  std::erase_if(head_subs_,
                [token](const auto& sub) { return sub.first == token; });
}

void Blockchain::notify_head() {
  for (const auto& [token, cb] : head_subs_) cb(height_);
}

std::vector<Address> Blockchain::deployments_in(std::uint64_t block) const {
  const auto it = deploys_by_block_.find(block);
  return it == deploys_by_block_.end() ? std::vector<Address>{} : it->second;
}

std::vector<Address> Blockchain::storage_writers_in(std::uint64_t block) const {
  const auto it = writers_by_block_.find(block);
  return it == writers_by_block_.end() ? std::vector<Address>{} : it->second;
}

std::optional<Address> Blockchain::deploy(const Address& from,
                                          BytesView init_code,
                                          const U256& value) {
  Account& sender = accounts_[from];
  crypto::AddressBytes raw{};
  std::copy(from.bytes.begin(), from.bytes.end(), raw.begin());
  const Address target{crypto::create_address(raw, sender.nonce)};
  sender.nonce += 1;

  evm::Interpreter interp(*this);
  const evm::ExecResult result =
      interp.execute_create(from, target, init_code, value, 0, 10'000'000);
  if (result.halt != evm::HaltReason::kReturn) return std::nullopt;
  note_contract(target);
  return target;
}

Address Blockchain::deploy_runtime(const Address& from, Bytes runtime_code) {
  Account& sender = accounts_[from];
  crypto::AddressBytes raw{};
  std::copy(from.bytes.begin(), from.bytes.end(), raw.begin());
  const Address target{crypto::create_address(raw, sender.nonce)};
  sender.nonce += 1;
  accounts_[target].code = std::move(runtime_code);
  note_contract(target);
  return target;
}

evm::ExecResult Blockchain::call(const Address& from, const Address& to,
                                 Bytes calldata, const U256& value,
                                 std::uint64_t gas) {
  if (auto it = contract_meta_.find(to); it != contract_meta_.end()) {
    it->second.has_incoming_tx = true;
  }
  if (calldata.size() >= 4) {
    external_selectors_[to].push_back((std::uint32_t{calldata[0]} << 24) |
                                      (std::uint32_t{calldata[1]} << 16) |
                                      (std::uint32_t{calldata[2]} << 8) |
                                      std::uint32_t{calldata[3]});
  }

  evm::CallParams params;
  params.code_address = to;
  params.storage_address = to;
  params.caller = from;
  params.origin = from;
  params.value = value;
  params.calldata = std::move(calldata);
  params.gas = gas;

  // Move the value before execution (sender must afford it).
  if (!value.is_zero()) {
    Account& sender = accounts_[from];
    if (sender.balance < value) {
      evm::ExecResult failed;
      failed.halt = evm::HaltReason::kRevert;
      return failed;
    }
    sender.balance -= value;
    accounts_[to].balance += value;
  }

  TxTracer tracer(*this, params.calldata);
  evm::Interpreter interp(*this);
  interp.set_observer(&tracer);
  evm::ExecResult result = interp.execute(params);
  mine_block();  // one transaction per block keeps history queries simple
  return result;
}

void Blockchain::fund(const Address& account, const U256& amount) {
  accounts_[account].balance += amount;
}

U256 Blockchain::storage_at(const Address& account, const U256& slot,
                            std::uint64_t block) const {
  const auto acct_it = storage_history_.find(account);
  if (acct_it == storage_history_.end()) return U256{};
  const auto slot_it = acct_it->second.find(slot);
  if (slot_it == acct_it->second.end()) return U256{};
  const SlotHistory& history = slot_it->second;
  // Last change with change.block <= block.
  const auto it = std::upper_bound(
      history.begin(), history.end(), block,
      [](std::uint64_t b, const auto& entry) { return b < entry.first; });
  if (it == history.begin()) return U256{};
  return std::prev(it)->second;
}

void Blockchain::journal_write(const Address& a, const U256& slot,
                               const U256& value) {
  SlotHistory& history = storage_history_[a][slot];
  if (!history.empty() && history.back().first == height_) {
    history.back().second = value;  // same-block overwrite
  } else {
    history.emplace_back(height_, value);
  }
  const auto it = last_write_recorded_.find(a);
  if (it == last_write_recorded_.end() || it->second != height_) {
    writers_by_block_[height_].push_back(a);
    last_write_recorded_[a] = height_;
  }
}

void Blockchain::note_contract(const Address& a) {
  ContractMeta& meta = contract_meta_[a];
  meta.deploy_block = height_;
  const auto it = last_deploy_recorded_.find(a);
  if (it == last_deploy_recorded_.end() || it->second != height_) {
    deploys_by_block_[height_].push_back(a);
    last_deploy_recorded_[a] = height_;
  }
}

Bytes Blockchain::get_code(const Address& a) {
  return code_at(a);
}

Bytes Blockchain::code_at(const Address& a) const {
  const auto it = accounts_.find(a);
  return it == accounts_.end() ? Bytes{} : it->second.code;
}

U256 Blockchain::get_storage(const Address& a, const U256& slot) {
  const auto it = accounts_.find(a);
  if (it == accounts_.end()) return U256{};
  const auto jt = it->second.storage.find(slot);
  return jt == it->second.storage.end() ? U256{} : jt->second;
}

void Blockchain::set_storage(const Address& a, const U256& slot,
                             const U256& value) {
  accounts_[a].storage[slot] = value;
  journal_write(a, slot, value);
}

U256 Blockchain::get_balance(const Address& a) {
  const auto it = accounts_.find(a);
  return it == accounts_.end() ? U256{} : it->second.balance;
}

void Blockchain::set_balance(const Address& a, const U256& value) {
  accounts_[a].balance = value;
}

std::uint64_t Blockchain::get_nonce(const Address& a) {
  const auto it = accounts_.find(a);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

void Blockchain::set_nonce(const Address& a, std::uint64_t nonce) {
  accounts_[a].nonce = nonce;
}

void Blockchain::set_code(const Address& a, Bytes code) {
  accounts_[a].code = std::move(code);
  note_contract(a);
}

bool Blockchain::account_exists(const Address& a) {
  return accounts_.contains(a);
}

U256 Blockchain::block_hash(std::uint64_t block_number) {
  if (block_number >= height_) return U256{};
  // Deterministic stand-in hash derived from the height.
  return evm::to_u256(
      crypto::keccak256("block:" + std::to_string(block_number)));
}

}  // namespace proxion::chain
