#include "chain/coalescing_node.h"

#include <algorithm>

namespace proxion::chain {

namespace {

/// Process-wide coalescer efficacy counters (aggregated across instances),
/// cached so the hot path skips the registry's name lookup.
obs::Counter& global_exact_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("chain.coalescer.exact_hits");
  return c;
}
obs::Counter& global_interval_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("chain.coalescer.interval_hits");
  return c;
}
obs::Counter& global_misses() {
  static obs::Counter& c =
      obs::Registry::global().counter("chain.coalescer.misses");
  return c;
}

}  // namespace

CoalescingArchiveNode::CoalescingArchiveNode(const IArchiveNode& inner,
                                             unsigned shards)
    : inner_(inner), shard_count_(shards == 0 ? 1 : shards),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

bool CoalescingArchiveNode::lookup_locked(const Shard& shard,
                                          const SlotKey& key,
                                          std::uint64_t height,
                                          U256* out) const {
  const auto it = shard.cache.find(key);
  if (it == shard.cache.end()) return false;
  const auto& points = it->second.points;
  // Exact sealed observation at this height.
  const auto exact = points.find(height);
  if (exact != points.end()) {
    exact_hits_.fetch_add(1, std::memory_order_relaxed);
    global_exact_hits().add(1);
    *out = exact->second;
    return true;
  }
  // Interval rule: sealed neighbours below and above with the same value
  // mean the slot never changed in between (append-only chain + Algorithm
  // 1's uniqueness assumption), so the probe is answerable from cache.
  const auto above = points.lower_bound(height);
  if (above == points.begin() || above == points.end()) return false;
  const auto below = std::prev(above);
  if (below->second == above->second) {
    interval_hits_.fetch_add(1, std::memory_order_relaxed);
    global_interval_hits().add(1);
    *out = below->second;
    return true;
  }
  return false;
}

U256 CoalescingArchiveNode::get_storage_at(const Address& account,
                                           const U256& slot,
                                           std::uint64_t block) const {
  const StorageQuery q{account, slot, block};
  return get_storage_at_many(std::span<const StorageQuery>(&q, 1))[0];
}

std::vector<U256> CoalescingArchiveNode::get_storage_at_many(
    std::span<const StorageQuery> queries) const {
  const std::size_t n = queries.size();
  std::vector<U256> out(n);
  std::vector<std::uint8_t> done(n, 0);
  std::size_t remaining = n;

  while (remaining > 0) {
    std::vector<std::size_t> owned;    // probes we claimed and will fetch
    std::vector<std::size_t> aliases;  // in-batch duplicates of owned probes
    std::vector<std::size_t> alias_owner;
    std::size_t first_blocked = n;  // a probe in flight on another thread

    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] != 0) continue;
      const StorageQuery& q = queries[i];
      const SlotKey key{q.account, q.slot};

      // In-batch dedup against probes this pass already owns (batches are
      // small — a frontier per binary-search level — so linear scan wins
      // over a hash map here).
      std::size_t dup = owned.size();
      for (std::size_t k = 0; k < owned.size(); ++k) {
        const StorageQuery& o = queries[owned[k]];
        if (o.block == q.block && o.slot == q.slot && o.account == q.account) {
          dup = k;
          break;
        }
      }
      if (dup != owned.size()) {
        aliases.push_back(i);
        alias_owner.push_back(owned[dup]);
        continue;
      }

      Shard& shard = shard_for(key);
      std::unique_lock<std::mutex> lock(shard.mu);
      if (lookup_locked(shard, key, q.block, &out[i])) {
        done[i] = 1;
        --remaining;
        continue;
      }
      const auto fl = shard.inflight.find(key);
      if (fl != shard.inflight.end() && fl->second.count(q.block) != 0) {
        if (first_blocked == n) first_blocked = i;
        continue;  // another thread is fetching this exact probe
      }
      shard.inflight[key].insert(q.block);
      owned.push_back(i);
    }

    if (!owned.empty()) {
      std::vector<StorageQuery> batch;
      batch.reserve(owned.size());
      for (const std::size_t i : owned) batch.push_back(queries[i]);

      // Seal horizon is captured BEFORE the fetch: a height already below
      // head at this point is immutable for the whole fetch, whereas the
      // head block itself could be rewritten concurrently.
      const std::uint64_t sealed_below = inner_.latest_block();
      std::vector<U256> fetched;
      try {
        fetched = inner_.get_storage_at_many(batch);
      } catch (...) {
        // Release ownership so waiters can take over; cache nothing.
        for (const std::size_t i : owned) {
          const SlotKey key{queries[i].account, queries[i].slot};
          Shard& shard = shard_for(key);
          std::lock_guard<std::mutex> lock(shard.mu);
          const auto fl = shard.inflight.find(key);
          if (fl != shard.inflight.end()) {
            fl->second.erase(queries[i].block);
            if (fl->second.empty()) shard.inflight.erase(fl);
          }
          shard.cv.notify_all();
        }
        throw;
      }

      // Seal rule: only heights strictly below the pre-fetch head are
      // immutable (set_storage rewrites the open block), so only those are
      // cached. Head-height probes stay forward-always.
      misses_.fetch_add(owned.size(), std::memory_order_relaxed);
      global_misses().add(owned.size());
      for (std::size_t k = 0; k < owned.size(); ++k) {
        const std::size_t i = owned[k];
        const StorageQuery& q = queries[i];
        out[i] = fetched[k];
        done[i] = 1;
        --remaining;
        const SlotKey key{q.account, q.slot};
        Shard& shard = shard_for(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        if (q.block < sealed_below) {
          shard.cache[key].points[q.block] = fetched[k];
        }
        const auto fl = shard.inflight.find(key);
        if (fl != shard.inflight.end()) {
          fl->second.erase(q.block);
          if (fl->second.empty()) shard.inflight.erase(fl);
        }
        shard.cv.notify_all();
      }
      for (std::size_t k = 0; k < aliases.size(); ++k) {
        out[aliases[k]] = out[alias_owner[k]];
        done[aliases[k]] = 1;
        --remaining;
      }
    } else if (remaining > 0 && first_blocked != n) {
      // Nothing to fetch ourselves: block until the owning thread commits
      // (next pass hits the cache) or fails (next pass claims ownership).
      const StorageQuery& q = queries[first_blocked];
      const SlotKey key{q.account, q.slot};
      Shard& shard = shard_for(key);
      std::unique_lock<std::mutex> lock(shard.mu);
      inflight_waits_.fetch_add(1, std::memory_order_relaxed);
      shard.cv.wait(lock, [&] {
        const auto fl = shard.inflight.find(key);
        return fl == shard.inflight.end() || fl->second.count(q.block) == 0;
      });
    }
    // else: everything resolved this pass, or aliases of a blocked probe —
    // loop and retry (the blocked owner path above is the only waiter).
  }
  return out;
}

void CoalescingArchiveNode::invalidate(const Address& account,
                                       const U256& slot) {
  const SlotKey key{account, slot};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.cache.erase(key);
}

void CoalescingArchiveNode::clear() {
  for (unsigned s = 0; s < shard_count_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    shards_[s].cache.clear();
  }
}

CoalescingArchiveNode::Stats CoalescingArchiveNode::stats() const noexcept {
  Stats st;
  st.exact_hits = exact_hits_.load(std::memory_order_relaxed);
  st.interval_hits = interval_hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
  return st;
}

std::size_t CoalescingArchiveNode::cached_points() const {
  std::size_t total = 0;
  for (unsigned s = 0; s < shard_count_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const auto& [key, timeline] : shards_[s].cache) {
      total += timeline.points.size();
    }
  }
  return total;
}

}  // namespace proxion::chain
