// Coalescing decorator over any IArchiveNode: collapses the overlapping
// (account, slot, height) probes that Algorithm 1's recursive binary search
// issues, in two ways:
//
//  1. Height-interval cache. Every answered probe whose height was already
//     sealed (height < inner latest_block() at insert time) is remembered as
//     a point on the slot's timeline. Because the chain is append-only, a
//     sealed observation can never change — and when two sealed points carry
//     the SAME value, the slot provably never changed between them (the
//     probes themselves are the evidence under Algorithm 1's uniqueness
//     assumption), so any probe at a height inside [h1, h2] is answered from
//     cache. This is exactly the overlap structure repeated binary searches
//     over the same slot produce.
//  2. In-flight dedup. Identical probes issued concurrently by different
//     sweep workers ride one backend fetch: the first becomes the owner, the
//     rest block on the shard's condition variable until the owner commits
//     (or fails, in which case a waiter takes over ownership).
//
// Probes at or above the inner node's current head are always forwarded and
// never cached: the open block can still be rewritten by the simulated
// chain's set_storage, so only sealed history is trusted. clear() drops
// everything — the pipeline calls it from shed_cross_run_state(), where the
// underlying chain may have been mutated arbitrarily between runs.
//
// Failures are never cached; an RpcError aborts the batch (no partial
// results), releases in-flight ownership, and propagates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "chain/archive_node.h"

namespace proxion::chain {

class CoalescingArchiveNode final : public IArchiveNode {
 public:
  explicit CoalescingArchiveNode(const IArchiveNode& inner,
                                 unsigned shards = 16);

  U256 get_storage_at(const Address& account, const U256& slot,
                      std::uint64_t block) const override;
  std::vector<U256> get_storage_at_many(
      std::span<const StorageQuery> queries) const override;

  Bytes get_code(const Address& account) const override {
    return inner_.get_code(account);
  }
  std::uint64_t latest_block() const override { return inner_.latest_block(); }

  std::uint64_t get_storage_at_calls() const override {
    return inner_.get_storage_at_calls();
  }
  std::uint64_t get_code_calls() const override {
    return inner_.get_code_calls();
  }
  void reset_counters() const override { inner_.reset_counters(); }

  /// Drops the cached timeline of one slot (all heights).
  void invalidate(const Address& account, const U256& slot);
  /// Drops every cached observation. Call whenever the underlying chain may
  /// have been mutated (the pipeline does, in shed_cross_run_state()).
  void clear();

  struct Stats {
    std::uint64_t exact_hits = 0;     // probe height had a cached point
    std::uint64_t interval_hits = 0;  // answered from an unchanged interval
    std::uint64_t misses = 0;         // forwarded to the inner node
    std::uint64_t inflight_waits = 0; // blocked on another thread's fetch
  };
  Stats stats() const noexcept;

  /// Cached timeline points across all slots (for tests / introspection).
  std::size_t cached_points() const;

 private:
  struct SlotKey {
    Address account;
    U256 slot;
    bool operator==(const SlotKey&) const = default;
  };
  struct SlotKeyHasher {
    std::size_t operator()(const SlotKey& k) const noexcept {
      const std::size_t a = evm::AddressHasher{}(k.account);
      const std::size_t s = evm::U256Hasher{}(k.slot);
      return a ^ (s + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    }
  };

  /// Sealed observations of one slot: height -> value, ordered so interval
  /// lookups are one lower_bound away.
  struct Timeline {
    std::map<std::uint64_t, U256> points;
  };

  struct Shard {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    std::unordered_map<SlotKey, Timeline, SlotKeyHasher> cache;
    /// Heights currently being fetched per slot (owned probes).
    std::unordered_map<SlotKey, std::set<std::uint64_t>, SlotKeyHasher>
        inflight;
  };

  Shard& shard_for(const SlotKey& key) const noexcept {
    return shards_[SlotKeyHasher{}(key) % shard_count_];
  }

  /// Cache lookup under the shard lock. Returns true on hit (value in *out)
  /// and records the hit kind in the stats counters.
  bool lookup_locked(const Shard& shard, const SlotKey& key,
                     std::uint64_t height, U256* out) const;

  const IArchiveNode& inner_;
  const unsigned shard_count_;
  std::unique_ptr<Shard[]> shards_;

  mutable std::atomic<std::uint64_t> exact_hits_{0};
  mutable std::atomic<std::uint64_t> interval_hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> inflight_waits_{0};
};

}  // namespace proxion::chain
