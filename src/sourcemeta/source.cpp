#include "sourcemeta/source.h"

#include <algorithm>
#include <cctype>

namespace proxion::sourcemeta {

std::uint8_t type_width(const std::string& type) {
  if (type == "bool") return 1;
  if (type == "address") return 20;
  if (type == "address payable") return 20;
  if (type.rfind("uint", 0) == 0 || type.rfind("int", 0) == 0) {
    const std::size_t digits_at = type[0] == 'u' ? 4 : 3;
    if (type.size() == digits_at) return 32;  // bare uint/int
    int bits = 0;
    for (std::size_t i = digits_at; i < type.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(type[i]))) return 32;
      bits = bits * 10 + (type[i] - '0');
    }
    return static_cast<std::uint8_t>(bits / 8);
  }
  if (type.rfind("bytes", 0) == 0 && type.size() > 5) {
    int n = 0;
    for (std::size_t i = 5; i < type.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(type[i]))) return 32;
      n = n * 10 + (type[i] - '0');
    }
    if (n >= 1 && n <= 32) return static_cast<std::uint8_t>(n);
  }
  // mapping / dynamic array / struct / string / bytes: full slot.
  return 32;
}

void layout_storage(std::vector<VariableDecl>& vars) {
  std::uint32_t slot = 0;
  std::uint8_t used = 0;  // bytes consumed in the current slot
  const auto fresh_slot_type = [](const std::string& t) {
    return t.rfind("mapping", 0) == 0 || t == "string" || t == "bytes" ||
           t.find("[]") != std::string::npos;
  };
  for (VariableDecl& v : vars) {
    v.size = type_width(v.type);
    const bool needs_fresh = fresh_slot_type(v.type);
    if (needs_fresh || used + v.size > 32) {
      if (used != 0) {
        ++slot;
        used = 0;
      }
    }
    v.slot = slot;
    v.offset = used;
    if (needs_fresh || v.size == 32) {
      ++slot;
      used = 0;
    } else {
      used = static_cast<std::uint8_t>(used + v.size);
    }
  }
}

std::vector<std::uint32_t> SourceRecord::selectors() const {
  std::vector<std::uint32_t> out;
  out.reserve(functions.size());
  for (const FunctionDecl& f : functions) {
    if (f.is_public) out.push_back(f.selector_u32());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SourceRepository::publish(const Address& address, SourceRecord record) {
  records_[address] = std::move(record);
}

const SourceRecord* SourceRepository::lookup(const Address& address) const {
  const auto it = records_.find(address);
  return it == records_.end() ? nullptr : &it->second;
}

void SourceRepository::index_code_hash(const Address& address,
                                       const crypto::Hash256& hash) {
  if (records_.contains(address)) by_code_hash_.emplace(hash, address);
}

const SourceRecord* SourceRepository::lookup_by_code_hash(
    const crypto::Hash256& hash) const {
  const auto it = by_code_hash_.find(hash);
  return it == by_code_hash_.end() ? nullptr : lookup(it->second);
}

}  // namespace proxion::sourcemeta
