// "Verified source code" as the collision analyses consume it. The paper's
// source-mode checks (via Slither / Etherscan) only ever use two artifacts
// of the Solidity text: the list of function prototypes and the storage
// layout. A SourceRecord carries exactly those, plus the compiler version
// (the USCHunt baseline halts on unknown versions, §6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/eth.h"
#include "evm/types.h"

namespace proxion::sourcemeta {

using evm::Address;

struct FunctionDecl {
  std::string prototype;  // canonical signature, e.g. "transfer(address,uint256)"
  bool is_public = true;  // only public/external functions get dispatcher slots

  crypto::Selector selector() const { return crypto::selector_of(prototype); }
  std::uint32_t selector_u32() const {
    return crypto::selector_u32(prototype);
  }
};

/// Solidity elementary types as far as storage layout cares: a byte width.
struct VariableDecl {
  std::string name;
  std::string type;        // "address", "bool", "uint256", "mapping", ...
  std::uint32_t slot = 0;  // filled by layout_storage()
  std::uint8_t offset = 0; // byte offset inside the slot (packing)
  std::uint8_t size = 32;  // byte width
  bool is_padding = false; // deliberate gap/reserved slot (not exploitable)
};

/// Computes Solidity's storage packing for an ordered declaration list:
/// consecutive variables share a slot while they fit in 32 bytes; a variable
/// that does not fit starts a new slot; mappings/dynamic arrays always take
/// a fresh full slot.
void layout_storage(std::vector<VariableDecl>& vars);

/// Byte width of a Solidity elementary type name ("uint8" -> 1, "address"
/// -> 20, "bool" -> 1, anything unknown/dynamic -> 32).
std::uint8_t type_width(const std::string& type);

struct SourceRecord {
  std::string contract_name;
  std::string compiler_version = "0.8.17";  // "unknown" models USCHunt halts
  std::vector<FunctionDecl> functions;
  std::vector<VariableDecl> storage;  // laid out (slot/offset/size filled)
  bool fallback_delegates = false;    // source shows delegatecall in fallback

  /// All dispatcher selectors, i.e. what Slither's function list yields.
  std::vector<std::uint32_t> selectors() const;
};

/// The Etherscan stand-in: an address -> verified-source map. Also supports
/// the paper's §7.1 optimization of propagating source to every contract
/// sharing the same bytecode hash.
class SourceRepository {
 public:
  void publish(const Address& address, SourceRecord record);
  const SourceRecord* lookup(const Address& address) const;
  bool has_source(const Address& address) const {
    return records_.contains(address);
  }
  std::size_t size() const noexcept { return records_.size(); }

  /// Registers a bytecode hash for an address so that later addresses with
  /// the same hash inherit the verified source (paper §7.1).
  void index_code_hash(const Address& address, const crypto::Hash256& hash);
  const SourceRecord* lookup_by_code_hash(const crypto::Hash256& hash) const;

 private:
  struct HashKey {
    std::size_t operator()(const crypto::Hash256& h) const noexcept {
      std::size_t out = 0;
      for (std::size_t i = 0; i < sizeof(out); ++i) {
        out = (out << 8) | h[i];
      }
      return out;
    }
  };

  std::unordered_map<Address, SourceRecord, evm::AddressHasher> records_;
  std::unordered_map<crypto::Hash256, Address, HashKey> by_code_hash_;
};

}  // namespace proxion::sourcemeta
