// The durable sharded sweep driver: converts AnalysisPipeline's batch
// run() into a restartable streaming system. It partitions the population
// into code-hash-affine shards, runs each through the pipeline, flushes the
// per-contract results to the checkpoint journal (journal.h), and frees the
// pipeline's cross-run memos between shards so peak memory is O(shard), not
// O(population). Three entry points:
//
//   run()         — fresh sweep into a new journal
//   resume()      — replay the journal's completed work, recompute the rest
//   incremental() — diff journaled (code hash, impl-slot head) fingerprints
//                   against current chain state; re-analyze only new or
//                   changed contracts (upgraded proxies skip Phase A
//                   emulation via a seeded verdict and re-run the pair
//                   phase only)
//
// Bit-identity with a monolithic pipeline.run() over the same inputs rests
// on three invariants this driver maintains:
//   1. shards are code-hash-affine with hash groups in first-occurrence
//      order, so a group's dedup representative is the same global-first
//      contract a monolithic run picks;
//   2. the §7.1 source-donor map is computed over the WHOLE population and
//      injected as an overlay, so a shard resolves the same donors a
//      monolithic run would even when a logic blob's donor lives in another
//      shard;
//   3. resume recomputes incomplete hash groups WHOLE (never a partial
//      group), so representative choice and dedup metadata converge.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "core/pipeline.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sourcemeta/source.h"
#include "store/journal.h"
#include "store/records.h"

namespace proxion::store {

struct DurableSweepConfig {
  /// Checkpoint journal path; the manifest lives at `<path>.manifest`.
  std::string journal_path = "sweep.journal";
  /// Target contracts per shard. Hash groups are never split, so a shard
  /// can exceed this by one group's size minus one (the documented
  /// shard-slack); a group larger than the target gets a shard to itself.
  /// 0 = one shard for everything (degenerates to a monolithic run + one
  /// commit).
  std::size_t shard_size = 1024;
  /// Stop (journal committed, sweep incomplete) after this many shards;
  /// 0 = no limit. This is the deterministic stand-in for `kill -9` in the
  /// resume tests and benches — the on-disk state is the same one a crash
  /// after the Nth commit leaves behind.
  std::size_t max_shards = 0;
  /// Drop the pipeline's cross-run memos between shards (the bounded-memory
  /// contract). Off trades memory back for cross-shard cache hits.
  bool shed_between_shards = true;
  /// Metrics sink for the store.journal.* / store.sweep.* counters and the
  /// flush-latency histogram. Null = obs::Registry::global().
  obs::Registry* registry = nullptr;
  /// Filesystem behind the journal + manifest. Null = the real filesystem;
  /// the chaos harness injects a util::FaultInjectingVfs here.
  util::Vfs* vfs = nullptr;
  /// When the disk gives out mid-sweep (ENOSPC, persistent write failure,
  /// failed fsync), keep sweeping IN MEMORY instead of aborting: verdicts
  /// stay complete and correct, checkpointing stops at the last good shard
  /// commit, and the result reports degraded=true + the first disk error.
  /// Off restores the old abort-with-error behavior.
  bool degrade_on_disk_failure = true;
  /// Structured event sink (borrowed). When set, operational lines —
  /// degraded-mode entry, journal self-heal, torn-tail drop, shard commits —
  /// are emitted here INSTEAD of the ad-hoc stderr fprintf. Null keeps the
  /// stderr fallback for degraded-mode entry (that line is operationally
  /// load-bearing and must go somewhere).
  obs::EventLog* event_log = nullptr;
  /// Live progress block for /healthz (borrowed): shards committed vs
  /// total, journal bytes, degraded flag. Null = no publishing.
  obs::SweepStatus* status = nullptr;
  /// Commit→publish hook for the serving plane: invoked on the sweeping
  /// thread with each batch of final records — once with the journal-
  /// replayed set before any shard runs, then once per shard as it commits
  /// (in degraded mode, as it completes in memory; verdicts stay valid when
  /// the disk does not). The span is borrowed for the duration of the call.
  /// Null = no publishing. The query plane's QueryService::apply_records is
  /// the intended consumer.
  std::function<void(std::span<const ContractRecord>)> record_sink;
};

struct DurableSweepResult {
  core::LandscapeStats stats;
  /// Shards executed by THIS call (not counting journal-replayed shards).
  std::uint64_t shards_run = 0;
  /// Contracts whose reports came from the journal, zero pipeline work.
  std::uint64_t replayed = 0;
  /// Contracts run through the pipeline by this call.
  std::uint64_t recomputed = 0;
  /// True when the whole population is covered (kSweepEnd journaled, or
  /// swept in memory under degraded mode).
  /// False after a max_shards stop — call resume() to finish.
  bool complete = false;
  /// The disk failed mid-sweep and degrade_on_disk_failure carried the
  /// sweep to completion in memory: stats/verdicts are valid, but work
  /// after the last good shard commit is not checkpointed (a later
  /// resume() recomputes it).
  bool degraded = false;
  /// First disk failure (kind kDiskIo, errno detail in the text) — set
  /// whenever `degraded` is true or `error` names a journal failure.
  std::optional<core::ErrorRecord> disk_error;
  /// Non-empty on journal I/O failure with degradation disabled; stats are
  /// then meaningless.
  std::string error;
};

class DurableSweep {
 public:
  /// `pipeline` and `chain` must outlive the driver; `sources` may be null
  /// (it feeds the global §7.1 donor overlay and must be the same
  /// repository the pipeline was built with). The driver is the journal's
  /// single writer; one sweep call runs at a time.
  DurableSweep(core::AnalysisPipeline& pipeline, chain::Blockchain& chain,
               const sourcemeta::SourceRepository* sources,
               DurableSweepConfig config);

  /// Fresh sweep: creates/truncates the journal and sweeps `inputs`.
  DurableSweepResult run(const std::vector<core::SweepInput>& inputs);

  /// Crash-safe resume: replays the journal's valid prefix, feeds completed
  /// hash groups straight to the aggregates (zero recomputation), and
  /// re-runs every group that is missing members or carries a quarantined
  /// record — whole, so dedup metadata converges (see file comment).
  /// A missing journal degrades to run().
  DurableSweepResult resume(const std::vector<core::SweepInput>& inputs);

  /// Incremental re-sweep against a possibly-mutated chain: a journaled
  /// contract is reused iff its code hash matches the chain's current code
  /// AND (for storage-slot proxies) its implementation-slot head is
  /// unchanged. Upgraded proxies (same code, new head) re-enter the
  /// pipeline with their Phase A verdict pre-seeded, so only logic-history
  /// + pair collision work is redone. New, code-changed, and quarantined
  /// contracts re-analyze in full. A missing journal degrades to run().
  DurableSweepResult incremental(const std::vector<core::SweepInput>& inputs);

 private:
  enum class Mode { kFresh, kResume, kIncremental };

  /// One code-hash group: member input indices in input order (the first is
  /// the global dedup representative).
  struct Group {
    crypto::Hash256 hash{};
    std::vector<std::size_t> members;
  };

  /// A Phase-A verdict to pre-seed before the owning shard runs (built from
  /// the journaled report, slot head already patched to current chain
  /// state).
  struct Seed {
    crypto::Hash256 hash{};
    evm::Address representative;
    core::ProxyReport report;
  };

  /// What a sweep call decided to do with each contract: journal-reused
  /// records (fed straight to the accumulator) vs groups with members to
  /// recompute (mixed incremental groups keep their unchanged members in
  /// `replayed`).
  struct Plan {
    std::vector<ContractRecord> replayed;
    std::vector<Group> rerun_groups;
    std::uint64_t prior_shards = 0;  // shard commits already journaled
  };

  DurableSweepResult sweep(const std::vector<core::SweepInput>& inputs,
                           Mode mode);

  core::AnalysisPipeline& pipeline_;
  chain::Blockchain& chain_;
  const sourcemeta::SourceRepository* sources_;
  DurableSweepConfig config_;
  obs::Registry& metrics_;
};

}  // namespace proxion::store
