#include "store/journal.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "store/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PROXION_HAVE_FSYNC 1
#endif

namespace proxion::store {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool flush_and_fsync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifdef PROXION_HAVE_FSYNC
  if (::fsync(::fileno(f)) != 0) return false;
#endif
  return true;
}

std::vector<std::uint8_t> header_bytes() {
  std::vector<std::uint8_t> h(kJournalMagic, kJournalMagic + kJournalMagicSize);
  put_u16(h, kJournalVersion);
  put_u16(h, 0);  // reserved
  return h;
}

/// Reads the whole file; empty optional on open failure.
std::optional<std::vector<std::uint8_t>> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

bool valid_record_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(RecordType::kSweepBegin) &&
         t <= static_cast<std::uint8_t>(RecordType::kSweepEnd);
}

}  // namespace

std::optional<JournalWriter> JournalWriter::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return std::nullopt;
  const std::vector<std::uint8_t> h = header_bytes();
  if (std::fwrite(h.data(), 1, h.size(), f) != h.size()) {
    std::fclose(f);
    return std::nullopt;
  }
  return JournalWriter(f, h.size());
}

std::optional<JournalWriter> JournalWriter::open_append(
    const std::string& path) {
  // Scan first: appending must start after the last VALID frame, not after
  // whatever torn bytes a crash left at the tail.
  std::optional<JournalReplay> replay = read_journal(path);
  if (!replay) return std::nullopt;
  // "r+b" preserves existing content; "ab" would pin writes to EOF and make
  // tail truncation impossible.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return std::nullopt;
  if (std::fseek(f, static_cast<long>(replay->valid_bytes), SEEK_SET) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  return JournalWriter(f, replay->valid_bytes);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      offset_(other.offset_),
      frames_(other.frames_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    offset_ = other.offset_;
    frames_ = other.frames_;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool JournalWriter::append(RecordType type,
                           std::span<const std::uint8_t> payload) {
  if (file_ == nullptr || payload.size() > kMaxFramePayload) return false;
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameOverhead + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.push_back(static_cast<std::uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  std::uint32_t crc = crc32c(&frame[4], 1 + payload.size());
  put_u32(frame, crc);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return false;
  }
  offset_ += frame.size();
  ++frames_;
  return true;
}

bool JournalWriter::sync() {
  return file_ != nullptr && flush_and_fsync(file_);
}

std::optional<JournalReplay> read_journal(const std::string& path) {
  const std::optional<std::vector<std::uint8_t>> bytes = slurp(path);
  if (!bytes) return std::nullopt;
  const std::vector<std::uint8_t>& b = *bytes;
  if (b.size() < kJournalHeaderSize ||
      std::memcmp(b.data(), kJournalMagic, kJournalMagicSize) != 0) {
    return std::nullopt;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(b[kJournalMagicSize]) |
      static_cast<std::uint16_t>(b[kJournalMagicSize + 1]) << 8;
  if (version != kJournalVersion) return std::nullopt;

  JournalReplay out;
  std::size_t pos = kJournalHeaderSize;
  while (pos + kFrameOverhead <= b.size()) {
    const std::uint32_t len = get_u32(&b[pos]);
    if (len > kMaxFramePayload || pos + kFrameOverhead + len > b.size()) {
      break;  // torn tail: the length field outruns the file
    }
    const std::uint8_t type = b[pos + 4];
    const std::uint32_t want = get_u32(&b[pos + 5 + len]);
    const std::uint32_t got = crc32c(&b[pos + 4], 1 + len);
    if (got != want) {
      ++out.crc_failures;
      break;
    }
    if (!valid_record_type(type)) break;
    JournalFrame frame;
    frame.type = static_cast<RecordType>(type);
    frame.payload.assign(b.begin() + static_cast<std::ptrdiff_t>(pos + 5),
                         b.begin() + static_cast<std::ptrdiff_t>(pos + 5 + len));
    out.frames.push_back(std::move(frame));
    pos += kFrameOverhead + len;
  }
  out.valid_bytes = pos;
  out.tail_dropped = pos < b.size();
  return out;
}

std::string manifest_path_for(const std::string& journal_path) {
  return journal_path + ".manifest";
}

// Manifest wire format: fixed little-endian block + trailing CRC32C, small
// enough that the write-temp-then-rename protocol makes torn states
// unobservable (the CRC only defends against bit rot / foreign files).
//   u16 version  u16 flags(bit0=complete)  u64 committed_bytes
//   u64 shards_committed  u64 contracts_committed  u32 crc32c(all prior)

std::optional<Manifest> load_manifest(const std::string& path) {
  const std::optional<std::vector<std::uint8_t>> bytes = slurp(path);
  if (!bytes) return std::nullopt;
  const std::vector<std::uint8_t>& b = *bytes;
  constexpr std::size_t kBody = 2 + 2 + 8 + 8 + 8;
  if (b.size() != kBody + 4) return std::nullopt;
  if (crc32c(b.data(), kBody) != get_u32(&b[kBody])) return std::nullopt;
  Manifest m;
  m.version = static_cast<std::uint16_t>(b[0]) |
              static_cast<std::uint16_t>(b[1]) << 8;
  if (m.version != kJournalVersion) return std::nullopt;
  m.complete = (b[2] & 1u) != 0;
  m.committed_bytes = get_u64(&b[4]);
  m.shards_committed = get_u64(&b[12]);
  m.contracts_committed = get_u64(&b[20]);
  return m;
}

bool store_manifest(const std::string& path, const Manifest& m) {
  std::vector<std::uint8_t> b;
  put_u16(b, m.version);
  put_u16(b, m.complete ? 1 : 0);
  put_u64(b, m.committed_bytes);
  put_u64(b, m.shards_committed);
  put_u64(b, m.contracts_committed);
  put_u32(b, crc32c(b.data(), b.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(b.data(), 1, b.size(), f) == b.size() &&
                     flush_and_fsync(f);
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace proxion::store
