#include "store/journal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "store/crc32.h"

namespace proxion::store {

namespace {

/// Buffered frames are written out once they pass this size, bounding the
/// writer's memory without paying a syscall per frame.
constexpr std::size_t kFlushThreshold = std::size_t{1} << 20;  // 1 MiB

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::vector<std::uint8_t> header_bytes() {
  std::vector<std::uint8_t> h(kJournalMagic, kJournalMagic + kJournalMagicSize);
  put_u16(h, kJournalVersion);
  put_u16(h, 0);  // reserved
  return h;
}

bool valid_record_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(RecordType::kSweepBegin) &&
         t <= static_cast<std::uint8_t>(RecordType::kSweepEnd);
}

// store.vfs.* telemetry: every disk event on the checkpoint path is
// visible to operators. Registry lookups are mutexed, so resolve once.
obs::Counter& c_writes() {
  static obs::Counter& c = obs::Registry::global().counter("store.vfs.writes");
  return c;
}
obs::Counter& c_write_bytes() {
  static obs::Counter& c =
      obs::Registry::global().counter("store.vfs.write_bytes");
  return c;
}
obs::Counter& c_fsyncs() {
  static obs::Counter& c = obs::Registry::global().counter("store.vfs.fsyncs");
  return c;
}
obs::Counter& c_renames() {
  static obs::Counter& c = obs::Registry::global().counter("store.vfs.renames");
  return c;
}
obs::Counter& c_errors() {
  static obs::Counter& c = obs::Registry::global().counter("store.vfs.errors");
  return c;
}
obs::Counter& c_torn_tails() {
  static obs::Counter& c =
      obs::Registry::global().counter("store.journal.torn_tails");
  return c;
}

IoResult fail_io(std::string op, int err, std::uint64_t offset,
                 std::string path) {
  c_errors().add();
  return IoResult::failure(std::move(op), err, offset, std::move(path));
}

/// True when a structurally-complete, CRC-valid, known-type frame starts at
/// `pos`; `len` receives its payload length. `crc_failed` is set when the
/// structure parsed but the checksum did not match (the caller counts those
/// only at genuine frame boundaries, not at salvage-scan offsets).
bool frame_at(const std::vector<std::uint8_t>& b, std::size_t pos,
              std::uint32_t* len, bool* crc_failed) {
  *crc_failed = false;
  if (pos + kFrameOverhead > b.size()) return false;
  const std::uint32_t n = get_u32(&b[pos]);
  if (n > kMaxFramePayload || pos + kFrameOverhead + n > b.size()) return false;
  const std::uint32_t want = get_u32(&b[pos + 5 + n]);
  const std::uint32_t got = crc32c(&b[pos + 4], 1 + n);
  if (got != want) {
    *crc_failed = true;
    return false;
  }
  if (!valid_record_type(b[pos + 4])) return false;
  *len = n;
  return true;
}

}  // namespace

std::string IoResult::message() const {
  if (ok) return "ok";
  std::string msg = op.empty() ? std::string("io") : op;
  msg += " failed";
  msg += " at offset " + std::to_string(offset);
  if (!path.empty()) msg += " in " + path;
  msg += ": ";
  msg += err != 0 ? std::strerror(err) : "unknown error";
  return msg;
}

IoResult IoResult::failure(std::string op, int err, std::uint64_t offset,
                           std::string path) {
  IoResult r;
  r.ok = false;
  r.op = std::move(op);
  r.err = err;
  r.offset = offset;
  r.path = std::move(path);
  return r;
}

std::optional<JournalWriter> JournalWriter::create(const std::string& path,
                                                   util::Vfs& vfs,
                                                   IoResult* why) {
  auto report = [&](IoResult r) {
    if (why != nullptr) *why = std::move(r);
    return std::nullopt;
  };
  util::VfsStatus st;
  std::unique_ptr<util::VfsFile> f = vfs.open(path, util::Vfs::OpenMode::kTruncate, &st);
  if (f == nullptr) return report(fail_io("open", st.err, 0, path));
  const std::vector<std::uint8_t> h = header_bytes();
  if (util::VfsStatus s = f->write(h); !s) {
    return report(fail_io("write", s.err, 0, path));
  }
  // The header and the journal's directory entry are made durable up
  // front: a power cut between creation and the first shard commit must
  // find an empty journal, not no journal (the manifest protocol assumes
  // the file named by the manifest exists).
  if (util::VfsStatus s = f->sync(); !s) {
    return report(fail_io("fsync", s.err, 0, path));
  }
  if (util::VfsStatus s = vfs.sync_dir(path); !s) {
    return report(fail_io("fsyncdir", s.err, 0, path));
  }
  c_writes().add();
  c_write_bytes().add(h.size());
  c_fsyncs().add();
  return JournalWriter(std::move(f), path, h.size());
}

std::optional<JournalWriter> JournalWriter::open_append(const std::string& path,
                                                        util::Vfs& vfs,
                                                        IoResult* why) {
  auto report = [&](IoResult r) {
    if (why != nullptr) *why = std::move(r);
    return std::nullopt;
  };
  // Scan first: appending must start after the last VALID frame, not after
  // whatever torn bytes a crash left at the tail. Salvage mode so frames
  // beyond a corrupt middle are not overwritten.
  std::optional<JournalReplay> replay =
      read_journal(path, vfs, ReplayOptions{.salvage = true});
  if (!replay) {
    return report(fail_io("scan", EIO, 0, path));
  }
  if (replay->tail_dropped) {
    // Preserve the forensic evidence before truncating: the dropped tail
    // goes to the `.torn` sidecar (latest tail wins).
    const std::optional<std::vector<std::uint8_t>> bytes = vfs.read_file(path);
    if (bytes && replay->valid_bytes < bytes->size()) {
      const std::string sidecar = torn_sidecar_path_for(path);
      const std::size_t tail = bytes->size() - replay->valid_bytes;
      if (std::unique_ptr<util::VfsFile> side =
              vfs.open(sidecar, util::Vfs::OpenMode::kTruncate)) {
        (void)side->write(std::span<const std::uint8_t>(
            bytes->data() + replay->valid_bytes, tail));
      }
      std::fprintf(stderr,
                   "proxion: journal %s: dropped %zu-byte torn tail at offset "
                   "%llu (saved to %s)\n",
                   path.c_str(), tail,
                   static_cast<unsigned long long>(replay->valid_bytes),
                   sidecar.c_str());
    }
    c_torn_tails().add();
  }
  util::VfsStatus st;
  std::unique_ptr<util::VfsFile> f =
      vfs.open(path, util::Vfs::OpenMode::kReadWrite, &st);
  if (f == nullptr) return report(fail_io("open", st.err, 0, path));
  if (replay->tail_dropped) {
    // Cut the torn tail off for real: leftover garbage past the append
    // point could otherwise masquerade as frames after shorter re-appends.
    if (util::VfsStatus s = f->truncate(replay->valid_bytes); !s) {
      return report(fail_io("truncate", s.err, replay->valid_bytes, path));
    }
  }
  if (util::VfsStatus s = f->seek(replay->valid_bytes); !s) {
    return report(fail_io("seek", s.err, replay->valid_bytes, path));
  }
  return JournalWriter(std::move(f), path, replay->valid_bytes);
}

JournalWriter::JournalWriter(JournalWriter&&) noexcept = default;
JournalWriter& JournalWriter::operator=(JournalWriter&&) noexcept = default;

IoResult JournalWriter::append(RecordType type,
                               std::span<const std::uint8_t> payload) {
  if (!first_error_.ok) return first_error_;
  if (file_ == nullptr || payload.size() > kMaxFramePayload) {
    return IoResult::failure("append", EINVAL, offset_, path_);
  }
  pending_.reserve(pending_.size() + kFrameOverhead + payload.size());
  const std::size_t frame_start = pending_.size();
  put_u32(pending_, static_cast<std::uint32_t>(payload.size()));
  pending_.push_back(static_cast<std::uint8_t>(type));
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32c(&pending_[frame_start + 4], 1 + payload.size());
  put_u32(pending_, crc);
  offset_ += kFrameOverhead + payload.size();
  ++frames_;
  if (pending_.size() >= kFlushThreshold) return flush_pending();
  return {};
}

IoResult JournalWriter::flush_pending() {
  if (!first_error_.ok) return first_error_;
  if (pending_.empty()) return {};
  if (file_ == nullptr) {
    return IoResult::failure("append", EINVAL, offset_, path_);
  }
  const std::uint64_t at = offset_ - pending_.size();
  if (util::VfsStatus s = file_->write(pending_); !s) {
    // The file tail is now in an unknown torn state; only a fresh
    // open_append() scan can find the real append point again. Fail-stop.
    first_error_ = fail_io("append", s.err, at, path_);
    file_.reset();
    return first_error_;
  }
  c_writes().add();
  c_write_bytes().add(pending_.size());
  pending_.clear();
  return {};
}

IoResult JournalWriter::sync() {
  if (!first_error_.ok) return first_error_;
  if (IoResult r = flush_pending(); !r) return r;
  if (file_ == nullptr) {
    return IoResult::failure("fsync", EINVAL, offset_, path_);
  }
  if (util::VfsStatus s = file_->sync(); !s) {
    // fsyncgate: the kernel may have dropped the dirty pages when the
    // fsync failed, and a RETRIED fsync on the same file would then report
    // success over silently lost data. Never touch this file again.
    first_error_ = fail_io("fsync", s.err, offset_, path_);
    file_.reset();
    return first_error_;
  }
  c_fsyncs().add();
  return {};
}

std::optional<JournalReplay> read_journal(const std::string& path,
                                          util::Vfs& vfs,
                                          const ReplayOptions& opts) {
  const std::optional<std::vector<std::uint8_t>> bytes = vfs.read_file(path);
  if (!bytes) return std::nullopt;
  const std::vector<std::uint8_t>& b = *bytes;
  if (b.size() < kJournalHeaderSize ||
      std::memcmp(b.data(), kJournalMagic, kJournalMagicSize) != 0) {
    return std::nullopt;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(b[kJournalMagicSize]) |
      static_cast<std::uint16_t>(b[kJournalMagicSize + 1]) << 8;
  if (version != kJournalVersion) return std::nullopt;

  JournalReplay out;
  std::size_t pos = kJournalHeaderSize;
  std::size_t last_valid_end = kJournalHeaderSize;
  while (pos + kFrameOverhead <= b.size()) {
    std::uint32_t len = 0;
    bool crc_failed = false;
    if (frame_at(b, pos, &len, &crc_failed)) {
      JournalFrame frame;
      frame.type = static_cast<RecordType>(b[pos + 4]);
      frame.payload.assign(
          b.begin() + static_cast<std::ptrdiff_t>(pos + 5),
          b.begin() + static_cast<std::ptrdiff_t>(pos + 5 + len));
      out.frames.push_back(std::move(frame));
      pos += kFrameOverhead + len;
      last_valid_end = pos;
      continue;
    }
    // A bad frame starts here. Only a failure at a genuine frame boundary
    // counts as a CRC failure (salvage-scan offsets are expected misses).
    if (crc_failed) ++out.crc_failures;
    if (!opts.salvage) break;
    // Resynchronize: scan forward for the next offset where a whole valid
    // frame begins. Everything in between is a corrupt gap whose records
    // are lost (and will be recomputed); frames past it survive.
    std::size_t q = pos + 1;
    bool found = false;
    for (; q + kFrameOverhead <= b.size(); ++q) {
      std::uint32_t qlen = 0;
      bool qcrc = false;
      if (frame_at(b, q, &qlen, &qcrc)) {
        found = true;
        break;
      }
    }
    if (!found) break;  // nothing salvageable remains: it is the torn tail
    ++out.corrupt_gaps;
    out.gap_bytes += q - pos;
    pos = q;
  }
  out.valid_bytes = last_valid_end;
  out.tail_dropped = last_valid_end < b.size();
  return out;
}

std::string manifest_path_for(const std::string& journal_path) {
  return journal_path + ".manifest";
}

std::string torn_sidecar_path_for(const std::string& journal_path) {
  return journal_path + ".torn";
}

// Manifest wire format: fixed little-endian block + trailing CRC32C, small
// enough that the write-temp-then-rename protocol makes torn states
// unobservable (the CRC only defends against bit rot / foreign files).
//   u16 version  u16 flags(bit0=complete)  u64 committed_bytes
//   u64 shards_committed  u64 contracts_committed  u32 crc32c(all prior)

std::optional<Manifest> load_manifest(const std::string& path,
                                      util::Vfs& vfs) {
  const std::optional<std::vector<std::uint8_t>> bytes = vfs.read_file(path);
  if (!bytes) return std::nullopt;
  const std::vector<std::uint8_t>& b = *bytes;
  constexpr std::size_t kBody = 2 + 2 + 8 + 8 + 8;
  if (b.size() != kBody + 4) return std::nullopt;
  if (crc32c(b.data(), kBody) != get_u32(&b[kBody])) return std::nullopt;
  Manifest m;
  m.version = static_cast<std::uint16_t>(b[0]) |
              static_cast<std::uint16_t>(b[1]) << 8;
  if (m.version != kJournalVersion) return std::nullopt;
  m.complete = (b[2] & 1u) != 0;
  m.committed_bytes = get_u64(&b[4]);
  m.shards_committed = get_u64(&b[12]);
  m.contracts_committed = get_u64(&b[20]);
  return m;
}

IoResult store_manifest(const std::string& path, const Manifest& m,
                        util::Vfs& vfs) {
  std::vector<std::uint8_t> b;
  put_u16(b, m.version);
  put_u16(b, m.complete ? 1 : 0);
  put_u64(b, m.committed_bytes);
  put_u64(b, m.shards_committed);
  put_u64(b, m.contracts_committed);
  put_u32(b, crc32c(b.data(), b.size()));

  const std::string tmp = path + ".tmp";
  util::VfsStatus st;
  std::unique_ptr<util::VfsFile> f =
      vfs.open(tmp, util::Vfs::OpenMode::kTruncate, &st);
  if (f == nullptr) return fail_io("open", st.err, 0, tmp);
  if (util::VfsStatus s = f->write(b); !s) {
    f.reset();
    vfs.remove(tmp);
    return fail_io("write", s.err, 0, tmp);
  }
  if (util::VfsStatus s = f->sync(); !s) {
    f.reset();
    vfs.remove(tmp);
    return fail_io("fsync", s.err, 0, tmp);
  }
  f.reset();  // close before the rename
  c_writes().add();
  c_write_bytes().add(b.size());
  c_fsyncs().add();
  if (util::VfsStatus s = vfs.rename(tmp, path); !s) {
    vfs.remove(tmp);
    return fail_io("rename", s.err, 0, path);
  }
  c_renames().add();
  // Without this the rename itself is not power-loss durable: the old
  // directory entry could come back and resurrect the previous manifest.
  if (util::VfsStatus s = vfs.sync_dir(path); !s) {
    return fail_io("fsyncdir", s.err, 0, path);
  }
  return {};
}

}  // namespace proxion::store
