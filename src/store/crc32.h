// CRC32C (Castagnoli) — the checksum framing every journal record. Chosen
// over CRC32 (zlib polynomial) for its better burst-error detection and
// because it is what LevelDB/RocksDB-style record logs use; implemented in
// software (slice-by-one table) so the store layer has zero dependencies
// beyond the standard library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace proxion::store {

/// CRC32C of `data[0..len)`, optionally chained: pass a previous crc32c()
/// result as `seed` to extend the checksum over discontiguous buffers
/// (the journal checksums record-type byte + payload that way).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0) noexcept;

}  // namespace proxion::store
