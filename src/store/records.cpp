#include "store/records.h"

#include <cstring>

namespace proxion::store {

namespace {

using core::ContractAnalysis;
using core::ErrorKind;
using core::ErrorRecord;
using evm::Address;

// ---- encode primitives ----------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_address(std::vector<std::uint8_t>& out, const Address& a) {
  out.insert(out.end(), a.bytes.begin(), a.bytes.end());
}

void put_hash(std::vector<std::uint8_t>& out, const crypto::Hash256& h) {
  out.insert(out.end(), h.begin(), h.end());
}

void put_u256(std::vector<std::uint8_t>& out, const evm::U256& v) {
  const std::array<std::uint8_t, 32> be = v.to_be_bytes();
  out.insert(out.end(), be.begin(), be.end());
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// ---- decode cursor (bounds-checked; any failure poisons the cursor) -------

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> b) : b_(b) {}

  bool ok() const noexcept { return ok_; }
  bool exhausted() const noexcept { return ok_ && pos_ == b_.size(); }

  std::uint8_t u8() { return take(1) ? b_[pos_ - 1] : 0; }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b_[pos_ - 4 + i];
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b_[pos_ - 8 + i];
    return v;
  }

  Address address() {
    Address a;
    if (take(a.bytes.size())) {
      std::memcpy(a.bytes.data(), &b_[pos_ - a.bytes.size()], a.bytes.size());
    }
    return a;
  }

  crypto::Hash256 hash() {
    crypto::Hash256 h{};
    if (take(h.size())) {
      std::memcpy(h.data(), &b_[pos_ - h.size()], h.size());
    }
    return h;
  }

  evm::U256 u256() {
    if (!take(32)) return {};
    return evm::U256::from_be_bytes(
        std::span<const std::uint8_t, 32>(&b_[pos_ - 32], 32));
  }

  std::string string() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(reinterpret_cast<const char*>(&b_[pos_ - len]), len);
  }

  /// Typed enum read with an inclusive upper bound on the raw value.
  template <typename E>
  E enum_u8(std::uint8_t max_raw) {
    const std::uint8_t raw = u8();
    if (raw > max_raw) ok_ = false;
    return static_cast<E>(raw);
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || b_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> b_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- contract-record flag bits --------------------------------------------

constexpr std::uint8_t kFlagHasSource = 1u << 0;
constexpr std::uint8_t kFlagHasTx = 1u << 1;
constexpr std::uint8_t kFlagDeduplicated = 1u << 2;
constexpr std::uint8_t kFlagFnCollision = 1u << 3;
constexpr std::uint8_t kFlagStCollision = 1u << 4;
constexpr std::uint8_t kFlagStExploitable = 1u << 5;
constexpr std::uint8_t kFlagLogicHasSource = 1u << 6;
constexpr std::uint8_t kFlagError = 1u << 7;

constexpr std::uint8_t kProxyFlagHasDelegatecall = 1u << 0;
constexpr std::uint8_t kProxyFlagExecuted = 1u << 1;
constexpr std::uint8_t kProxyFlagForwarded = 1u << 2;
constexpr std::uint8_t kProxyFlagLayoutInferred = 1u << 3;
constexpr std::uint8_t kProxyFlagLayoutReliable = 1u << 4;

// Second analysis-flags byte (v2): the first is full.
constexpr std::uint8_t kFlag2FamilyCollision = 1u << 0;

constexpr std::uint8_t kDiamondFlagIsDiamond = 1u << 0;

// Inclusive raw maxima for the journaled enums; decode rejects anything
// beyond (future schema / corruption the CRC missed).
constexpr std::uint8_t kMaxVerdict =
    static_cast<std::uint8_t>(core::ProxyVerdict::kEmulationError);
constexpr std::uint8_t kMaxHalt =
    static_cast<std::uint8_t>(evm::HaltReason::kStepLimit);
constexpr std::uint8_t kMaxLogicSource =
    static_cast<std::uint8_t>(core::LogicSource::kComputed);
constexpr std::uint8_t kMaxStandard =
    static_cast<std::uint8_t>(core::ProxyStandard::kOther);
constexpr std::uint8_t kMaxTriage =
    static_cast<std::uint8_t>(core::StaticTriage::kSkippedMinimalProxy);
constexpr std::uint8_t kMaxErrorKind =
    static_cast<std::uint8_t>(ErrorKind::kDiskIo);

}  // namespace

std::vector<std::uint8_t> encode_contract_record(const ContractRecord& rec) {
  const ContractAnalysis& a = rec.analysis;
  std::vector<std::uint8_t> out;
  out.reserve(192);

  put_address(out, a.address);
  put_u32(out, static_cast<std::uint32_t>(a.year));
  std::uint8_t flags = 0;
  if (a.has_source) flags |= kFlagHasSource;
  if (a.has_tx) flags |= kFlagHasTx;
  if (a.deduplicated) flags |= kFlagDeduplicated;
  if (a.function_collision) flags |= kFlagFnCollision;
  if (a.storage_collision) flags |= kFlagStCollision;
  if (a.storage_collision_exploitable) flags |= kFlagStExploitable;
  if (a.logic_has_source) flags |= kFlagLogicHasSource;
  if (a.error) flags |= kFlagError;
  put_u8(out, flags);
  std::uint8_t flags2 = 0;
  if (a.family_collision) flags2 |= kFlag2FamilyCollision;
  put_u8(out, flags2);
  put_u32(out, a.collision_pairs_family_checked);
  put_u32(out, a.collision_pairs_source_free);

  const core::ProxyReport& p = a.proxy;
  put_u8(out, static_cast<std::uint8_t>(p.verdict));
  std::uint8_t pflags = 0;
  if (p.has_delegatecall_opcode) pflags |= kProxyFlagHasDelegatecall;
  if (p.delegatecall_executed) pflags |= kProxyFlagExecuted;
  if (p.calldata_forwarded) pflags |= kProxyFlagForwarded;
  if (p.layout_inferred) pflags |= kProxyFlagLayoutInferred;
  if (p.layout_reliable) pflags |= kProxyFlagLayoutReliable;
  put_u8(out, pflags);
  put_u8(out, static_cast<std::uint8_t>(p.halt));
  put_address(out, p.logic_address);
  put_u8(out, static_cast<std::uint8_t>(p.logic_source));
  put_u256(out, p.logic_slot);
  put_u8(out, static_cast<std::uint8_t>(p.standard));
  put_u8(out, static_cast<std::uint8_t>(p.static_triage));
  put_u8(out, p.static_mismatch);
  put_u32(out, p.probe_selector);
  put_u64(out, p.emulation_steps);

  const core::LogicHistory& lh = a.logic_history;
  put_u32(out, static_cast<std::uint32_t>(lh.logic_addresses.size()));
  for (const Address& addr : lh.logic_addresses) put_address(out, addr);
  put_u64(out, lh.upgrade_events);
  put_u64(out, lh.api_calls);

  const core::DiamondReport& d = a.diamond;
  put_u8(out, d.is_diamond ? kDiamondFlagIsDiamond : 0);
  put_u32(out, static_cast<std::uint32_t>(d.routed_selectors.size()));
  for (const std::uint32_t sel : d.routed_selectors) put_u32(out, sel);
  put_u32(out, static_cast<std::uint32_t>(d.facets.size()));
  for (const Address& addr : d.facets) put_address(out, addr);

  if (a.error) {
    put_u8(out, static_cast<std::uint8_t>(a.error->kind));
    put_string(out, a.error->phase);
    put_string(out, a.error->detail);
  }

  put_hash(out, rec.code_hash);
  return out;
}

std::optional<ContractRecord> decode_contract_record(
    std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  ContractRecord rec;
  ContractAnalysis& a = rec.analysis;

  a.address = c.address();
  a.year = static_cast<int>(c.u32());
  const std::uint8_t flags = c.u8();
  a.has_source = (flags & kFlagHasSource) != 0;
  a.has_tx = (flags & kFlagHasTx) != 0;
  a.deduplicated = (flags & kFlagDeduplicated) != 0;
  a.function_collision = (flags & kFlagFnCollision) != 0;
  a.storage_collision = (flags & kFlagStCollision) != 0;
  a.storage_collision_exploitable = (flags & kFlagStExploitable) != 0;
  a.logic_has_source = (flags & kFlagLogicHasSource) != 0;
  const std::uint8_t flags2 = c.u8();
  a.family_collision = (flags2 & kFlag2FamilyCollision) != 0;
  a.collision_pairs_family_checked = c.u32();
  a.collision_pairs_source_free = c.u32();

  core::ProxyReport& p = a.proxy;
  p.verdict = c.enum_u8<core::ProxyVerdict>(kMaxVerdict);
  const std::uint8_t pflags = c.u8();
  p.has_delegatecall_opcode = (pflags & kProxyFlagHasDelegatecall) != 0;
  p.delegatecall_executed = (pflags & kProxyFlagExecuted) != 0;
  p.calldata_forwarded = (pflags & kProxyFlagForwarded) != 0;
  p.layout_inferred = (pflags & kProxyFlagLayoutInferred) != 0;
  p.layout_reliable = (pflags & kProxyFlagLayoutReliable) != 0;
  p.halt = c.enum_u8<evm::HaltReason>(kMaxHalt);
  p.logic_address = c.address();
  p.logic_source = c.enum_u8<core::LogicSource>(kMaxLogicSource);
  p.logic_slot = c.u256();
  p.standard = c.enum_u8<core::ProxyStandard>(kMaxStandard);
  p.static_triage = c.enum_u8<core::StaticTriage>(kMaxTriage);
  p.static_mismatch = c.u8();
  p.probe_selector = c.u32();
  p.emulation_steps = c.u64();

  core::LogicHistory& lh = a.logic_history;
  const std::uint32_t n_logic = c.u32();
  for (std::uint32_t i = 0; c.ok() && i < n_logic; ++i) {
    lh.logic_addresses.push_back(c.address());
  }
  lh.upgrade_events = c.u64();
  lh.api_calls = c.u64();

  core::DiamondReport& d = a.diamond;
  d.is_diamond = (c.u8() & kDiamondFlagIsDiamond) != 0;
  const std::uint32_t n_sel = c.u32();
  for (std::uint32_t i = 0; c.ok() && i < n_sel; ++i) {
    d.routed_selectors.push_back(c.u32());
  }
  const std::uint32_t n_facets = c.u32();
  for (std::uint32_t i = 0; c.ok() && i < n_facets; ++i) {
    d.facets.push_back(c.address());
  }

  if ((flags & kFlagError) != 0) {
    ErrorRecord err;
    err.kind = c.enum_u8<ErrorKind>(kMaxErrorKind);
    err.phase = c.string();
    err.detail = c.string();
    a.error = std::move(err);
  }

  rec.code_hash = c.hash();
  if (!c.exhausted()) return std::nullopt;
  return rec;
}

std::vector<std::uint8_t> encode_sweep_begin(const SweepBeginRecord& rec) {
  std::vector<std::uint8_t> out;
  put_u64(out, rec.population);
  put_u64(out, rec.shard_size);
  return out;
}

std::optional<SweepBeginRecord> decode_sweep_begin(
    std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  SweepBeginRecord rec;
  rec.population = c.u64();
  rec.shard_size = c.u64();
  if (!c.exhausted()) return std::nullopt;
  return rec;
}

std::vector<std::uint8_t> encode_shard_commit(const ShardCommitRecord& rec) {
  std::vector<std::uint8_t> out;
  put_u64(out, rec.shard_index);
  put_u64(out, rec.contracts);
  return out;
}

std::optional<ShardCommitRecord> decode_shard_commit(
    std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  ShardCommitRecord rec;
  rec.shard_index = c.u64();
  rec.contracts = c.u64();
  if (!c.exhausted()) return std::nullopt;
  return rec;
}

std::vector<std::uint8_t> encode_sweep_end(const SweepEndRecord& rec) {
  std::vector<std::uint8_t> out;
  put_u64(out, rec.contracts);
  return out;
}

std::optional<SweepEndRecord> decode_sweep_end(
    std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  SweepEndRecord rec;
  rec.contracts = c.u64();
  if (!c.exhausted()) return std::nullopt;
  return rec;
}

}  // namespace proxion::store
