// The checkpoint journal: an append-only, CRC32C-framed record log that
// makes the landscape sweep restartable. Layering (see ARCHITECTURE.md):
// this file knows only about byte frames — what goes *inside* a frame is
// records.h's business, and when frames get written is durable_sweep.h's.
// All I/O goes through a util::Vfs (defaulting to the real filesystem), so
// the chaos harness can put a fault-injecting model filesystem underneath.
//
// On-disk layout (normative spec: docs/CHECKPOINT_FORMAT.md):
//
//   file   := header frame*
//   header := magic[8]="PROXJRNL" u16 version(LE) u16 reserved=0
//   frame  := u32 payload_len(LE) u8 type payload[payload_len]
//             u32 crc32c(type || payload)(LE)
//
// Recovery contract: a reader scans frames from the header forward and
// stops at the first structurally-truncated or CRC-failing frame — the
// valid prefix is the journal's content (torn tails from a crash mid-append
// are dropped, never propagated). With ReplayOptions::salvage, the scan
// instead resynchronizes past a corrupt region to the next valid frame, so
// mid-file bit rot loses only the frames it actually hit (the durable sweep
// recomputes exactly those). Alongside the journal lives a manifest
// (journal path + ".manifest") rewritten via write-temp-then-rename after
// every shard commit, so "how much of the journal is a committed sweep
// state" survives any crash: rename(2) is atomic on POSIX, and the parent
// directory is fsynced after the rename so the new entry survives power
// loss too.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/vfs.h"

namespace proxion::store {

inline constexpr std::size_t kJournalMagicSize = 8;
inline constexpr char kJournalMagic[kJournalMagicSize + 1] = "PROXJRNL";
/// v2: contract records gained the storage-layout-inference fields
/// (family-collision flags, source-free pair counters). Readers reject
/// other versions wholesale — a v1 journal resumes as a fresh sweep.
inline constexpr std::uint16_t kJournalVersion = 2;
/// header = magic + version + reserved.
inline constexpr std::size_t kJournalHeaderSize = kJournalMagicSize + 4;
/// Frame overhead around the payload: length + type + checksum.
inline constexpr std::size_t kFrameOverhead = 4 + 1 + 4;
/// Fuse against absurd length fields in corrupted frames (a frame claiming
/// more than this is treated as the start of a torn tail).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

/// Outcome of a store I/O operation, carrying enough context (operation,
/// errno, file offset, path) for a degraded-mode report to say *why* the
/// disk failed, not just that it did. Converts to bool like the old
/// bare-bool API: `if (!writer.sync()) ...` still reads the same.
struct IoResult {
  bool ok = true;
  /// What was being attempted ("append", "fsync", "rename", ...).
  std::string op;
  int err = 0;
  /// File offset of the failed operation, when meaningful.
  std::uint64_t offset = 0;
  std::string path;

  /// "fsync failed at offset 1234 in /x/journal: Input/output error".
  std::string message() const;

  explicit operator bool() const noexcept { return ok; }

  static IoResult failure(std::string op, int err, std::uint64_t offset = 0,
                          std::string path = {});
};

/// Frame types (payload schemas in records.h / CHECKPOINT_FORMAT.md).
enum class RecordType : std::uint8_t {
  kSweepBegin = 1,   // population size + shard geometry
  kContract = 2,     // one ContractAnalysis + its code-hash fingerprint
  kShardCommit = 3,  // shard index + contract count became durable
  kSweepEnd = 4,     // the sweep covered the whole population
};

/// Append-side handle. Not thread-safe: the durable sweep driver is the
/// single writer (the parallelism lives inside the pipeline, not here).
///
/// Failure semantics: a failed fsync makes the writer permanently dead
/// (fsyncgate — the kernel may have dropped the dirty pages on the floor, so
/// "retrying" the fsync on the same file would report success over lost
/// data). Every later append()/sync() returns the original failure. Other
/// failures (short write, ENOSPC) are also sticky: the file's tail is in an
/// unknown torn state that only a fresh open_append() scan can resolve.
class JournalWriter {
 public:
  /// Creates/truncates `path`, writes + fsyncs a fresh header, and fsyncs
  /// the parent directory so the journal's existence itself is durable.
  /// On failure, `why` (when non-null) says what went wrong.
  static std::optional<JournalWriter> create(
      const std::string& path, util::Vfs& vfs = util::Vfs::real(),
      IoResult* why = nullptr);
  /// Opens an existing journal for appending. Fails (nullopt) when the file
  /// is missing or its header is not a compatible journal header. Appends
  /// after the last *valid* frame (salvage scan: valid frames beyond a
  /// corrupt middle are kept). Any torn tail is preserved in the
  /// `<path>.torn` sidecar (overwrite-latest) before being truncated away,
  /// and counted in the `store.journal.torn_tails` counter.
  static std::optional<JournalWriter> open_append(
      const std::string& path, util::Vfs& vfs = util::Vfs::real(),
      IoResult* why = nullptr);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter() = default;

  /// Buffers one frame; buffered frames reach the file at the next sync()
  /// (or when the buffer passes a flush threshold). Failure means the frame
  /// was rejected (oversized payload) or the writer is dead.
  IoResult append(RecordType type, std::span<const std::uint8_t> payload);
  /// Flushes buffered frames and fsyncs the file: everything appended so
  /// far is durable after this succeeds. Called at shard commits — not per
  /// record — so the sync cost amortizes over the shard. A failure kills
  /// the writer permanently (see class comment).
  IoResult sync();

  /// Bytes in the journal including the header (append position, counting
  /// buffered-but-unflushed frames).
  std::uint64_t size_bytes() const noexcept { return offset_; }
  std::uint64_t frames_appended() const noexcept { return frames_; }
  /// Dead after a failed sync/flush (fsyncgate fail-stop); the first
  /// failure is what append()/sync() keep returning.
  bool dead() const noexcept { return !first_error_.ok; }

 private:
  JournalWriter(std::unique_ptr<util::VfsFile> f, std::string path,
                std::uint64_t offset)
      : file_(std::move(f)), path_(std::move(path)), offset_(offset) {}

  /// Writes pending_ to the file. On failure: records the sticky error and
  /// drops the file handle (fail-stop).
  IoResult flush_pending();

  std::unique_ptr<util::VfsFile> file_;
  std::string path_;
  std::uint64_t offset_ = 0;
  std::uint64_t frames_ = 0;
  std::vector<std::uint8_t> pending_;
  IoResult first_error_;
};

/// One decoded frame.
struct JournalFrame {
  RecordType type{};
  std::vector<std::uint8_t> payload;
};

/// How read_journal treats a corrupt region. The default (no salvage)
/// stops at the first bad frame — right for straight-line torn-tail
/// recovery. Salvage mode scans forward byte-by-byte for the next valid
/// frame and keeps going, so committed records *past* a bit-rot gap
/// survive; the durable sweep uses this and recomputes only the gap.
struct ReplayOptions {
  bool salvage = false;
};

/// Outcome of a full journal scan: the valid frame prefix plus how the scan
/// ended (cleanly at EOF, or at a torn/corrupt tail that was dropped).
struct JournalReplay {
  std::vector<JournalFrame> frames;
  /// Byte offset just past the last valid frame (= header size for an empty
  /// journal). A writer resuming here overwrites only garbage.
  std::uint64_t valid_bytes = 0;
  /// True when bytes existed past valid_bytes (torn tail or corruption).
  bool tail_dropped = false;
  /// Frames that parsed structurally but failed their CRC.
  std::uint64_t crc_failures = 0;
  /// Salvage only: corrupt regions skipped to reach a later valid frame,
  /// and the total bytes those regions covered.
  std::uint64_t corrupt_gaps = 0;
  std::uint64_t gap_bytes = 0;
};

/// Scans `path` and returns the valid frame prefix (or, with
/// opts.salvage, every valid frame — see ReplayOptions). nullopt when the
/// file does not exist or its header is not a compatible journal header (a
/// *corrupt header* is unrecoverable by design — the manifest still names
/// the sweep state, but the data must be re-swept).
std::optional<JournalReplay> read_journal(const std::string& path,
                                          util::Vfs& vfs = util::Vfs::real(),
                                          const ReplayOptions& opts = {});

/// Committed sweep state, stored next to the journal and replaced
/// atomically (write temp + fsync + rename + dir fsync) after every shard
/// commit.
struct Manifest {
  std::uint16_t version = kJournalVersion;
  /// Journal size (bytes, incl. header) when this state was committed.
  /// Frames beyond it are valid-but-uncommitted (crash after journal sync,
  /// before manifest rename); replay accepts them — they hold completed,
  /// deterministic analyses — and the next commit re-covers them.
  std::uint64_t committed_bytes = 0;
  std::uint64_t shards_committed = 0;
  /// Unique contracts whose records lie inside committed_bytes (replayed +
  /// recomputed by the sweep that wrote this manifest).
  std::uint64_t contracts_committed = 0;
  /// True once kSweepEnd was journaled: the population was fully covered.
  bool complete = false;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// The manifest path convention: `<journal path>.manifest`.
std::string manifest_path_for(const std::string& journal_path);

/// The torn-tail sidecar convention: `<journal path>.torn` (forensic copy
/// of the last truncated tail; overwritten each time a new tail is cut).
std::string torn_sidecar_path_for(const std::string& journal_path);

/// Loads a manifest; nullopt when missing or its self-checksum fails (a
/// torn manifest write is impossible under the rename protocol, so a bad
/// checksum means external corruption — caller should treat the sweep as
/// never-committed).
std::optional<Manifest> load_manifest(const std::string& path,
                                      util::Vfs& vfs = util::Vfs::real());

/// Atomically replaces `path` with `m` (temp file + fsync + rename + parent
/// dir fsync — without the last step a power cut after the rename could
/// still resurrect the old manifest).
IoResult store_manifest(const std::string& path, const Manifest& m,
                        util::Vfs& vfs = util::Vfs::real());

}  // namespace proxion::store
