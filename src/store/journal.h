// The checkpoint journal: an append-only, CRC32C-framed record log that
// makes the landscape sweep restartable. Layering (see ARCHITECTURE.md):
// this file knows only about byte frames — what goes *inside* a frame is
// records.h's business, and when frames get written is durable_sweep.h's.
//
// On-disk layout (normative spec: docs/CHECKPOINT_FORMAT.md):
//
//   file   := header frame*
//   header := magic[8]="PROXJRNL" u16 version(LE) u16 reserved=0
//   frame  := u32 payload_len(LE) u8 type payload[payload_len]
//             u32 crc32c(type || payload)(LE)
//
// Recovery contract: a reader scans frames from the header forward and
// stops at the first structurally-truncated or CRC-failing frame — the
// valid prefix is the journal's content (torn tails from a crash mid-append
// are dropped, never propagated). Alongside the journal lives a manifest
// (journal path + ".manifest") rewritten via write-temp-then-rename after
// every shard commit, so "how much of the journal is a committed sweep
// state" survives any crash: rename(2) is atomic on POSIX.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace proxion::store {

inline constexpr std::size_t kJournalMagicSize = 8;
inline constexpr char kJournalMagic[kJournalMagicSize + 1] = "PROXJRNL";
inline constexpr std::uint16_t kJournalVersion = 1;
/// header = magic + version + reserved.
inline constexpr std::size_t kJournalHeaderSize = kJournalMagicSize + 4;
/// Frame overhead around the payload: length + type + checksum.
inline constexpr std::size_t kFrameOverhead = 4 + 1 + 4;
/// Fuse against absurd length fields in corrupted frames (a frame claiming
/// more than this is treated as the start of a torn tail).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

/// Frame types (payload schemas in records.h / CHECKPOINT_FORMAT.md).
enum class RecordType : std::uint8_t {
  kSweepBegin = 1,   // population size + shard geometry
  kContract = 2,     // one ContractAnalysis + its code-hash fingerprint
  kShardCommit = 3,  // shard index + contract count became durable
  kSweepEnd = 4,     // the sweep covered the whole population
};

/// Append-side handle. Not thread-safe: the durable sweep driver is the
/// single writer (the parallelism lives inside the pipeline, not here).
class JournalWriter {
 public:
  /// Creates/truncates `path` and writes a fresh header.
  static std::optional<JournalWriter> create(const std::string& path);
  /// Opens an existing journal for appending. Fails (nullopt) when the file
  /// is missing or its header is not a compatible journal header. Appends
  /// after the last *valid* frame, truncating any torn tail first so a
  /// resumed journal never carries a corrupt middle.
  static std::optional<JournalWriter> open_append(const std::string& path);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Buffers one frame. Returns false on I/O error.
  bool append(RecordType type, std::span<const std::uint8_t> payload);
  /// Flushes buffered frames and fsyncs the file: everything appended so
  /// far is durable after this returns true. Called at shard commits — not
  /// per record — so the sync cost amortizes over the shard.
  bool sync();

  /// Bytes in the journal including the header (append position).
  std::uint64_t size_bytes() const noexcept { return offset_; }
  std::uint64_t frames_appended() const noexcept { return frames_; }

 private:
  JournalWriter(std::FILE* f, std::uint64_t offset) : file_(f), offset_(offset) {}

  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;
  std::uint64_t frames_ = 0;
};

/// One decoded frame.
struct JournalFrame {
  RecordType type{};
  std::vector<std::uint8_t> payload;
};

/// Outcome of a full journal scan: the valid frame prefix plus how the scan
/// ended (cleanly at EOF, or at a torn/corrupt tail that was dropped).
struct JournalReplay {
  std::vector<JournalFrame> frames;
  /// Byte offset just past the last valid frame (= header size for an empty
  /// journal). A writer resuming here overwrites only garbage.
  std::uint64_t valid_bytes = 0;
  /// True when bytes existed past valid_bytes (torn tail or corruption).
  bool tail_dropped = false;
  /// Frames whose CRC failed (counts at most 1 today: the scan stops there).
  std::uint64_t crc_failures = 0;
};

/// Scans `path` and returns the valid frame prefix. nullopt when the file
/// does not exist or its header is not a compatible journal header (a
/// *corrupt header* is unrecoverable by design — the manifest still names
/// the sweep state, but the data must be re-swept).
std::optional<JournalReplay> read_journal(const std::string& path);

/// Committed sweep state, stored next to the journal and replaced
/// atomically (write temp + fsync + rename) after every shard commit.
struct Manifest {
  std::uint16_t version = kJournalVersion;
  /// Journal size (bytes, incl. header) when this state was committed.
  /// Frames beyond it are valid-but-uncommitted (crash after journal sync,
  /// before manifest rename); replay accepts them — they hold completed,
  /// deterministic analyses — and the next commit re-covers them.
  std::uint64_t committed_bytes = 0;
  std::uint64_t shards_committed = 0;
  std::uint64_t contracts_committed = 0;
  /// True once kSweepEnd was journaled: the population was fully covered.
  bool complete = false;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

/// The manifest path convention: `<journal path>.manifest`.
std::string manifest_path_for(const std::string& journal_path);

/// Loads a manifest; nullopt when missing or its self-checksum fails (a
/// torn manifest write is impossible under the rename protocol, so a bad
/// checksum means external corruption — caller should treat the sweep as
/// never-committed).
std::optional<Manifest> load_manifest(const std::string& path);

/// Atomically replaces `path` with `m` (temp file + fsync + rename).
bool store_manifest(const std::string& path, const Manifest& m);

}  // namespace proxion::store
