// Payload schemas for the journal's frame types: how a ContractAnalysis
// (plus its incremental-sweep fingerprint) and the sweep/shard bookkeeping
// records serialize to bytes. Everything is fixed little-endian with
// length-prefixed sequences — the normative byte-level description lives in
// docs/CHECKPOINT_FORMAT.md; this header is its implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "crypto/keccak.h"

namespace proxion::store {

/// One journaled contract: the full analysis plus the fingerprint the
/// incremental sweep diffs against current chain state. The code hash is
/// stored explicitly; the implementation-slot head needs no extra field —
/// for slot-based proxies `analysis.proxy.logic_address` IS the masked head
/// value the slot held at analysis time.
struct ContractRecord {
  core::ContractAnalysis analysis;
  crypto::Hash256 code_hash{};

  friend bool operator==(const ContractRecord&, const ContractRecord&) = default;
};

std::vector<std::uint8_t> encode_contract_record(const ContractRecord& rec);
/// nullopt on any structural violation (short buffer, trailing bytes,
/// out-of-range enum) — a CRC-valid frame can still be rejected here if it
/// was written by a future schema.
std::optional<ContractRecord> decode_contract_record(
    std::span<const std::uint8_t> payload);

/// kSweepBegin payload: the population geometry the journal was opened for.
struct SweepBeginRecord {
  std::uint64_t population = 0;
  std::uint64_t shard_size = 0;

  friend bool operator==(const SweepBeginRecord&,
                         const SweepBeginRecord&) = default;
};

std::vector<std::uint8_t> encode_sweep_begin(const SweepBeginRecord& rec);
std::optional<SweepBeginRecord> decode_sweep_begin(
    std::span<const std::uint8_t> payload);

/// kShardCommit payload: all of shard `shard_index`'s contract records
/// precede this frame and are durable (the writer synced before appending).
struct ShardCommitRecord {
  std::uint64_t shard_index = 0;
  std::uint64_t contracts = 0;

  friend bool operator==(const ShardCommitRecord&,
                         const ShardCommitRecord&) = default;
};

std::vector<std::uint8_t> encode_shard_commit(const ShardCommitRecord& rec);
std::optional<ShardCommitRecord> decode_shard_commit(
    std::span<const std::uint8_t> payload);

/// kSweepEnd payload: total contracts covered when the sweep finished.
struct SweepEndRecord {
  std::uint64_t contracts = 0;

  friend bool operator==(const SweepEndRecord&, const SweepEndRecord&) = default;
};

std::vector<std::uint8_t> encode_sweep_end(const SweepEndRecord& rec);
std::optional<SweepEndRecord> decode_sweep_end(
    std::span<const std::uint8_t> payload);

}  // namespace proxion::store
