#include "store/durable_sweep.h"

#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/report.h"

namespace proxion::store {

namespace {

using core::ContractAnalysis;
using core::SweepInput;
using evm::Address;
using evm::U256;

struct HashKey {
  std::size_t operator()(const crypto::Hash256& h) const noexcept {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(out); ++i) out = (out << 8) | h[i];
    return out;
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Low-160-bit mask: how the EVM (and Phase B's dedup re-read) turns a
/// storage word into an address.
Address masked_head(const U256& word) {
  return Address::from_word(word & ((U256{1} << U256{160}) - U256{1}));
}

}  // namespace

DurableSweep::DurableSweep(core::AnalysisPipeline& pipeline,
                           chain::Blockchain& chain,
                           const sourcemeta::SourceRepository* sources,
                           DurableSweepConfig config)
    : pipeline_(pipeline),
      chain_(chain),
      sources_(sources),
      config_(std::move(config)),
      metrics_(config_.registry != nullptr ? *config_.registry
                                           : obs::Registry::global()) {}

DurableSweepResult DurableSweep::run(const std::vector<SweepInput>& inputs) {
  return sweep(inputs, Mode::kFresh);
}

DurableSweepResult DurableSweep::resume(const std::vector<SweepInput>& inputs) {
  return sweep(inputs, Mode::kResume);
}

DurableSweepResult DurableSweep::incremental(
    const std::vector<SweepInput>& inputs) {
  return sweep(inputs, Mode::kIncremental);
}

DurableSweepResult DurableSweep::sweep(const std::vector<SweepInput>& inputs,
                                       Mode mode) {
  DurableSweepResult result;
  util::Vfs& vfs = config_.vfs != nullptr ? *config_.vfs : util::Vfs::real();
  // Per-sweep gauges start clean (a prior degraded sweep on the same
  // registry must not leak into this one's report).
  metrics_.gauge("sweep.degraded").set(0);
  metrics_.gauge("sweep.selfheal_shards").set(0);
  if (config_.status != nullptr) {
    config_.status->degraded.store(false, std::memory_order_relaxed);
  }

  // ---- fingerprint the population ---------------------------------------
  // One code fetch + keccak per input; the blob is dropped immediately, so
  // this phase holds 32 bytes per contract — population *metadata* may be
  // O(N), it is the per-contract artifacts that must stay O(shard).
  std::vector<crypto::Hash256> hashes(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    hashes[i] = evm::code_hash(chain_.code_at(inputs[i].address));
  }

  // ---- hash-affine grouping (first-occurrence order) --------------------
  std::vector<Group> groups;
  {
    std::unordered_map<crypto::Hash256, std::size_t, HashKey> index_of;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const auto [it, inserted] = index_of.try_emplace(hashes[i], groups.size());
      if (inserted) groups.push_back(Group{hashes[i], {}});
      groups[it->second].members.push_back(i);
    }
  }

  // ---- replay the journal (resume / incremental) ------------------------
  // Last-wins per address: a record appended by a later resume/incremental
  // pass supersedes the original.
  std::unordered_map<Address, ContractRecord, evm::AddressHasher> records;
  std::uint64_t prior_shards = 0;
  bool journal_present = false;
  std::uint64_t heal_gaps = 0;
  if (mode != Mode::kFresh) {
    // Salvage replay: a bit-rotted region mid-journal loses only the
    // records it physically destroyed — valid frames past it still count.
    // The destroyed records' hash groups simply come up short below and
    // get recomputed whole: that IS the self-heal, scoped to the damage.
    if (std::optional<JournalReplay> replay = read_journal(
            config_.journal_path, vfs, ReplayOptions{.salvage = true})) {
      journal_present = true;
      heal_gaps = replay->corrupt_gaps;
      metrics_.counter("store.journal.frames_replayed").add(replay->frames.size());
      metrics_.counter("store.journal.crc_failures").add(replay->crc_failures);
      metrics_.counter("store.journal.corrupt_gaps").add(replay->corrupt_gaps);
      if (replay->tail_dropped) {
        metrics_.counter("store.journal.truncated_tails").add(1);
      }
      if (config_.event_log != nullptr) {
        if (replay->corrupt_gaps > 0) {
          config_.event_log->emit(
              obs::Severity::kWarn, "sweep",
              "journal self-heal: salvaged around " +
                  std::to_string(replay->corrupt_gaps) +
                  " corrupt region(s); damaged groups will recompute");
        }
        if (replay->tail_dropped) {
          config_.event_log->emit(
              obs::Severity::kWarn, "sweep",
              "journal torn tail dropped (power-cut mid-append); "
              "uncommitted records will recompute");
        }
      }
      for (const JournalFrame& frame : replay->frames) {
        switch (frame.type) {
          case RecordType::kContract:
            if (std::optional<ContractRecord> rec =
                    decode_contract_record(frame.payload)) {
              records[rec->analysis.address] = std::move(*rec);
            }
            break;
          case RecordType::kShardCommit:
            if (decode_shard_commit(frame.payload)) ++prior_shards;
            break;
          case RecordType::kSweepBegin:
          case RecordType::kSweepEnd:
            break;
        }
      }
    }
  }
  const Mode effective =
      (mode != Mode::kFresh && !journal_present) ? Mode::kFresh : mode;

  // ---- plan: replay vs recompute per contract ---------------------------
  std::uint64_t upgraded = 0;
  Plan plan;
  plan.prior_shards = prior_shards;
  std::unordered_set<std::size_t> dedup_patch;
  std::unordered_map<crypto::Hash256, Seed, HashKey> seeds;
  if (effective == Mode::kFresh) {
    plan.rerun_groups = groups;
  } else {
    for (const Group& group : groups) {
      // Per-member disposition against the journaled fingerprints.
      std::vector<std::size_t> rerun;
      std::vector<const ContractRecord*> keep;
      for (const std::size_t i : group.members) {
        const auto it = records.find(inputs[i].address);
        const ContractRecord* rec = it == records.end() ? nullptr : &it->second;
        const bool healthy = rec != nullptr && !rec->analysis.error &&
                             rec->code_hash == hashes[i];
        bool reusable = healthy;
        if (healthy && effective == Mode::kIncremental &&
            rec->analysis.proxy.logic_source == core::LogicSource::kStorageSlot) {
          // Same code, but has the implementation slot moved? The journaled
          // logic_address IS the masked head at analysis time.
          const Address head = masked_head(chain_.get_storage(
              inputs[i].address, rec->analysis.proxy.logic_slot));
          if (head != rec->analysis.proxy.logic_address) {
            reusable = false;
            ++upgraded;
          }
        }
        if (reusable) {
          keep.push_back(rec);
        } else {
          rerun.push_back(i);
        }
      }
      if (rerun.empty()) {
        for (const ContractRecord* rec : keep) plan.replayed.push_back(*rec);
        continue;
      }
      if (effective == Mode::kResume) {
        // Resume recomputes incomplete groups WHOLE: the journal may have
        // been cut mid-group (or hold a quarantined member), and dedup
        // metadata must converge to a fault-free full run's.
        plan.rerun_groups.push_back(group);
        continue;
      }
      // Incremental: keep the unchanged members, re-run the rest.
      for (const ContractRecord* rec : keep) plan.replayed.push_back(*rec);
      if (group.members.front() != rerun.front()) {
        // The group's global-first representative was replayed; everything
        // re-run here must journal as a dedup clone or the unique-codehash
        // count would double.
        for (const std::size_t i : rerun) dedup_patch.insert(i);
      }
      // Seed Phase A from any healthy same-code record so unchanged
      // bytecode is never re-emulated; patch slot-read fields to the
      // sub-run representative's CURRENT head, exactly as Phase B's dedup
      // re-read would.
      const ContractRecord* donor = nullptr;
      for (const std::size_t i : group.members) {
        const auto it = records.find(inputs[i].address);
        if (it != records.end() && !it->second.analysis.error &&
            it->second.code_hash == group.hash) {
          donor = &it->second;
          break;
        }
      }
      if (donor != nullptr) {
        Seed seed;
        seed.hash = group.hash;
        seed.representative = inputs[rerun.front()].address;
        seed.report = donor->analysis.proxy;
        if (seed.report.logic_source == core::LogicSource::kStorageSlot) {
          seed.report.logic_address = masked_head(chain_.get_storage(
              seed.representative, seed.report.logic_slot));
        }
        seeds.emplace(group.hash, std::move(seed));
      }
      plan.rerun_groups.push_back(Group{group.hash, std::move(rerun)});
    }
  }

  metrics_.counter("store.sweep.contracts_upgraded").add(upgraded);

  // ---- open the journal -------------------------------------------------
  // On any disk failure from here on, `degrade` either flips the sweep
  // into in-memory degraded mode (drop the writer, keep analyzing, report
  // the cause) or — with degradation disabled — asks the caller to abort.
  auto degrade = [&](const IoResult& why) -> bool /*keep going*/ {
    if (!result.disk_error) {
      result.disk_error = core::ErrorRecord{core::ErrorKind::kDiskIo,
                                            "journal", why.message()};
    }
    if (!config_.degrade_on_disk_failure) return false;
    if (!result.degraded) {
      result.degraded = true;
      metrics_.gauge("sweep.degraded").set(1);
      if (config_.status != nullptr) {
        config_.status->degraded.store(true, std::memory_order_relaxed);
      }
      if (config_.event_log != nullptr) {
        config_.event_log->emit(
            obs::Severity::kError, "sweep",
            "degraded to in-memory mode: " + why.message());
      } else {
        // No structured sink wired: this line is operationally load-bearing
        // (checkpointing just silently stopped), so stderr keeps it.
        std::fprintf(stderr,
                     "proxion: durable sweep degraded to in-memory mode: %s\n",
                     why.message().c_str());
      }
    }
    return true;
  };
  IoResult open_why;
  std::optional<JournalWriter> writer =
      effective == Mode::kFresh
          ? JournalWriter::create(config_.journal_path, vfs, &open_why)
          : JournalWriter::open_append(config_.journal_path, vfs, &open_why);
  if (!writer) {
    if (!degrade(open_why)) {
      result.error = "cannot open checkpoint journal: " + config_.journal_path +
                     " (" + open_why.message() + ")";
      return result;
    }
  }
  if (writer && effective == Mode::kFresh) {
    const std::vector<std::uint8_t> begin = encode_sweep_begin(
        {inputs.size(), static_cast<std::uint64_t>(config_.shard_size)});
    if (IoResult r = writer->append(RecordType::kSweepBegin, begin); !r) {
      if (!degrade(r)) {
        result.error = "journal append failed: " + r.message();
        return result;
      }
      writer.reset();
    }
  }

  // ---- global §7.1 donor overlay ----------------------------------------
  // Built over the WHOLE population so every shard resolves the same donors
  // a monolithic run would (first verified address per code hash wins).
  {
    std::vector<std::pair<crypto::Hash256, Address>> donors;
    if (sources_ != nullptr) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (sources_->has_source(inputs[i].address)) {
          donors.emplace_back(hashes[i], inputs[i].address);
        }
      }
    }
    pipeline_.set_source_donor_overlay(std::move(donors));
  }

  // ---- pack rerun groups into shards (groups are atomic) ----------------
  std::vector<std::vector<const Group*>> shards;
  for (const Group& group : plan.rerun_groups) {
    std::size_t current = 0;
    if (!shards.empty()) {
      for (const Group* g : shards.back()) current += g->members.size();
    }
    if (shards.empty() || (config_.shard_size > 0 && current >= config_.shard_size)) {
      shards.emplace_back();
    }
    shards.back().push_back(&group);
  }

  // ---- shard-progress exposition ----------------------------------------
  // Totals are known the moment the plan exists; the committed gauge then
  // climbs per shard, so a /metrics scrape mid-sweep reads live progress.
  const std::uint64_t shards_total = plan.prior_shards + shards.size();
  metrics_.gauge("sweep.shards_total")
      .set(static_cast<std::int64_t>(shards_total));
  metrics_.gauge("sweep.shards_committed")
      .set(static_cast<std::int64_t>(plan.prior_shards));
  if (config_.status != nullptr) {
    config_.status->shards_total.store(shards_total,
                                       std::memory_order_relaxed);
    config_.status->shards_committed.store(plan.prior_shards,
                                           std::memory_order_relaxed);
    config_.status->journal_bytes.store(writer ? writer->size_bytes() : 0,
                                        std::memory_order_relaxed);
  }

  // ---- replayed reports feed the aggregates directly --------------------
  core::LandscapeAccumulator acc;
  for (const ContractRecord& rec : plan.replayed) acc.add(rec.analysis);
  result.replayed = plan.replayed.size();
  metrics_.counter("store.sweep.contracts_replayed").add(result.replayed);
  if (config_.record_sink && !plan.replayed.empty()) {
    config_.record_sink(plan.replayed);
  }

  // ---- per-shard streaming loop -----------------------------------------
  obs::HistogramSnapshot sum_contract_ns, sum_rpc_ns, sum_steps;
  double sum_fetch_ms = 0, sum_proxy_ms = 0, sum_pairs_ms = 0;
  std::uint64_t sum_pair_hits = 0, sum_pair_misses = 0, sum_pair_waits = 0;
  obs::Histogram& h_flush = metrics_.histogram("store.journal.flush_ns");
  std::uint64_t shard_index = plan.prior_shards;
  // Replayed contracts sit inside the journal's valid prefix, which every
  // manifest written below covers (committed_bytes spans the whole file) —
  // so they count as committed from the first new commit on. Summing the
  // journal's old kShardCommit frames instead would miss records replayed
  // from valid-but-uncommitted tails and double-count re-run groups.
  std::uint64_t contracts_committed = result.replayed;
  bool stopped = false;

  for (const std::vector<const Group*>& shard : shards) {
    if (config_.max_shards != 0 && result.shards_run >= config_.max_shards) {
      stopped = true;
      break;
    }
    std::vector<SweepInput> shard_inputs;
    std::vector<std::size_t> shard_globals;
    for (const Group* group : shard) {
      if (const auto it = seeds.find(group->hash); it != seeds.end()) {
        // Seeded AFTER the previous shard's shed (which empties the verdict
        // memo) and before this run, so it is alive exactly when needed.
        pipeline_.seed_verdict(it->second.hash, it->second.representative,
                               it->second.report);
      }
      for (const std::size_t i : group->members) {
        shard_inputs.push_back(inputs[i]);
        shard_globals.push_back(i);
      }
    }

    std::vector<ContractAnalysis> reports = pipeline_.run(shard_inputs);

    // Per-run perf accounting, summed across shards (the pipeline resets
    // its run-scoped histograms/timers at every run entry).
    core::LandscapeStats shard_annot;
    pipeline_.annotate_run_stats(shard_annot);
    sum_fetch_ms += shard_annot.phase_fetch_ms;
    sum_proxy_ms += shard_annot.phase_proxy_ms;
    sum_pairs_ms += shard_annot.phase_pairs_ms;
    sum_pair_hits += shard_annot.pair_cache_hits;
    sum_pair_misses += shard_annot.pair_cache_misses;
    sum_pair_waits += shard_annot.pair_cache_waits;
    const obs::Registry& preg = pipeline_.registry();
    if (const obs::Histogram* h = preg.find_histogram("sweep.contract_latency_ns")) {
      sum_contract_ns.merge(h->snapshot());
    }
    if (const obs::Histogram* h = preg.find_histogram("sweep.rpc_latency_ns")) {
      sum_rpc_ns.merge(h->snapshot());
    }
    if (const obs::Histogram* h = preg.find_histogram("sweep.emulation_steps")) {
      sum_steps.merge(h->snapshot());
    }

    // Aggregate the shard's reports unconditionally (verdicts are valid
    // even when the disk is not), then flush: contract records, the commit
    // frame, one fsync — the commit frame's presence in the valid prefix
    // implies its records'.
    const std::uint64_t bytes_before = writer ? writer->size_bytes() : 0;
    IoResult io;
    std::vector<ContractRecord> shard_records;
    if (config_.record_sink) shard_records.reserve(reports.size());
    for (std::size_t j = 0; j < reports.size(); ++j) {
      ContractAnalysis& report = reports[j];
      const std::size_t gi = shard_globals[j];
      if (dedup_patch.contains(gi)) report.deduplicated = true;
      acc.add(report);
      if (writer && io.ok) {
        io = writer->append(RecordType::kContract, encode_contract_record(
                                {report, hashes[gi]}));
      }
      if (config_.record_sink) {
        shard_records.push_back(ContractRecord{report, hashes[gi]});
      }
    }
    if (writer && io.ok) {
      io = writer->append(RecordType::kShardCommit,
                          encode_shard_commit({shard_index, reports.size()}));
    }
    if (writer && io.ok) {
      const std::uint64_t t0 = now_ns();
      io = writer->sync();
      h_flush.record(now_ns() - t0);
    }
    if (writer && io.ok) {
      contracts_committed += reports.size();
      Manifest manifest;
      manifest.committed_bytes = writer->size_bytes();
      manifest.shards_committed = shard_index + 1;
      manifest.contracts_committed = contracts_committed;
      IoResult mr =
          store_manifest(manifest_path_for(config_.journal_path), manifest, vfs);
      if (mr.ok) {
        metrics_.counter("store.journal.frames_written").add(reports.size() + 1);
        metrics_.counter("store.journal.bytes_written")
            .add(writer->size_bytes() - bytes_before);
        metrics_.counter("store.sweep.shards_committed").add(1);
        metrics_.gauge("sweep.shards_committed")
            .set(static_cast<std::int64_t>(shard_index + 1));
        if (config_.status != nullptr) {
          config_.status->shards_committed.store(shard_index + 1,
                                                 std::memory_order_relaxed);
          config_.status->journal_bytes.store(writer->size_bytes(),
                                              std::memory_order_relaxed);
        }
        if (config_.event_log != nullptr) {
          config_.event_log->emit(
              obs::Severity::kDebug, "sweep",
              "shard committed (" + std::to_string(reports.size()) +
                  " contracts, " + std::to_string(writer->size_bytes()) +
                  " journal bytes)",
              "shard:" + std::to_string(shard_index));
        }
      } else {
        io = std::move(mr);
      }
    }
    if (writer && !io.ok) {
      // The shard's verdicts are in the aggregates; only its durability is
      // lost. fsyncgate: the writer is already dead for fsync failures —
      // either way it is never touched again.
      if (!degrade(io)) {
        result.error = "journal commit failed for shard " +
                       std::to_string(shard_index) + ": " + io.message();
        return result;
      }
      writer.reset();
    }
    // Publish after the commit attempt: the shard's verdicts are final
    // either way (degraded mode only loses durability, never answers).
    if (config_.record_sink && !shard_records.empty()) {
      config_.record_sink(shard_records);
    }
    metrics_.counter("store.sweep.contracts_recomputed").add(reports.size());
    result.recomputed += reports.size();
    ++result.shards_run;
    ++shard_index;

    // Bounded memory: everything keyed per address/hash goes; the next
    // shard is hash-disjoint, so nothing dropped here would have hit.
    if (config_.shed_between_shards) pipeline_.shed_cross_run_state();
  }

  // ---- finish -----------------------------------------------------------
  // Degraded mode: the population IS fully covered in memory, so the sweep
  // is complete — there is just no kSweepEnd to journal (the checkpoint
  // honestly stops at the last good commit, and resume() picks up there).
  result.complete = !stopped;
  if (result.complete && writer) {
    IoResult io = writer->append(RecordType::kSweepEnd,
                                 encode_sweep_end({inputs.size()}));
    if (io.ok) io = writer->sync();
    if (io.ok) {
      Manifest manifest;
      manifest.committed_bytes = writer->size_bytes();
      manifest.shards_committed = shard_index;
      manifest.contracts_committed = contracts_committed;
      manifest.complete = true;
      io = store_manifest(manifest_path_for(config_.journal_path), manifest,
                          vfs);
    }
    if (!io.ok) {
      if (!degrade(io)) {
        result.error = "journal finalization failed: " + io.message();
        return result;
      }
      writer.reset();
    }
  }

  core::LandscapeStats stats = acc.take();
  pipeline_.annotate_run_stats(stats);
  stats.phase_fetch_ms = sum_fetch_ms;
  stats.phase_proxy_ms = sum_proxy_ms;
  stats.phase_pairs_ms = sum_pairs_ms;
  stats.pair_cache_hits = sum_pair_hits;
  stats.pair_cache_misses = sum_pair_misses;
  stats.pair_cache_waits = sum_pair_waits;
  stats.contract_latency_ns = sum_contract_ns.summary();
  stats.rpc_latency_ns = sum_rpc_ns.summary();
  stats.emulation_steps = sum_steps.summary();
  stats.ms_per_contract =
      result.recomputed > 0
          ? (sum_fetch_ms + sum_proxy_ms + sum_pairs_ms) /
                static_cast<double>(result.recomputed)
          : 0.0;
  stats.sweep_shards = plan.prior_shards + result.shards_run;
  stats.journal_replayed = result.replayed;
  stats.incremental_reanalyzed =
      effective == Mode::kIncremental ? result.recomputed : 0;
  stats.sweep_degraded = result.degraded ? 1 : 0;
  stats.selfheal_shards = heal_gaps;
  metrics_.gauge("sweep.selfheal_shards").set(
      static_cast<std::int64_t>(heal_gaps));
  result.stats = std::move(stats);
  return result;
}

}  // namespace proxion::store
