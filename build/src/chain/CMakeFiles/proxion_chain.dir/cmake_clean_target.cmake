file(REMOVE_RECURSE
  "libproxion_chain.a"
)
