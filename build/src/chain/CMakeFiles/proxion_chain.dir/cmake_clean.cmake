file(REMOVE_RECURSE
  "CMakeFiles/proxion_chain.dir/blockchain.cpp.o"
  "CMakeFiles/proxion_chain.dir/blockchain.cpp.o.d"
  "libproxion_chain.a"
  "libproxion_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
