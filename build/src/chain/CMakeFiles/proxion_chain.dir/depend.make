# Empty dependencies file for proxion_chain.
# This may be replaced when dependencies are built.
