file(REMOVE_RECURSE
  "libproxion_evm.a"
)
