file(REMOVE_RECURSE
  "CMakeFiles/proxion_evm.dir/disassembler.cpp.o"
  "CMakeFiles/proxion_evm.dir/disassembler.cpp.o.d"
  "CMakeFiles/proxion_evm.dir/interpreter.cpp.o"
  "CMakeFiles/proxion_evm.dir/interpreter.cpp.o.d"
  "CMakeFiles/proxion_evm.dir/opcodes.cpp.o"
  "CMakeFiles/proxion_evm.dir/opcodes.cpp.o.d"
  "CMakeFiles/proxion_evm.dir/precompiles.cpp.o"
  "CMakeFiles/proxion_evm.dir/precompiles.cpp.o.d"
  "CMakeFiles/proxion_evm.dir/types.cpp.o"
  "CMakeFiles/proxion_evm.dir/types.cpp.o.d"
  "libproxion_evm.a"
  "libproxion_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
