# Empty compiler generated dependencies file for proxion_evm.
# This may be replaced when dependencies are built.
