# Empty compiler generated dependencies file for proxion_baselines.
# This may be replaced when dependencies are built.
