file(REMOVE_RECURSE
  "libproxion_baselines.a"
)
