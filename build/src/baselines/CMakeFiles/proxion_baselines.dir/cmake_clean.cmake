file(REMOVE_RECURSE
  "CMakeFiles/proxion_baselines.dir/crush.cpp.o"
  "CMakeFiles/proxion_baselines.dir/crush.cpp.o.d"
  "CMakeFiles/proxion_baselines.dir/salehi.cpp.o"
  "CMakeFiles/proxion_baselines.dir/salehi.cpp.o.d"
  "CMakeFiles/proxion_baselines.dir/uschunt.cpp.o"
  "CMakeFiles/proxion_baselines.dir/uschunt.cpp.o.d"
  "libproxion_baselines.a"
  "libproxion_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
