# Empty compiler generated dependencies file for proxion_sourcemeta.
# This may be replaced when dependencies are built.
