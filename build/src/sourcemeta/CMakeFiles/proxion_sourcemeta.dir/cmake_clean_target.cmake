file(REMOVE_RECURSE
  "libproxion_sourcemeta.a"
)
