file(REMOVE_RECURSE
  "CMakeFiles/proxion_sourcemeta.dir/source.cpp.o"
  "CMakeFiles/proxion_sourcemeta.dir/source.cpp.o.d"
  "libproxion_sourcemeta.a"
  "libproxion_sourcemeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_sourcemeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
