file(REMOVE_RECURSE
  "libproxion_datagen.a"
)
