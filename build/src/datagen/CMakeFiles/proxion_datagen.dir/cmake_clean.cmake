file(REMOVE_RECURSE
  "CMakeFiles/proxion_datagen.dir/assembler.cpp.o"
  "CMakeFiles/proxion_datagen.dir/assembler.cpp.o.d"
  "CMakeFiles/proxion_datagen.dir/contract_factory.cpp.o"
  "CMakeFiles/proxion_datagen.dir/contract_factory.cpp.o.d"
  "CMakeFiles/proxion_datagen.dir/population.cpp.o"
  "CMakeFiles/proxion_datagen.dir/population.cpp.o.d"
  "libproxion_datagen.a"
  "libproxion_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
