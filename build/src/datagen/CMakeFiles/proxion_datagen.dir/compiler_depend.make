# Empty compiler generated dependencies file for proxion_datagen.
# This may be replaced when dependencies are built.
