file(REMOVE_RECURSE
  "libproxion_core.a"
)
