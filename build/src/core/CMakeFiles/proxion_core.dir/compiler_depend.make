# Empty compiler generated dependencies file for proxion_core.
# This may be replaced when dependencies are built.
