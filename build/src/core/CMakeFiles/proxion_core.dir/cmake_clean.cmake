file(REMOVE_RECURSE
  "CMakeFiles/proxion_core.dir/diamond_probe.cpp.o"
  "CMakeFiles/proxion_core.dir/diamond_probe.cpp.o.d"
  "CMakeFiles/proxion_core.dir/function_collision.cpp.o"
  "CMakeFiles/proxion_core.dir/function_collision.cpp.o.d"
  "CMakeFiles/proxion_core.dir/logic_finder.cpp.o"
  "CMakeFiles/proxion_core.dir/logic_finder.cpp.o.d"
  "CMakeFiles/proxion_core.dir/pipeline.cpp.o"
  "CMakeFiles/proxion_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/proxion_core.dir/proxy_detector.cpp.o"
  "CMakeFiles/proxion_core.dir/proxy_detector.cpp.o.d"
  "CMakeFiles/proxion_core.dir/report.cpp.o"
  "CMakeFiles/proxion_core.dir/report.cpp.o.d"
  "CMakeFiles/proxion_core.dir/selector_extractor.cpp.o"
  "CMakeFiles/proxion_core.dir/selector_extractor.cpp.o.d"
  "CMakeFiles/proxion_core.dir/selector_grinder.cpp.o"
  "CMakeFiles/proxion_core.dir/selector_grinder.cpp.o.d"
  "CMakeFiles/proxion_core.dir/storage_collision.cpp.o"
  "CMakeFiles/proxion_core.dir/storage_collision.cpp.o.d"
  "CMakeFiles/proxion_core.dir/storage_profile.cpp.o"
  "CMakeFiles/proxion_core.dir/storage_profile.cpp.o.d"
  "CMakeFiles/proxion_core.dir/upgrade_drift.cpp.o"
  "CMakeFiles/proxion_core.dir/upgrade_drift.cpp.o.d"
  "libproxion_core.a"
  "libproxion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
