
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/diamond_probe.cpp" "src/core/CMakeFiles/proxion_core.dir/diamond_probe.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/diamond_probe.cpp.o.d"
  "/root/repo/src/core/function_collision.cpp" "src/core/CMakeFiles/proxion_core.dir/function_collision.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/function_collision.cpp.o.d"
  "/root/repo/src/core/logic_finder.cpp" "src/core/CMakeFiles/proxion_core.dir/logic_finder.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/logic_finder.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/proxion_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/proxy_detector.cpp" "src/core/CMakeFiles/proxion_core.dir/proxy_detector.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/proxy_detector.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/proxion_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/report.cpp.o.d"
  "/root/repo/src/core/selector_extractor.cpp" "src/core/CMakeFiles/proxion_core.dir/selector_extractor.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/selector_extractor.cpp.o.d"
  "/root/repo/src/core/selector_grinder.cpp" "src/core/CMakeFiles/proxion_core.dir/selector_grinder.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/selector_grinder.cpp.o.d"
  "/root/repo/src/core/storage_collision.cpp" "src/core/CMakeFiles/proxion_core.dir/storage_collision.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/storage_collision.cpp.o.d"
  "/root/repo/src/core/storage_profile.cpp" "src/core/CMakeFiles/proxion_core.dir/storage_profile.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/storage_profile.cpp.o.d"
  "/root/repo/src/core/upgrade_drift.cpp" "src/core/CMakeFiles/proxion_core.dir/upgrade_drift.cpp.o" "gcc" "src/core/CMakeFiles/proxion_core.dir/upgrade_drift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evm/CMakeFiles/proxion_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/proxion_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/sourcemeta/CMakeFiles/proxion_sourcemeta.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/proxion_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
