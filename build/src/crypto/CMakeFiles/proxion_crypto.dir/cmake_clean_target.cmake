file(REMOVE_RECURSE
  "libproxion_crypto.a"
)
