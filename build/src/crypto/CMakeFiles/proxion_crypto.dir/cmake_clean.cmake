file(REMOVE_RECURSE
  "CMakeFiles/proxion_crypto.dir/eth.cpp.o"
  "CMakeFiles/proxion_crypto.dir/eth.cpp.o.d"
  "CMakeFiles/proxion_crypto.dir/keccak.cpp.o"
  "CMakeFiles/proxion_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/proxion_crypto.dir/sha256.cpp.o"
  "CMakeFiles/proxion_crypto.dir/sha256.cpp.o.d"
  "libproxion_crypto.a"
  "libproxion_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxion_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
