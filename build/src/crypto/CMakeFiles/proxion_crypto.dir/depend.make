# Empty dependencies file for proxion_crypto.
# This may be replaced when dependencies are built.
