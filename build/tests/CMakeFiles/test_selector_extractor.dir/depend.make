# Empty dependencies file for test_selector_extractor.
# This may be replaced when dependencies are built.
