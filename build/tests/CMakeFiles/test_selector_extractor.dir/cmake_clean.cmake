file(REMOVE_RECURSE
  "CMakeFiles/test_selector_extractor.dir/test_selector_extractor.cpp.o"
  "CMakeFiles/test_selector_extractor.dir/test_selector_extractor.cpp.o.d"
  "test_selector_extractor"
  "test_selector_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selector_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
