
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_precompiles.cpp" "tests/CMakeFiles/test_precompiles.dir/test_precompiles.cpp.o" "gcc" "tests/CMakeFiles/test_precompiles.dir/test_precompiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/proxion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/proxion_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/proxion_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/proxion_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/sourcemeta/CMakeFiles/proxion_sourcemeta.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/proxion_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/proxion_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
