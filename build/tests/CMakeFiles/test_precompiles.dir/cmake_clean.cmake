file(REMOVE_RECURSE
  "CMakeFiles/test_precompiles.dir/test_precompiles.cpp.o"
  "CMakeFiles/test_precompiles.dir/test_precompiles.cpp.o.d"
  "test_precompiles"
  "test_precompiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_precompiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
