file(REMOVE_RECURSE
  "CMakeFiles/test_sourcemeta.dir/test_sourcemeta.cpp.o"
  "CMakeFiles/test_sourcemeta.dir/test_sourcemeta.cpp.o.d"
  "test_sourcemeta"
  "test_sourcemeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sourcemeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
