# Empty dependencies file for test_sourcemeta.
# This may be replaced when dependencies are built.
