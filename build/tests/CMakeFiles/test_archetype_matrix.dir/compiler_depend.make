# Empty compiler generated dependencies file for test_archetype_matrix.
# This may be replaced when dependencies are built.
