file(REMOVE_RECURSE
  "CMakeFiles/test_archetype_matrix.dir/test_archetype_matrix.cpp.o"
  "CMakeFiles/test_archetype_matrix.dir/test_archetype_matrix.cpp.o.d"
  "test_archetype_matrix"
  "test_archetype_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archetype_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
