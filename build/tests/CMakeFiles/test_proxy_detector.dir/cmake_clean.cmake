file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_detector.dir/test_proxy_detector.cpp.o"
  "CMakeFiles/test_proxy_detector.dir/test_proxy_detector.cpp.o.d"
  "test_proxy_detector"
  "test_proxy_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
