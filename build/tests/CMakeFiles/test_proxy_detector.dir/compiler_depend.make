# Empty compiler generated dependencies file for test_proxy_detector.
# This may be replaced when dependencies are built.
