file(REMOVE_RECURSE
  "CMakeFiles/test_keccak.dir/test_keccak.cpp.o"
  "CMakeFiles/test_keccak.dir/test_keccak.cpp.o.d"
  "test_keccak"
  "test_keccak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keccak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
