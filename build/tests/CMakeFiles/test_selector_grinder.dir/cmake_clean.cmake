file(REMOVE_RECURSE
  "CMakeFiles/test_selector_grinder.dir/test_selector_grinder.cpp.o"
  "CMakeFiles/test_selector_grinder.dir/test_selector_grinder.cpp.o.d"
  "test_selector_grinder"
  "test_selector_grinder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selector_grinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
