# Empty dependencies file for test_selector_grinder.
# This may be replaced when dependencies are built.
