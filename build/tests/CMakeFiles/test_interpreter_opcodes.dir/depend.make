# Empty dependencies file for test_interpreter_opcodes.
# This may be replaced when dependencies are built.
