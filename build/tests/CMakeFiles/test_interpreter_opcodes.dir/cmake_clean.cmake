file(REMOVE_RECURSE
  "CMakeFiles/test_interpreter_opcodes.dir/test_interpreter_opcodes.cpp.o"
  "CMakeFiles/test_interpreter_opcodes.dir/test_interpreter_opcodes.cpp.o.d"
  "test_interpreter_opcodes"
  "test_interpreter_opcodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpreter_opcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
