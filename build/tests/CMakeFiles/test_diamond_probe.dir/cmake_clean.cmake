file(REMOVE_RECURSE
  "CMakeFiles/test_diamond_probe.dir/test_diamond_probe.cpp.o"
  "CMakeFiles/test_diamond_probe.dir/test_diamond_probe.cpp.o.d"
  "test_diamond_probe"
  "test_diamond_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diamond_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
