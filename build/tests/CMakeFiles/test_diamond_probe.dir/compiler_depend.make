# Empty compiler generated dependencies file for test_diamond_probe.
# This may be replaced when dependencies are built.
