file(REMOVE_RECURSE
  "CMakeFiles/test_gas_accounting.dir/test_gas_accounting.cpp.o"
  "CMakeFiles/test_gas_accounting.dir/test_gas_accounting.cpp.o.d"
  "test_gas_accounting"
  "test_gas_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gas_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
