# Empty compiler generated dependencies file for test_gas_accounting.
# This may be replaced when dependencies are built.
