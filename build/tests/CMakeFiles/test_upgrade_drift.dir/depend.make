# Empty dependencies file for test_upgrade_drift.
# This may be replaced when dependencies are built.
