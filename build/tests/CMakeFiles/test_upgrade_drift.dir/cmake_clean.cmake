file(REMOVE_RECURSE
  "CMakeFiles/test_upgrade_drift.dir/test_upgrade_drift.cpp.o"
  "CMakeFiles/test_upgrade_drift.dir/test_upgrade_drift.cpp.o.d"
  "test_upgrade_drift"
  "test_upgrade_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upgrade_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
