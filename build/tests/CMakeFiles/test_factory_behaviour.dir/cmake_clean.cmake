file(REMOVE_RECURSE
  "CMakeFiles/test_factory_behaviour.dir/test_factory_behaviour.cpp.o"
  "CMakeFiles/test_factory_behaviour.dir/test_factory_behaviour.cpp.o.d"
  "test_factory_behaviour"
  "test_factory_behaviour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factory_behaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
