# Empty compiler generated dependencies file for test_factory_behaviour.
# This may be replaced when dependencies are built.
