# Empty compiler generated dependencies file for test_beacon_and_salehi.
# This may be replaced when dependencies are built.
