file(REMOVE_RECURSE
  "CMakeFiles/test_beacon_and_salehi.dir/test_beacon_and_salehi.cpp.o"
  "CMakeFiles/test_beacon_and_salehi.dir/test_beacon_and_salehi.cpp.o.d"
  "test_beacon_and_salehi"
  "test_beacon_and_salehi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beacon_and_salehi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
