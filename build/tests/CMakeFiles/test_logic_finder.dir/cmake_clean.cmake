file(REMOVE_RECURSE
  "CMakeFiles/test_logic_finder.dir/test_logic_finder.cpp.o"
  "CMakeFiles/test_logic_finder.dir/test_logic_finder.cpp.o.d"
  "test_logic_finder"
  "test_logic_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
