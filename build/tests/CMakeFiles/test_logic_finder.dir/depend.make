# Empty dependencies file for test_logic_finder.
# This may be replaced when dependencies are built.
