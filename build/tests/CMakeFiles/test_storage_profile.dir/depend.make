# Empty dependencies file for test_storage_profile.
# This may be replaced when dependencies are built.
