file(REMOVE_RECURSE
  "CMakeFiles/test_storage_profile.dir/test_storage_profile.cpp.o"
  "CMakeFiles/test_storage_profile.dir/test_storage_profile.cpp.o.d"
  "test_storage_profile"
  "test_storage_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
