# Empty dependencies file for test_cancun_opcodes.
# This may be replaced when dependencies are built.
