file(REMOVE_RECURSE
  "CMakeFiles/test_cancun_opcodes.dir/test_cancun_opcodes.cpp.o"
  "CMakeFiles/test_cancun_opcodes.dir/test_cancun_opcodes.cpp.o.d"
  "test_cancun_opcodes"
  "test_cancun_opcodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cancun_opcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
