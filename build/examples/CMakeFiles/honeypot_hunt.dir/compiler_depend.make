# Empty compiler generated dependencies file for honeypot_hunt.
# This may be replaced when dependencies are built.
