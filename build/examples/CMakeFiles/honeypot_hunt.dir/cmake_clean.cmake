file(REMOVE_RECURSE
  "CMakeFiles/honeypot_hunt.dir/honeypot_hunt.cpp.o"
  "CMakeFiles/honeypot_hunt.dir/honeypot_hunt.cpp.o.d"
  "honeypot_hunt"
  "honeypot_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/honeypot_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
