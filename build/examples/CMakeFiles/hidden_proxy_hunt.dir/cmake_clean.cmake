file(REMOVE_RECURSE
  "CMakeFiles/hidden_proxy_hunt.dir/hidden_proxy_hunt.cpp.o"
  "CMakeFiles/hidden_proxy_hunt.dir/hidden_proxy_hunt.cpp.o.d"
  "hidden_proxy_hunt"
  "hidden_proxy_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_proxy_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
