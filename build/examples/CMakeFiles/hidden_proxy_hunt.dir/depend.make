# Empty dependencies file for hidden_proxy_hunt.
# This may be replaced when dependencies are built.
