file(REMOVE_RECURSE
  "CMakeFiles/landscape_survey.dir/landscape_survey.cpp.o"
  "CMakeFiles/landscape_survey.dir/landscape_survey.cpp.o.d"
  "landscape_survey"
  "landscape_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landscape_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
