# Empty dependencies file for landscape_survey.
# This may be replaced when dependencies are built.
