# Empty dependencies file for audius_postmortem.
# This may be replaced when dependencies are built.
