file(REMOVE_RECURSE
  "CMakeFiles/audius_postmortem.dir/audius_postmortem.cpp.o"
  "CMakeFiles/audius_postmortem.dir/audius_postmortem.cpp.o.d"
  "audius_postmortem"
  "audius_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audius_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
