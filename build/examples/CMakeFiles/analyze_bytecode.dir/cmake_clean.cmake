file(REMOVE_RECURSE
  "CMakeFiles/analyze_bytecode.dir/analyze_bytecode.cpp.o"
  "CMakeFiles/analyze_bytecode.dir/analyze_bytecode.cpp.o.d"
  "analyze_bytecode"
  "analyze_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
