# Empty dependencies file for analyze_bytecode.
# This may be replaced when dependencies are built.
