file(REMOVE_RECURSE
  "CMakeFiles/upgrade_timeline.dir/upgrade_timeline.cpp.o"
  "CMakeFiles/upgrade_timeline.dir/upgrade_timeline.cpp.o.d"
  "upgrade_timeline"
  "upgrade_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
