# Empty compiler generated dependencies file for upgrade_timeline.
# This may be replaced when dependencies are built.
