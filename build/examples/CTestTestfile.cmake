# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_honeypot_hunt "/root/repo/build/examples/honeypot_hunt")
set_tests_properties(example_honeypot_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_audius_postmortem "/root/repo/build/examples/audius_postmortem")
set_tests_properties(example_audius_postmortem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hidden_proxy_hunt "/root/repo/build/examples/hidden_proxy_hunt")
set_tests_properties(example_hidden_proxy_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_landscape_survey "/root/repo/build/examples/landscape_survey")
set_tests_properties(example_landscape_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_bytecode "/root/repo/build/examples/analyze_bytecode" "363d3d373d3d3d363d73bebebebebebebebebebebebebebebebebebebebe5af43d82803e903d91602b57fd5bf3")
set_tests_properties(example_analyze_bytecode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_upgrade_timeline "/root/repo/build/examples/upgrade_timeline")
set_tests_properties(example_upgrade_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
