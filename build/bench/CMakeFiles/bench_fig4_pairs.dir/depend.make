# Empty dependencies file for bench_fig4_pairs.
# This may be replaced when dependencies are built.
