file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_patterns.dir/bench_table4_patterns.cpp.o"
  "CMakeFiles/bench_table4_patterns.dir/bench_table4_patterns.cpp.o.d"
  "bench_table4_patterns"
  "bench_table4_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
