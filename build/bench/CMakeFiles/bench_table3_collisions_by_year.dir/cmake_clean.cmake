file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_collisions_by_year.dir/bench_table3_collisions_by_year.cpp.o"
  "CMakeFiles/bench_table3_collisions_by_year.dir/bench_table3_collisions_by_year.cpp.o.d"
  "bench_table3_collisions_by_year"
  "bench_table3_collisions_by_year.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_collisions_by_year.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
