# Empty compiler generated dependencies file for bench_table3_collisions_by_year.
# This may be replaced when dependencies are built.
