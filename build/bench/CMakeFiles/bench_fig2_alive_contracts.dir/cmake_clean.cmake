file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_alive_contracts.dir/bench_fig2_alive_contracts.cpp.o"
  "CMakeFiles/bench_fig2_alive_contracts.dir/bench_fig2_alive_contracts.cpp.o.d"
  "bench_fig2_alive_contracts"
  "bench_fig2_alive_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_alive_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
