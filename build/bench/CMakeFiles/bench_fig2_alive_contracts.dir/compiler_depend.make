# Empty compiler generated dependencies file for bench_fig2_alive_contracts.
# This may be replaced when dependencies are built.
