file(REMOVE_RECURSE
  "CMakeFiles/bench_effectiveness.dir/bench_effectiveness.cpp.o"
  "CMakeFiles/bench_effectiveness.dir/bench_effectiveness.cpp.o.d"
  "bench_effectiveness"
  "bench_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
