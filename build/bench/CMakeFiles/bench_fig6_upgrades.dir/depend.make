# Empty dependencies file for bench_fig6_upgrades.
# This may be replaced when dependencies are built.
