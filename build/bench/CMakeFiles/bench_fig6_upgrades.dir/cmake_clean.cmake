file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_upgrades.dir/bench_fig6_upgrades.cpp.o"
  "CMakeFiles/bench_fig6_upgrades.dir/bench_fig6_upgrades.cpp.o.d"
  "bench_fig6_upgrades"
  "bench_fig6_upgrades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_upgrades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
