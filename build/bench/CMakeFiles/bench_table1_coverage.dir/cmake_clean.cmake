file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_coverage.dir/bench_table1_coverage.cpp.o"
  "CMakeFiles/bench_table1_coverage.dir/bench_table1_coverage.cpp.o.d"
  "bench_table1_coverage"
  "bench_table1_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
