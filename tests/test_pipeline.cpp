// The end-to-end analysis pipeline: dedup semantics, per-contract verdicts
// against ground truth, collision propagation, landscape aggregation, and
// thread-count invariance.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "core/pipeline.h"
#include "crypto/keccak.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using datagen::Archetype;
using datagen::DeployedContract;
using datagen::Population;
using datagen::PopulationGenerator;
using datagen::PopulationSpec;

class PipelineTest : public ::testing::Test {
 protected:
  static Population make_population(std::uint32_t n) {
    PopulationSpec spec;
    spec.total_contracts = n;
    return PopulationGenerator().generate(spec);
  }
};

TEST_F(PipelineTest, VerdictsMatchGroundTruth) {
  Population pop = make_population(800);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  ASSERT_EQ(reports.size(), pop.contracts.size());

  int mismatches = 0;
  int diamonds_missed = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DeployedContract& truth = pop.contracts[i];
    const bool detected = reports[i].proxy.is_proxy();
    if (truth.archetype == Archetype::kDiamondProxy) {
      // §8.1: diamonds are the documented miss.
      if (!detected) ++diamonds_missed;
      continue;
    }
    if (detected != truth.is_proxy_truth) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_GE(diamonds_missed, 0);
}

TEST_F(PipelineTest, DedupMarksClonesAndPreservesVerdicts) {
  Population pop = make_population(600);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());

  std::size_t deduplicated = 0;
  for (const auto& r : reports) {
    if (r.deduplicated) ++deduplicated;
  }
  // The clone-heavy population must reuse most verdicts (§6.1's speedup).
  EXPECT_GT(deduplicated, reports.size() / 4);
}

TEST_F(PipelineTest, DedupOffProducesSameVerdicts) {
  Population pop = make_population(250);
  PipelineConfig with_dedup;
  PipelineConfig without_dedup;
  without_dedup.dedup_by_code_hash = false;

  AnalysisPipeline p1(*pop.chain, &pop.sources, with_dedup);
  AnalysisPipeline p2(*pop.chain, &pop.sources, without_dedup);
  const auto r1 = p1.run(pop.sweep_inputs());
  const auto r2 = p2.run(pop.sweep_inputs());
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].proxy.is_proxy(), r2[i].proxy.is_proxy());
    EXPECT_EQ(r1[i].proxy.standard, r2[i].proxy.standard);
  }
}

TEST_F(PipelineTest, CloneLogicAddressesAreResolvedPerContract) {
  // Wyvern clones share bytecode but each stores its own logic pointer; the
  // dedup path must still report the correct per-contract logic address.
  Population pop = make_population(600);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());

  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DeployedContract& truth = pop.contracts[i];
    if (truth.archetype != Archetype::kWyvernCloneProxy) continue;
    EXPECT_EQ(reports[i].proxy.logic_address, truth.logic_truth);
  }
}

TEST_F(PipelineTest, CollisionsDetectedWhereInjected) {
  Population pop = make_population(1'000);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());

  int fn_truth = 0, fn_found = 0, st_truth = 0, st_found = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DeployedContract& truth = pop.contracts[i];
    if (truth.function_collision_truth) {
      ++fn_truth;
      if (reports[i].function_collision) ++fn_found;
    }
    if (truth.storage_collision_truth) {
      ++st_truth;
      if (reports[i].storage_collision) ++st_found;
    }
  }
  EXPECT_GT(fn_truth, 0);
  EXPECT_EQ(fn_found, fn_truth);  // every injected function collision found
  if (st_truth > 0) {
    EXPECT_EQ(st_found, st_truth);
  }
}

TEST_F(PipelineTest, SummaryAggregatesConsistently) {
  Population pop = make_population(800);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  LandscapeStats stats = pipeline.summarize(reports);

  EXPECT_EQ(stats.total_contracts, reports.size());
  EXPECT_GT(stats.proxies, 0u);
  EXPECT_LT(stats.proxies, stats.total_contracts);
  EXPECT_GT(stats.hidden_proxies, 0u);
  EXPECT_LE(stats.unique_proxy_codehashes, stats.proxies);

  std::uint64_t by_standard_sum = 0;
  for (const auto& [standard, count] : stats.by_standard) {
    by_standard_sum += count;
  }
  EXPECT_EQ(by_standard_sum, stats.proxies);

  std::uint64_t by_year_sum = 0;
  for (const auto& [year, count] : stats.proxies_by_year) {
    by_year_sum += count;
  }
  EXPECT_EQ(by_year_sum, stats.proxies);

  // EIP-1167 dominates the standard mix (Table 4).
  EXPECT_GT(stats.by_standard[ProxyStandard::kEip1167],
            stats.proxies / 2);
}

TEST_F(PipelineTest, ThreadCountDoesNotChangeResults) {
  Population pop = make_population(300);
  PipelineConfig single;
  single.threads = 1;
  PipelineConfig many;
  many.threads = 8;

  AnalysisPipeline p1(*pop.chain, &pop.sources, single);
  AnalysisPipeline p8(*pop.chain, &pop.sources, many);
  const auto r1 = p1.run(pop.sweep_inputs());
  const auto r8 = p8.run(pop.sweep_inputs());
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].proxy.is_proxy(), r8[i].proxy.is_proxy());
    EXPECT_EQ(r1[i].function_collision, r8[i].function_collision);
    EXPECT_EQ(r1[i].storage_collision, r8[i].storage_collision);
    EXPECT_EQ(r1[i].logic_history.logic_addresses,
              r8[i].logic_history.logic_addresses);
  }
}

TEST_F(PipelineTest, ThreadCountProducesByteIdenticalAnalyses) {
  // Stronger than the field-wise check above: the entire ContractAnalysis
  // (proxy report, logic history, collision findings, dedup flags) must be
  // byte-for-byte identical regardless of worker count.
  Population pop = make_population(400);
  PipelineConfig single;
  single.threads = 1;
  PipelineConfig many;
  many.threads = 8;

  AnalysisPipeline p1(*pop.chain, &pop.sources, single);
  AnalysisPipeline p8(*pop.chain, &pop.sources, many);
  const auto r1 = p1.run(pop.sweep_inputs());
  const auto r8 = p8.run(pop.sweep_inputs());
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(r1[i] == r8[i]) << "contract " << i << " diverged";
  }
}

TEST_F(PipelineTest, SummaryReportsPhaseTimingsAndCacheStats) {
  Population pop = make_population(300);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  const LandscapeStats stats = pipeline.summarize(reports);

  EXPECT_GE(stats.phase_fetch_ms, 0.0);
  EXPECT_GE(stats.phase_proxy_ms, 0.0);
  EXPECT_GE(stats.phase_pairs_ms, 0.0);
  // The clone-heavy population must produce artifact reuse...
  EXPECT_GT(stats.cache.hits(), 0u);
  EXPECT_GT(stats.cache.entries, 0u);
  // ...and pair-level reuse (every proxy/logic pair computed at most once).
  EXPECT_GT(stats.pair_cache_hits + stats.pair_cache_misses, 0u);
}

TEST_F(PipelineTest, EachDistinctLogicBlobIsHashedOnce) {
  // M clones of one proxy blob all pointing at one logic contract: the
  // marginal cost of an extra clone must be ONE keccak (its Phase 0 code
  // hash) — the seed also hashed the logic blob once per pair (twice: once
  // for the function detector, once for the storage detector).
  using datagen::ContractFactory;

  auto build = [](std::uint32_t proxies) {
    auto chain = std::make_unique<chain::Blockchain>();
    const Address deployer = Address::from_label("keccak-count-deployer");
    const Address logic =
        chain->deploy_runtime(deployer, ContractFactory::token_contract(99));
    std::vector<SweepInput> inputs;
    for (std::uint32_t i = 0; i < proxies; ++i) {
      const Address p =
          chain->deploy_runtime(deployer, ContractFactory::eip1967_proxy());
      chain->set_storage(p, ContractFactory::eip1967_slot(), logic.to_word());
      inputs.push_back({p, 2020, false, false});
    }
    return std::pair{std::move(chain), std::move(inputs)};
  };

  auto run_counting = [](chain::Blockchain& chain,
                         const std::vector<SweepInput>& inputs) {
    AnalysisPipeline pipeline(chain, nullptr);
    const std::uint64_t before = crypto::keccak_invocations();
    const auto reports = pipeline.run(inputs);
    const std::uint64_t spent = crypto::keccak_invocations() - before;
    EXPECT_EQ(reports.size(), inputs.size());
    for (const auto& r : reports) EXPECT_TRUE(r.proxy.is_proxy());
    return spent;
  };

  constexpr std::uint32_t kSmall = 4, kLarge = 36;
  auto [chain_small, inputs_small] = build(kSmall);
  auto [chain_large, inputs_large] = build(kLarge);
  const std::uint64_t small = run_counting(*chain_small, inputs_small);
  const std::uint64_t large = run_counting(*chain_large, inputs_large);

  // Both sweeps see the same two unique blobs, so per-blob work (probe
  // emulation, artifact extraction, the one logic-blob hash) cancels in the
  // difference; what remains is the per-contract cost.
  ASSERT_GT(large, small);
  const std::uint64_t marginal = (large - small) / (kLarge - kSmall);
  EXPECT_GE(marginal, 1u);  // Phase 0 must hash every contract
  EXPECT_LE(marginal, 2u) << "an extra clone re-hashed shared blobs";
}

TEST_F(PipelineTest, WarmRunRecomputesVerdictForNewSameHashAddress) {
  // Two EIP-1967 proxies share one bytecode but store different logic
  // pointers. Sweep A first, then B in a *second* (warm) run: B is its own
  // run's representative, so the cross-run verdict memo must not hand it
  // A's report (A's probe selector, A's slot read) — every field must match
  // what the cache-off pipeline computes fresh at B.
  using datagen::ContractFactory;
  chain::Blockchain chain;
  const Address deployer = Address::from_label("warm-same-hash-deployer");
  const Address logic1 =
      chain.deploy_runtime(deployer, ContractFactory::token_contract(1));
  const Address logic2 =
      chain.deploy_runtime(deployer, ContractFactory::token_contract(2));
  const Address a =
      chain.deploy_runtime(deployer, ContractFactory::eip1967_proxy());
  const Address b =
      chain.deploy_runtime(deployer, ContractFactory::eip1967_proxy());
  chain.set_storage(a, ContractFactory::eip1967_slot(), logic1.to_word());
  chain.set_storage(b, ContractFactory::eip1967_slot(), logic2.to_word());

  AnalysisPipeline cached(chain, nullptr);  // default config: cache ON
  PipelineConfig off;
  off.use_analysis_cache = false;
  AnalysisPipeline uncached(chain, nullptr, off);

  const std::vector<SweepInput> first{{a, 2020, false, false}};
  const std::vector<SweepInput> second{{b, 2021, false, false}};

  const auto c1 = cached.run(first);
  const auto u1 = uncached.run(first);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_TRUE(c1[0] == u1[0]);
  ASSERT_TRUE(c1[0].proxy.is_proxy());
  EXPECT_EQ(c1[0].proxy.logic_address, logic1);

  const auto c2 = cached.run(second);
  const auto u2 = uncached.run(second);
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_TRUE(c2[0] == u2[0]) << "warm run inherited another address's state";
  ASSERT_TRUE(c2[0].proxy.is_proxy());
  EXPECT_EQ(c2[0].proxy.logic_address, logic2);
}

TEST_F(PipelineTest, WarmRerunOfSamePopulationIsBitIdentical) {
  // The advertised warm-sweep use case: re-running the same population on
  // one pipeline serves blobs/verdicts/artifacts from the persistent caches
  // and must reproduce the cold results byte for byte.
  Population pop = make_population(300);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto cold = pipeline.run(pop.sweep_inputs());
  const auto warm = pipeline.run(pop.sweep_inputs());
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(cold[i] == warm[i]) << "contract " << i << " diverged warm";
  }
}

TEST_F(PipelineTest, CollisionDetectionCanBeDisabled) {
  Population pop = make_population(300);
  PipelineConfig config;
  config.detect_collisions = false;
  AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  const auto reports = pipeline.run(pop.sweep_inputs());
  for (const auto& r : reports) {
    EXPECT_FALSE(r.function_collision);
    EXPECT_FALSE(r.storage_collision);
  }
}

TEST_F(PipelineTest, EmptyInputYieldsEmptyStats) {
  Population pop = make_population(50);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run({});
  EXPECT_TRUE(reports.empty());
  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.total_contracts, 0u);
  EXPECT_EQ(stats.proxies, 0u);
}

TEST_F(PipelineTest, UpgradeHistogramMatchesTruth) {
  Population pop = make_population(2'000);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());

  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DeployedContract& truth = pop.contracts[i];
    if (!truth.is_proxy_truth || truth.upgrades_truth == 0) continue;
    if (truth.archetype == Archetype::kDiamondProxy) continue;
    EXPECT_EQ(reports[i].logic_history.upgrade_events, truth.upgrades_truth)
        << datagen::to_string(truth.archetype);
  }
}

}  // namespace
