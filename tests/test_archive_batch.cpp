// The batched archive-read path and the coalescing decorator: batch/scalar
// equivalence through every decorator, whole-batch abort semantics under
// injected faults (no partial results, nothing cached from a failed fetch),
// the sealed-height interval cache (head probes never cached, invalidation
// across slot rewrites), and a concurrent hammering pass that gives TSan a
// workout over the in-flight dedup machinery.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "chain/coalescing_node.h"
#include "chain/fault_injection.h"
#include "chain/resilient_node.h"
#include "datagen/contract_factory.h"
#include "util/resilience.h"

namespace {

using namespace proxion;
using chain::ArchiveNode;
using chain::Blockchain;
using chain::CoalescingArchiveNode;
using chain::FaultInjectingArchiveNode;
using chain::FaultProfile;
using chain::ResilientArchiveNode;
using chain::RpcError;
using chain::StorageQuery;
using datagen::ContractFactory;
using evm::Address;
using evm::U256;

/// A chain with two accounts whose slots change at known historical heights,
/// then plenty of sealed history on top.
class ArchiveBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployer_ = Address::from_label("batch.deployer");
    a_ = chain_.deploy_runtime(deployer_, ContractFactory::token_contract(1));
    b_ = chain_.deploy_runtime(deployer_, ContractFactory::token_contract(2));
    chain_.mine_until(100);
    chain_.set_storage(a_, kSlot, U256{0xaaaa});
    chain_.set_storage(b_, kSlot, U256{0xb0b0});
    chain_.mine_until(500);
    chain_.set_storage(a_, kSlot, U256{0xaaab});
    chain_.mine_until(1000);
  }

  /// Probes across both accounts at a spread of heights, duplicates included.
  std::vector<StorageQuery> mixed_queries() const {
    return {
        {a_, kSlot, 50},  {a_, kSlot, 100}, {a_, kSlot, 300},
        {a_, kSlot, 500}, {a_, kSlot, 999}, {b_, kSlot, 100},
        {b_, kSlot, 700}, {a_, kSlot, 300},  // duplicate of [2]
    };
  }

  static constexpr U256 kSlot{7};
  Blockchain chain_;
  Address deployer_, a_, b_;
};

TEST_F(ArchiveBatchTest, BatchMatchesScalarCallByCall) {
  ArchiveNode node(chain_);
  const auto queries = mixed_queries();
  const auto batched = node.get_storage_at_many(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], node.get_storage_at(queries[i].account,
                                              queries[i].slot,
                                              queries[i].block))
        << "query " << i;
  }
}

TEST_F(ArchiveBatchTest, BatchCountsOneCallPerQuery) {
  ArchiveNode node(chain_);
  node.reset_counters();
  const auto queries = mixed_queries();
  (void)node.get_storage_at_many(queries);
  EXPECT_EQ(node.get_storage_at_calls(), queries.size());
}

TEST_F(ArchiveBatchTest, DefaultBatchImplEqualsScalarLoop) {
  // A backend that only implements the scalar call inherits a batch method
  // that must agree with it exactly.
  class ScalarOnlyNode final : public chain::IArchiveNode {
   public:
    explicit ScalarOnlyNode(const Blockchain& chain) : chain_(chain) {}
    U256 get_storage_at(const Address& account, const U256& slot,
                        std::uint64_t block) const override {
      return chain_.storage_at(account, slot, block);
    }
    evm::Bytes get_code(const Address& account) const override {
      return chain_.code_at(account);
    }
    std::uint64_t latest_block() const override { return chain_.height(); }
    std::uint64_t get_storage_at_calls() const override { return 0; }
    std::uint64_t get_code_calls() const override { return 0; }
    void reset_counters() const override {}

   private:
    const Blockchain& chain_;
  };

  ScalarOnlyNode node(chain_);
  ArchiveNode reference(chain_);
  const auto queries = mixed_queries();
  EXPECT_EQ(node.get_storage_at_many(queries),
            reference.get_storage_at_many(queries));
}

TEST_F(ArchiveBatchTest, MidBatchFaultAbortsWholeBatchThenHealsCleanly) {
  ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 21;
  profile.transient_rate = 0.5;  // some — not all — queries draw a fault
  profile.failures_per_fault = 1;
  FaultInjectingArchiveNode faulty(inner, profile);

  const auto queries = mixed_queries();
  const auto expected = inner.get_storage_at_many(queries);

  // The faulted batch throws as a whole: no partial results to corrupt.
  EXPECT_THROW((void)faulty.get_storage_at_many(queries), RpcError);
  EXPECT_GT(faulty.injected_faults(), 0u);

  // One batch attempt consumes every armed key's fault budget (scalar
  // parity: one attempt per key), so with single-failure budgets the very
  // next retry succeeds — and its results are the true values, nothing
  // stale or shifted by the earlier abort.
  EXPECT_EQ(faulty.get_storage_at_many(queries), expected);
}

TEST_F(ArchiveBatchTest, ResilientNodeRetriesTheWholeBatch) {
  ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 33;
  profile.transient_rate = 0.6;
  profile.failures_per_fault = 2;
  FaultInjectingArchiveNode faulty(inner, profile);

  // Every faulty key fails twice and each batch attempt burns one failure
  // per armed key, so the third attempt goes clean — comfortably inside
  // the default-sized retry ladder, exactly as the scalar path would be.
  util::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.base_delay_us = 1;
  retry.max_delay_us = 10;
  ResilientArchiveNode node(faulty, retry, {}, [](std::uint32_t) {});

  const auto queries = mixed_queries();
  EXPECT_EQ(node.get_storage_at_many(queries),
            inner.get_storage_at_many(queries));
  EXPECT_GT(node.retries(), 0u);
  EXPECT_EQ(node.giveups(), 0u);
}

// ---------------------------------------------------------------------------
// CoalescingArchiveNode
// ---------------------------------------------------------------------------

TEST_F(ArchiveBatchTest, CoalescerAnswersRepeatProbesFromCache) {
  ArchiveNode inner(chain_);
  CoalescingArchiveNode node(inner);

  const U256 first = node.get_storage_at(a_, kSlot, 300);
  const std::uint64_t backend_after_first = inner.get_storage_at_calls();
  const U256 second = node.get_storage_at(a_, kSlot, 300);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, chain_.storage_at(a_, kSlot, 300));
  EXPECT_EQ(inner.get_storage_at_calls(), backend_after_first)
      << "repeat probe hit the backend";
  EXPECT_GE(node.stats().exact_hits, 1u);
}

TEST_F(ArchiveBatchTest, CoalescerBridgesEqualValuedSealedPoints) {
  ArchiveNode inner(chain_);
  CoalescingArchiveNode node(inner);

  // Slot a/kSlot holds 0xaaaa throughout [100, 499]. Seal the endpoints...
  ASSERT_EQ(node.get_storage_at(a_, kSlot, 150), U256{0xaaaa});
  ASSERT_EQ(node.get_storage_at(a_, kSlot, 450), U256{0xaaaa});
  const std::uint64_t backend = inner.get_storage_at_calls();
  // ...and every probe strictly inside the interval is answered from cache.
  EXPECT_EQ(node.get_storage_at(a_, kSlot, 300), U256{0xaaaa});
  EXPECT_EQ(inner.get_storage_at_calls(), backend);
  EXPECT_GE(node.stats().interval_hits, 1u);

  // But a probe outside the interval (where the value differs) still goes to
  // the backend and returns the true value.
  EXPECT_EQ(node.get_storage_at(a_, kSlot, 600), U256{0xaaab});
  EXPECT_GT(inner.get_storage_at_calls(), backend);
}

TEST_F(ArchiveBatchTest, HeadProbesAreNeverCached) {
  ArchiveNode inner(chain_);
  CoalescingArchiveNode node(inner);

  const std::uint64_t head = node.latest_block();
  const U256 before = node.get_storage_at(a_, kSlot, head);
  EXPECT_EQ(node.cached_points(), 0u)
      << "an open-block observation was sealed into the cache";

  // The open block can still be rewritten; the coalescer must see it.
  chain_.set_storage(a_, kSlot, U256{0xfeed});
  const U256 after = node.get_storage_at(a_, kSlot, head);
  EXPECT_NE(before, after);
  EXPECT_EQ(after, U256{0xfeed});
}

TEST_F(ArchiveBatchTest, InvalidateDropsOneSlotClearDropsAll) {
  ArchiveNode inner(chain_);
  CoalescingArchiveNode node(inner);

  (void)node.get_storage_at(a_, kSlot, 200);
  (void)node.get_storage_at(b_, kSlot, 200);
  ASSERT_EQ(node.cached_points(), 2u);

  // Dropping a_'s timeline (e.g. after an impl-slot write the test harness
  // made underneath us) forces the next probe back to the backend.
  node.invalidate(a_, kSlot);
  EXPECT_EQ(node.cached_points(), 1u);
  const std::uint64_t backend = inner.get_storage_at_calls();
  EXPECT_EQ(node.get_storage_at(a_, kSlot, 200),
            chain_.storage_at(a_, kSlot, 200));
  EXPECT_GT(inner.get_storage_at_calls(), backend);

  node.clear();
  EXPECT_EQ(node.cached_points(), 0u);
}

TEST_F(ArchiveBatchTest, InvalidationSeesRewrittenHistoryAfterHarnessWrite) {
  // Simulated-chain tests rewrite storage between sweeps. A consumer that
  // invalidates (or clears) after such a write must observe the new history.
  ArchiveNode inner(chain_);
  CoalescingArchiveNode node(inner);

  const std::uint64_t h = chain_.height();
  ASSERT_EQ(node.get_storage_at(a_, kSlot, 999), U256{0xaaab});
  chain_.set_storage(a_, kSlot, U256{0xd00d});  // write at the open block
  chain_.mine_until(h + 10);                    // seal it
  node.invalidate(a_, kSlot);
  EXPECT_EQ(node.get_storage_at(a_, kSlot, h + 5), U256{0xd00d});
  EXPECT_EQ(node.get_storage_at(a_, kSlot, 999), U256{0xaaab});
}

TEST_F(ArchiveBatchTest, CoalescedBatchMatchesUncoalescedResults) {
  ArchiveNode plain(chain_);
  ArchiveNode backing(chain_);
  CoalescingArchiveNode node(backing);

  const auto queries = mixed_queries();
  const auto expected = plain.get_storage_at_many(queries);
  // Twice: the second pass is served (mostly) from cache and must still be
  // element-for-element identical.
  EXPECT_EQ(node.get_storage_at_many(queries), expected);
  EXPECT_EQ(node.get_storage_at_many(queries), expected);
  EXPECT_LT(backing.get_storage_at_calls(), 2 * queries.size());
}

TEST_F(ArchiveBatchTest, FailedFetchCachesNothing) {
  ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 77;
  profile.transient_rate = 1.0;
  profile.failures_per_fault = 1;
  FaultInjectingArchiveNode faulty(inner, profile);
  CoalescingArchiveNode node(faulty);

  const auto queries = mixed_queries();
  EXPECT_THROW((void)node.get_storage_at_many(queries), RpcError);
  EXPECT_EQ(node.cached_points(), 0u)
      << "a failed batch leaked observations into the cache";

  // The failed attempt consumed every key's single-failure budget, so the
  // same batch now succeeds with true values.
  const auto expected = inner.get_storage_at_many(queries);
  EXPECT_EQ(node.get_storage_at_many(queries), expected);
}

TEST_F(ArchiveBatchTest, ConcurrentProbesShareBackendFetches) {
  ArchiveNode inner(chain_);
  CoalescingArchiveNode node(inner, /*shards=*/4);

  // Every thread probes the same probe set; TSan patrols the shard locks,
  // the condition-variable waits, and the in-flight ownership handoff.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kHeights[] = {100, 250, 250, 500, 750, 999};
  std::vector<std::vector<U256>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const std::uint64_t h : kHeights) {
          seen[static_cast<std::size_t>(t)].push_back(
              node.get_storage_at(a_, kSlot, h));
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(seen[static_cast<std::size_t>(t)].size(), std::size(kHeights));
    for (std::size_t i = 0; i < std::size(kHeights); ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][i],
                chain_.storage_at(a_, kSlot, kHeights[i]))
          << "thread " << t << " height " << kHeights[i];
    }
  }
  // Coalescing must have collapsed most of the 48 probes; the backend can
  // have been asked at most once per distinct height per race window, and
  // with 8 threads over 5 distinct heights anything close to 48 means the
  // cache never engaged.
  const auto s = node.stats();
  EXPECT_EQ(s.exact_hits + s.interval_hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * std::size(kHeights));
  EXPECT_LT(s.misses, static_cast<std::uint64_t>(kThreads) *
                          std::size(kHeights) / 2);
}

}  // namespace
