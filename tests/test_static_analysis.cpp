// Unit + corpus tests for the static dataflow tier (src/static): abstract
// lattice semantics, CFG recovery edge cases (empty code, truncated PUSH at
// code end), DELEGATECALL provenance per archetype, EIP-1167 matching, the
// dead-skip proof facts, determinism of block ordering, and — the load-
// bearing soundness check — agreement between the recovered edges and the
// jumps the interpreter actually takes across the full archetype corpus.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "chain/blockchain.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"
#include "static/cfg.h"
#include "static/provenance.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using datagen::Assembler;
using datagen::ContractFactory;
using evm::Address;
using evm::Bytes;
using evm::Opcode;
using evm::U256;
using static_analysis::AbstractValue;
using static_analysis::Cfg;
using static_analysis::StaticReport;
using static_analysis::TargetClass;

StaticReport analyze_bytes(const Bytes& code) {
  const evm::Disassembly dis(code);
  return static_analysis::analyze(dis);
}

// ---------------------------------------------------------------------------
// Lattice

TEST(AbstractValueTest, JoinSemantics) {
  const auto c1 = AbstractValue::constant(U256{7});
  const auto c2 = AbstractValue::constant(U256{8});
  const auto s5 = AbstractValue::storage(U256{5});
  const auto cd = AbstractValue::calldata();
  const auto top = AbstractValue::unknown();

  EXPECT_EQ(join(c1, c1), c1);
  EXPECT_EQ(join(s5, s5), s5);
  EXPECT_EQ(join(cd, cd), cd);
  EXPECT_EQ(join(c1, c2), top);
  EXPECT_EQ(join(c1, s5), top);
  EXPECT_EQ(join(c1, cd), top);  // mixed const/calldata degrades fully
  EXPECT_EQ(join(s5, AbstractValue::storage(U256{6})), top);
  EXPECT_EQ(join(top, c1), top);
}

// ---------------------------------------------------------------------------
// CFG edge cases

TEST(CfgRecoveryTest, EmptyCode) {
  const Cfg cfg = static_analysis::recover_cfg(evm::Disassembly(Bytes{}));
  EXPECT_TRUE(cfg.blocks.empty());
  EXPECT_TRUE(cfg.complete);
  EXPECT_EQ(cfg.reachable_block_count(), 0u);
  EXPECT_FALSE(cfg.block_containing(0).has_value());
}

TEST(CfgRecoveryTest, TruncatedPushAtEndOfCode) {
  // PUSH2 with only one immediate byte: the interpreter zero-pads on the
  // right (value 0xaa00) and runs off the code end into an implicit STOP.
  const Bytes code = {0x61, 0xaa};
  const Cfg cfg = static_analysis::recover_cfg(evm::Disassembly(code));
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.complete);
  EXPECT_TRUE(cfg.blocks[0].reachable);
  EXPECT_FALSE(cfg.blocks[0].may_fault);
}

TEST(CfgRecoveryTest, ResolvesDispatcherEdgesAndDeterministicOrdering) {
  const Bytes code = ContractFactory::eip1967_proxy();
  const evm::Disassembly dis(code);
  const Cfg cfg = static_analysis::recover_cfg(dis);
  EXPECT_TRUE(cfg.complete);
  EXPECT_GT(cfg.reachable_block_count(), 1u);
  // Blocks parallel the disassembly and stay sorted by start_pc.
  ASSERT_EQ(cfg.blocks.size(), dis.blocks().size());
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    EXPECT_EQ(cfg.blocks[i].start_pc, dis.blocks()[i].start_pc);
    if (i > 0) {
      EXPECT_LT(cfg.blocks[i - 1].start_pc, cfg.blocks[i].start_pc);
    }
    // Successor lists are sorted + deduplicated.
    const auto& s = cfg.blocks[i].successors;
    for (std::size_t k = 1; k < s.size(); ++k) EXPECT_LT(s[k - 1], s[k]);
  }
  // Bit-for-bit deterministic across recoveries.
  const Cfg again = static_analysis::recover_cfg(dis);
  EXPECT_EQ(cfg.to_string(), again.to_string());
}

// ---------------------------------------------------------------------------
// DELEGATECALL provenance

TEST(ProvenanceTest, SlotProxiesRecoverTheConcreteSlot) {
  struct Case {
    Bytes code;
    U256 slot;
  };
  const std::vector<Case> cases = {
      {ContractFactory::eip1967_proxy(), ContractFactory::eip1967_slot()},
      {ContractFactory::eip1822_proxy(), ContractFactory::eip1822_slot()},
      {ContractFactory::slot_proxy(U256{0}), U256{0}},
      {ContractFactory::slot_proxy(U256{42}), U256{42}},
  };
  for (const Case& c : cases) {
    const StaticReport report = analyze_bytes(c.code);
    ASSERT_TRUE(report.has_delegatecall);
    const auto sites = report.reachable_sites();
    ASSERT_EQ(sites.size(), 1u);
    // The fallback masks the SLOAD with 2^160-1; the AND transfer rule must
    // preserve the slot attribution through that mask.
    EXPECT_EQ(sites[0].target_class, TargetClass::kStorageSlot);
    EXPECT_EQ(sites[0].slot, c.slot);
  }
}

TEST(ProvenanceTest, HardcodedTargetClassification) {
  const Address logic = Address::from_label("static.logic");
  Assembler a;
  for (int i = 0; i < 4; ++i) a.push(U256{0}, 1);  // out/in memory operands
  a.push_address(logic);
  a.op(Opcode::GAS).op(Opcode::DELEGATECALL).op(Opcode::POP).op(Opcode::STOP);
  const StaticReport report = analyze_bytes(a.assemble());
  const auto sites = report.reachable_sites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].target_class, TargetClass::kHardcoded);
  EXPECT_EQ(sites[0].address, logic);
}

TEST(ProvenanceTest, CalldataTargetClassification) {
  Assembler a;
  for (int i = 0; i < 4; ++i) a.push(U256{0}, 1);
  a.push(U256{0}, 1).op(Opcode::CALLDATALOAD);  // caller-chosen target
  a.op(Opcode::GAS).op(Opcode::DELEGATECALL).op(Opcode::POP).op(Opcode::STOP);
  const StaticReport report = analyze_bytes(a.assemble());
  const auto sites = report.reachable_sites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].target_class, TargetClass::kCalldata);
}

TEST(ProvenanceTest, Eip1167ExactMatch) {
  const Address logic = Address::from_label("mini.logic");
  const Bytes code = ContractFactory::minimal_proxy(logic);
  const StaticReport report = analyze_bytes(code);
  ASSERT_TRUE(report.minimal_proxy_target.has_value());
  EXPECT_EQ(*report.minimal_proxy_target, logic);

  // Near-misses must NOT match: one byte short, one byte long, one byte off.
  Bytes shorter(code.begin(), code.end() - 1);
  EXPECT_FALSE(analyze_bytes(shorter).minimal_proxy_target.has_value());
  Bytes longer = code;
  longer.push_back(0x00);
  EXPECT_FALSE(analyze_bytes(longer).minimal_proxy_target.has_value());
  Bytes corrupted = code;
  corrupted[0] = 0x35;
  EXPECT_FALSE(analyze_bytes(corrupted).minimal_proxy_target.has_value());
}

// ---------------------------------------------------------------------------
// Dead-skip proof facts on the adversarial fixtures

TEST(StaticProofTest, DeadDelegatecallIsProvablySkippable) {
  const StaticReport r =
      analyze_bytes(ContractFactory::dead_delegatecall_contract());
  EXPECT_TRUE(r.has_delegatecall);  // the prefilter can NOT shortcut this
  EXPECT_FALSE(r.any_reachable_delegatecall);
  EXPECT_TRUE(r.cfg.complete);
  EXPECT_TRUE(r.provably_no_delegatecall);
  EXPECT_TRUE(r.provably_clean_termination);
  EXPECT_TRUE(r.skip_dead(5'000'000, 200'000));
  // ... but not within an absurdly small budget.
  EXPECT_FALSE(r.skip_dead(10, 200'000));
  EXPECT_FALSE(r.skip_dead(5'000'000, 1));
}

TEST(StaticProofTest, PushDataDelegatecallIsInvisibleToTheSweep) {
  const Bytes code = ContractFactory::push_data_delegatecall_contract();
  const evm::Disassembly dis(code);
  // The defining property: 0xf4 appears in the bytes but never as an
  // instruction, so phase 1 already rules the blob out.
  EXPECT_FALSE(dis.contains(Opcode::DELEGATECALL));
  const StaticReport r = static_analysis::analyze(dis);
  EXPECT_FALSE(r.has_delegatecall);
  EXPECT_TRUE(r.sites.empty());
}

TEST(StaticProofTest, ComputedJumpDefeatsResolutionAndBlocksSkips) {
  const StaticReport r =
      analyze_bytes(ContractFactory::computed_jump_contract(U256{0}));
  EXPECT_FALSE(r.cfg.complete);
  EXPECT_GE(r.cfg.unresolved_jump_count(), 1u);
  EXPECT_FALSE(r.provably_no_delegatecall);
  EXPECT_FALSE(r.provably_clean_termination);
  EXPECT_FALSE(r.skip_dead(5'000'000, 200'000));
}

TEST(StaticProofTest, InfiniteLoopHasReachableCycleAndNeverSkips) {
  const StaticReport r =
      analyze_bytes(ContractFactory::infinite_loop_contract());
  EXPECT_TRUE(r.cfg.complete);  // the loop's jump target is constant
  EXPECT_TRUE(r.cfg.has_reachable_cycle);
  EXPECT_TRUE(r.provably_no_delegatecall);  // the bait site is dead...
  EXPECT_FALSE(r.provably_clean_termination);  // ...but no termination proof
  EXPECT_FALSE(r.skip_dead(5'000'000, 200'000));
}

TEST(StaticProofTest, ExternalCallBlocksCleanTermination) {
  const StaticReport r =
      analyze_bytes(ContractFactory::deep_recursion_contract());
  EXPECT_TRUE(r.cfg.external_call_reachable);
  EXPECT_FALSE(r.provably_clean_termination);
  EXPECT_FALSE(r.skip_dead(5'000'000, 200'000));
}

// ---------------------------------------------------------------------------
// Corpus agreement: recovered edges vs the interpreter's taken jumps

/// Records every jump the tested contract's own code actually takes, plus
/// each executed pc, from the pre-execution instruction hook.
class JumpRecorder final : public evm::TraceObserver {
 public:
  explicit JumpRecorder(const Address& contract) : contract_(contract) {}

  struct TakenJump {
    std::uint32_t from_pc;
    std::uint32_t to_pc;
  };

  void on_instruction(int /*depth*/, const Address& code_addr,
                      std::uint32_t pc, std::uint8_t byte,
                      std::span<const U256> stack) override {
    if (!(code_addr == contract_)) return;
    executed_pcs_.push_back(pc);
    const auto op = static_cast<Opcode>(byte);
    if (op == Opcode::JUMP) {
      if (!stack.empty() && stack.back().fits_u64()) {
        taken_.push_back(
            {pc, static_cast<std::uint32_t>(stack.back().low64())});
      }
    } else if (op == Opcode::JUMPI) {
      if (stack.size() >= 2 && !stack[stack.size() - 2].is_zero() &&
          stack.back().fits_u64()) {
        taken_.push_back(
            {pc, static_cast<std::uint32_t>(stack.back().low64())});
      }
    }
  }

  const std::vector<TakenJump>& taken() const noexcept { return taken_; }
  const std::vector<std::uint32_t>& executed_pcs() const noexcept {
    return executed_pcs_;
  }

 private:
  Address contract_;
  std::vector<TakenJump> taken_;
  std::vector<std::uint32_t> executed_pcs_;
};

struct CorpusCase {
  const char* name;
  std::function<Address(Blockchain&, const Address&)> deploy;
};

const std::vector<CorpusCase>& corpus() {
  static const std::vector<CorpusCase> kCases = [] {
    auto logic = [](Blockchain& c, const Address& d) {
      return c.deploy_runtime(d, ContractFactory::token_contract(777));
    };
    std::vector<CorpusCase> cases;
    cases.push_back({"minimal", [=](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d, ContractFactory::minimal_proxy(logic(c, d)));
                     }});
    cases.push_back({"eip1967", [=](Blockchain& c, const Address& d) {
                       const auto l = logic(c, d);
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::eip1967_proxy());
                       c.set_storage(p, ContractFactory::eip1967_slot(),
                                     l.to_word());
                       return p;
                     }});
    cases.push_back({"eip1822", [=](Blockchain& c, const Address& d) {
                       const auto l = logic(c, d);
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::eip1822_proxy());
                       c.set_storage(p, ContractFactory::eip1822_slot(),
                                     l.to_word());
                       return p;
                     }});
    cases.push_back({"slot0", [=](Blockchain& c, const Address& d) {
                       const auto l = logic(c, d);
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::slot_proxy(U256{0}));
                       c.set_storage(p, U256{0}, l.to_word());
                       return p;
                     }});
    cases.push_back({"transparent", [=](Blockchain& c, const Address& d) {
                       const auto l = logic(c, d);
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::transparent_proxy());
                       c.set_storage(p, ContractFactory::eip1967_slot(),
                                     l.to_word());
                       return p;
                     }});
    cases.push_back({"beacon", [=](Blockchain& c, const Address& d) {
                       const auto l = logic(c, d);
                       const auto b =
                           c.deploy_runtime(d, ContractFactory::beacon());
                       c.set_storage(b, U256{0}, l.to_word());
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::beacon_proxy());
                       c.set_storage(
                           p, evm::to_u256(crypto::eip1967_beacon_slot()),
                           b.to_word());
                       return p;
                     }});
    cases.push_back({"diamond", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(d,
                                               ContractFactory::diamond_proxy());
                     }});
    cases.push_back({"honeypot", [](Blockchain& c, const Address& d) {
                       const std::uint32_t lure =
                           crypto::selector_u32("free_ether_withdrawal()");
                       const auto l = c.deploy_runtime(
                           d, ContractFactory::honeypot_logic(lure));
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::honeypot_proxy(U256{1}, lure));
                       c.set_storage(p, U256{1}, l.to_word());
                       return p;
                     }});
    cases.push_back({"audius", [](Blockchain& c, const Address& d) {
                       const auto l = c.deploy_runtime(
                           d, ContractFactory::audius_style_logic());
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::audius_style_proxy());
                       c.set_storage(p, U256{1}, l.to_word());
                       return p;
                     }});
    cases.push_back({"token", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d, ContractFactory::token_contract(9));
                     }});
    cases.push_back({"garbage-push4", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d, ContractFactory::garbage_push4_contract());
                     }});
    cases.push_back({"library-user", [](Blockchain& c, const Address& d) {
                       const auto lib = c.deploy_runtime(
                           d, ContractFactory::math_library());
                       return c.deploy_runtime(
                           d, ContractFactory::library_user(lib));
                     }});
    cases.push_back({"math-library", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(d,
                                               ContractFactory::math_library());
                     }});
    cases.push_back({"infinite-loop", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d, ContractFactory::infinite_loop_contract());
                     }});
    cases.push_back({"deep-recursion", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d, ContractFactory::deep_recursion_contract());
                     }});
    cases.push_back({"push-data-dc", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d,
                           ContractFactory::push_data_delegatecall_contract());
                     }});
    cases.push_back({"dead-dc", [](Blockchain& c, const Address& d) {
                       return c.deploy_runtime(
                           d, ContractFactory::dead_delegatecall_contract());
                     }});
    cases.push_back({"computed-jump", [](Blockchain& c, const Address& d) {
                       const auto l = c.deploy_runtime(
                           d, ContractFactory::token_contract(3));
                       const auto p = c.deploy_runtime(
                           d, ContractFactory::computed_jump_contract(U256{7}));
                       c.set_storage(p, U256{7}, l.to_word());
                       return p;
                     }});
    return cases;
  }();
  return kCases;
}

class CorpusAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorpusAgreementTest, RecoveredEdgesCoverInterpreterTakenJumps) {
  const CorpusCase& c = corpus()[GetParam()];
  Blockchain chain;
  const Address deployer = Address::from_label("static.corpus.deployer");
  const Address target = c.deploy(chain, deployer);
  const Bytes code = chain.get_code(target);
  ASSERT_FALSE(code.empty()) << c.name;
  const evm::Disassembly dis(code);
  const Cfg cfg = static_analysis::recover_cfg(dis);

  // Drive the same probe emulation the detector runs, recording the jumps
  // actually taken inside the tested contract's own code.
  evm::Bytes probe(4 + 32, 0);
  const std::uint32_t selector =
      core::ProxyDetector::craft_probe_selector(target, dis);
  probe[0] = static_cast<std::uint8_t>(selector >> 24);
  probe[1] = static_cast<std::uint8_t>(selector >> 16);
  probe[2] = static_cast<std::uint8_t>(selector >> 8);
  probe[3] = static_cast<std::uint8_t>(selector);

  evm::OverlayHost overlay(chain);
  JumpRecorder recorder(target);
  evm::InterpreterConfig interp_config;
  interp_config.step_limit = 200'000;
  interp_config.max_call_depth = 64;
  evm::Interpreter interp(overlay, interp_config);
  interp.set_observer(&recorder);

  evm::CallParams params;
  params.code_address = target;
  params.storage_address = target;
  params.caller = Address::from_label("proxion.prober");
  params.origin = params.caller;
  params.calldata = probe;
  params.gas = 5'000'000;
  (void)interp.execute(params);

  ASSERT_FALSE(recorder.executed_pcs().empty()) << c.name;

  for (const auto& jump : recorder.taken()) {
    const auto from = cfg.block_containing(jump.from_pc);
    ASSERT_TRUE(from.has_value()) << c.name;
    if (!dis.is_jumpdest(jump.to_pc)) continue;  // the jump faulted
    const auto to = cfg.block_containing(jump.to_pc);
    ASSERT_TRUE(to.has_value()) << c.name;
    EXPECT_TRUE(cfg.blocks[*from].unresolved_jump ||
                cfg.has_edge(*from, *to))
        << c.name << ": taken jump " << jump.from_pc << " -> " << jump.to_pc
        << " missing from the recovered CFG";
  }

  // Soundness of reachability: while the CFG claims completeness, every pc
  // the interpreter executed must sit in a block the analysis reached.
  if (cfg.complete) {
    for (const std::uint32_t pc : recorder.executed_pcs()) {
      const auto b = cfg.block_containing(pc);
      ASSERT_TRUE(b.has_value()) << c.name;
      EXPECT_TRUE(cfg.blocks[*b].reachable)
          << c.name << ": executed pc " << pc
          << " lies in a statically-dead block";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCorpusCases, CorpusAgreementTest,
    ::testing::Range<std::size_t>(0, corpus().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = corpus()[info.param].name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
