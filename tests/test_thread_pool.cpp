// The persistent work-stealing executor: full coverage of every index,
// dynamic rebalance under skewed task sizes, exception propagation, and
// reuse of one pool across many submissions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace {

using proxion::util::ThreadPool;

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(8, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, StealsWorkUnderSkewedTaskSizes) {
  // One worker's first chunk sleeps while the rest of its queue sits idle —
  // with static sharding those chunks would wait the full sleep; here a
  // thief must take them. Owners pop their own deque front-first, so the
  // expensive item is picked up before the queued remainder.
  ThreadPool pool(4);
  const std::uint64_t steals_before = pool.steal_count();
  std::vector<std::atomic<int>> counts(16);
  pool.parallel_for(16, [&](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
  EXPECT_GT(pool.steal_count(), steals_before);
}

TEST(ThreadPoolTest, SkewedLoadFinishesFasterThanSerial) {
  // 4 items of ~50 ms each across 4 workers must overlap: well under the
  // 200 ms serial time even on a loaded CI box.
  ThreadPool pool(4);
  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(4, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 195.0);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool must remain fully usable after a failed job.
  std::atomic<int> ran{0};
  pool.parallel_for(128, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 128);
}

TEST(ThreadPoolTest, ExceptionSkipsRemainingIterations) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100'000,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1,
                                                 std::memory_order_relaxed);
                                   if (i == 0) {
                                     throw std::runtime_error("first");
                                   }
                                 }),
               std::runtime_error);
  // Chunks observing the abort flag bail out; far fewer than all
  // iterations run.
  EXPECT_LT(ran.load(), 100'000);
}

TEST(ThreadPoolTest, ReusableAcrossManyParallelForRounds) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50ull * (99ull * 100ull / 2ull));
  EXPECT_GE(pool.tasks_executed(), 50u);  // chunks actually ran on workers
}

TEST(ThreadPoolTest, SubmitRunsFireAndForgetTasks) {
  ThreadPool pool(3);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  std::promise<void> all_done;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&] {
      if (done.fetch_add(1, std::memory_order_relaxed) + 1 == kTasks) {
        all_done.set_value();
      }
    });
  }
  ASSERT_EQ(all_done.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 32; ++t) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after the queues drain
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // parallel_for from inside a pool task must not park on the completion
  // wait: with every worker nesting at once no thread would remain to run
  // the queued chunks. The re-entrancy guard runs the nested range inline
  // on the nesting worker instead.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> inner{0};
  pool.parallel_for(8, [&](std::size_t) {
    const auto worker = std::this_thread::get_id();
    pool.parallel_for(16, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), worker);  // inline, not re-queued
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 8u * 16u);
  EXPECT_FALSE(pool.on_worker_thread());  // the guard is per worker thread
}

TEST(ThreadPoolTest, QueueDepthDrainsToZeroAfterJoin) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.queue_depth(), 0u);
  pool.parallel_for(1'000, [](std::size_t) {});
  // parallel_for blocked until every chunk ran; no backlog can remain.
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, RegistryMirrorsTrackInstanceCounters) {
  namespace obs = proxion::obs;
  obs::Counter& executed =
      obs::Registry::global().counter("threadpool.tasks_executed");
  obs::Counter& steals = obs::Registry::global().counter("threadpool.steals");
  obs::Gauge& depth = obs::Registry::global().gauge("threadpool.queue_depth");
  const std::uint64_t executed_before = executed.value();
  const std::uint64_t steals_before = steals.value();

  ThreadPool pool(4);
  // Same skew as StealsWorkUnderSkewedTaskSizes: force at least one steal so
  // both the instance counter and its registry mirror move.
  pool.parallel_for(16, [](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });

  // The global registry aggregates across all pools in the process; with no
  // other pool alive the deltas equal this pool's instance counters.
  EXPECT_EQ(executed.value() - executed_before, pool.tasks_executed());
  EXPECT_EQ(steals.value() - steals_before, pool.steal_count());
  EXPECT_GT(pool.steal_count(), 0u);
  // Every enqueue was matched by a dequeue once the join returned.
  EXPECT_EQ(depth.value(), 0);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersDoNotInterfere) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> a{0}, b{0};
  std::thread other([&] {
    pool.parallel_for(5'000, [&](std::size_t) {
      a.fetch_add(1, std::memory_order_relaxed);
    });
  });
  pool.parallel_for(5'000, [&](std::size_t) {
    b.fetch_add(1, std::memory_order_relaxed);
  });
  other.join();
  EXPECT_EQ(a.load(), 5'000u);
  EXPECT_EQ(b.load(), 5'000u);
}

}  // namespace
