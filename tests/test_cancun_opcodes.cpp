// Cancun additions: EIP-1153 transient storage (TLOAD/TSTORE) and EIP-5656
// MCOPY — §4.1 claims coverage of recently introduced opcodes.
#include <gtest/gtest.h>

#include "datagen/assembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion::evm;
using proxion::datagen::Assembler;

class CancunTest : public ::testing::Test {
 protected:
  ExecResult run(const Bytes& code, Interpreter* interp = nullptr) {
    host_.set_code(self_, code);
    CallParams params;
    params.code_address = self_;
    params.storage_address = self_;
    params.caller = caller_;
    if (interp != nullptr) return interp->execute(params);
    Interpreter local(host_);
    return local.execute(params);
  }

  MemoryHost host_;
  Address self_ = Address::from_label("cancun.self");
  Address caller_ = Address::from_label("cancun.caller");
};

TEST_F(CancunTest, TransientStorageRoundTrip) {
  Assembler a;
  a.push(U256{0xabc}, 2).push(U256{7}, 1).op(Opcode::TSTORE);
  a.push(U256{7}, 1).op(Opcode::TLOAD);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0xabc});
  // Transient writes never reach persistent storage.
  EXPECT_EQ(host_.get_storage(self_, U256{7}), U256{});
}

TEST_F(CancunTest, TransientClearedBetweenTransactions) {
  Assembler writer;
  writer.push(U256{1}, 1).push(U256{7}, 1).op(Opcode::TSTORE);
  writer.op(Opcode::STOP);
  Assembler reader;
  reader.push(U256{7}, 1).op(Opcode::TLOAD);
  reader.push(U256{0}, 1).op(Opcode::MSTORE);
  reader.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);

  Interpreter interp(host_);
  run(writer.assemble(), &interp);
  const ExecResult r = run(reader.assemble(), &interp);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{});  // fresh tx: empty
}

TEST_F(CancunTest, TransientSurvivesAcrossFramesWithinOneTx) {
  // self TSTOREs, then DELEGATECALLs a helper that TLOADs in self's
  // context: same transaction, value visible.
  const Address helper = Address::from_label("cancun.helper");
  Assembler h;
  h.push(U256{7}, 1).op(Opcode::TLOAD);
  h.push(U256{0}, 1).op(Opcode::MSTORE);
  h.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  host_.set_code(helper, h.assemble());

  Assembler a;
  a.push(U256{0x42}, 1).push(U256{7}, 1).op(Opcode::TSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
  a.push_address(helper).op(Opcode::GAS).op(Opcode::DELEGATECALL)
      .op(Opcode::POP);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0x42});
}

TEST_F(CancunTest, TstoreInStaticContextFaults) {
  const Address callee = Address::from_label("cancun.tstore");
  Assembler c;
  c.push(U256{1}, 1).push(U256{0}, 1).op(Opcode::TSTORE);
  c.op(Opcode::STOP);
  host_.set_code(callee, c.assemble());

  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
  a.push_address(callee).op(Opcode::GAS).op(Opcode::STATICCALL);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0});  // inner failed
}

TEST_F(CancunTest, McopyForwardCopy) {
  Assembler a;
  a.push(U256{0xdeadbeef}, 4).push(U256{0}, 1).op(Opcode::MSTORE);
  // mcopy(dest=0x20, src=0x00, size=32)
  a.push(U256{32}, 1).push(U256{0}, 1).push(U256{0x20}, 1).op(Opcode::MCOPY);
  a.push(U256{0x40}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(BytesView(r.return_data).subspan(32)),
            U256{0xdeadbeef});
}

TEST_F(CancunTest, McopyOverlappingRegions) {
  Assembler a;
  // mem[0..32) = pattern word (0x88 at mem[31]); copy mem[0..32) to
  // mem[8..40): overlapping, needs memmove semantics.
  a.push(U256{0x1122334455667788ull}, 8).push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).push(U256{8}, 1).op(Opcode::MCOPY);
  a.push(U256{0x40}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  // Byte at 32+24 = 56-8... simply assert the copy landed: mem[8+31]=0x88.
  EXPECT_EQ(r.return_data[8 + 31], 0x88);
}

TEST_F(CancunTest, McopyZeroSizeIsNoop) {
  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).op(Opcode::MCOPY);
  a.op(Opcode::STOP);
  EXPECT_EQ(run(a.assemble()).halt, HaltReason::kStop);
}

TEST_F(CancunTest, OpcodeTableEntries) {
  EXPECT_EQ(opcode_info(Opcode::TLOAD).mnemonic, "TLOAD");
  EXPECT_EQ(opcode_info(Opcode::TSTORE).stack_in, 2);
  EXPECT_EQ(opcode_info(Opcode::MCOPY).stack_in, 3);
  EXPECT_TRUE(opcode_info(0x5c).defined);
  EXPECT_TRUE(opcode_info(0x5e).defined);
}

}  // namespace
