// The fault-tolerance subsystem end to end: backoff shaping, the circuit
// breaker state machine, deterministic fault injection, retry convergence,
// and the pipeline-level acceptance properties — a faulty sweep with retries
// is bit-identical to a fault-free one, exhausted retries quarantine instead
// of aborting, resume() converges, and adversarial bytecode halts at the
// step fuse instead of hanging the sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "chain/fault_injection.h"
#include "chain/resilient_node.h"
#include "core/pipeline.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"
#include "util/resilience.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::FaultInjectingArchiveNode;
using chain::FaultProfile;
using chain::ResilientArchiveNode;
using chain::RpcError;
using chain::RpcErrorKind;
using datagen::ContractFactory;
using datagen::Population;
using datagen::PopulationGenerator;
using datagen::PopulationSpec;
using util::BackoffSequence;
using util::CircuitBreaker;
using util::CircuitBreakerConfig;
using util::RetryPolicy;
using util::Watchdog;
using util::WatchdogExpired;

/// Retry shape used throughout: enough budget to outlast default fault
/// healing, microsecond-scale delays so tests never visibly sleep.
RetryPolicy fast_retry() {
  RetryPolicy p;
  p.max_attempts = 6;
  p.base_delay_us = 1;
  p.max_delay_us = 20;
  return p;
}

// ---------------------------------------------------------------------------
// BackoffSequence
// ---------------------------------------------------------------------------

TEST(BackoffSequenceTest, DelaysStayWithinPolicyBounds) {
  RetryPolicy policy;
  policy.base_delay_us = 100;
  policy.max_delay_us = 2'000;
  BackoffSequence seq(policy, /*salt=*/7);
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t d = seq.next();
    EXPECT_GE(d, policy.base_delay_us);
    EXPECT_LE(d, policy.max_delay_us);
  }
}

TEST(BackoffSequenceTest, DeterministicPerSeedAndSalt) {
  RetryPolicy policy;
  BackoffSequence a(policy, 3), b(policy, 3), c(policy, 4);
  bool salted_differs = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t da = a.next();
    EXPECT_EQ(da, b.next());
    salted_differs |= (da != c.next());
  }
  // Different salts must decorrelate (the anti-thundering-herd property).
  EXPECT_TRUE(salted_differs);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

struct FakeClock {
  std::uint64_t now_us = 0;
  CircuitBreaker::Clock fn() {
    return [this] { return now_us; };
  }
};

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndFastFails) {
  FakeClock clock;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown_us = 100;
  CircuitBreaker breaker(cfg, clock.fn());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.on_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());  // fast-fail while cooling down
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  FakeClock clock;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_us = 100;
  CircuitBreaker breaker(cfg, clock.fn());

  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();  // trips immediately
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.now_us = 99;
  EXPECT_FALSE(breaker.allow());
  clock.now_us = 100;
  EXPECT_TRUE(breaker.allow());   // the probe
  EXPECT_FALSE(breaker.allow());  // everyone else still fast-fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensAndResetCloses) {
  FakeClock clock;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown_us = 50;
  CircuitBreaker breaker(cfg, clock.fn());

  ASSERT_TRUE(breaker.allow());
  breaker.on_failure();
  clock.now_us = 50;
  ASSERT_TRUE(breaker.allow());  // probe
  breaker.on_failure();          // probe failed -> open again, new cooldown
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  clock.now_us = 99;
  EXPECT_FALSE(breaker.allow());

  breaker.reset();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 2u);  // history preserved
}

TEST(WatchdogTest, ZeroBudgetNeverExpiresAndTinyBudgetThrows) {
  Watchdog unlimited(0.0);
  EXPECT_FALSE(unlimited.expired());
  EXPECT_NO_THROW(unlimited.check("anywhere"));

  Watchdog tiny(1e-9);
  while (!tiny.expired()) {
  }
  EXPECT_THROW(tiny.check("pair-collisions"), WatchdogExpired);
}

// ---------------------------------------------------------------------------
// FaultInjectingArchiveNode
// ---------------------------------------------------------------------------

class FaultNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployer_ = evm::Address::from_label("deployer");
    for (std::uint64_t i = 0; i < 64; ++i) {
      targets_.push_back(chain_.deploy_runtime(
          deployer_, ContractFactory::token_contract(i)));
    }
  }

  chain::Blockchain chain_;
  evm::Address deployer_;
  std::vector<evm::Address> targets_;
};

TEST_F(FaultNodeTest, FaultDecisionIsAPureFunctionOfSeedAndRequest) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 42;
  profile.transient_rate = 0.3;
  profile.failures_per_fault = 1'000'000;  // never heals within the test

  auto faulting_set = [&](const std::vector<evm::Address>& order) {
    FaultInjectingArchiveNode node(inner, profile);
    std::vector<evm::Address> faulted;
    for (const auto& a : order) {
      try {
        (void)node.get_code(a);
      } catch (const RpcError&) {
        faulted.push_back(a);
      }
    }
    std::sort(faulted.begin(), faulted.end(),
              [](const evm::Address& x, const evm::Address& y) {
                return x.bytes < y.bytes;
              });
    return faulted;
  };

  std::vector<evm::Address> reversed(targets_.rbegin(), targets_.rend());
  const auto forward = faulting_set(targets_);
  const auto backward = faulting_set(reversed);
  EXPECT_EQ(forward, backward);  // call order is irrelevant
  EXPECT_FALSE(forward.empty());
  EXPECT_LT(forward.size(), targets_.size());
}

TEST_F(FaultNodeTest, FaultyRequestsHealAfterTheirBudgetAndConverge) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 7;
  profile.transient_rate = 1.0;  // every request is faulty...
  profile.failures_per_fault = 2;  // ...for exactly two attempts
  FaultInjectingArchiveNode node(inner, profile);

  const evm::Address& a = targets_.front();
  EXPECT_THROW((void)node.get_code(a), RpcError);
  EXPECT_THROW((void)node.get_code(a), RpcError);
  const evm::Bytes healed = node.get_code(a);
  EXPECT_EQ(healed, inner.get_code(a));  // true value, not stale/corrupt
  EXPECT_NO_THROW((void)node.get_code(a));  // stays healed
  EXPECT_EQ(node.injected_faults(), 2u);
}

TEST_F(FaultNodeTest, RateLimitBurstsOutlastSingleFailureFaults) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 9;
  profile.rate_limit_rate = 1.0;
  profile.failures_per_fault = 1;
  profile.rate_limit_burst = 3;
  FaultInjectingArchiveNode node(inner, profile);

  const evm::Address& a = targets_.front();
  for (int i = 0; i < 3; ++i) {
    try {
      (void)node.get_code(a);
      FAIL() << "attempt " << i << " should have been rate-limited";
    } catch (const RpcError& e) {
      EXPECT_EQ(e.kind(), RpcErrorKind::kRateLimited);
      EXPECT_TRUE(e.retriable());
    }
  }
  EXPECT_NO_THROW((void)node.get_code(a));
}

TEST_F(FaultNodeTest, StaleReadsSurfaceAsErrorsNeverAsStaleData) {
  // The stale-read mode must never silently return an old value — that
  // would break bit-identity. It throws like every other fault.
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 11;
  profile.stale_read_rate = 1.0;
  FaultInjectingArchiveNode node(inner, profile);

  try {
    (void)node.get_storage_at(targets_.front(), evm::U256{0}, 1);
    FAIL() << "expected a stale-read fault";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcErrorKind::kStaleRead);
  }
}

TEST_F(FaultNodeTest, HealStopsInjectionEntirely) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.failures_per_fault = 1'000'000;
  FaultInjectingArchiveNode node(inner, profile);

  EXPECT_THROW((void)node.get_code(targets_.front()), RpcError);
  node.heal();
  for (const auto& a : targets_) {
    EXPECT_NO_THROW((void)node.get_code(a));
  }
}

// ---------------------------------------------------------------------------
// ResilientArchiveNode
// ---------------------------------------------------------------------------

TEST_F(FaultNodeTest, RetriesAbsorbBoundedFaultsTransparently) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 3;
  profile.transient_rate = 0.5;
  profile.failures_per_fault = 2;
  FaultInjectingArchiveNode faulty(inner, profile);

  std::uint64_t slept_us = 0;
  ResilientArchiveNode node(faulty, fast_retry(), {},
                            [&](std::uint32_t us) { slept_us += us; });
  for (const auto& a : targets_) {
    EXPECT_EQ(node.get_code(a), inner.get_code(a));
  }
  EXPECT_GT(node.faults_seen(), 0u);
  EXPECT_EQ(node.retries(), node.faults_seen());  // every fault was retried
  EXPECT_EQ(node.giveups(), 0u);
  EXPECT_GT(slept_us, 0u);  // backoff actually engaged
}

TEST_F(FaultNodeTest, ExhaustedBudgetSurfacesAsTerminalRpcError) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.seed = 3;
  profile.transient_rate = 1.0;
  profile.failures_per_fault = 1'000'000;  // outlasts any retry budget
  FaultInjectingArchiveNode faulty(inner, profile);

  ResilientArchiveNode node(faulty, fast_retry(), {},
                            [](std::uint32_t) {});
  try {
    (void)node.get_code(targets_.front());
    FAIL() << "expected kExhausted";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcErrorKind::kExhausted);
    EXPECT_FALSE(e.retriable());
  }
  EXPECT_EQ(node.giveups(), 1u);
}

TEST_F(FaultNodeTest, OpenBreakerFastFailsWithoutTouchingTheBackend) {
  chain::ArchiveNode inner(chain_);
  FaultProfile profile;
  profile.transient_rate = 1.0;
  profile.failures_per_fault = 1'000'000;
  FaultInjectingArchiveNode faulty(inner, profile);

  CircuitBreakerConfig breaker;
  breaker.failure_threshold = 4;
  breaker.cooldown_us = 1'000'000'000;  // stays open for the whole test
  ResilientArchiveNode node(faulty, fast_retry(), breaker,
                            [](std::uint32_t) {});

  EXPECT_THROW((void)node.get_code(targets_[0]), RpcError);  // trips it
  ASSERT_EQ(node.breaker().state(), CircuitBreaker::State::kOpen);

  const std::uint64_t backend_faults = faulty.injected_faults();
  try {
    (void)node.get_code(targets_[1]);
    FAIL() << "expected kCircuitOpen";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.kind(), RpcErrorKind::kCircuitOpen);
  }
  EXPECT_EQ(faulty.injected_faults(), backend_faults);  // never asked
  EXPECT_EQ(node.breaker().trips(), 1u);
}

// ---------------------------------------------------------------------------
// Pipeline-level acceptance properties
// ---------------------------------------------------------------------------

class FaultSweepTest : public ::testing::Test {
 protected:
  static Population make_population(std::uint32_t n) {
    PopulationSpec spec;
    spec.total_contracts = n;
    return PopulationGenerator().generate(spec);
  }

  static PipelineConfig faulted_config(chain::IArchiveNode* backend) {
    PipelineConfig cfg;
    cfg.archive_node = backend;
    cfg.retry = fast_retry();
    return cfg;
  }
};

TEST_F(FaultSweepTest, TenPercentFaultsWithRetriesIsBitIdenticalToFaultFree) {
  Population pop = make_population(400);
  const auto inputs = pop.sweep_inputs();

  AnalysisPipeline clean_pipeline(*pop.chain, &pop.sources);
  const auto clean = clean_pipeline.run(inputs);

  chain::ArchiveNode inner(*pop.chain);
  FaultProfile profile;
  profile.seed = 1234;
  profile.transient_rate = 0.04;
  profile.timeout_rate = 0.03;
  profile.rate_limit_rate = 0.02;
  profile.stale_read_rate = 0.01;  // 10% overall
  FaultInjectingArchiveNode faulty(inner, profile);

  AnalysisPipeline pipeline(*pop.chain, &pop.sources, faulted_config(&faulty));
  const auto reports = pipeline.run(inputs);

  EXPECT_GT(faulty.injected_faults(), 0u) << "fault injection never engaged";
  ASSERT_EQ(reports.size(), clean.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i], clean[i]) << "report " << i << " diverged";
  }

  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(stats.analyzed_contracts, stats.total_contracts);
  EXPECT_GT(stats.rpc_retries, 0u);
  EXPECT_EQ(stats.rpc_giveups, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
}

TEST_F(FaultSweepTest, ExhaustedRetriesQuarantineAndResumeConverges) {
  Population pop = make_population(300);
  const auto inputs = pop.sweep_inputs();

  AnalysisPipeline clean_pipeline(*pop.chain, &pop.sources);
  const auto clean = clean_pipeline.run(inputs);

  chain::ArchiveNode inner(*pop.chain);
  FaultProfile profile;
  profile.seed = 99;
  profile.transient_rate = 0.10;
  profile.failures_per_fault = 1'000'000;  // outlasts the retry budget
  FaultInjectingArchiveNode faulty(inner, profile);

  AnalysisPipeline pipeline(*pop.chain, &pop.sources, faulted_config(&faulty));
  auto reports = pipeline.run(inputs);

  const LandscapeStats partial = pipeline.summarize(reports);
  ASSERT_GT(partial.quarantined, 0u) << "the outage quarantined nothing";
  EXPECT_LT(partial.quarantined, partial.total_contracts);
  EXPECT_EQ(partial.analyzed_contracts,
            partial.total_contracts - partial.quarantined);
  std::uint64_t exhausted = 0;
  for (const auto& [kind, n] : partial.errors_by_kind) {
    if (kind == ErrorKind::kRpcExhausted) exhausted += n;
  }
  EXPECT_GT(exhausted, 0u);
  EXPECT_GT(partial.rpc_giveups, 0u);
  for (const auto& r : reports) {
    if (r.quarantined()) {
      EXPECT_EQ(r.error->kind, ErrorKind::kRpcExhausted);
      EXPECT_FALSE(r.error->phase.empty());
    }
  }

  // The backend recovers; resume retries only the quarantined set and the
  // final reports converge to exactly the fault-free run's.
  faulty.heal();
  const std::size_t still = pipeline.resume(inputs, reports);
  EXPECT_EQ(still, 0u);
  ASSERT_EQ(reports.size(), clean.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i], clean[i]) << "resumed report " << i << " diverged";
  }
  EXPECT_EQ(pipeline.summarize(reports).quarantined, 0u);
  // A second resume over healthy reports is a no-op.
  EXPECT_EQ(pipeline.resume(inputs, reports), 0u);
}

TEST_F(FaultSweepTest, RetriesDisabledQuarantinesEveryFaultedContract) {
  Population pop = make_population(200);
  const auto inputs = pop.sweep_inputs();

  chain::ArchiveNode inner(*pop.chain);
  FaultProfile profile;
  profile.seed = 5;
  profile.transient_rate = 0.10;
  FaultInjectingArchiveNode faulty(inner, profile);

  PipelineConfig cfg;
  cfg.archive_node = &faulty;
  cfg.enable_retries = false;
  AnalysisPipeline pipeline(*pop.chain, &pop.sources, cfg);
  const auto reports = pipeline.run(inputs);

  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_GT(stats.quarantined, 0u);
  EXPECT_EQ(stats.rpc_retries, 0u);
  for (const auto& r : reports) {
    if (r.quarantined()) {
      EXPECT_EQ(r.error->kind, ErrorKind::kRpcTransient);
    }
  }
}

TEST_F(FaultSweepTest, AdversarialBytecodeHaltsAtTheStepFuseNotForever) {
  chain::Blockchain chain;
  const auto deployer = evm::Address::from_label("deployer");
  const auto spinner =
      chain.deploy_runtime(deployer, ContractFactory::infinite_loop_contract());
  const auto recurser =
      chain.deploy_runtime(deployer, ContractFactory::deep_recursion_contract());
  const auto honest =
      chain.deploy_runtime(deployer, ContractFactory::token_contract(1));

  std::vector<SweepInput> inputs = {
      {.address = spinner}, {.address = recurser}, {.address = honest}};

  PipelineConfig cfg;
  cfg.emulation_step_limit = 20'000;  // small fuse: the test must be fast
  AnalysisPipeline pipeline(chain, nullptr, cfg);
  const auto reports = pipeline.run(inputs);  // terminates — that IS the test

  ASSERT_EQ(reports.size(), 3u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(reports[i].quarantined());  // contained, not quarantined
    EXPECT_EQ(reports[i].proxy.verdict, ProxyVerdict::kEmulationError)
        << "adversarial contract " << i;
    EXPECT_EQ(reports[i].proxy.halt, evm::HaltReason::kStepLimit);
  }
  EXPECT_NE(reports[2].proxy.verdict, ProxyVerdict::kEmulationError);

  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.emulation_errors, 2u);
  const auto it = stats.errors_by_kind.find(ErrorKind::kEmulationLimit);
  ASSERT_NE(it, stats.errors_by_kind.end());
  EXPECT_EQ(it->second, 2u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST_F(FaultSweepTest, WallClockWatchdogQuarantinesAsEmulationLimit) {
  Population pop = make_population(120);
  const auto inputs = pop.sweep_inputs();

  PipelineConfig cfg;
  cfg.contract_wall_budget_ms = 1e-9;  // everything blows the budget
  AnalysisPipeline pipeline(*pop.chain, &pop.sources, cfg);
  auto reports = pipeline.run(inputs);

  std::uint64_t dogged = 0;
  for (const auto& r : reports) {
    if (r.quarantined() && r.error->kind == ErrorKind::kEmulationLimit) {
      ++dogged;
    }
  }
  EXPECT_GT(dogged, 0u) << "watchdog never fired";

  // Raising the budget back to unlimited and resuming clears the quarantine
  // and converges to the plain run.
  AnalysisPipeline clean_pipeline(*pop.chain, &pop.sources);
  const auto clean = clean_pipeline.run(inputs);
  AnalysisPipeline retry_pipeline(*pop.chain, &pop.sources);
  const std::size_t still = retry_pipeline.resume(inputs, reports);
  EXPECT_EQ(still, 0u);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i], clean[i]);
  }
}

}  // namespace
