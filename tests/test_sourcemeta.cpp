// Solidity storage-layout packing rules and the source repository.
#include <gtest/gtest.h>

#include "crypto/eth.h"
#include "evm/types.h"
#include "sourcemeta/source.h"

namespace {

using namespace proxion::sourcemeta;
using proxion::evm::Address;

TEST(TypeWidth, ElementaryTypes) {
  EXPECT_EQ(type_width("bool"), 1);
  EXPECT_EQ(type_width("address"), 20);
  EXPECT_EQ(type_width("address payable"), 20);
  EXPECT_EQ(type_width("uint8"), 1);
  EXPECT_EQ(type_width("uint16"), 2);
  EXPECT_EQ(type_width("uint128"), 16);
  EXPECT_EQ(type_width("uint256"), 32);
  EXPECT_EQ(type_width("uint"), 32);
  EXPECT_EQ(type_width("int64"), 8);
  EXPECT_EQ(type_width("int"), 32);
  EXPECT_EQ(type_width("bytes1"), 1);
  EXPECT_EQ(type_width("bytes32"), 32);
  EXPECT_EQ(type_width("mapping(address=>uint256)"), 32);
  EXPECT_EQ(type_width("string"), 32);
}

TEST(LayoutStorage, PacksSmallVariablesIntoOneSlot) {
  // Listing 2's logic contract: two bools share slot 0.
  std::vector<VariableDecl> vars = {
      {.name = "initialized", .type = "bool"},
      {.name = "initializing", .type = "bool"},
  };
  layout_storage(vars);
  EXPECT_EQ(vars[0].slot, 0u);
  EXPECT_EQ(vars[0].offset, 0);
  EXPECT_EQ(vars[1].slot, 0u);
  EXPECT_EQ(vars[1].offset, 1);
}

TEST(LayoutStorage, AddressPlusAddressSplits) {
  // 20 + 20 > 32: the second address starts a new slot (Listing 2's proxy).
  std::vector<VariableDecl> vars = {
      {.name = "owner", .type = "address"},
      {.name = "logic", .type = "address"},
  };
  layout_storage(vars);
  EXPECT_EQ(vars[0].slot, 0u);
  EXPECT_EQ(vars[1].slot, 1u);
}

TEST(LayoutStorage, AddressPlusBoolPacks) {
  std::vector<VariableDecl> vars = {
      {.name = "owner", .type = "address"},
      {.name = "paused", .type = "bool"},
      {.name = "big", .type = "uint256"},
  };
  layout_storage(vars);
  EXPECT_EQ(vars[0].slot, 0u);
  EXPECT_EQ(vars[1].slot, 0u);
  EXPECT_EQ(vars[1].offset, 20);
  EXPECT_EQ(vars[2].slot, 1u);  // uint256 can't fit the 11 remaining bytes
}

TEST(LayoutStorage, MappingsAlwaysTakeAFreshSlot) {
  std::vector<VariableDecl> vars = {
      {.name = "flag", .type = "bool"},
      {.name = "balances", .type = "mapping(address=>uint256)"},
      {.name = "after", .type = "bool"},
  };
  layout_storage(vars);
  EXPECT_EQ(vars[0].slot, 0u);
  EXPECT_EQ(vars[1].slot, 1u);
  EXPECT_EQ(vars[2].slot, 2u);
}

TEST(LayoutStorage, EmptyList) {
  std::vector<VariableDecl> vars;
  layout_storage(vars);
  EXPECT_TRUE(vars.empty());
}

TEST(SourceRecord, SelectorsSortedUniquePublicOnly) {
  SourceRecord rec;
  rec.functions = {{.prototype = "b()"},
                   {.prototype = "a()"},
                   {.prototype = "a()"},
                   {.prototype = "hidden()", .is_public = false}};
  const auto selectors = rec.selectors();
  EXPECT_EQ(selectors.size(), 2u);
  EXPECT_TRUE(std::is_sorted(selectors.begin(), selectors.end()));
}

TEST(SourceRepository, PublishLookup) {
  SourceRepository repo;
  const Address a = Address::from_label("verified");
  EXPECT_EQ(repo.lookup(a), nullptr);
  EXPECT_FALSE(repo.has_source(a));

  SourceRecord rec;
  rec.contract_name = "Verified";
  repo.publish(a, rec);
  ASSERT_NE(repo.lookup(a), nullptr);
  EXPECT_EQ(repo.lookup(a)->contract_name, "Verified");
  EXPECT_TRUE(repo.has_source(a));
  EXPECT_EQ(repo.size(), 1u);
}

TEST(SourceRepository, CodeHashPropagation) {
  SourceRepository repo;
  const Address verified = Address::from_label("verified");
  const Address clone = Address::from_label("clone");
  SourceRecord rec;
  rec.contract_name = "Shared";
  repo.publish(verified, rec);

  const auto hash = proxion::crypto::keccak256("some bytecode");
  repo.index_code_hash(verified, hash);
  ASSERT_NE(repo.lookup_by_code_hash(hash), nullptr);
  EXPECT_EQ(repo.lookup_by_code_hash(hash)->contract_name, "Shared");
  EXPECT_EQ(repo.lookup(clone), nullptr);  // direct lookup still misses
  // Unverified address indexing is a no-op.
  repo.index_code_hash(clone, proxion::crypto::keccak256("other"));
  EXPECT_EQ(repo.lookup_by_code_hash(proxion::crypto::keccak256("other")),
            nullptr);
}

}  // namespace
