// Execution-level behaviour of the newer factory bodies (packed reads and
// read-modify-write packed stores, beacon admin paths, honeypot payouts)
// plus §8.2 multi-chain population generation.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Address;
using evm::Bytes;
using evm::U256;

Bytes with_selector(std::string_view prototype, const U256& arg = {}) {
  const auto sel = crypto::selector_of(prototype);
  Bytes out(36, 0);
  std::copy(sel.begin(), sel.end(), out.begin());
  const auto word = arg.to_be_bytes();
  std::copy(word.begin(), word.end(), out.begin() + 4);
  return out;
}

class FactoryBehaviourTest : public ::testing::Test {
 protected:
  Blockchain chain_;
  Address user_ = Address::from_label("fb.user");
};

TEST_F(FactoryBehaviourTest, PackedBoolReadExtractsCorrectByte) {
  const Address c = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "byteAt1()",
                   .body = BodyKind::kReturnStorageBoolAtOffset,
                   .slot = U256{0}, .aux = U256{1}},
                  {.prototype = "byteAt5()",
                   .body = BodyKind::kReturnStorageBoolAtOffset,
                   .slot = U256{0}, .aux = U256{5}}}));
  // slot0 = 0x...66 55 44 33 22 11 (byte k = 0x11 * (k+1))
  U256 value;
  for (int k = 5; k >= 0; --k) {
    value = (value << U256{8}) | U256{static_cast<std::uint64_t>(0x11 * (k + 1))};
  }
  chain_.set_storage(c, U256{0}, value);

  auto r1 = chain_.call(user_, c, with_selector("byteAt1()"));
  EXPECT_EQ(U256::from_be_slice(r1.return_data), U256{0x22});
  auto r5 = chain_.call(user_, c, with_selector("byteAt5()"));
  EXPECT_EQ(U256::from_be_slice(r5.return_data), U256{0x66});
}

TEST_F(FactoryBehaviourTest, PackedRmwWriteTouchesOnlyItsByte) {
  const Address c = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "begin()",
                   .body = BodyKind::kStoreBoolPackedAt, .slot = U256{0},
                   .aux = U256{1}}}));
  // Pre-existing packed neighbours must survive the write.
  const U256 before = U256::from_hex("0xaabbccdd");
  chain_.set_storage(c, U256{0}, before);

  EXPECT_TRUE(chain_.call(user_, c, with_selector("begin()")).success());
  const U256 after = chain_.get_storage(c, U256{0});
  // byte 1 (0xcc) replaced by 0x01; all other bytes intact.
  EXPECT_EQ(after, U256::from_hex("0xaabb01dd"));
}

TEST_F(FactoryBehaviourTest, BeaconUpgradeToIsOwnerGuarded) {
  const Address beacon = chain_.deploy_runtime(user_, ContractFactory::beacon());
  const Address owner = Address::from_label("beacon.owner2");
  chain_.set_storage(beacon, U256{1}, owner.to_word());
  const Address old_impl = Address::from_label("old-impl");
  chain_.set_storage(beacon, U256{0}, old_impl.to_word());

  // A stranger cannot retarget the beacon...
  const Address evil = Address::from_label("new-evil-impl");
  auto r = chain_.call(user_, beacon,
                       with_selector("upgradeTo(address)", evil.to_word()));
  EXPECT_FALSE(r.success());
  EXPECT_EQ(chain_.get_storage(beacon, U256{0}), old_impl.to_word());

  // ... the owner can.
  r = chain_.call(owner, beacon,
                  with_selector("upgradeTo(address)", evil.to_word()));
  EXPECT_TRUE(r.success());
  EXPECT_EQ(chain_.get_storage(beacon, U256{0}), evil.to_word());
}

TEST_F(FactoryBehaviourTest, HoneypotLurePaysWhenCalledDirectly) {
  // Called directly (not through the trap proxy), the lure really pays —
  // that's what makes the honeypot credible to victims reading the logic.
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::honeypot_logic(lure));
  chain_.fund(logic, U256{1'000'000'000'000ull});
  Bytes calldata(4, 0);
  calldata[0] = static_cast<std::uint8_t>(lure >> 24);
  calldata[1] = static_cast<std::uint8_t>(lure >> 16);
  calldata[2] = static_cast<std::uint8_t>(lure >> 8);
  calldata[3] = static_cast<std::uint8_t>(lure);
  const auto victim = Address::from_label("curious.victim");
  EXPECT_TRUE(chain_.call(victim, logic, calldata).success());
  EXPECT_EQ(chain_.get_balance(victim), U256{10'000'000'000ull});
}

TEST_F(FactoryBehaviourTest, LibraryUserReencodesCalldata) {
  // The library receives [inner-selector][args], not the original calldata:
  // delegating to add(uint256,uint256) returns the library's constant.
  const Address lib = chain_.deploy_runtime(user_, ContractFactory::math_library());
  const Address lu = chain_.deploy_runtime(user_, ContractFactory::library_user(lib));
  const auto r =
      chain_.call(user_, lu, with_selector("compute(uint256)", U256{5}));
  EXPECT_TRUE(r.success());
  ASSERT_EQ(chain_.internal_txs().size(), 1u);
  EXPECT_EQ(chain_.internal_txs()[0].selector,
            crypto::selector_u32("add(uint256,uint256)"));
  EXPECT_FALSE(chain_.internal_txs()[0].in_fallback_position);
}

TEST(MultiChainTest, PopulationHonoursChainId) {
  datagen::PopulationSpec spec;
  spec.total_contracts = 120;
  spec.chain_id = 137;  // Polygon
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);
  EXPECT_EQ(pop.chain->block_context().chain_id, U256{137});

  // Detection is chain-agnostic: the sweep behaves identically.
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  std::uint64_t proxies = 0;
  for (const auto& r : reports) {
    if (r.proxy.is_proxy()) ++proxies;
  }
  EXPECT_GT(proxies, 0u);
}

TEST(MultiChainTest, ChainIdVisibleToContracts) {
  Blockchain chain;
  chain.set_chain_id(56);  // BSC
  const Address user = Address::from_label("mc.user");
  // Contract returning CHAINID.
  datagen::Assembler a;
  a.op(evm::Opcode::CHAINID);
  a.push(U256{0}, 1).op(evm::Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(evm::Opcode::RETURN);
  const Address c = chain.deploy_runtime(user, a.assemble());
  const auto r = chain.call(user, c, {});
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{56});
}

}  // namespace
