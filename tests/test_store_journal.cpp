// Torture tests for the checkpoint journal: frame round-trips, empty and
// missing journals, truncated tails, corrupted CRC frames, record
// serialization fidelity, and the manifest's atomic-replace protocol.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/crc32.h"
#include "store/journal.h"
#include "store/records.h"

namespace {

using namespace proxion;
using namespace proxion::store;

namespace fs = std::filesystem;

/// Fresh per-test path under the build tree's temp dir.
std::string temp_path(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "proxion_journal_tests";
  fs::create_directories(dir);
  const fs::path p = dir / name;
  fs::remove(p);
  fs::remove(manifest_path_for(p.string()));
  return p.string();
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

/// A ContractAnalysis exercising every serialized field.
ContractRecord full_record() {
  ContractRecord rec;
  core::ContractAnalysis& a = rec.analysis;
  a.address = evm::Address::from_label("journal-test-proxy");
  a.year = 2021;
  a.has_source = true;
  a.has_tx = false;
  a.deduplicated = true;
  a.function_collision = true;
  a.storage_collision = true;
  a.storage_collision_exploitable = false;
  a.logic_has_source = true;
  a.proxy.verdict = core::ProxyVerdict::kProxy;
  a.proxy.has_delegatecall_opcode = true;
  a.proxy.delegatecall_executed = true;
  a.proxy.calldata_forwarded = true;
  a.proxy.halt = evm::HaltReason::kReturn;
  a.proxy.logic_address = evm::Address::from_label("journal-test-logic");
  a.proxy.logic_source = core::LogicSource::kStorageSlot;
  a.proxy.logic_slot = evm::U256::from_hex(
      "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc");
  a.proxy.standard = core::ProxyStandard::kEip1967;
  a.proxy.static_triage = core::StaticTriage::kEmulated;
  a.proxy.static_mismatch = core::kMismatchSlot;
  a.proxy.probe_selector = 0xDEADBEEF;
  a.proxy.emulation_steps = 12'345;
  a.logic_history.logic_addresses = {
      evm::Address::from_label("logic-v1"), evm::Address::from_label("logic-v2")};
  a.logic_history.upgrade_events = 1;
  a.logic_history.api_calls = 26;
  a.diamond.is_diamond = true;
  a.diamond.routed_selectors = {0x11223344u, 0x55667788u};
  a.diamond.facets = {evm::Address::from_label("facet-a")};
  static const std::vector<std::uint8_t> blob{0x60, 0x80, 0x60, 0x40};
  rec.code_hash = crypto::keccak256(blob);
  return rec;
}

TEST(Crc32c, KnownVector) {
  // The CRC-32C check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32c, SeedChainsAcrossBuffers) {
  const char* s = "123456789";
  const std::uint32_t split = crc32c(s + 4, 5, crc32c(s, 4));
  EXPECT_EQ(split, crc32c(s, 9));
}

TEST(Journal, FrameRoundTrip) {
  const std::string path = temp_path("roundtrip.journal");
  {
    auto writer = JournalWriter::create(path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(RecordType::kSweepBegin,
                               encode_sweep_begin({100, 16})));
    ASSERT_TRUE(writer->append(RecordType::kContract,
                               encode_contract_record(full_record())));
    ASSERT_TRUE(writer->append(RecordType::kShardCommit,
                               encode_shard_commit({0, 1})));
    ASSERT_TRUE(writer->append(RecordType::kSweepEnd, encode_sweep_end({100})));
    ASSERT_TRUE(writer->sync());
  }
  const auto replay = read_journal(path);
  ASSERT_TRUE(replay.has_value());
  ASSERT_EQ(replay->frames.size(), 4u);
  EXPECT_FALSE(replay->tail_dropped);
  EXPECT_EQ(replay->crc_failures, 0u);

  const auto begin = decode_sweep_begin(replay->frames[0].payload);
  ASSERT_TRUE(begin.has_value());
  EXPECT_EQ(begin->population, 100u);
  EXPECT_EQ(begin->shard_size, 16u);

  const auto rec = decode_contract_record(replay->frames[1].payload);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, full_record());  // field-for-field, incl. nested reports

  const auto commit = decode_shard_commit(replay->frames[2].payload);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->contracts, 1u);

  const auto end = decode_sweep_end(replay->frames[3].payload);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(end->contracts, 100u);
}

TEST(Journal, QuarantinedRecordRoundTrip) {
  ContractRecord rec = full_record();
  rec.analysis.error = core::ErrorRecord{core::ErrorKind::kRpcExhausted,
                                         "pairs", "breaker open"};
  const auto decoded = decode_contract_record(encode_contract_record(rec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, rec);
}

TEST(Journal, EmptyJournalIsValid) {
  const std::string path = temp_path("empty.journal");
  { ASSERT_TRUE(JournalWriter::create(path).has_value()); }
  const auto replay = read_journal(path);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->frames.empty());
  EXPECT_EQ(replay->valid_bytes, kJournalHeaderSize);
  EXPECT_FALSE(replay->tail_dropped);
}

TEST(Journal, MissingFileIsNullopt) {
  const std::string path = temp_path("missing.journal");
  EXPECT_FALSE(read_journal(path).has_value());
  EXPECT_FALSE(JournalWriter::open_append(path).has_value());
}

TEST(Journal, GarbageHeaderIsNullopt) {
  const std::string path = temp_path("garbage.journal");
  write_file(path, {'n', 'o', 't', 'a', 'j', 'r', 'n', 'l', 1, 0, 0, 0});
  EXPECT_FALSE(read_journal(path).has_value());
}

TEST(Journal, TruncatedTailIsDropped) {
  const std::string path = temp_path("torn.journal");
  {
    auto writer = JournalWriter::create(path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(RecordType::kContract,
                               encode_contract_record(full_record())));
    ASSERT_TRUE(writer->append(RecordType::kShardCommit,
                               encode_shard_commit({0, 1})));
    ASSERT_TRUE(writer->sync());
  }
  // Tear the last frame mid-way, as a crash mid-write would.
  std::vector<std::uint8_t> bytes = file_bytes(path);
  const std::size_t torn_size = bytes.size() - 5;
  bytes.resize(torn_size);
  write_file(path, bytes);

  const auto replay = read_journal(path);
  ASSERT_TRUE(replay.has_value());
  ASSERT_EQ(replay->frames.size(), 1u);  // the commit frame is gone
  EXPECT_TRUE(replay->tail_dropped);
  EXPECT_LT(replay->valid_bytes, torn_size);

  // Appending resumes AFTER the valid prefix: the torn bytes are overwritten
  // and the journal reads back clean.
  {
    auto writer = JournalWriter::open_append(path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(RecordType::kShardCommit,
                               encode_shard_commit({0, 1})));
    ASSERT_TRUE(writer->sync());
  }
  const auto healed = read_journal(path);
  ASSERT_TRUE(healed.has_value());
  ASSERT_EQ(healed->frames.size(), 2u);
  EXPECT_EQ(healed->frames[1].type, RecordType::kShardCommit);
}

TEST(Journal, CorruptedCrcStopsReplay) {
  const std::string path = temp_path("bitrot.journal");
  std::uint64_t first_frame_end = 0;
  {
    auto writer = JournalWriter::create(path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(RecordType::kSweepBegin,
                               encode_sweep_begin({10, 4})));
    first_frame_end = writer->size_bytes();
    ASSERT_TRUE(writer->append(RecordType::kContract,
                               encode_contract_record(full_record())));
    ASSERT_TRUE(writer->append(RecordType::kShardCommit,
                               encode_shard_commit({0, 1})));
    ASSERT_TRUE(writer->sync());
  }
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes[first_frame_end + 20] ^= 0xFF;  // flip a payload byte of frame 2
  write_file(path, bytes);

  const auto replay = read_journal(path);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->frames.size(), 1u);  // replay stops at the bad frame
  EXPECT_EQ(replay->crc_failures, 1u);
  EXPECT_TRUE(replay->tail_dropped);
}

TEST(Journal, RejectsOversizedLengthField) {
  const std::string path = temp_path("hostile.journal");
  { ASSERT_TRUE(JournalWriter::create(path).has_value()); }
  std::vector<std::uint8_t> bytes = file_bytes(path);
  // A frame claiming a ~4 GiB payload must read as a torn tail, not an
  // allocation.
  for (int i = 0; i < 4; ++i) bytes.push_back(0xFF);
  bytes.push_back(2);
  write_file(path, bytes);
  const auto replay = read_journal(path);
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->frames.empty());
  EXPECT_TRUE(replay->tail_dropped);
}

TEST(Journal, DecodeRejectsTrailingBytes) {
  std::vector<std::uint8_t> payload = encode_contract_record(full_record());
  payload.push_back(0x00);
  EXPECT_FALSE(decode_contract_record(payload).has_value());
  payload.pop_back();
  payload.pop_back();
  EXPECT_FALSE(decode_contract_record(payload).has_value());
}

TEST(Journal, DecodeRejectsOutOfRangeEnum) {
  std::vector<std::uint8_t> payload = encode_contract_record(full_record());
  // Byte 34 is the verdict (20 address + 4 year + 1 flags + 1 flags2 +
  // 4 pairs-family-checked + 4 pairs-source-free).
  payload[34] = 0x77;
  EXPECT_FALSE(decode_contract_record(payload).has_value());
}

TEST(Manifest, RoundTripAndAtomicReplace) {
  const std::string path = temp_path("m.journal") + ".manifest";
  Manifest m;
  m.committed_bytes = 4'096;
  m.shards_committed = 3;
  m.contracts_committed = 1'234;
  m.complete = false;
  ASSERT_TRUE(store_manifest(path, m));
  auto loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, m);

  // Replacement is all-or-nothing: the new state fully supersedes.
  m.shards_committed = 4;
  m.complete = true;
  ASSERT_TRUE(store_manifest(path, m));
  loaded = load_manifest(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, m);
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Manifest, CorruptionIsRejected) {
  const std::string path = temp_path("bad.journal") + ".manifest";
  Manifest m;
  m.committed_bytes = 99;
  ASSERT_TRUE(store_manifest(path, m));
  std::vector<std::uint8_t> bytes = file_bytes(path);
  bytes[4] ^= 0x01;
  write_file(path, bytes);
  EXPECT_FALSE(load_manifest(path).has_value());
  EXPECT_FALSE(load_manifest(path + ".nope").has_value());
}

}  // namespace
