// Robustness fuzzing: random byte blobs and mutated factory contracts fed
// to the disassembler, interpreter, proxy detector, selector extractor, and
// storage profiler. Everything must terminate (fuses) and never crash;
// verdicts must stay deterministic.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "core/proxy_detector.h"
#include "core/selector_extractor.h"
#include "core/storage_profile.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"
#include "static/layout.h"

namespace {

using namespace proxion;
using namespace proxion::evm;
using datagen::ContractFactory;

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Bytes random_blob(std::mt19937_64& rng, std::size_t max_len) {
    Bytes out(1 + rng() % max_len);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng());
    return out;
  }

  /// Random blob biased toward real opcodes (more interesting paths).
  Bytes opcode_soup(std::mt19937_64& rng, std::size_t max_len) {
    static constexpr std::uint8_t kCommon[] = {
        0x60, 0x61, 0x63, 0x73, 0x7f, 0x50, 0x51, 0x52, 0x54, 0x55,
        0x56, 0x57, 0x5b, 0x80, 0x81, 0x90, 0x91, 0x01, 0x03, 0x14,
        0x15, 0x16, 0x33, 0x34, 0x35, 0x36, 0x3d, 0xf1, 0xf3, 0xf4,
        0xfd, 0x00, 0x1b, 0x1c, 0x20, 0x5f};
    Bytes out(1 + rng() % max_len);
    for (auto& b : out) {
      b = rng() % 4 == 0 ? static_cast<std::uint8_t>(rng())
                         : kCommon[rng() % sizeof(kCommon)];
    }
    return out;
  }

  ExecResult run_guarded(MemoryHost& host, const Address& a, Bytes calldata) {
    InterpreterConfig config;
    config.step_limit = 20'000;
    Interpreter interp(host, config);
    CallParams params;
    params.code_address = a;
    params.storage_address = a;
    params.caller = Address::from_label("fuzz.caller");
    params.calldata = std::move(calldata);
    params.gas = 1'000'000;
    return interp.execute(params);
  }
};

TEST_P(FuzzTest, DisassemblerNeverCrashesAndCoversAllBytes) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Bytes code = random_blob(rng, 512);
    Disassembly dis(code);
    // Linear sweep invariant: instructions tile the code exactly.
    std::size_t covered = 0;
    for (const auto& ins : dis.instructions()) {
      EXPECT_EQ(ins.pc, covered);
      covered += 1 + ins.immediate.size();
    }
    EXPECT_EQ(covered, code.size());
  }
}

TEST_P(FuzzTest, InterpreterTerminatesOnRandomBytecode) {
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  const Address a = Address::from_label("fuzz.target");
  for (int i = 0; i < 200; ++i) {
    host.set_code(a, opcode_soup(rng, 256));
    const ExecResult r = run_guarded(host, a, random_blob(rng, 68));
    // Any halt reason is fine; what matters is that we returned at all and
    // the reason is a defined enumerator.
    EXPECT_LE(static_cast<int>(r.halt),
              static_cast<int>(HaltReason::kStepLimit));
  }
}

TEST_P(FuzzTest, ProxyDetectorTerminatesAndIsDeterministic) {
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  for (int i = 0; i < 120; ++i) {
    const Address a = Address::from_label("fuzz." + std::to_string(i));
    host.set_code(a, opcode_soup(rng, 256));
    core::ProxyDetectorConfig config;
    config.step_limit = 20'000;
    core::ProxyDetector detector(host, config);
    const auto first = detector.analyze(a);
    const auto second = detector.analyze(a);
    EXPECT_EQ(first.verdict, second.verdict);
    EXPECT_EQ(first.probe_selector, second.probe_selector);
    if (first.is_proxy()) {
      // A proxy verdict from soup is possible (e.g. random DELEGATECALL
      // that forwards); it must carry a consistent report.
      EXPECT_TRUE(first.has_delegatecall_opcode);
      EXPECT_TRUE(first.calldata_forwarded);
    }
  }
}

TEST_P(FuzzTest, SelectorExtractorAndProfilerNeverCrash) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Bytes code = opcode_soup(rng, 512);
    const auto selectors = core::extract_selectors(code);
    EXPECT_TRUE(std::is_sorted(selectors.begin(), selectors.end()));
    const auto profile = core::profile_storage(code);
    for (const auto& access : profile.accesses) {
      EXPECT_GE(access.width, 1);
      EXPECT_LE(access.width, 32);
      EXPECT_LE(access.offset + access.width, 32);
    }
  }
}

TEST_P(FuzzTest, MutatedRealContractsKeepDetectorSane) {
  // Flip bytes in real factory bytecode: the detector may change its
  // verdict but must never crash, hang, or return garbage enums.
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  const Bytes base = ContractFactory::eip1967_proxy();
  for (int i = 0; i < 150; ++i) {
    Bytes mutated = base;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    const Address a = Address::from_label("mut." + std::to_string(i));
    host.set_code(a, mutated);
    core::ProxyDetectorConfig config;
    config.step_limit = 20'000;
    core::ProxyDetector detector(host, config);
    const auto report = detector.analyze(a);
    EXPECT_LE(static_cast<int>(report.verdict),
              static_cast<int>(core::ProxyVerdict::kEmulationError));
    EXPECT_LE(static_cast<int>(report.standard),
              static_cast<int>(core::ProxyStandard::kOther));
  }
}

TEST_P(FuzzTest, RandomCalldataAgainstRealProxyStaysConsistent) {
  // Real proxies fed random calldata: every call must terminate, and calls
  // with unknown selectors must behave identically to the crafted probe
  // (forwarding through the fallback).
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  const Address logic = Address::from_label("fz.logic");
  host.set_code(logic, ContractFactory::token_contract(1));
  const Address proxy = Address::from_label("fz.proxy");
  host.set_code(proxy, ContractFactory::eip1967_proxy());
  host.set_storage(proxy, ContractFactory::eip1967_slot(), logic.to_word());

  for (int i = 0; i < 100; ++i) {
    const ExecResult r = run_guarded(host, proxy, random_blob(rng, 100));
    EXPECT_TRUE(r.halt == HaltReason::kReturn ||
                r.halt == HaltReason::kRevert ||
                r.halt == HaltReason::kStop)
        << to_string(r.halt);
  }
}

// ---------------------------------------------------------------------------
// Differential layout fuzzer (storage-layout inference soundness): random
// datagen contracts are executed with every dispatched selector, and every
// storage slot emulation actually touches must be admitted by the inferred
// StorageLayout — either as a static member or through a keccak family whose
// derivation the observer reconstructed — unless the layout itself declined
// to make claims (!reliable()). An inadmissible access under a reliable
// layout is a soundness bug: the layout would contradict real behavior.

struct LayoutFuzzObserver final : public TraceObserver {
  struct Family {
    U256 base;
    std::uint8_t depth = 1;
    std::uint8_t path = 0;
  };
  std::vector<U256> slots;               // depth-0 SLOAD/SSTORE slots
  std::map<U256, Family> keccak_images;  // hash -> reconstructed derivation

  void on_keccak(int /*depth*/, BytesView input, const U256& hash) override {
    Family fam;
    if (input.size() == 64) {
      fam.base = U256::from_be_slice(input.subspan(32));
      fam.path = 1;
    } else if (input.size() == 32) {
      fam.base = U256::from_be_slice(input);
    } else {
      return;
    }
    if (const auto it = keccak_images.find(fam.base);
        it != keccak_images.end() && it->second.depth < 8) {
      fam.base = it->second.base;
      fam.depth = static_cast<std::uint8_t>(it->second.depth + 1);
      fam.path = static_cast<std::uint8_t>(
          it->second.path | (fam.path != 0 ? 1u << it->second.depth : 0u));
    }
    keccak_images.emplace(hash, fam);
  }
  void on_sload(int depth, const Address&, const U256& slot,
                const U256&) override {
    if (depth == 0) slots.push_back(slot);
  }
  void on_sstore(int depth, const Address&, const U256& slot,
                 const U256&) override {
    if (depth == 0) slots.push_back(slot);
  }

  bool admitted(const static_analysis::StorageLayout& layout,
                const U256& slot) const {
    if (layout.admits_slot(slot)) return true;
    for (const auto& [hash, fam] : keccak_images) {
      if (slot < hash) continue;
      const U256 diff = slot - hash;
      if (!diff.fits_u64() || diff.low64() > 4096) continue;
      if (layout.family(fam.base, fam.depth, fam.path) != nullptr) return true;
    }
    return false;
  }
};

TEST_P(FuzzTest, InferredLayoutAdmitsEveryEmulatedAccess) {
  std::mt19937_64 rng(GetParam());
  static constexpr datagen::BodyKind kBodies[] = {
      datagen::BodyKind::kReturnStorageWord,
      datagen::BodyKind::kReturnStorageAddress,
      datagen::BodyKind::kReturnStorageBool,
      datagen::BodyKind::kReturnStorageBoolAtOffset,
      datagen::BodyKind::kStoreBoolPackedAt,
      datagen::BodyKind::kStoreArgWord,
      datagen::BodyKind::kStoreArgAddress,
      datagen::BodyKind::kStoreCaller,
      datagen::BodyKind::kGuardedStoreArgAddress,
      datagen::BodyKind::kMapReadArg,
      datagen::BodyKind::kMapWriteArg,
      datagen::BodyKind::kMapWriteCallerKey,
      datagen::BodyKind::kArrayReadArg,
  };
  for (int i = 0; i < 60; ++i) {
    std::vector<datagen::FunctionSpec> funcs;
    const int n = 1 + static_cast<int>(rng() % 5);
    for (int f = 0; f < n; ++f) {
      datagen::FunctionSpec spec;
      spec.prototype = "f" + std::to_string(f) + "_" + std::to_string(i) +
                       "(uint256,uint256)";
      spec.body = kBodies[rng() % std::size(kBodies)];
      spec.slot = U256{rng() % 6};
      spec.aux = U256{rng() % 28};  // packing offset / owner slot
      funcs.push_back(std::move(spec));
    }
    const Bytes code = ContractFactory::plain_contract(funcs);
    const auto layout = static_analysis::infer_layout(Disassembly(code));

    MemoryHost host;
    const Address a = Address::from_label("layoutfuzz." + std::to_string(i));
    host.set_code(a, code);
    LayoutFuzzObserver observer;
    for (const auto& func : funcs) {
      Bytes calldata(4 + 64);
      const std::uint32_t sel = func.selector();
      calldata[0] = static_cast<std::uint8_t>(sel >> 24);
      calldata[1] = static_cast<std::uint8_t>(sel >> 16);
      calldata[2] = static_cast<std::uint8_t>(sel >> 8);
      calldata[3] = static_cast<std::uint8_t>(sel);
      // Random argument *words* but small magnitudes: only the low byte of
      // each 32-byte word varies. Array indices are attacker-chosen, so an
      // unbounded random index would land arbitrarily far from the keccak
      // image and defeat the observer's family-distance reconstruction —
      // the admission contract itself is magnitude-independent.
      calldata[4 + 31] = static_cast<std::uint8_t>(rng());
      calldata[4 + 63] = static_cast<std::uint8_t>(rng());
      InterpreterConfig config;
      config.step_limit = 20'000;
      Interpreter interp(host, config);
      interp.set_observer(&observer);
      CallParams params;
      params.code_address = a;
      params.storage_address = a;
      params.caller = Address::from_label("fuzz.caller");
      params.calldata = std::move(calldata);
      params.gas = 1'000'000;
      (void)interp.execute(params);
    }

    if (!layout.reliable()) continue;  // no claim made, nothing to check
    for (const U256& slot : observer.slots) {
      EXPECT_TRUE(observer.admitted(layout, slot))
          << "contract " << i << " slot not admitted\n"
          << layout.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(0x5eedu, 0xfeedu, 0xc0ffeeu,
                                           20240920u));

}  // namespace
