// Robustness fuzzing: random byte blobs and mutated factory contracts fed
// to the disassembler, interpreter, proxy detector, selector extractor, and
// storage profiler. Everything must terminate (fuses) and never crash;
// verdicts must stay deterministic.
#include <gtest/gtest.h>

#include <random>

#include "core/proxy_detector.h"
#include "core/selector_extractor.h"
#include "core/storage_profile.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion;
using namespace proxion::evm;
using datagen::ContractFactory;

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Bytes random_blob(std::mt19937_64& rng, std::size_t max_len) {
    Bytes out(1 + rng() % max_len);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng());
    return out;
  }

  /// Random blob biased toward real opcodes (more interesting paths).
  Bytes opcode_soup(std::mt19937_64& rng, std::size_t max_len) {
    static constexpr std::uint8_t kCommon[] = {
        0x60, 0x61, 0x63, 0x73, 0x7f, 0x50, 0x51, 0x52, 0x54, 0x55,
        0x56, 0x57, 0x5b, 0x80, 0x81, 0x90, 0x91, 0x01, 0x03, 0x14,
        0x15, 0x16, 0x33, 0x34, 0x35, 0x36, 0x3d, 0xf1, 0xf3, 0xf4,
        0xfd, 0x00, 0x1b, 0x1c, 0x20, 0x5f};
    Bytes out(1 + rng() % max_len);
    for (auto& b : out) {
      b = rng() % 4 == 0 ? static_cast<std::uint8_t>(rng())
                         : kCommon[rng() % sizeof(kCommon)];
    }
    return out;
  }

  ExecResult run_guarded(MemoryHost& host, const Address& a, Bytes calldata) {
    InterpreterConfig config;
    config.step_limit = 20'000;
    Interpreter interp(host, config);
    CallParams params;
    params.code_address = a;
    params.storage_address = a;
    params.caller = Address::from_label("fuzz.caller");
    params.calldata = std::move(calldata);
    params.gas = 1'000'000;
    return interp.execute(params);
  }
};

TEST_P(FuzzTest, DisassemblerNeverCrashesAndCoversAllBytes) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Bytes code = random_blob(rng, 512);
    Disassembly dis(code);
    // Linear sweep invariant: instructions tile the code exactly.
    std::size_t covered = 0;
    for (const auto& ins : dis.instructions()) {
      EXPECT_EQ(ins.pc, covered);
      covered += 1 + ins.immediate.size();
    }
    EXPECT_EQ(covered, code.size());
  }
}

TEST_P(FuzzTest, InterpreterTerminatesOnRandomBytecode) {
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  const Address a = Address::from_label("fuzz.target");
  for (int i = 0; i < 200; ++i) {
    host.set_code(a, opcode_soup(rng, 256));
    const ExecResult r = run_guarded(host, a, random_blob(rng, 68));
    // Any halt reason is fine; what matters is that we returned at all and
    // the reason is a defined enumerator.
    EXPECT_LE(static_cast<int>(r.halt),
              static_cast<int>(HaltReason::kStepLimit));
  }
}

TEST_P(FuzzTest, ProxyDetectorTerminatesAndIsDeterministic) {
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  for (int i = 0; i < 120; ++i) {
    const Address a = Address::from_label("fuzz." + std::to_string(i));
    host.set_code(a, opcode_soup(rng, 256));
    core::ProxyDetectorConfig config;
    config.step_limit = 20'000;
    core::ProxyDetector detector(host, config);
    const auto first = detector.analyze(a);
    const auto second = detector.analyze(a);
    EXPECT_EQ(first.verdict, second.verdict);
    EXPECT_EQ(first.probe_selector, second.probe_selector);
    if (first.is_proxy()) {
      // A proxy verdict from soup is possible (e.g. random DELEGATECALL
      // that forwards); it must carry a consistent report.
      EXPECT_TRUE(first.has_delegatecall_opcode);
      EXPECT_TRUE(first.calldata_forwarded);
    }
  }
}

TEST_P(FuzzTest, SelectorExtractorAndProfilerNeverCrash) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Bytes code = opcode_soup(rng, 512);
    const auto selectors = core::extract_selectors(code);
    EXPECT_TRUE(std::is_sorted(selectors.begin(), selectors.end()));
    const auto profile = core::profile_storage(code);
    for (const auto& access : profile.accesses) {
      EXPECT_GE(access.width, 1);
      EXPECT_LE(access.width, 32);
      EXPECT_LE(access.offset + access.width, 32);
    }
  }
}

TEST_P(FuzzTest, MutatedRealContractsKeepDetectorSane) {
  // Flip bytes in real factory bytecode: the detector may change its
  // verdict but must never crash, hang, or return garbage enums.
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  const Bytes base = ContractFactory::eip1967_proxy();
  for (int i = 0; i < 150; ++i) {
    Bytes mutated = base;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<std::uint8_t>(rng());
    }
    const Address a = Address::from_label("mut." + std::to_string(i));
    host.set_code(a, mutated);
    core::ProxyDetectorConfig config;
    config.step_limit = 20'000;
    core::ProxyDetector detector(host, config);
    const auto report = detector.analyze(a);
    EXPECT_LE(static_cast<int>(report.verdict),
              static_cast<int>(core::ProxyVerdict::kEmulationError));
    EXPECT_LE(static_cast<int>(report.standard),
              static_cast<int>(core::ProxyStandard::kOther));
  }
}

TEST_P(FuzzTest, RandomCalldataAgainstRealProxyStaysConsistent) {
  // Real proxies fed random calldata: every call must terminate, and calls
  // with unknown selectors must behave identically to the crafted probe
  // (forwarding through the fallback).
  std::mt19937_64 rng(GetParam());
  MemoryHost host;
  const Address logic = Address::from_label("fz.logic");
  host.set_code(logic, ContractFactory::token_contract(1));
  const Address proxy = Address::from_label("fz.proxy");
  host.set_code(proxy, ContractFactory::eip1967_proxy());
  host.set_storage(proxy, ContractFactory::eip1967_slot(), logic.to_word());

  for (int i = 0; i < 100; ++i) {
    const ExecResult r = run_guarded(host, proxy, random_blob(rng, 100));
    EXPECT_TRUE(r.halt == HaltReason::kReturn ||
                r.halt == HaltReason::kRevert ||
                r.halt == HaltReason::kStop)
        << to_string(r.halt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(0x5eedu, 0xfeedu, 0xc0ffeeu,
                                           20240920u));

}  // namespace
