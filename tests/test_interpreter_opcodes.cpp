// Systematic per-opcode interpreter coverage, including a differential
// property sweep: every binary ALU opcode executed in the EVM must agree
// with the U256 reference implementation on randomized operands.
#include <gtest/gtest.h>

#include <random>

#include "crypto/keccak.h"
#include "datagen/assembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion::evm;
using proxion::crypto::from_hex;
using proxion::datagen::Assembler;

class OpcodeTest : public ::testing::Test {
 protected:
  ExecResult run(const Bytes& code, Bytes calldata = {}) {
    host_.set_code(self_, code);
    Interpreter interp(host_);
    CallParams params;
    params.code_address = self_;
    params.storage_address = self_;
    params.caller = caller_;
    params.origin = origin_;
    params.calldata = std::move(calldata);
    return interp.execute(params);
  }

  /// Executes `op` on two stack operands (a on top) and returns the result.
  U256 eval2(Opcode op, const U256& a, const U256& b) {
    Assembler asm_;
    asm_.push(b, 32).push(a, 32).op(op);
    asm_.push(U256{0}, 1).op(Opcode::MSTORE);
    asm_.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
    const ExecResult r = run(asm_.assemble());
    EXPECT_EQ(r.halt, HaltReason::kReturn) << opcode_info(op).mnemonic;
    return U256::from_be_slice(r.return_data);
  }

  U256 eval3(Opcode op, const U256& a, const U256& b, const U256& c) {
    Assembler asm_;
    asm_.push(c, 32).push(b, 32).push(a, 32).op(op);
    asm_.push(U256{0}, 1).op(Opcode::MSTORE);
    asm_.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
    const ExecResult r = run(asm_.assemble());
    EXPECT_EQ(r.halt, HaltReason::kReturn);
    return U256::from_be_slice(r.return_data);
  }

  /// Runs a no-operand opcode and returns the single word it pushes.
  U256 eval0(Opcode op) {
    Assembler asm_;
    asm_.op(op);
    asm_.push(U256{0}, 1).op(Opcode::MSTORE);
    asm_.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
    const ExecResult r = run(asm_.assemble());
    EXPECT_EQ(r.halt, HaltReason::kReturn);
    return U256::from_be_slice(r.return_data);
  }

  MemoryHost host_;
  Address self_ = Address::from_label("opcodes.self");
  Address caller_ = Address::from_label("opcodes.caller");
  Address origin_ = Address::from_label("opcodes.origin");
};

// ---- differential ALU sweep -------------------------------------------------

class AluDifferentialTest : public OpcodeTest,
                            public ::testing::WithParamInterface<unsigned> {};

TEST_P(AluDifferentialTest, BinaryOpsMatchReference) {
  std::mt19937_64 rng(GetParam());
  auto rand_word = [&] {
    switch (rng() % 4) {
      case 0: return U256{rng() % 256};
      case 1: return U256{rng()};
      case 2: return U256{rng(), rng(), rng(), rng()};
      default: return ~U256{} - U256{rng() % 64};
    }
  };
  for (int i = 0; i < 40; ++i) {
    const U256 a = rand_word();
    const U256 b = rand_word();
    EXPECT_EQ(eval2(Opcode::ADD, a, b), a + b);
    EXPECT_EQ(eval2(Opcode::SUB, a, b), a - b);
    EXPECT_EQ(eval2(Opcode::MUL, a, b), a * b);
    EXPECT_EQ(eval2(Opcode::DIV, a, b), a / b);
    EXPECT_EQ(eval2(Opcode::MOD, a, b), a % b);
    EXPECT_EQ(eval2(Opcode::SDIV, a, b), a.sdiv(b));
    EXPECT_EQ(eval2(Opcode::SMOD, a, b), a.smod(b));
    EXPECT_EQ(eval2(Opcode::AND, a, b), a & b);
    EXPECT_EQ(eval2(Opcode::OR, a, b), a | b);
    EXPECT_EQ(eval2(Opcode::XOR, a, b), a ^ b);
    EXPECT_EQ(eval2(Opcode::LT, a, b), U256{a < b ? 1u : 0u});
    EXPECT_EQ(eval2(Opcode::GT, a, b), U256{a > b ? 1u : 0u});
    EXPECT_EQ(eval2(Opcode::SLT, a, b), U256{a.slt(b) ? 1u : 0u});
    EXPECT_EQ(eval2(Opcode::SGT, a, b), U256{a.sgt(b) ? 1u : 0u});
    EXPECT_EQ(eval2(Opcode::EQ, a, b), U256{a == b ? 1u : 0u});
    EXPECT_EQ(eval2(Opcode::BYTE, a, b), U256{b.byte(a)});
    EXPECT_EQ(eval2(Opcode::SHL, a, b), b << a);
    EXPECT_EQ(eval2(Opcode::SHR, a, b), b >> a);
    EXPECT_EQ(eval2(Opcode::SAR, a, b), b.sar(a));
    EXPECT_EQ(eval2(Opcode::SIGNEXTEND, a, b), b.signextend(a));
  }
}

TEST_P(AluDifferentialTest, TernaryOpsMatchReference) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    const U256 a{rng(), rng(), rng(), rng()};
    const U256 b{rng(), rng(), rng(), rng()};
    const U256 m{rng() % 2 == 0 ? rng() : 0};
    EXPECT_EQ(eval3(Opcode::ADDMOD, a, b, m), U256::addmod(a, b, m));
    EXPECT_EQ(eval3(Opcode::MULMOD, a, b, m), U256::mulmod(a, b, m));
  }
}

TEST_P(AluDifferentialTest, ExpMatchesReference) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 15; ++i) {
    const U256 base{rng() % 1000};
    const U256 exponent{rng() % 64};
    EXPECT_EQ(eval2(Opcode::EXP, base, exponent), base.exp(exponent));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluDifferentialTest,
                         ::testing::Values(11u, 1337u, 99991u));

// ---- environment opcodes ----------------------------------------------------

TEST_F(OpcodeTest, OriginVsCaller) {
  EXPECT_EQ(eval0(Opcode::ORIGIN), origin_.to_word());
  EXPECT_EQ(eval0(Opcode::CALLER), caller_.to_word());
}

TEST_F(OpcodeTest, BlockContextOpcodes) {
  auto& ctx = host_.mutable_block_context();
  ctx.number = U256{12'345'678};
  ctx.timestamp = U256{1'700'000'000};
  ctx.difficulty = U256{0x1234};
  ctx.gas_limit = U256{30'000'000};
  ctx.base_fee = U256{17};
  ctx.gas_price = U256{42};
  ctx.coinbase = Address::from_label("validator");

  EXPECT_EQ(eval0(Opcode::NUMBER), U256{12'345'678});
  EXPECT_EQ(eval0(Opcode::TIMESTAMP), U256{1'700'000'000});
  EXPECT_EQ(eval0(Opcode::DIFFICULTY), U256{0x1234});
  EXPECT_EQ(eval0(Opcode::GASLIMIT), U256{30'000'000});
  EXPECT_EQ(eval0(Opcode::BASEFEE), U256{17});
  EXPECT_EQ(eval0(Opcode::GASPRICE), U256{42});
  EXPECT_EQ(eval0(Opcode::COINBASE),
            Address::from_label("validator").to_word());
}

TEST_F(OpcodeTest, SelfBalance) {
  host_.set_balance(self_, U256{987});
  EXPECT_EQ(eval0(Opcode::SELFBALANCE), U256{987});
}

TEST_F(OpcodeTest, BalanceOfOther) {
  const Address rich = Address::from_label("rich");
  host_.set_balance(rich, U256{5555});
  Assembler a;
  a.push_address(rich).op(Opcode::BALANCE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  EXPECT_EQ(U256::from_be_slice(run(a.assemble()).return_data), U256{5555});
}

TEST_F(OpcodeTest, ExtCodeFamilyOnDeployedAccount) {
  const Address other = Address::from_label("other");
  const Bytes other_code = from_hex("6001600201");
  host_.set_code(other, other_code);

  Assembler a;
  a.push_address(other).op(Opcode::EXTCODESIZE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push_address(other).op(Opcode::EXTCODEHASH);
  a.push(U256{0x20}, 1).op(Opcode::MSTORE);
  // extcodecopy(other, dest=0x40, offset=0, size=5)
  a.push(U256{5}, 1).push(U256{0}, 1).push(U256{0x40}, 1);
  a.push_address(other).op(Opcode::EXTCODECOPY);
  a.push(U256{0x60}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  const BytesView out(r.return_data);
  EXPECT_EQ(U256::from_be_slice(out.subspan(0, 32)), U256{5});  // size
  EXPECT_EQ(U256::from_be_slice(out.subspan(32, 32)),
            to_u256(proxion::crypto::keccak256(other_code)));
  EXPECT_TRUE(std::equal(other_code.begin(), other_code.end(),
                         out.begin() + 64));
}

TEST_F(OpcodeTest, ExtCodeFamilyOnEmptyAccount) {
  Assembler a;
  a.push_address(Address::from_label("ghost")).op(Opcode::EXTCODESIZE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push_address(Address::from_label("ghost")).op(Opcode::EXTCODEHASH);
  a.push(U256{0x20}, 1).op(Opcode::MSTORE);
  a.push(U256{0x40}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  const BytesView out(r.return_data);
  EXPECT_EQ(U256::from_be_slice(out.subspan(0, 32)), U256{});
  EXPECT_EQ(U256::from_be_slice(out.subspan(32, 32)), U256{});  // empty -> 0
}

TEST_F(OpcodeTest, PcMsizeGas) {
  Assembler a;
  a.op(Opcode::PC);                                 // pc 0 -> pushes 0
  a.push(U256{0}, 1).op(Opcode::MSTORE);            // memory now 32 bytes
  a.op(Opcode::MSIZE);
  a.push(U256{0x20}, 1).op(Opcode::MSTORE);
  a.op(Opcode::GAS);
  a.push(U256{0x40}, 1).op(Opcode::MSTORE);
  a.push(U256{0x60}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  const BytesView out(r.return_data);
  EXPECT_EQ(U256::from_be_slice(out.subspan(0, 32)), U256{0});
  EXPECT_EQ(U256::from_be_slice(out.subspan(32, 32)), U256{32});
  EXPECT_GT(U256::from_be_slice(out.subspan(64, 32)), U256{0});  // gas left
}

TEST_F(OpcodeTest, Push0AndAllPushWidths) {
  // PUSH0 then PUSH1..PUSH32 of 0xff..ff patterns; ensure each decodes.
  for (int width = 0; width <= 32; ++width) {
    Assembler a;
    if (width == 0) {
      a.op(Opcode::PUSH0);
    } else {
      Bytes payload(static_cast<std::size_t>(width), 0xab);
      a.push_bytes(payload);
    }
    a.push(U256{0}, 1).op(Opcode::MSTORE);
    a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
    const U256 got = U256::from_be_slice(run(a.assemble()).return_data);
    if (width == 0) {
      EXPECT_EQ(got, U256{});
    } else {
      U256 expected;
      for (int i = 0; i < width; ++i) {
        expected = (expected << U256{8}) | U256{0xab};
      }
      EXPECT_EQ(got, expected) << "width " << width;
    }
  }
}

TEST_F(OpcodeTest, DupAndSwapFullRange) {
  // Push 17 distinct values, DUP16 must duplicate the 16th from top.
  Assembler a;
  for (int i = 1; i <= 17; ++i) a.push(U256{static_cast<std::uint64_t>(i)});
  a.dup(16);  // 16th from top is value 2
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  EXPECT_EQ(U256::from_be_slice(run(a.assemble()).return_data), U256{2});

  Assembler b;
  for (int i = 1; i <= 17; ++i) b.push(U256{static_cast<std::uint64_t>(i)});
  b.swap(16);  // top (17) swaps with the 17th (1)
  b.push(U256{0}, 1).op(Opcode::MSTORE);
  b.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  EXPECT_EQ(U256::from_be_slice(run(b.assemble()).return_data), U256{1});
}

TEST_F(OpcodeTest, MemoryExpansionChargesQuadratically) {
  // Touching memory far out must cost much more than nearby; and beyond the
  // fuse it fails cleanly.
  Assembler near;
  near.push(U256{1}, 1).push(U256{0x100}, 2).op(Opcode::MSTORE8);
  near.op(Opcode::STOP);
  host_.set_code(self_, near.assemble());
  Interpreter interp1(host_);
  CallParams params;
  params.code_address = self_;
  params.storage_address = self_;
  params.gas = 100'000;
  const auto r1 = interp1.execute(params);
  EXPECT_TRUE(r1.success());

  Assembler far;
  far.push(U256{1}, 1).push(U256{8'000'000}, 4).op(Opcode::MSTORE8);
  far.op(Opcode::STOP);
  host_.set_code(self_, far.assemble());
  Interpreter interp2(host_);
  const auto r2 = interp2.execute(params);
  EXPECT_EQ(r2.halt, HaltReason::kOutOfGas);  // quadratic cost bites
  EXPECT_GT(r2.gas_used, r1.gas_used * 10);
}

TEST_F(OpcodeTest, MemoryFuseBlocksAbsurdOffsets) {
  Assembler a;
  a.push(U256{1}, 1).push(~U256{}, 32).op(Opcode::MSTORE8);
  EXPECT_EQ(run(a.assemble()).halt, HaltReason::kOutOfGas);
}

TEST_F(OpcodeTest, NestedStaticPropagates) {
  // outer STATICCALL -> middle CALL -> inner SSTORE must still fail.
  const Address middle = Address::from_label("middle");
  const Address inner = Address::from_label("inner");

  Assembler inner_asm;  // SSTORE(0, 1)
  inner_asm.push(U256{1}, 1).push(U256{0}, 1).op(Opcode::SSTORE);
  inner_asm.op(Opcode::STOP);
  host_.set_code(inner, inner_asm.assemble());

  Assembler middle_asm;  // CALL inner, propagate success flag in returndata
  middle_asm.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1)
      .push(U256{0}, 1).push(U256{0}, 1);
  middle_asm.push_address(inner).op(Opcode::GAS).op(Opcode::CALL);
  middle_asm.push(U256{0}, 1).op(Opcode::MSTORE);
  middle_asm.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  host_.set_code(middle, middle_asm.assemble());

  Assembler outer;  // STATICCALL middle, return its returndata
  outer.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
  outer.push_address(middle).op(Opcode::GAS).op(Opcode::STATICCALL);
  outer.op(Opcode::POP);
  outer.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).push(U256{0}, 1)
      .op(Opcode::RETURNDATACOPY);
  outer.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).op(Opcode::RETURN);

  const ExecResult r = run(outer.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  // middle's CALL to inner reported failure (0) because of staticness.
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0});
  EXPECT_EQ(host_.get_storage(inner, U256{0}), U256{});
}

TEST_F(OpcodeTest, SixtyThreeSixtyFourthsRule) {
  // A callee trying to burn everything cannot exhaust the caller: 1/64 of
  // gas is withheld, so the caller can still finish.
  const Address burner = Address::from_label("burner");
  Assembler spin;
  spin.jumpdest("loop");
  spin.push_label("loop").op(Opcode::JUMP);
  host_.set_code(burner, spin.assemble());

  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
  a.push(U256{0}, 1);
  a.push_address(burner);
  a.op(Opcode::GAS).op(Opcode::CALL).op(Opcode::POP);
  a.push(U256{0x42}, 1).push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);

  host_.set_code(self_, a.assemble());
  InterpreterConfig config;
  config.step_limit = 2'000'000;
  Interpreter interp(host_, config);
  CallParams params;
  params.code_address = self_;
  params.storage_address = self_;
  params.gas = 200'000;
  const auto r = interp.execute(params);
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0x42});
}

TEST_F(OpcodeTest, CallDepthLimitReturnsFailure) {
  // Self-recursive CALL: at depth 1024 the call must fail (push 0), not
  // crash. Depth grows fast, so cap gas high but finite.
  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
  a.push(U256{0}, 1);
  a.push_address(self_);
  a.op(Opcode::GAS).op(Opcode::CALL);
  // return the sub-call's success flag
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  host_.set_code(self_, a.assemble());

  InterpreterConfig config;
  config.step_limit = 10'000'000;
  config.max_call_depth = 64;  // keep the recursion cheap for the test
  config.charge_gas = false;
  Interpreter interp(host_, config);
  CallParams params;
  params.code_address = self_;
  params.storage_address = self_;
  const auto r = interp.execute(params);
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  // The innermost frame saw its CALL fail (depth limit) -> somewhere a 0
  // bubbled; the outermost result is its own sub-call's success = 1, so
  // instead assert that execution terminated without fault.
  EXPECT_TRUE(r.success());
}

TEST_F(OpcodeTest, ReturndatacopyExactBoundaryOk) {
  const Address callee = Address::from_label("cal");
  Assembler c;
  c.push(U256{0xaa}, 1).push(U256{0}, 1).op(Opcode::MSTORE);
  c.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  host_.set_code(callee, c.assemble());

  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
  a.push_address(callee).op(Opcode::GAS).op(Opcode::STATICCALL).op(Opcode::POP);
  // copy exactly 32 bytes from offset 0: fine
  a.push(U256{32}, 1).push(U256{0}, 1).push(U256{0}, 1)
      .op(Opcode::RETURNDATACOPY);
  // copy 1 byte from offset 32: out of bounds -> fault
  a.push(U256{1}, 1).push(U256{32}, 1).push(U256{0x40}, 1)
      .op(Opcode::RETURNDATACOPY);
  a.op(Opcode::STOP);
  EXPECT_EQ(run(a.assemble()).halt, HaltReason::kReturnDataOutOfBounds);
}

TEST_F(OpcodeTest, CodesizeAndCodecopyOfSelf) {
  Assembler a;
  a.op(Opcode::CODESIZE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const Bytes code = a.assemble();
  const ExecResult r = run(code);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{code.size()});
}

TEST_F(OpcodeTest, BlockhashOfRecentAndFutureBlocks) {
  auto& ctx = host_.mutable_block_context();
  ctx.number = U256{100};
  Assembler a;
  a.push(U256{50}, 1).op(Opcode::BLOCKHASH);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const U256 h = U256::from_be_slice(run(a.assemble()).return_data);
  EXPECT_EQ(h, host_.block_hash(50));
}

TEST_F(OpcodeTest, ChainIdIsMainnet) {
  // §4.2: "the chain ID of Ethereum's mainnet is 1".
  EXPECT_EQ(eval0(Opcode::CHAINID), U256{1});
}

}  // namespace
